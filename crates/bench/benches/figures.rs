//! Smoke-scale versions of the figure experiments, under criterion.
//!
//! These keep `cargo bench` honest about end-to-end experiment cost: one
//! short run of the Fig. 4 dumbbell and one of the cellular workload for
//! a representative scheme each. The full experiments (all schemes, many
//! runs) live in the `src/bin/` harnesses.

use criterion::{criterion_group, criterion_main, Criterion};
use netsim::prelude::*;
use remy::remycc::RemyCc;
use std::hint::black_box;
use std::sync::Arc;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    g.bench_function("fig4_one_run_remycc_5s", |b| {
        let table = remy::assets::delta1();
        let s = Scenario::dumbbell(
            LinkSpec::constant(15.0),
            QueueSpec::DropTail { capacity: 1000 },
            8,
            Ns::from_millis(150),
            TrafficSpec::fig4(),
            Ns::from_secs(5),
            9,
        );
        b.iter(|| {
            let r = run_scenario(&s, &|_| Box::new(RemyCc::new(Arc::clone(&table))));
            black_box(r.packets_forwarded)
        });
    });

    g.bench_function("fig4_one_run_cubic_5s", |b| {
        let s = Scenario::dumbbell(
            LinkSpec::constant(15.0),
            QueueSpec::DropTail { capacity: 1000 },
            8,
            Ns::from_millis(150),
            TrafficSpec::fig4(),
            Ns::from_secs(5),
            9,
        );
        b.iter(|| {
            let r = run_scenario(&s, &|_| Box::new(congestion::Cubic::new()));
            black_box(r.packets_forwarded)
        });
    });

    g.bench_function("fig7_one_run_remycc_5s", |b| {
        let table = remy::assets::delta1();
        let schedule = traces::LteModel::verizon_like().generate(4, Ns::from_secs(20));
        let s = Scenario::dumbbell(
            LinkSpec::trace("lte", schedule),
            QueueSpec::DropTail { capacity: 1000 },
            4,
            Ns::from_millis(50),
            TrafficSpec::fig4(),
            Ns::from_secs(5),
            9,
        );
        b.iter(|| {
            let r = run_scenario(&s, &|_| Box::new(RemyCc::new(Arc::clone(&table))));
            black_box(r.packets_forwarded)
        });
    });

    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
