//! Criterion benchmarks of massive-flow churn: Poisson arrivals of
//! bounded-Pareto transfers through the struct-of-arrays flow table, at
//! populations of 1k, 10k, and 100k flows per run. Besides the per-iter
//! wall time the gate tracks, each bench prints sim-seconds/sec — the
//! figure that bounds how much churn evaluation a training run can afford.

use criterion::{criterion_group, criterion_main, Criterion};
use netsim::prelude::*;
use std::hint::black_box;

/// λ = 10 000 flows/s; the duration picks the population size.
const ARRIVALS_PER_SEC: f64 = 10_000.0;

fn churn_scenario(duration: Ns, seed: u64) -> Scenario {
    Scenario::dumbbell(
        LinkSpec::constant(500.0),
        QueueSpec::DropTail { capacity: 1000 },
        2,
        Ns::from_millis(50),
        TrafficSpec::saturating(),
        duration,
        seed,
    )
    .with_churn(ChurnSpec {
        arrivals_per_sec: ARRIVALS_PER_SEC,
        size: OnSpec::BoundedPareto {
            xm: 2000.0,
            alpha: 1.2,
            cap_bytes: 10_000.0,
        },
        rtt: Ns::from_millis(20),
    })
}

fn run_churn(s: &Scenario) -> u64 {
    let ccs: Vec<Box<dyn CongestionControl>> = (0..s.n())
        .map(|_| Box::new(FixedWindow::new(50.0)) as _)
        .collect();
    let r = Simulator::new(s, ccs, None)
        .with_churn_cc(Box::new(|_| Box::new(FixedWindow::new(10.0))))
        .run();
    let p = r.population.expect("churn run has population stats");
    p.spawned
}

fn bench_flows(c: &mut Criterion) {
    let mut g = c.benchmark_group("flows");
    g.sample_size(10);

    // (name, duration, expected population at λ=10k/s)
    let cases: [(&str, Ns, u64, usize); 3] = [
        ("churn_1k", Ns::from_millis(100), 1_000, 10),
        ("churn_10k", Ns::from_secs(1), 10_000, 10),
        ("churn_100k", Ns::from_secs(10), 100_000, 3),
    ];
    for (name, duration, expected, samples) in cases {
        let s = churn_scenario(duration, 7);
        // One timed run up front: sanity-check the population and report
        // the throughput figure the ROADMAP quotes.
        let t0 = std::time::Instant::now();
        let spawned = run_churn(&s);
        let wall = t0.elapsed().as_secs_f64();
        assert!(
            spawned as f64 > 0.8 * expected as f64,
            "{name}: expected ~{expected} arrivals, got {spawned}"
        );
        println!(
            "flows/{name}: {spawned} flows, {:.2} sim-seconds/sec",
            duration.as_secs_f64() / wall
        );
        g.sample_size(samples);
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_churn(&s)));
        });
    }

    g.finish();
}

criterion_group!(benches, bench_flows);
criterion_main!(benches);
