//! Criterion micro-benchmarks of the queue disciplines at the bottleneck
//! (enqueue + dequeue of a standing load), driven through the packet
//! arena exactly as the simulator drives them.

use criterion::{criterion_group, criterion_main, Criterion};
use netsim::packet::{FlowId, Packet, PacketArena};
use netsim::queue::{Codel, DropTail, Queue, SfqCodel};
use netsim::time::Ns;
use std::hint::black_box;

fn churn<Q: Queue>(q: &mut Q, arena: &mut PacketArena, packets: usize) -> u64 {
    let mut t = Ns::ZERO;
    let mut out = 0u64;
    for i in 0..packets {
        t += Ns::from_micros(50);
        let id = arena.alloc(Packet::data(FlowId::first(i % 8), i as u64, 1500, t));
        q.enqueue(t, id, arena);
        if i % 2 == 1 {
            if let Some(id) = q.dequeue(t + Ns::from_micros(25), arena) {
                arena.free(id);
                out += 1;
            }
        }
    }
    while let Some(id) = q.dequeue(t + Ns::from_millis(1), arena) {
        arena.free(id);
        out += 1;
    }
    out
}

fn bench_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("queues");
    const N: usize = 10_000;

    g.bench_function("droptail_churn_10k", |b| {
        b.iter(|| {
            let mut arena = PacketArena::new();
            let mut q = DropTail::new(1000);
            black_box(churn(&mut q, &mut arena, N))
        });
    });

    g.bench_function("codel_churn_10k", |b| {
        b.iter(|| {
            let mut arena = PacketArena::new();
            let mut q = Codel::new(1000);
            black_box(churn(&mut q, &mut arena, N))
        });
    });

    g.bench_function("sfqcodel_churn_10k", |b| {
        b.iter(|| {
            let mut arena = PacketArena::new();
            let mut q = SfqCodel::new(1000, 64);
            black_box(churn(&mut q, &mut arena, N))
        });
    });

    g.finish();
}

criterion_group!(benches, bench_queues);
criterion_main!(benches);
