//! Criterion micro-benchmarks of the discrete-event simulator — the inner
//! loop of Remy's design procedure, so events/second directly bounds
//! training throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use netsim::prelude::*;
use std::hint::black_box;

fn dumbbell(n: usize, secs: u64) -> Scenario {
    Scenario::dumbbell(
        LinkSpec::constant(15.0),
        QueueSpec::DropTail { capacity: 1000 },
        n,
        Ns::from_millis(150),
        TrafficSpec::saturating(),
        Ns::from_secs(secs),
        7,
    )
}

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);

    g.bench_function("saturating_1flow_5s", |b| {
        let s = dumbbell(1, 5);
        b.iter(|| {
            let r = run_scenario(&s, &|_| Box::new(FixedWindow::new(100.0)));
            black_box(r.packets_forwarded)
        });
    });

    g.bench_function("saturating_8flows_5s", |b| {
        let s = dumbbell(8, 5);
        b.iter(|| {
            let r = run_scenario(&s, &|_| Box::new(FixedWindow::new(50.0)));
            black_box(r.packets_forwarded)
        });
    });

    g.bench_function("onoff_newreno_4flows_5s", |b| {
        let mut s = dumbbell(4, 5);
        s.senders
            .iter_mut()
            .for_each(|cfg| cfg.traffic = TrafficSpec::fig4());
        b.iter(|| {
            let r = run_scenario(&s, &|_| Box::new(congestion::NewReno::new()));
            black_box(r.packets_forwarded)
        });
    });

    g.bench_function("trace_link_5s", |b| {
        let schedule = traces::LteModel::verizon_like().generate(3, Ns::from_secs(30));
        let s = Scenario::dumbbell(
            LinkSpec::trace("lte", schedule),
            QueueSpec::DropTail { capacity: 1000 },
            2,
            Ns::from_millis(50),
            TrafficSpec::saturating(),
            Ns::from_secs(5),
            1,
        );
        b.iter(|| {
            let r = run_scenario(&s, &|_| Box::new(FixedWindow::new(100.0)));
            black_box(r.packets_forwarded)
        });
    });

    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
