//! Criterion micro-benchmarks of the routing layer: forwarding-table
//! recomputation on the fat-tree k=4 fabric (20 routers, 64 directed
//! links) — the cost every mid-run `LinkEvent` pays — with all links up
//! and with one core link down.

use criterion::{criterion_group, criterion_main, Criterion};
use netsim::graph::NetworkBuilder;
use netsim::link::LinkSpec;
use netsim::queue::QueueSpec;
use netsim::time::Ns;
use std::hint::black_box;

fn bench_topology(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology");
    let link = LinkSpec::constant(50.0);
    let queue = QueueSpec::DropTail { capacity: 64 };
    let net = NetworkBuilder::fat_tree_k4(&link, &queue, Ns::from_micros(100))
        .build()
        .expect("fat-tree builds");
    let graph = net.graph();

    let up = vec![false; graph.links.len()];
    g.bench_function("fattree_k4_forwarding_recompute", |b| {
        b.iter(|| black_box(graph.forwarding(black_box(&up))));
    });

    // One failed agg–core link: exactly what a scheduled failure
    // triggers mid-simulation.
    let mut one_down = up.clone();
    one_down[32] = true;
    g.bench_function("fattree_k4_forwarding_one_link_down", |b| {
        b.iter(|| black_box(graph.forwarding(black_box(&one_down))));
    });

    g.finish();
}

criterion_group!(benches, bench_topology);
criterion_main!(benches);
