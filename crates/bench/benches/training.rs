//! Criterion micro-benchmarks of the training hot path: scoring a batch
//! of hill-climb candidates over a fixed specimen set, exactly as one
//! iteration of the optimizer's improve step does.

use criterion::{criterion_group, criterion_main, Criterion};
use remy::prelude::*;
use std::hint::black_box;
use std::sync::Arc;

fn bench_training(c: &mut Criterion) {
    let mut g = c.benchmark_group("training");
    g.sample_size(5);

    let evaluator = Evaluator::new(
        NetworkModel::general(),
        Objective::proportional(1.0),
        EvalConfig {
            specimens: 2,
            sim_secs: 2.0,
        },
    );
    let specimens = evaluator.specimens(11);
    let base = Arc::new(WhiskerTree::single_rule());
    // A small slice of the real neighbourhood keeps one iteration ~tens
    // of milliseconds while exercising the same candidate machinery.
    let actions: Vec<Action> = Action::DEFAULT
        .neighbourhood()
        .into_iter()
        .take(8)
        .collect();

    g.bench_function("score_candidates_8x2", |b| {
        b.iter(|| {
            let tables: Vec<Arc<WhiskerTree>> = actions
                .iter()
                .map(|&a| {
                    let mut t = (*base).clone();
                    t.set_action(0, a);
                    Arc::new(t)
                })
                .collect();
            black_box(evaluator.score_candidates(&tables, &specimens))
        });
    });

    // The optimizer's actual hill-climb path: candidates as overlays of
    // the shared base table, no per-candidate clone.
    g.bench_function("score_overlays_8x2", |b| {
        b.iter(|| black_box(evaluator.score_overlays(&base, 0, &actions, &specimens)));
    });

    g.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
