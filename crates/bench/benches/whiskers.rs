//! Criterion micro-benchmarks of the whisker tree: lookups run on every
//! ACK at every sender, and tree clones gate candidate evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use remy::prelude::*;
use std::hint::black_box;

/// Build a tree with several levels of splits (~regions where real
/// training puts them: small EWMAs, rtt_ratio near 1–4).
fn deep_tree() -> WhiskerTree {
    let mut t = WhiskerTree::single_rule();
    let mut targets = vec![Memory {
        ack_ewma_ms: 10.0,
        send_ewma_ms: 10.0,
        rtt_ratio: 2.0,
    }];
    for depth in 0..4 {
        let mut next = Vec::new();
        for m in targets {
            let id = t.lookup(m).id;
            if t.split(id, m) {
                let step = 5.0 / (depth + 1) as f64;
                next.push(Memory {
                    ack_ewma_ms: m.ack_ewma_ms + step,
                    send_ewma_ms: (m.send_ewma_ms - step / 2.0).max(0.1),
                    rtt_ratio: (m.rtt_ratio - 0.3).max(0.1),
                });
            }
        }
        targets = next;
        if targets.is_empty() {
            break;
        }
    }
    t
}

fn bench_whiskers(c: &mut Criterion) {
    let mut g = c.benchmark_group("whiskers");
    let tree = deep_tree();
    let points: Vec<Memory> = (0..256)
        .map(|i| Memory {
            ack_ewma_ms: (i as f64 * 1.37) % 200.0,
            send_ewma_ms: (i as f64 * 0.91) % 150.0,
            rtt_ratio: 1.0 + (i as f64 * 0.11) % 8.0,
        })
        .collect();

    // The per-ACK hot path: RemyCc::on_ack resolves rules through the
    // flattened view.
    let flat = tree.flat();
    g.bench_function("lookup_256_points", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &p in &points {
                acc = acc.wrapping_add(flat.lookup(p).id);
            }
            black_box(acc)
        });
    });

    // The old boxed-octree walk, kept for comparison.
    g.bench_function("lookup_256_points_octree", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &p in &points {
                acc = acc.wrapping_add(tree.lookup(p).id);
            }
            black_box(acc)
        });
    });

    let (live_id, live_action) = {
        let w = tree.whiskers()[0];
        (w.id, w.action)
    };
    g.bench_function("flatten_tree", |b| {
        b.iter(|| {
            let mut t = tree.clone();
            // A no-op action write invalidates the cached view, so each
            // iteration measures a full rebuild.
            t.set_action(live_id, live_action);
            black_box(t.flat()).len()
        });
    });

    g.bench_function("clone_tree", |b| {
        b.iter(|| black_box(tree.clone()).len());
    });

    g.bench_function("neighbourhood_generation", |b| {
        let a = Action::DEFAULT;
        b.iter(|| black_box(a.neighbourhood()).len());
    });

    g.bench_function("json_round_trip", |b| {
        let json = tree.to_json();
        b.iter(|| WhiskerTree::from_json(black_box(&json)).unwrap().len());
    });

    g.finish();
}

criterion_group!(benches, bench_whiskers);
criterion_main!(benches);
