//! Ablation: robustness to stochastic (non-congestive) packet loss.
//!
//! §4.1 argues that because a RemyCC's memory contains no loss signal,
//! "avoiding packet loss as a congestion signal allows the protocol to
//! robustly handle stochastic (non-congestive) packet losses without
//! adversely reducing performance" — whereas loss-based TCP halves its
//! window on every random drop. This harness sweeps a random-loss rate on
//! the Fig. 4 dumbbell and reports each scheme's median throughput.
//!
//! Expected shape: NewReno/Cubic throughput collapses as loss grows;
//! RemyCC (whose recovery still retransmits, but whose window policy
//! ignores the losses) degrades far more slowly.

use bench::*;
use remy_sim::harness::{evaluate, Contender};
use remy_sim::prelude::*;

const LOSS_RATES: [f64; 5] = [0.0, 0.001, 0.005, 0.01, 0.03];

fn main() {
    let budget = Budget::from_env();
    let contenders = [
        Contender::remy("RemyCC d=0.1", remy::assets::delta01()),
        Contender::baseline(Scheme::NewReno),
        Contender::baseline(Scheme::Cubic),
    ];
    println!(
        "== Ablation — median per-sender tput (Mbps) vs stochastic loss, dumbbell n=8 ({} runs x {} s) ==",
        budget.runs, budget.sim_secs
    );
    print!("{:<16}", "scheme");
    for p in LOSS_RATES {
        print!(" {:>9}", format!("{:.1}%", p * 100.0));
    }
    println!();
    let mut rows = Vec::new();
    for c in &contenders {
        print!("{:<16}", c.label());
        let mut cells = Vec::new();
        for (i, &p) in LOSS_RATES.iter().enumerate() {
            let mut cfg = dumbbell_workload(8, budget, 77_000 + i as u64);
            // RemyCC and the loss-based schemes all run over DropTail in
            // this experiment; the wrapper injects the random loss.
            let out = {
                let scenarios: Vec<_> = (0..cfg.runs)
                    .map(|k| {
                        let mut s = cfg.scenario(
                            QueueSpec::LossyDropTail {
                                capacity: 1000,
                                drop_probability: p,
                                seed: 900 + k as u64,
                            },
                            k,
                        );
                        s.seed = cfg.seed + k as u64;
                        s
                    })
                    .collect();
                remy_sim::harness::evaluate_scenarios(c, &scenarios)
            };
            print!(" {:>9.3}", out.median_throughput_mbps);
            cells.push(format!("{}", out.median_throughput_mbps));
            cfg.seed += 1;
        }
        println!();
        rows.push(format!("{},{}", c.label(), cells.join(",")));
    }
    write_rows_csv(
        "ablation_loss",
        &format!(
            "scheme,{}",
            LOSS_RATES
                .iter()
                .map(|p| format!("loss_{p}"))
                .collect::<Vec<_>>()
                .join(",")
        ),
        &rows,
    );
    let _ = evaluate; // (suppress unused import when budgets shrink paths)
}
