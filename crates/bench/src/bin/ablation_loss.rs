//! Ablation: robustness to stochastic (non-congestive) packet loss.
//!
//! Compatibility wrapper: the experiment itself lives in the named
//! registry (`remy_sim::experiments`) and is equally drivable with
//! `remy-cli run ablation_loss`.

fn main() {
    bench::run_main("ablation_loss");
}
