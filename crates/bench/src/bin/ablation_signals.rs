//! Ablation: how much does each of the RemyCC's three congestion signals matter?
//!
//! Compatibility wrapper: the experiment itself lives in the named
//! registry (`remy_sim::experiments`) and is equally drivable with
//! `remy-cli run ablation_signals`.

fn main() {
    bench::run_main("ablation_signals");
}
