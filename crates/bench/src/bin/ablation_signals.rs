//! Ablation: how much does each of the RemyCC's three congestion signals
//! matter?
//!
//! §4.1 chose exactly three memory variables — ack_ewma, send_ewma, and
//! rtt_ratio — after "examining and discarding" alternatives. This
//! harness blinds a trained RemyCC to one signal at a time (the masked
//! axis reads 0 at lookup time) and measures the objective on the Fig. 4
//! dumbbell workload.
//!
//! Expected shape: masking signals the trained table actually splits on
//! costs throughput and/or delay; a signal the table never learned to use
//! costs nothing.

use bench::*;
use netsim::cc::CongestionControl;
use remy_sim::prelude::*;
use std::sync::Arc;

fn run_masked(mask: [bool; 3], budget: Budget) -> (f64, f64) {
    let table = remy::assets::delta1();
    let mut tput = Vec::new();
    let mut delay = Vec::new();
    for k in 0..budget.runs {
        let scenario = Scenario::dumbbell(
            LinkSpec::constant(15.0),
            QueueSpec::DropTail { capacity: 1000 },
            8,
            Ns::from_millis(150),
            TrafficSpec::fig4(),
            Ns::from_secs(budget.sim_secs),
            88_000 + k as u64,
        );
        let ccs: Vec<Box<dyn CongestionControl>> = (0..8)
            .map(|_| {
                Box::new(
                    RemyCc::new(Arc::clone(&table)).with_signal_mask(mask),
                ) as Box<dyn CongestionControl>
            })
            .collect();
        let r = Simulator::new(&scenario, ccs, None).run();
        for f in r.active_flows() {
            tput.push(f.throughput_mbps);
            delay.push(f.mean_queue_delay_ms);
        }
    }
    (netsim::stats::median(&tput), netsim::stats::median(&delay))
}

fn main() {
    let budget = Budget::from_env();
    let variants: [(&str, [bool; 3]); 5] = [
        ("all signals", [true, true, true]),
        ("no ack_ewma", [false, true, true]),
        ("no send_ewma", [true, false, true]),
        ("no rtt_ratio", [true, true, false]),
        ("blind", [false, false, false]),
    ];
    println!(
        "== Ablation — RemyCC d=1 memory signals, dumbbell n=8 ({} runs x {} s) ==",
        budget.runs, budget.sim_secs
    );
    println!("{:<14} {:>12} {:>12}", "variant", "tput Mbps", "qdelay ms");
    let mut rows = Vec::new();
    for (name, mask) in variants {
        let (t, d) = run_masked(mask, budget);
        println!("{name:<14} {t:>12.3} {d:>12.2}");
        rows.push(format!("{name},{t},{d}"));
    }
    write_rows_csv("ablation_signals", "variant,median_tput,median_qdelay", &rows);
}
