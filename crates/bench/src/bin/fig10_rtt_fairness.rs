//! Fig. 10: RTT unfairness on a shared bottleneck.
//!
//! Compatibility wrapper: the experiment itself lives in the named
//! registry (`remy_sim::experiments`) and is equally drivable with
//! `remy-cli run fig10`.

fn main() {
    bench::run_main("fig10");
}
