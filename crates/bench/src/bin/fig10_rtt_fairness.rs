//! Fig. 10: RTT unfairness on a shared bottleneck.
//!
//! Four senders with propagation RTTs of 50/100/150/200 ms share a
//! 10 Mbps link, sending empirical-length flows with 0.2 s mean off time.
//! The y-axis is each sender's *normalized throughput share*
//! (throughput ÷ the best sender's throughput). Paper finding: RemyCCs
//! are RTT-unfair, "but more modestly than Cubic-over-sfqCoDel".

use bench::*;
use remy_sim::harness::Contender;
use remy_sim::prelude::*;

const RTTS_MS: [u64; 4] = [50, 100, 150, 200];

/// Per-RTT mean throughput (and standard error) for one contender.
fn rtt_profile(c: &Contender, runs: usize, secs: u64, seed: u64) -> Vec<(f64, f64)> {
    let mut per_rtt: Vec<Vec<f64>> = vec![Vec::new(); RTTS_MS.len()];
    for k in 0..runs {
        let scenario = Scenario {
            link: LinkSpec::constant(10.0),
            queue: c.queue_spec(1000),
            senders: RTTS_MS
                .iter()
                .map(|&ms| SenderConfig {
                    rtt: Ns::from_millis(ms),
                    traffic: TrafficSpec {
                        on: OnSpec::empirical(),
                        off_mean: Ns::from_millis(200),
                        start_on: false,
                    },
                })
                .collect(),
            mss: 1500,
            duration: Ns::from_secs(secs),
            seed: seed + k as u64,
            record_deliveries: false,
        };
        let ccs = (0..RTTS_MS.len()).map(|_| c.build_cc()).collect();
        let router = c.router(&scenario.link, scenario.mss);
        let r = Simulator::new(&scenario, ccs, router).run();
        for (i, f) in r.flows.iter().enumerate() {
            if f.was_active() {
                per_rtt[i].push(f.throughput_mbps);
            }
        }
    }
    per_rtt
        .iter()
        .map(|v| (netsim::stats::mean(v), netsim::stats::std_err(v)))
        .collect()
}

fn main() {
    let budget = Budget::from_env();
    let contenders = [
        Contender::baseline(Scheme::CubicSfqCodel),
        Contender::remy("RemyCC d=0.1", remy::assets::delta01()),
        Contender::remy("RemyCC d=1", remy::assets::delta1()),
        Contender::remy("RemyCC d=10", remy::assets::delta10()),
    ];
    println!(
        "== Fig. 10 — normalized throughput share vs RTT ({} runs x {} s) ==",
        budget.runs, budget.sim_secs
    );
    println!(
        "{:<16} {:>14} {:>14} {:>14} {:>14}",
        "scheme", "50 ms", "100 ms", "150 ms", "200 ms"
    );
    let mut rows = Vec::new();
    for c in &contenders {
        let prof = rtt_profile(c, budget.runs, budget.sim_secs, 10_101);
        let best = prof
            .iter()
            .map(|&(m, _)| m)
            .fold(f64::MIN, f64::max)
            .max(1e-9);
        let cells: Vec<String> = prof
            .iter()
            .map(|&(m, se)| format!("{:.3}±{:.3}", m / best, se / best))
            .collect();
        println!(
            "{:<16} {:>14} {:>14} {:>14} {:>14}",
            c.label(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
        rows.push(format!(
            "{},{}",
            c.label(),
            prof.iter()
                .map(|&(m, se)| format!("{},{}", m / best, se / best))
                .collect::<Vec<_>>()
                .join(",")
        ));
        // Unfairness summary: share of the slowest (200 ms) flow.
        let worst_share = prof[3].0 / best;
        println!("  -> 200 ms flow keeps {worst_share:.2} of the best share");
    }
    write_rows_csv(
        "fig10_rtt_fairness",
        "scheme,share50,se50,share100,se100,share150,se150,share200,se200",
        &rows,
    );
}
