//! Fig. 11: how helpful is prior knowledge about the network?
//!
//! Compatibility wrapper: the experiment itself lives in the named
//! registry (`remy_sim::experiments`) and is equally drivable with
//! `remy-cli run fig11`.

fn main() {
    bench::run_main("fig11");
}
