//! Fig. 11: how helpful is prior knowledge about the network?
//!
//! Two RemyCCs — "1×" (link speed known exactly: 15 Mbps) and "10×"
//! (designed for 4.7–47 Mbps) — and Cubic-over-sfqCoDel run over links
//! whose true speed sweeps across and beyond the design ranges, n = 2,
//! RTT 150 ms. The metric is the paper's y-axis:
//! `log(normalized throughput) − log(delay)` per sender, where normalized
//! throughput is the sender's share of its fair rate (link/2) and delay
//! is the average RTT divided by the minimum possible (150 ms).
//!
//! Paper finding: the 1× RemyCC is best exactly at 15 Mbps but falls off
//! fast; the 10× RemyCC beats Cubic/sfqCoDel across its whole shaded
//! design range; both deteriorate once assumptions are violated.

use bench::*;
use remy_sim::harness::Contender;
use remy_sim::prelude::*;

const SPEEDS: [f64; 9] = [2.5, 4.7, 7.0, 10.0, 15.0, 22.0, 33.0, 47.0, 70.0];

fn score(c: &Contender, mbps: f64, budget: Budget, seed: u64) -> f64 {
    let cfg = Workload {
        link: LinkSpec::constant(mbps),
        queue_capacity: 1000,
        n_senders: 2,
        rtt: Ns::from_millis(150),
        traffic: TrafficSpec::design_default(),
        duration: Ns::from_secs(budget.sim_secs),
        runs: budget.runs,
        seed,
    };
    let o = remy_sim::harness::evaluate(c, &cfg);
    // Per-sender mean of log(norm tput) − log(norm delay).
    let fair = mbps / 2.0;
    let mut total = 0.0;
    let mut count = 0;
    for (t, r) in o.throughput_samples.iter().zip(&o.rtt_samples) {
        total += (t / fair).max(1e-6).ln() - (r / 150.0).max(1e-6).ln();
        count += 1;
    }
    total / count.max(1) as f64
}

fn main() {
    let budget = Budget::from_env();
    let contenders = [
        Contender::remy("RemyCC 1x", remy::assets::onex()),
        Contender::remy("RemyCC 10x", remy::assets::tenx()),
        Contender::baseline(Scheme::CubicSfqCodel),
    ];
    println!(
        "== Fig. 11 — log(norm tput) − log(norm delay) vs link speed ({} runs x {} s) ==",
        budget.runs, budget.sim_secs
    );
    print!("{:<16}", "scheme");
    for s in SPEEDS {
        print!(" {s:>7}");
    }
    println!("  (Mbps; 10x design range is 4.7–47)");
    let mut rows = Vec::new();
    for c in &contenders {
        print!("{:<16}", c.label());
        let mut cells = Vec::new();
        for (i, &mbps) in SPEEDS.iter().enumerate() {
            let v = score(c, mbps, budget, 11_000 + i as u64 * 17);
            print!(" {v:>7.2}");
            cells.push(format!("{v}"));
        }
        println!();
        rows.push(format!("{},{}", c.label(), cells.join(",")));
    }
    write_rows_csv(
        "fig11_prior",
        &format!(
            "scheme,{}",
            SPEEDS
                .iter()
                .map(|s| format!("mbps_{s}"))
                .collect::<Vec<_>>()
                .join(",")
        ),
        &rows,
    );
}
