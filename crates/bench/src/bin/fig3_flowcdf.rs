//! Fig. 3: the empirical flow-length distribution vs the shifted-Pareto fit.
//!
//! Compatibility wrapper: the experiment itself lives in the named
//! registry (`remy_sim::experiments`) and is equally drivable with
//! `remy-cli run fig3`.

fn main() {
    bench::run_main("fig3");
}
