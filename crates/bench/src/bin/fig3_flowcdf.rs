//! Fig. 3: the empirical flow-length distribution.
//!
//! The paper fits the ICSI trace's flow-length CDF to a shifted Pareto —
//! "Pareto(x+40) [Xm = 147, alpha = 0.5]" — implying the distribution has
//! no finite mean. This harness samples our generator and prints the CDF
//! alongside the closed form, plus the tail exponent check.

use bench::*;
use netsim::rng::SimRng;
use netsim::traffic::{empirical_flow_bytes, PARETO_ALPHA, PARETO_SHIFT, PARETO_XM};

fn main() {
    let n: usize = remy_sim::harness::runs_from_env(200_000);
    let mut rng = SimRng::new(333);
    // Draw raw (pre-16 kB-load) lengths to compare with the paper's fit.
    let mut raw: Vec<f64> = (0..n)
        .map(|_| (rng.pareto(PARETO_XM, PARETO_ALPHA) - PARETO_SHIFT).max(1.0))
        .collect();
    raw.sort_by(|a, b| a.partial_cmp(b).unwrap());

    println!("== Fig. 3 — flow length CDF vs Pareto(Xm=147, alpha=0.5) fit ==");
    println!("{:>12} {:>12} {:>12}", "bytes", "empirical", "closed form");
    let mut rows = Vec::new();
    for exp in 0..=7 {
        for mant in [1.0, 3.0] {
            let x = mant * 10f64.powi(exp);
            if !(100.0..=1e7).contains(&x) {
                continue;
            }
            let idx = raw.partition_point(|&v| v <= x);
            let emp = idx as f64 / raw.len() as f64;
            // CDF of the shifted Pareto: P(X ≤ x) = 1 − (Xm/(x+40))^α.
            let cf = if x + PARETO_SHIFT < PARETO_XM {
                0.0
            } else {
                1.0 - (PARETO_XM / (x + PARETO_SHIFT)).powf(PARETO_ALPHA)
            };
            println!("{x:>12.0} {emp:>12.4} {cf:>12.4}");
            rows.push(format!("{x},{emp},{cf}"));
        }
    }
    write_rows_csv("fig3_flowcdf", "bytes,empirical_cdf,closed_form_cdf", &rows);

    // Sanity: with the evaluation's +16 kB loading term, flows are at
    // least 16 kB.
    let min_loaded = (0..1000)
        .map(|_| empirical_flow_bytes(&mut rng, u64::MAX))
        .min()
        .unwrap();
    println!("\nminimum loaded flow (with +16 kB term): {min_loaded} bytes");
    println!("paper: distribution \"suggest[s] that the underlying distribution does not have finite mean\"");
}
