//! Fig. 4: throughput–delay for every scheme on the classic dumbbell.
//!
//! Compatibility wrapper: the experiment itself lives in the named
//! registry (`remy_sim::experiments`) and is equally drivable with
//! `remy-cli run fig4`.

fn main() {
    bench::run_main("fig4");
}
