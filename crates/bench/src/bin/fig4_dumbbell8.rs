//! Fig. 4: throughput–delay for every scheme on the classic dumbbell.
//!
//! 15 Mbps bottleneck, 150 ms RTT, n = 8 senders, each alternating
//! between exponentially-distributed 100 kB flows and exponentially-
//! distributed 0.5 s off times. Paper finding: the three RemyCCs define
//! the efficient frontier, tracing the throughput/delay compromise as δ
//! varies; Cubic is the most throughput-hungry/bloated human scheme,
//! Vegas the most delay-conscious.

use bench::*;

fn main() {
    let budget = Budget::from_env();
    let cfg = dumbbell_workload(8, budget, 4001);
    let outcomes: Vec<_> = standard_contenders()
        .iter()
        .map(|c| remy_sim::harness::evaluate(c, &cfg))
        .collect();
    print_outcomes(
        &format!(
            "Fig. 4 — dumbbell 15 Mbps, RTT 150 ms, n=8 ({} runs x {} s)",
            budget.runs, budget.sim_secs
        ),
        &outcomes,
    );
    write_outcomes_csv("fig4_dumbbell8", &outcomes);
}
