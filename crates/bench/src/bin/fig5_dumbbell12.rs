//! Fig. 5: the dumbbell with n = 12 senders and heavy-tailed flows.
//!
//! Compatibility wrapper: the experiment itself lives in the named
//! registry (`remy_sim::experiments`) and is equally drivable with
//! `remy-cli run fig5`.

fn main() {
    bench::run_main("fig5");
}
