//! Fig. 5: the dumbbell with n = 12 senders and heavy-tailed flows.
//!
//! Flow lengths are drawn from the empirical ICSI distribution of Fig. 3
//! (shifted Pareto + 16 kB), off times exponential with mean 0.2 s.
//! Paper finding: the RemyCCs again mark the efficient frontier, with
//! larger variance than Fig. 4 because of the heavy-tailed sending
//! distribution (the paper plots ½-σ ellipses here).

use bench::*;
use remy_sim::prelude::*;

fn main() {
    let budget = Budget::from_env();
    let mut cfg = dumbbell_workload(12, budget, 5001);
    cfg.traffic = TrafficSpec {
        on: OnSpec::empirical(),
        off_mean: Ns::from_millis(200),
        start_on: false,
    };
    let outcomes: Vec<_> = standard_contenders()
        .iter()
        .map(|c| remy_sim::harness::evaluate(c, &cfg))
        .collect();
    print_outcomes(
        &format!(
            "Fig. 5 — dumbbell 15 Mbps, n=12, ICSI flow lengths ({} runs x {} s)",
            budget.runs, budget.sim_secs
        ),
        &outcomes,
    );
    write_outcomes_csv("fig5_dumbbell12", &outcomes);
}
