//! Fig. 6: sequence plot of a RemyCC flow reacting to departing cross
//! traffic.
//!
//! Two RemyCC flows share a 15 Mbps / 150 ms dumbbell. Flow 1 stops
//! mid-run; the paper's finding is that flow 0 "responds quickly to the
//! departure of a competing flow by doubling its sending rate" — about
//! one RTT after the departure. This harness prints the delivered-
//! sequence-vs-time series and measures the rate step.

use bench::*;
use remy_sim::prelude::*;
use std::sync::Arc;

fn main() {
    let budget = Budget::from_env();
    let secs = budget.sim_secs.max(20);
    let depart_at = Ns::from_secs(secs / 2);
    let table = remy::assets::delta1();

    // Flow 0: saturating for the whole run. Flow 1: on exactly until the
    // departure instant (a timed on-period of fixed length).
    let scenario = Scenario {
        link: LinkSpec::constant(15.0),
        queue: QueueSpec::DropTail { capacity: 1000 },
        senders: vec![
            SenderConfig {
                rtt: Ns::from_millis(150),
                traffic: TrafficSpec::saturating(),
            },
            SenderConfig {
                rtt: Ns::from_millis(150),
                traffic: TrafficSpec::saturating(),
            },
        ],
        mss: 1500,
        duration: Ns::from_secs(secs),
        seed: 6,
        record_deliveries: true,
    };
    // Flow 1 is on for exactly the first half of the run, then leaves.
    let mut scenario = scenario;
    scenario.senders[1].traffic = TrafficSpec {
        on: OnSpec::ByTimeFixed { duration: depart_at },
        off_mean: Ns::from_secs(10_000), // never comes back
        start_on: true,
    };

    let ccs: Vec<Box<dyn netsim::cc::CongestionControl>> = vec![
        Box::new(RemyCc::new(Arc::clone(&table)).with_name("RemyCC-0")),
        Box::new(RemyCc::new(Arc::clone(&table)).with_name("RemyCC-1")),
    ];
    let results = Simulator::new(&scenario, ccs, None).run();

    // Flow 1's actual departure is random (exponential with mean
    // depart_at); find the instant its deliveries stop.
    let flow1_last = results
        .deliveries
        .iter()
        .filter(|d| d.flow == 1)
        .map(|d| d.at)
        .max()
        .unwrap_or(Ns::ZERO);

    // Delivered-sequence series for flow 0, sampled every 250 ms.
    println!("== Fig. 6 — sequence plot data (flow 0), competitor departs ~{flow1_last} ==");
    println!("{:>8} {:>10}", "t (s)", "seq");
    let mut rows = Vec::new();
    let step = Ns::from_millis(250);
    let mut t = Ns::ZERO;
    let mut idx = 0;
    let flow0: Vec<_> = results.deliveries.iter().filter(|d| d.flow == 0).collect();
    while t <= scenario.duration {
        while idx < flow0.len() && flow0[idx].at <= t {
            idx += 1;
        }
        let seq = if idx == 0 { 0 } else { flow0[idx - 1].seq };
        println!("{:>8.2} {:>10}", t.as_secs_f64(), seq);
        rows.push(format!("{},{}", t.as_secs_f64(), seq));
        t += step;
    }
    write_rows_csv("fig6_dynamics", "t_secs,delivered_seq", &rows);

    // Rate before vs. after the departure (1.5 s windows, skipping one
    // RTT of reaction time).
    let rate_in = |from: Ns, to: Ns| {
        flow0.iter().filter(|d| d.at >= from && d.at < to).count() as f64
            / (to - from).as_secs_f64()
    };
    let win = Ns::from_millis(1500);
    let before = rate_in(flow1_last.saturating_sub(win), flow1_last);
    let react = flow1_last + Ns::from_millis(300); // two RTTs
    let after = rate_in(react, react + win);
    println!(
        "\nflow 0 delivery rate: {before:.0} pkt/s before departure, {after:.0} pkt/s after"
    );
    println!("ratio: {:.2}x (paper: ~2x within about one RTT)", after / before.max(1.0));
}
