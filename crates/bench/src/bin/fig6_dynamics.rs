//! Fig. 6: sequence plot of a RemyCC flow reacting to departing cross traffic.
//!
//! Compatibility wrapper: the experiment itself lives in the named
//! registry (`remy_sim::experiments`) and is equally drivable with
//! `remy-cli run fig6`.

fn main() {
    bench::run_main("fig6");
}
