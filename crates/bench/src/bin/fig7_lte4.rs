//! Fig. 7: Verizon-like LTE downlink, n = 4.
//!
//! The cellular link's rate varies over ~0–50 Mbps — far outside the
//! RemyCC design range. Paper finding: the RemyCCs still define the
//! efficient frontier at this degree of multiplexing.

use bench::*;

fn main() {
    let budget = Budget::from_env();
    let cfg = cellular_workload(traces::verizon_schedule(), "verizon-like", 4, budget, 7001);
    let outcomes: Vec<_> = standard_contenders()
        .iter()
        .map(|c| remy_sim::harness::evaluate(c, &cfg))
        .collect();
    print_outcomes(
        &format!(
            "Fig. 7 — Verizon-like LTE, n=4 ({} runs x {} s)",
            budget.runs, budget.sim_secs
        ),
        &outcomes,
    );
    write_outcomes_csv("fig7_lte4", &outcomes);
}
