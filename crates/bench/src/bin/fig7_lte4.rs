//! Fig. 7: Verizon-like LTE downlink, n = 4.
//!
//! Compatibility wrapper: the experiment itself lives in the named
//! registry (`remy_sim::experiments`) and is equally drivable with
//! `remy-cli run fig7`.

fn main() {
    bench::run_main("fig7");
}
