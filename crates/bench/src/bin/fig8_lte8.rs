//! Fig. 8: Verizon-like LTE downlink, n = 8.
//!
//! Compatibility wrapper: the experiment itself lives in the named
//! registry (`remy_sim::experiments`) and is equally drivable with
//! `remy-cli run fig8`.

fn main() {
    bench::run_main("fig8");
}
