//! Fig. 8: Verizon-like LTE downlink, n = 8.
//!
//! Paper finding: "as the degree of multiplexing increases, the schemes
//! move closer together in performance and router-assisted schemes begin
//! to perform better"; two of the three RemyCCs remain on the frontier.

use bench::*;

fn main() {
    let budget = Budget::from_env();
    let cfg = cellular_workload(traces::verizon_schedule(), "verizon-like", 8, budget, 8001);
    let outcomes: Vec<_> = standard_contenders()
        .iter()
        .map(|c| remy_sim::harness::evaluate(c, &cfg))
        .collect();
    print_outcomes(
        &format!(
            "Fig. 8 — Verizon-like LTE, n=8 ({} runs x {} s)",
            budget.runs, budget.sim_secs
        ),
        &outcomes,
    );
    write_outcomes_csv("fig8_lte8", &outcomes);
}
