//! Fig. 9: AT&T-like LTE downlink, n = 4.
//!
//! Compatibility wrapper: the experiment itself lives in the named
//! registry (`remy_sim::experiments`) and is equally drivable with
//! `remy-cli run fig9`.

fn main() {
    bench::run_main("fig9");
}
