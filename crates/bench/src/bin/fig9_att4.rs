//! Fig. 9: AT&T-like LTE downlink, n = 4.
//!
//! A slower, dippier cellular trace than Fig. 7's. Paper finding: two of
//! the RemyCCs sit on the efficient frontier.

use bench::*;

fn main() {
    let budget = Budget::from_env();
    let cfg = cellular_workload(traces::att_schedule(), "att-like", 4, budget, 9001);
    let outcomes: Vec<_> = standard_contenders()
        .iter()
        .map(|c| remy_sim::harness::evaluate(c, &cfg))
        .collect();
    print_outcomes(
        &format!(
            "Fig. 9 — AT&T-like LTE, n=4 ({} runs x {} s)",
            budget.runs, budget.sim_secs
        ),
        &outcomes,
    );
    write_outcomes_csv("fig9_att4", &outcomes);
}
