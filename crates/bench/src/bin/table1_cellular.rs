//! §1 headline table (cellular): RemyCC speedups on the Verizon-like LTE downlink.
//!
//! Compatibility wrapper: the experiment itself lives in the named
//! registry (`remy_sim::experiments`) and is equally drivable with
//! `remy-cli run table1_cellular`.

fn main() {
    bench::run_main("table1_cellular");
}
