//! §1 headline table (cellular): median speedup and delay reduction of
//! RemyCC (δ = 0.1) over each scheme on the Verizon-like LTE downlink
//! with four contending senders.
//!
//! Paper values: Compound 1.3×/1.3×, NewReno 1.5×/1.2×, Cubic 1.2×/1.7×,
//! Vegas 2.2×/0.44× (Vegas has *lower* delay), Cubic/sfqCoDel 1.3×/1.3×,
//! XCP 1.7×/0.78×.

use bench::*;

fn main() {
    let budget = Budget::from_env();
    let cfg = cellular_workload(traces::verizon_schedule(), "verizon-like", 4, budget, 4242);
    let contenders = standard_contenders();
    let outcomes: Vec<_> = contenders
        .iter()
        .map(|c| remy_sim::harness::evaluate(c, &cfg))
        .collect();
    let reference = outcomes
        .iter()
        .find(|o| o.label == "RemyCC d=0.1")
        .expect("RemyCC d=0.1 present")
        .clone();
    print_outcomes(
        &format!(
            "Table §1-b — Verizon-like LTE, n=4 ({} runs x {} s)",
            budget.runs, budget.sim_secs
        ),
        &outcomes,
    );
    let baselines: Vec<_> = outcomes
        .iter()
        .filter(|o| !o.label.starts_with("RemyCC"))
        .cloned()
        .collect();
    print_speedup_table(&reference, &baselines);
    write_outcomes_csv("table1_cellular", &outcomes);
}
