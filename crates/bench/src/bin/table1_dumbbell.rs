//! §1 headline table (dumbbell): RemyCC speedups over each human-designed scheme.
//!
//! Compatibility wrapper: the experiment itself lives in the named
//! registry (`remy_sim::experiments`) and is equally drivable with
//! `remy-cli run table1_dumbbell`.

fn main() {
    bench::run_main("table1_dumbbell");
}
