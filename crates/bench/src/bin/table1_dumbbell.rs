//! §1 headline table (dumbbell): median speedup and median queueing-delay
//! reduction of the throughput-leaning RemyCC (δ = 0.1) over each
//! human-designed scheme, on the 15 Mbps / 150 ms / n = 8 dumbbell.
//!
//! Paper values: Compound 2.1×/2.7×, NewReno 2.6×/2.2×, Cubic 1.7×/3.4×,
//! Vegas 3.1×/1.2×, Cubic/sfqCoDel 1.4×/7.8×, XCP 1.4×/4.3×.

use bench::*;

fn main() {
    let budget = Budget::from_env();
    let cfg = dumbbell_workload(8, budget, 4001);
    let contenders = standard_contenders();
    let outcomes: Vec<_> = contenders
        .iter()
        .map(|c| remy_sim::harness::evaluate(c, &cfg))
        .collect();
    let reference = outcomes
        .iter()
        .find(|o| o.label == "RemyCC d=0.1")
        .expect("RemyCC d=0.1 present")
        .clone();
    print_outcomes(
        &format!(
            "Table §1-a — dumbbell 15 Mbps, RTT 150 ms, n=8 ({} runs x {} s)",
            budget.runs, budget.sim_secs
        ),
        &outcomes,
    );
    let baselines: Vec<_> = outcomes
        .iter()
        .filter(|o| !o.label.starts_with("RemyCC"))
        .cloned()
        .collect();
    print_speedup_table(&reference, &baselines);
    write_outcomes_csv("table1_dumbbell", &outcomes);
}
