//! §5.6 tables: incremental deployment — RemyCC vs Compound/Cubic head-to-head.
//!
//! Compatibility wrapper: the experiment itself lives in the named
//! registry (`remy_sim::experiments`) and is equally drivable with
//! `remy-cli run table_competing`.

fn main() {
    bench::run_main("table_competing");
}
