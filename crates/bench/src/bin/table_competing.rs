//! §5.6 tables: incremental deployment — one RemyCC flow vs. one
//! Compound or Cubic flow on a 15 Mbps DropTail bottleneck, RTT 150 ms.
//!
//! Paper values (RemyCC vs Compound, empirical flows, mean off time
//! 200/100/10 ms): 2.12/1.79, 2.18/2.75, 2.28/3.9 Mbps. (RemyCC vs
//! Cubic, 100 kB / 1 MB flows, 0.5 s off): 2.04/1.31, 2.09/1.28 Mbps.
//! Shape: RemyCC wins at low duty cycle, buffer-fillers at high.

use bench::*;
use remy_sim::prelude::*;
use std::sync::Arc;

struct Cell {
    remy_mean: f64,
    remy_sd: f64,
    rival_mean: f64,
    rival_sd: f64,
}

fn head_to_head(rival: Scheme, traffic: TrafficSpec, runs: usize, secs: u64, seed: u64) -> Cell {
    let table = remy::assets::coexist();
    let mut remy_t = Vec::new();
    let mut rival_t = Vec::new();
    for k in 0..runs {
        let scenario = Scenario {
            link: LinkSpec::constant(15.0),
            queue: QueueSpec::DropTail { capacity: 1000 },
            senders: vec![
                SenderConfig {
                    rtt: Ns::from_millis(150),
                    traffic: traffic.clone(),
                },
                SenderConfig {
                    rtt: Ns::from_millis(150),
                    traffic: traffic.clone(),
                },
            ],
            mss: 1500,
            duration: Ns::from_secs(secs),
            seed: seed + k as u64,
            record_deliveries: false,
        };
        let ccs: Vec<Box<dyn netsim::cc::CongestionControl>> = vec![
            Box::new(RemyCc::new(Arc::clone(&table)).with_name("RemyCC")),
            rival.build_cc(),
        ];
        let r = Simulator::new(&scenario, ccs, None).run();
        if r.flows[0].was_active() {
            remy_t.push(r.flows[0].throughput_mbps);
        }
        if r.flows[1].was_active() {
            rival_t.push(r.flows[1].throughput_mbps);
        }
    }
    Cell {
        remy_mean: netsim::stats::mean(&remy_t),
        remy_sd: netsim::stats::std_dev(&remy_t),
        rival_mean: netsim::stats::mean(&rival_t),
        rival_sd: netsim::stats::std_dev(&rival_t),
    }
}

fn main() {
    let budget = Budget::from_env();
    let runs = budget.runs;
    let secs = budget.sim_secs.max(30);
    let mut rows = Vec::new();

    println!(
        "== §5.6-a — RemyCC vs Compound, empirical flows, off-time sweep ({runs} runs x {secs} s) =="
    );
    println!(
        "{:>12} {:>20} {:>20}",
        "off time", "RemyCC tput (sd)", "Compound tput (sd)"
    );
    for off_ms in [200u64, 100, 10] {
        let c = head_to_head(
            Scheme::Compound,
            TrafficSpec {
                on: OnSpec::empirical(),
                off_mean: Ns::from_millis(off_ms),
                start_on: false,
            },
            runs,
            secs,
            56_100 + off_ms,
        );
        println!(
            "{:>9} ms {:>13.2} ({:.2}) {:>13.2} ({:.2})",
            off_ms, c.remy_mean, c.remy_sd, c.rival_mean, c.rival_sd
        );
        rows.push(format!(
            "compound,{off_ms},{},{},{},{}",
            c.remy_mean, c.remy_sd, c.rival_mean, c.rival_sd
        ));
    }

    println!(
        "\n== §5.6-b — RemyCC vs Cubic, exponential flows, size sweep ({runs} runs x {secs} s) =="
    );
    println!(
        "{:>12} {:>20} {:>20}",
        "mean size", "RemyCC tput (sd)", "Cubic tput (sd)"
    );
    for mean_kb in [100u64, 1000] {
        let c = head_to_head(
            Scheme::Cubic,
            TrafficSpec {
                on: OnSpec::ByBytes {
                    mean_bytes: mean_kb as f64 * 1000.0,
                },
                off_mean: Ns::from_millis(500),
                start_on: false,
            },
            runs,
            secs,
            56_200 + mean_kb,
        );
        println!(
            "{:>9} kB {:>13.2} ({:.2}) {:>13.2} ({:.2})",
            mean_kb, c.remy_mean, c.remy_sd, c.rival_mean, c.rival_sd
        );
        rows.push(format!(
            "cubic,{mean_kb},{},{},{},{}",
            c.remy_mean, c.remy_sd, c.rival_mean, c.rival_sd
        ));
    }
    write_rows_csv(
        "table_competing",
        "rival,param,remy_mean,remy_sd,rival_mean,rival_sd",
        &rows,
    );
}
