//! §5.5 table: DCTCP (ECN/RED gateway) vs a RemyCC over plain DropTail.
//!
//! Compatibility wrapper: the experiment itself lives in the named
//! registry (`remy_sim::experiments`) and is equally drivable with
//! `remy-cli run table_datacenter`.

fn main() {
    bench::run_main("table_datacenter");
}
