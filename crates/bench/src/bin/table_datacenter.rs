//! §5.5 table: DCTCP (ECN/RED gateway) vs. a RemyCC designed for
//! `−1/throughput` running over plain DropTail, on a datacenter fabric.
//!
//! Paper values (10 Gbps, RTT 4 ms, n = 64, exp(20 MB) transfers,
//! exp(0.1 s) off): DCTCP 179/144 Mbps mean/median tput, 7.5/6.4 ms RTT;
//! RemyCC 175/158 Mbps, 34/39 ms RTT — comparable throughput at lower
//! variance, higher latency (no AQM).
//!
//! DESIGN.md documents the default 500 Mbps scaling (same queue-vs-BDP
//! geometry); `REMY_DC_MBPS=10000` runs at paper scale.

use bench::*;
use remy_sim::harness::Contender;
use remy_sim::prelude::*;

fn main() {
    let budget = Budget::from_env().scaled(2, 2);
    let mbps: f64 = std::env::var("REMY_DC_MBPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500.0);
    let scale = mbps / 10_000.0;
    let n = 32;
    let cfg = Workload {
        link: LinkSpec::constant(mbps),
        queue_capacity: 1000,
        n_senders: n,
        rtt: Ns::from_millis(4),
        traffic: TrafficSpec {
            on: OnSpec::ByBytes {
                mean_bytes: 20e6 * scale,
            },
            off_mean: Ns::from_millis(100),
            start_on: false,
        },
        duration: Ns::from_secs(budget.sim_secs),
        runs: budget.runs,
        seed: 5500,
    };
    let k = ((65.0 * scale).round() as usize).max(4);
    let contenders = [
        Contender::baseline(Scheme::Dctcp { mark_threshold: k }),
        Contender::remy("RemyCC (DropTail)", remy::assets::datacenter()),
    ];
    println!(
        "== §5.5 — datacenter, {mbps} Mbps, RTT 4 ms, n={n}, exp({:.1} MB) transfers ({} runs x {} s) ==",
        20.0 * scale,
        budget.runs,
        budget.sim_secs
    );
    println!(
        "{:<20} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "scheme", "tput mean", "tput median", "tput sd", "rtt mean", "rtt med"
    );
    let mut rows = Vec::new();
    for c in &contenders {
        let o = remy_sim::harness::evaluate(c, &cfg);
        let mean_t = netsim::stats::mean(&o.throughput_samples);
        let sd_t = netsim::stats::std_dev(&o.throughput_samples);
        let mean_r = netsim::stats::mean(&o.rtt_samples);
        println!(
            "{:<20} {:>9.1} M {:>9.1} M {:>10.1} {:>8.2}ms {:>8.2}ms",
            o.label, mean_t, o.median_throughput_mbps, sd_t, mean_r, o.median_rtt_ms
        );
        rows.push(format!(
            "{},{},{},{},{},{}",
            o.label, mean_t, o.median_throughput_mbps, sd_t, mean_r, o.median_rtt_ms
        ));
    }
    write_rows_csv(
        "table_datacenter",
        "scheme,tput_mean_mbps,tput_median_mbps,tput_sd,rtt_mean_ms,rtt_median_ms",
        &rows,
    );
    println!("\npaper shape: comparable throughput, RemyCC lower variance, higher RTT.");
}
