//! Shared plumbing for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation (§1, §5). Since the declarative-experiment redesign
//! each binary is a 3-line wrapper over the named registry in
//! [`remy_sim::experiments`] — `remy-cli run <name>` drives the same code,
//! so both entry points emit byte-identical reports and CSVs (written
//! under `target/experiments/`). Budgets scale with two environment
//! variables:
//!
//! * `REMY_RUNS` — independent seeded runs per scheme (paper: ≥128);
//! * `REMY_SIM_SECS` — simulated seconds per run (paper: 100).
//!
//! Defaults are chosen so the full suite completes in minutes on one core;
//! EXPERIMENTS.md records the settings used for the checked-in numbers.
//!
//! This crate re-exports the helpers that used to live here so the
//! criterion benches and any out-of-tree users keep compiling.

pub use remy_sim::experiments::{
    cellular_workload, dumbbell_workload, remy_contender_specs, remy_contenders, run_main,
    standard_contender_specs, standard_contenders,
};
pub use remy_sim::report::{
    experiments_dir, print_outcomes, print_speedup_table, write_outcomes_csv, write_rows_csv,
};
pub use remy_sim::spec::{Budget, DEFAULT_RUNS, DEFAULT_SIM_SECS};

#[cfg(test)]
mod tests {
    use super::*;
    use remy_sim::experiments;
    use remy_sim::spec::ContenderSpec;

    #[test]
    fn budgets_resolve_and_scale() {
        let b = Budget {
            runs: 16,
            sim_secs: 30,
        };
        let s = b.scaled(4, 3);
        assert_eq!(s.runs, 4);
        assert_eq!(s.sim_secs, 10);
        // Floors hold.
        let tiny = b.scaled(100, 100);
        assert_eq!(tiny.runs, 2);
        assert_eq!(tiny.sim_secs, 3);
    }

    #[test]
    fn contender_lineups() {
        assert_eq!(remy_contenders().len(), 3);
        let all = standard_contenders();
        assert_eq!(all.len(), 9);
        let labels: Vec<String> = all.iter().map(|c| c.label()).collect();
        assert!(labels.iter().any(|l| l.contains("Cubic/sfqCoDel")));
        assert!(labels.iter().any(|l| l.contains("RemyCC")));
    }

    #[test]
    fn every_binary_name_is_registered() {
        // Each src/bin wrapper passes its registry name to run_main; keep
        // the two lists in sync.
        for name in [
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "table1_dumbbell",
            "table1_cellular",
            "table_competing",
            "table_datacenter",
            "ablation_signals",
            "ablation_loss",
        ] {
            assert!(
                experiments::by_name(name).is_some(),
                "binary name '{name}' missing from the registry"
            );
        }
    }

    #[test]
    fn workload_builders() {
        let w = dumbbell_workload(8);
        assert_eq!(w.n(), 8);
        let c = cellular_workload("verizon-like", 4);
        assert_eq!(c.n(), 4);
        assert!(ContenderSpec::new("remy:delta1").build().is_ok());
    }
}
