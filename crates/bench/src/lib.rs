//! Shared plumbing for the figure/table reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation (§1, §5): it builds the paper's workload, runs each
//! scheme through `remy_sim::harness`, prints the same rows/series the
//! paper reports, and writes a CSV under `target/experiments/` for
//! plotting. Budgets scale with two environment variables:
//!
//! * `REMY_RUNS` — independent seeded runs per scheme (paper: ≥128);
//! * `REMY_SIM_SECS` — simulated seconds per run (paper: 100).
//!
//! Defaults are chosen so the full suite completes in minutes on one core;
//! EXPERIMENTS.md records the settings used for the checked-in numbers.

use remy_sim::harness::{Contender, Outcome};
use remy_sim::prelude::*;
use std::io::Write as _;
use std::path::PathBuf;

/// Default per-scheme run count (`REMY_RUNS` overrides).
pub const DEFAULT_RUNS: usize = 16;
/// Default simulated seconds per run (`REMY_SIM_SECS` overrides).
pub const DEFAULT_SIM_SECS: u64 = 30;

/// Experiment budget resolved from the environment.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Runs per scheme.
    pub runs: usize,
    /// Simulated seconds per run.
    pub sim_secs: u64,
}

impl Budget {
    /// Resolve from `REMY_RUNS` / `REMY_SIM_SECS`.
    pub fn from_env() -> Budget {
        Budget {
            runs: remy_sim::harness::runs_from_env(DEFAULT_RUNS),
            sim_secs: remy_sim::harness::sim_secs_from_env(DEFAULT_SIM_SECS),
        }
    }

    /// Scale down (used by heavyweight experiments like the datacenter).
    pub fn scaled(self, runs_div: usize, secs_div: u64) -> Budget {
        Budget {
            runs: (self.runs / runs_div).max(2),
            sim_secs: (self.sim_secs / secs_div).max(3),
        }
    }
}

/// The three general-purpose RemyCCs of the evaluation.
pub fn remy_contenders() -> Vec<Contender> {
    vec![
        Contender::remy("RemyCC d=0.1", remy::assets::delta01()),
        Contender::remy("RemyCC d=1", remy::assets::delta1()),
        Contender::remy("RemyCC d=10", remy::assets::delta10()),
    ]
}

/// The full Figs. 4–9 line-up: three RemyCCs plus every baseline.
pub fn standard_contenders() -> Vec<Contender> {
    let mut v = remy_contenders();
    v.extend(Scheme::standard_suite().into_iter().map(Contender::baseline));
    v
}

/// Pretty-print one experiment's outcomes as a throughput/delay table,
/// flagging each scheme's 1-σ ellipse.
pub fn print_outcomes(title: &str, outcomes: &[Outcome]) {
    println!("\n== {title} ==");
    println!(
        "{:<16} {:>10} {:>12} {:>10} {:>22}",
        "scheme", "tput Mbps", "qdelay ms", "rtt ms", "1-sigma (sd_t, sd_d)"
    );
    for o in outcomes {
        println!(
            "{:<16} {:>10.3} {:>12.2} {:>10.1} {:>12.3} {:>9.2}",
            o.label,
            o.median_throughput_mbps,
            o.median_queue_delay_ms,
            o.median_rtt_ms,
            o.ellipse.sd_y,
            o.ellipse.sd_x,
        );
    }
}

/// Print the §1-style "median speedup / median delay reduction" rows of a
/// reference contender against the rest.
pub fn print_speedup_table(reference: &Outcome, others: &[Outcome]) {
    println!(
        "\n{:<16} {:>14} {:>22}",
        "vs protocol", "median speedup", "median delay reduction"
    );
    for o in others {
        if o.label == reference.label {
            continue;
        }
        let speedup = reference.median_throughput_mbps / o.median_throughput_mbps.max(1e-9);
        let delay_red = o.median_queue_delay_ms / reference.median_queue_delay_ms.max(1e-9);
        println!("{:<16} {:>12.2}x {:>20.2}x", o.label, speedup, delay_red);
    }
}

/// Where experiment CSVs land.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    std::fs::create_dir_all(&dir).expect("create target/experiments");
    dir
}

/// Write a CSV of outcome rows for plotting.
pub fn write_outcomes_csv(name: &str, outcomes: &[Outcome]) {
    let path = experiments_dir().join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(
        f,
        "scheme,median_tput_mbps,median_qdelay_ms,median_rtt_ms,mean_tput,mean_qdelay,sd_tput,sd_qdelay,corr,samples"
    )
    .unwrap();
    for o in outcomes {
        writeln!(
            f,
            "{},{},{},{},{},{},{},{},{},{}",
            o.label.replace(',', ";"),
            o.median_throughput_mbps,
            o.median_queue_delay_ms,
            o.median_rtt_ms,
            o.ellipse.mean_y,
            o.ellipse.mean_x,
            o.ellipse.sd_y,
            o.ellipse.sd_x,
            o.ellipse.corr,
            o.throughput_samples.len(),
        )
        .unwrap();
    }
    println!("(csv: {})", path.display());
}

/// Write arbitrary rows to a named CSV.
pub fn write_rows_csv(name: &str, header: &str, rows: &[String]) {
    let path = experiments_dir().join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").unwrap();
    for r in rows {
        writeln!(f, "{r}").unwrap();
    }
    println!("(csv: {})", path.display());
}

/// The Fig. 4 dumbbell workload (15 Mbps, 150 ms, exp(100 kB)/exp(0.5 s)),
/// parameterized by the sender count.
pub fn dumbbell_workload(n: usize, budget: Budget, seed: u64) -> Workload {
    Workload {
        link: LinkSpec::constant(15.0),
        queue_capacity: 1000,
        n_senders: n,
        rtt: Ns::from_millis(150),
        traffic: TrafficSpec::fig4(),
        duration: Ns::from_secs(budget.sim_secs),
        runs: budget.runs,
        seed,
    }
}

/// A cellular workload over the given delivery schedule (§5.3: RTT 50 ms,
/// same on/off traffic as Fig. 4).
pub fn cellular_workload(
    schedule: netsim::link::DeliverySchedule,
    label: &str,
    n: usize,
    budget: Budget,
    seed: u64,
) -> Workload {
    Workload {
        link: LinkSpec::Trace {
            schedule: std::sync::Arc::new(schedule),
            name: label.to_string(),
        },
        queue_capacity: 1000,
        n_senders: n,
        rtt: Ns::from_millis(50),
        traffic: TrafficSpec::fig4(),
        duration: Ns::from_secs(budget.sim_secs),
        runs: budget.runs,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgets_resolve_and_scale() {
        let b = Budget {
            runs: 16,
            sim_secs: 30,
        };
        let s = b.scaled(4, 3);
        assert_eq!(s.runs, 4);
        assert_eq!(s.sim_secs, 10);
        // Floors hold.
        let tiny = b.scaled(100, 100);
        assert_eq!(tiny.runs, 2);
        assert_eq!(tiny.sim_secs, 3);
    }

    #[test]
    fn contender_lineups() {
        assert_eq!(remy_contenders().len(), 3);
        let all = standard_contenders();
        assert_eq!(all.len(), 9);
        let labels: Vec<String> = all.iter().map(|c| c.label()).collect();
        assert!(labels.iter().any(|l| l.contains("Cubic/sfqCoDel")));
        assert!(labels.iter().any(|l| l.contains("RemyCC")));
    }

    #[test]
    fn workload_builders() {
        let b = Budget {
            runs: 2,
            sim_secs: 5,
        };
        let w = dumbbell_workload(8, b, 1);
        assert_eq!(w.n_senders, 8);
        assert_eq!(w.duration, Ns::from_secs(5));
        let c = cellular_workload(traces::verizon_schedule(), "v", 4, b, 1);
        assert_eq!(c.n_senders, 4);
        assert_eq!(c.rtt, Ns::from_millis(50));
    }
}
