//! Compound TCP (Tan, Song, Zhang & Sridharan, INFOCOM 2006).
//!
//! Compound maintains two windows whose sum gates transmission: a
//! loss-based *congestion window* that follows Reno, and a delay-based
//! *dwnd* that grows binomially (`α·win^k`) while queueing delay stays
//! low and retreats quickly once the delay estimate crosses a threshold.
//! As the paper notes (§2), Compound "uses the delay-based window to
//! identify the absence of congestion rather than its onset" — dwnd gives
//! fast ramp-up on underused paths while the Reno component preserves
//! fairness under loss.

use netsim::cc::{AckInfo, CongestionControl, LossEvent};
use netsim::time::Ns;

/// Binomial increase coefficient α.
pub const ALPHA: f64 = 0.125;
/// Binomial exponent k.
pub const K: f64 = 0.75;
/// Queue-backlog threshold γ, packets.
pub const GAMMA: f64 = 30.0;
/// Delay-window retreat factor ζ.
pub const ZETA: f64 = 1.0;
/// Loss-response factor β for the delay window.
pub const BETA: f64 = 0.5;
/// Initial (loss) window, packets.
pub const INITIAL_WINDOW: f64 = 2.0;

/// Compound TCP.
#[derive(Clone, Debug)]
pub struct Compound {
    /// Loss-based (Reno) window.
    reno: f64,
    /// Delay-based window.
    dwnd: f64,
    ssthresh: f64,
    /// End of the current once-per-RTT dwnd update epoch.
    epoch_end: Ns,
}

impl Compound {
    /// Fresh instance in slow start.
    pub fn new() -> Compound {
        Compound {
            reno: INITIAL_WINDOW,
            dwnd: 0.0,
            ssthresh: f64::INFINITY,
            epoch_end: Ns::ZERO,
        }
    }

    /// Delay window (tests).
    pub fn dwnd(&self) -> f64 {
        self.dwnd
    }

    /// Loss window (tests).
    pub fn reno_window(&self) -> f64 {
        self.reno
    }

    fn win(&self) -> f64 {
        self.reno + self.dwnd
    }

    fn in_slow_start(&self) -> bool {
        self.win() < self.ssthresh
    }
}

impl Default for Compound {
    fn default() -> Self {
        Compound::new()
    }
}

impl CongestionControl for Compound {
    fn on_flow_start(&mut self, _now: Ns) {
        *self = Compound::new();
    }

    fn on_ack(&mut self, info: &AckInfo) {
        if info.newly_acked == 0 || info.in_recovery {
            return;
        }
        if self.in_slow_start() {
            self.reno += info.newly_acked as f64;
            if self.win() > self.ssthresh {
                self.reno = (self.ssthresh - self.dwnd).max(2.0);
            }
            return;
        }
        // Reno component: +1/win per acked packet (increase applies to the
        // total window's pace, credited to the loss window).
        self.reno += info.newly_acked as f64 / self.win();
        // Delay component: once per RTT, estimate the self-induced queue
        // exactly as Vegas does.
        if info.now >= self.epoch_end {
            let base = info.min_rtt.as_secs_f64();
            let rtt = info.rtt_sample.as_secs_f64();
            if base > 0.0 && rtt > 0.0 {
                let win = self.win();
                let expected = win / base;
                let actual = win / rtt;
                let diff = (expected - actual) * base;
                if diff < GAMMA {
                    // Binomial increase: dwnd += α·win^k − 1 (at least 0).
                    self.dwnd += (ALPHA * win.powf(K) - 1.0).max(0.0);
                } else {
                    // Congestion onset: retreat proportionally to backlog.
                    self.dwnd = (self.dwnd - ZETA * diff).max(0.0);
                }
            }
            self.epoch_end = info.now + info.rtt_sample;
        }
    }

    fn on_loss(&mut self, _now: Ns, event: LossEvent) {
        match event {
            LossEvent::FastRetransmit => {
                let win = self.win();
                self.ssthresh = (win / 2.0).max(2.0);
                self.reno = (self.reno / 2.0).max(2.0);
                // dwnd = win·(1−β) − reno/2 (Tan et al., eq. 9), floored.
                self.dwnd = (win * (1.0 - BETA) - self.reno).max(0.0);
            }
            LossEvent::Timeout => {
                self.ssthresh = (self.win() / 2.0).max(2.0);
                self.reno = 1.0;
                self.dwnd = 0.0;
            }
        }
    }

    fn cwnd(&self) -> f64 {
        self.win()
    }

    fn name(&self) -> &str {
        "Compound"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack_at(now_ms: u64, rtt_ms: u64, base_ms: u64, newly: u64) -> AckInfo {
        AckInfo {
            now: Ns::from_millis(now_ms),
            rtt_sample: Ns::from_millis(rtt_ms),
            min_rtt: Ns::from_millis(base_ms),
            srtt: Ns::from_millis(rtt_ms),
            echo_ts: Ns::ZERO,
            seq: 0,
            newly_acked: newly,
            in_flight: 10,
            in_recovery: false,
            ecn_echo: false,
            xcp_feedback: None,
        }
    }

    fn out_of_slow_start() -> Compound {
        let mut cc = Compound::new();
        cc.ssthresh = 10.0;
        cc.reno = 16.0;
        cc
    }

    #[test]
    fn dwnd_grows_binomially_when_delay_low() {
        let mut cc = out_of_slow_start();
        // rtt == base: diff 0 < gamma → binomial growth.
        cc.on_ack(&ack_at(100, 100, 100, 1));
        let expect = (ALPHA * 16.0f64.powf(K) - 1.0).max(0.0);
        assert!((cc.dwnd() - expect).abs() < 0.05, "dwnd {}", cc.dwnd());
    }

    #[test]
    fn dwnd_zero_growth_for_small_windows() {
        // α·win^k − 1 < 0 for small windows: dwnd must not go negative.
        let mut cc = Compound::new();
        cc.ssthresh = 2.0;
        cc.reno = 4.0;
        cc.on_ack(&ack_at(100, 100, 100, 1));
        assert_eq!(cc.dwnd(), 0.0);
    }

    #[test]
    fn dwnd_retreats_on_queueing() {
        let mut cc = out_of_slow_start();
        cc.dwnd = 50.0;
        cc.reno = 50.0;
        // base 100, rtt 200 → diff = win/2 = 50 > gamma → retreat by ζ·50.
        cc.on_ack(&ack_at(100, 200, 100, 1));
        assert!(cc.dwnd() < 1.0, "dwnd should collapse, got {}", cc.dwnd());
    }

    #[test]
    fn dwnd_updates_once_per_rtt() {
        let mut cc = out_of_slow_start();
        cc.on_ack(&ack_at(100, 100, 100, 1));
        let d1 = cc.dwnd();
        cc.on_ack(&ack_at(150, 100, 100, 1)); // within epoch
        assert_eq!(cc.dwnd(), d1);
        cc.on_ack(&ack_at(250, 100, 100, 1)); // new epoch
        assert!(cc.dwnd() > d1);
    }

    #[test]
    fn loss_halves_reno_and_caps_total() {
        let mut cc = out_of_slow_start();
        cc.reno = 40.0;
        cc.dwnd = 40.0;
        let win = cc.cwnd();
        cc.on_loss(Ns::ZERO, LossEvent::FastRetransmit);
        // Total after loss = win(1−β) = 40.
        assert!((cc.cwnd() - win * (1.0 - BETA)).abs() < 1e-9);
        assert_eq!(cc.reno_window(), 20.0);
    }

    #[test]
    fn timeout_clears_delay_window() {
        let mut cc = out_of_slow_start();
        cc.dwnd = 25.0;
        cc.on_loss(Ns::ZERO, LossEvent::Timeout);
        assert_eq!(cc.dwnd(), 0.0);
        assert_eq!(cc.cwnd(), 1.0);
    }

    #[test]
    fn slow_start_matches_reno() {
        let mut cc = Compound::new();
        cc.on_ack(&ack_at(0, 100, 100, 2));
        assert_eq!(cc.cwnd(), 4.0);
        assert_eq!(cc.dwnd(), 0.0, "no delay window during slow start");
    }
}
