//! TCP Cubic (Ha, Rhee & Xu 2008; RFC 8312).
//!
//! Cubic grows the window as a cubic function of the *real time* since the
//! last congestion event, independent of RTT: after a loss reduces the
//! window to `β·W_max`, the window first climbs back toward the previous
//! maximum (concave region), plateaus near it, then probes beyond it
//! (convex region). A "TCP-friendly" estimate keeps Cubic at least as
//! aggressive as Reno on short-RTT paths, and fast convergence releases
//! capacity when the bottleneck has new contenders. The paper notes Cubic
//! "aggressively increases its window size, inflating queues and bloating
//! RTTs" — visible in our Fig. 4 reproduction as high throughput *and*
//! high queueing delay.

use netsim::cc::{AckInfo, CongestionControl, LossEvent};
use netsim::time::Ns;

/// Cubic scaling constant `C` (RFC 8312 §5).
pub const C: f64 = 0.4;
/// Multiplicative decrease factor `β_cubic`.
pub const BETA: f64 = 0.7;
/// Initial window, packets.
pub const INITIAL_WINDOW: f64 = 4.0;

/// TCP Cubic.
#[derive(Clone, Debug)]
pub struct Cubic {
    cwnd: f64,
    ssthresh: f64,
    /// Window size just before the last reduction.
    w_max: f64,
    /// W_max remembered for fast convergence.
    w_last_max: f64,
    /// Start of the current congestion-avoidance epoch.
    epoch_start: Option<Ns>,
    /// Time for the cubic to return to `w_max`.
    k: f64,
    /// Reno-equivalent window estimate for the TCP-friendly region.
    w_est: f64,
}

impl Cubic {
    /// Fresh instance in slow start.
    pub fn new() -> Cubic {
        Cubic {
            cwnd: INITIAL_WINDOW,
            ssthresh: f64::INFINITY,
            w_max: 0.0,
            w_last_max: 0.0,
            epoch_start: None,
            k: 0.0,
            w_est: 0.0,
        }
    }

    fn enter_epoch(&mut self, now: Ns) {
        self.epoch_start = Some(now);
        if self.cwnd < self.w_max {
            self.k = ((self.w_max - self.cwnd) / C).cbrt();
        } else {
            self.k = 0.0;
            self.w_max = self.cwnd;
        }
        self.w_est = self.cwnd;
    }

    /// W_cubic(t): the target window `t` seconds into the epoch.
    fn w_cubic(&self, t: f64) -> f64 {
        C * (t - self.k).powi(3) + self.w_max
    }

    /// True while in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// Current `W_max` (tests).
    pub fn w_max(&self) -> f64 {
        self.w_max
    }
}

impl Default for Cubic {
    fn default() -> Self {
        Cubic::new()
    }
}

impl CongestionControl for Cubic {
    fn on_flow_start(&mut self, _now: Ns) {
        *self = Cubic::new();
    }

    fn on_ack(&mut self, info: &AckInfo) {
        if info.newly_acked == 0 || info.in_recovery {
            return;
        }
        if self.in_slow_start() {
            self.cwnd += info.newly_acked as f64;
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh;
            }
            return;
        }
        if self.epoch_start.is_none() {
            self.enter_epoch(info.now);
        }
        let epoch_start = self.epoch_start.unwrap_or(info.now);
        let t = (info.now - epoch_start).as_secs_f64();
        let rtt = info.srtt.as_secs_f64().max(1e-6);
        // TCP-friendly region: Reno-equivalent AIMD with Cubic's β
        // (RFC 8312 §4.2): slope 3(1−β)/(1+β) per RTT.
        self.w_est += 3.0 * (1.0 - BETA) / (1.0 + BETA) * info.newly_acked as f64 / self.cwnd;
        let target = self.w_cubic(t + rtt);
        if self.w_cubic(t) < self.w_est {
            // Cubic slower than Reno would be: follow Reno.
            if self.cwnd < self.w_est {
                self.cwnd = self.w_est;
            }
        } else if target > self.cwnd {
            // Standard cubic increase: spread (target − cwnd) over the
            // next window of ACKs.
            self.cwnd += (target - self.cwnd) / self.cwnd * info.newly_acked as f64;
        } else {
            // At/above target: probe very slowly.
            self.cwnd += 0.01 * info.newly_acked as f64 / self.cwnd;
        }
    }

    fn on_loss(&mut self, _now: Ns, event: LossEvent) {
        match event {
            LossEvent::FastRetransmit => {
                // Fast convergence: if this W_max is below the previous
                // one, another flow is likely ramping up — release more.
                if self.cwnd < self.w_last_max {
                    self.w_last_max = self.cwnd;
                    self.w_max = self.cwnd * (2.0 - BETA) / 2.0;
                } else {
                    self.w_last_max = self.cwnd;
                    self.w_max = self.cwnd;
                }
                self.cwnd = (self.cwnd * BETA).max(2.0);
                self.ssthresh = self.cwnd;
                self.epoch_start = None;
            }
            LossEvent::Timeout => {
                self.w_last_max = self.cwnd;
                self.w_max = self.cwnd;
                self.ssthresh = (self.cwnd * BETA).max(2.0);
                self.cwnd = 1.0;
                self.epoch_start = None;
            }
        }
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn name(&self) -> &str {
        "Cubic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack_at(now_ms: u64, newly: u64) -> AckInfo {
        AckInfo {
            now: Ns::from_millis(now_ms),
            rtt_sample: Ns::from_millis(100),
            min_rtt: Ns::from_millis(100),
            srtt: Ns::from_millis(100),
            echo_ts: Ns::ZERO,
            seq: 0,
            newly_acked: newly,
            in_flight: 10,
            in_recovery: false,
            ecn_echo: false,
            xcp_feedback: None,
        }
    }

    #[test]
    fn slow_start_then_loss_sets_wmax() {
        let mut cc = Cubic::new();
        for t in 0..10 {
            cc.on_ack(&ack_at(100 * t, 4));
        }
        let before = cc.cwnd();
        cc.on_loss(Ns::from_secs(1), LossEvent::FastRetransmit);
        assert!((cc.w_max() - before).abs() < 1e-9);
        assert!((cc.cwnd() - before * BETA).abs() < 1e-9);
        assert!(!cc.in_slow_start());
    }

    #[test]
    fn concave_growth_toward_wmax() {
        let mut cc = Cubic::new();
        cc.cwnd = 100.0;
        cc.ssthresh = 50.0; // out of slow start
        cc.on_loss(Ns::from_secs(1), LossEvent::FastRetransmit);
        let after_loss = cc.cwnd(); // 70
                                    // Feed ACKs over several seconds; window should recover toward
                                    // W_max = 100 but not wildly overshoot early.
        let mut t_ms = 1000;
        for _ in 0..2_000 {
            t_ms += 10;
            cc.on_ack(&ack_at(t_ms, 1));
        }
        assert!(cc.cwnd() > after_loss, "must grow after loss");
        // K = ((100-70)/0.4)^(1/3) ≈ 4.2 s; at t = 20 s we are past W_max.
        assert!(
            cc.cwnd() > 95.0,
            "after 20 s the cubic must have reached W_max, got {}",
            cc.cwnd()
        );
    }

    #[test]
    fn growth_is_rtt_independent() {
        // Two flows with different RTTs see the same wall-clock cubic
        // target. Feed the same elapsed time with different ack cadence.
        let run = |ack_every_ms: u64| {
            let mut cc = Cubic::new();
            cc.cwnd = 50.0;
            cc.ssthresh = 25.0;
            cc.on_loss(Ns::ZERO, LossEvent::FastRetransmit);
            let mut t = 0;
            while t < 10_000 {
                t += ack_every_ms;
                // scale newly_acked so both send the same packet volume
                cc.on_ack(&ack_at(t, 1));
            }
            cc.cwnd()
        };
        let fast = run(10);
        let slow = run(40);
        // Not exactly equal (per-ack quantization), but the same ballpark:
        let ratio = fast / slow;
        assert!(
            (0.5..2.0).contains(&ratio),
            "cubic growth should be roughly RTT-independent: {fast} vs {slow}"
        );
    }

    #[test]
    fn fast_convergence_releases_capacity() {
        let mut cc = Cubic::new();
        cc.cwnd = 100.0;
        cc.ssthresh = 50.0;
        cc.on_loss(Ns::ZERO, LossEvent::FastRetransmit);
        // Second loss at a lower window: w_max set below cwnd.
        let w = cc.cwnd(); // 70
        cc.on_loss(Ns::from_secs(1), LossEvent::FastRetransmit);
        assert!(
            cc.w_max() < w,
            "fast convergence must remember a reduced W_max"
        );
    }

    #[test]
    fn timeout_collapses_window() {
        let mut cc = Cubic::new();
        cc.cwnd = 64.0;
        cc.on_loss(Ns::ZERO, LossEvent::Timeout);
        assert_eq!(cc.cwnd(), 1.0);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn flow_restart_is_clean() {
        let mut cc = Cubic::new();
        cc.cwnd = 80.0;
        cc.on_loss(Ns::ZERO, LossEvent::FastRetransmit);
        cc.on_flow_start(Ns::from_secs(5));
        assert_eq!(cc.cwnd(), INITIAL_WINDOW);
        assert_eq!(cc.w_max(), 0.0);
    }
}
