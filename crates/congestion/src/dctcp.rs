//! DCTCP — Data Center TCP (Alizadeh et al., SIGCOMM 2010).
//!
//! DCTCP is the paper's datacenter baseline (§5.5). The switch marks
//! packets with ECN CE whenever the instantaneous queue exceeds a
//! threshold `K`; the receiver echoes marks; the sender maintains an
//! estimate `α` of the *fraction* of marked packets per RTT
//! (`α ← (1−g)·α + g·F`) and, in any window that saw a mark, reduces
//! `cwnd ← cwnd·(1 − α/2)` — a reduction proportional to the *extent* of
//! congestion, rather than Reno's fixed one-half.

use netsim::cc::{AckInfo, CongestionControl, LossEvent};
use netsim::time::Ns;

/// EWMA gain `g` for the marking-fraction estimator.
pub const G: f64 = 1.0 / 16.0;
/// Initial window, packets.
pub const INITIAL_WINDOW: f64 = 4.0;

/// DCTCP sender.
#[derive(Clone, Debug)]
pub struct Dctcp {
    cwnd: f64,
    ssthresh: f64,
    /// Smoothed fraction of marked packets.
    alpha: f64,
    /// Observation window (≈ one RTT) accounting.
    window_end: Ns,
    acked_in_window: u64,
    marked_in_window: u64,
}

impl Dctcp {
    /// Fresh instance.
    pub fn new() -> Dctcp {
        Dctcp {
            cwnd: INITIAL_WINDOW,
            ssthresh: f64::INFINITY,
            alpha: 0.0,
            window_end: Ns::ZERO,
            acked_in_window: 0,
            marked_in_window: 0,
        }
    }

    /// The current marking-fraction estimate (tests).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Default for Dctcp {
    fn default() -> Self {
        Dctcp::new()
    }
}

impl CongestionControl for Dctcp {
    fn on_flow_start(&mut self, _now: Ns) {
        *self = Dctcp::new();
    }

    fn on_ack(&mut self, info: &AckInfo) {
        if info.newly_acked > 0 {
            self.acked_in_window += info.newly_acked;
            if info.ecn_echo {
                self.marked_in_window += info.newly_acked;
            }
        }
        // End of an observation window: fold the marking fraction into α
        // and react once.
        if info.now >= self.window_end && self.acked_in_window > 0 {
            let f = self.marked_in_window as f64 / self.acked_in_window as f64;
            self.alpha = (1.0 - G) * self.alpha + G * f;
            if self.marked_in_window > 0 {
                self.cwnd = (self.cwnd * (1.0 - self.alpha / 2.0)).max(2.0);
                self.ssthresh = self.cwnd;
            }
            self.acked_in_window = 0;
            self.marked_in_window = 0;
            self.window_end = info.now + info.srtt;
        }
        if info.newly_acked == 0 || info.in_recovery {
            return;
        }
        // Growth identical to Reno between marks.
        if self.cwnd < self.ssthresh {
            self.cwnd += info.newly_acked as f64;
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh;
            }
        } else {
            self.cwnd += info.newly_acked as f64 / self.cwnd;
        }
    }

    fn on_loss(&mut self, _now: Ns, event: LossEvent) {
        match event {
            LossEvent::FastRetransmit => {
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = self.ssthresh;
            }
            LossEvent::Timeout => {
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = 1.0;
            }
        }
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn ecn_capable(&self) -> bool {
        true
    }

    fn name(&self) -> &str {
        "DCTCP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack_at(now_ms: u64, newly: u64, marked: bool) -> AckInfo {
        AckInfo {
            now: Ns::from_millis(now_ms),
            rtt_sample: Ns::from_millis(4),
            min_rtt: Ns::from_millis(4),
            srtt: Ns::from_millis(4),
            echo_ts: Ns::ZERO,
            seq: 0,
            newly_acked: newly,
            in_flight: 10,
            in_recovery: false,
            ecn_echo: marked,
            xcp_feedback: None,
        }
    }

    #[test]
    fn declares_ecn_capability() {
        assert!(Dctcp::new().ecn_capable());
    }

    #[test]
    fn alpha_converges_to_full_marking() {
        let mut cc = Dctcp::new();
        cc.ssthresh = 2.0; // skip slow start
                           // Every window fully marked → α → 1.
        for w in 0..200 {
            cc.on_ack(&ack_at(w * 10, 4, true));
        }
        assert!(cc.alpha() > 0.9, "alpha {} should approach 1", cc.alpha());
    }

    #[test]
    fn alpha_decays_without_marks() {
        let mut cc = Dctcp::new();
        cc.alpha = 0.8;
        cc.ssthresh = 2.0;
        for w in 0..100 {
            cc.on_ack(&ack_at(w * 10, 4, false));
        }
        assert!(cc.alpha() < 0.01, "alpha {} should decay", cc.alpha());
    }

    #[test]
    fn light_marking_gives_gentle_reduction() {
        // One marked window with small α: cwnd shrinks by α/2, not 1/2.
        let mut cc = Dctcp::new();
        cc.ssthresh = 2.0;
        cc.cwnd = 100.0;
        cc.alpha = 0.1;
        // First ack in a fresh window carries a mark; window closes at
        // once because window_end == 0.
        cc.on_ack(&ack_at(0, 1, true));
        // α ← 0.9375·0.1 + 0.0625·1 = 0.15625; cwnd ← 100·(1−α/2)·… then
        // +1/cwnd growth; reduction ≈ 7.8 packets.
        assert!(
            cc.cwnd() > 90.0 && cc.cwnd() < 93.0,
            "expected gentle reduction, got {}",
            cc.cwnd()
        );
    }

    #[test]
    fn heavy_marking_approaches_halving() {
        let mut cc = Dctcp::new();
        cc.ssthresh = 2.0;
        cc.alpha = 1.0;
        cc.cwnd = 100.0;
        cc.on_ack(&ack_at(0, 1, true));
        assert!(cc.cwnd() < 55.0, "alpha=1 should halve, got {}", cc.cwnd());
    }

    #[test]
    fn reacts_at_most_once_per_window() {
        let mut cc = Dctcp::new();
        cc.ssthresh = 2.0;
        cc.cwnd = 100.0;
        cc.alpha = 1.0;
        cc.on_ack(&ack_at(0, 1, true)); // reduction; next window at 4 ms
        let w = cc.cwnd();
        cc.on_ack(&ack_at(1, 1, true)); // same window: only growth
        assert!(cc.cwnd() >= w, "no second reduction within a window");
    }

    #[test]
    fn loss_still_halves_like_reno() {
        let mut cc = Dctcp::new();
        cc.cwnd = 64.0;
        cc.on_loss(Ns::ZERO, LossEvent::FastRetransmit);
        assert_eq!(cc.cwnd(), 32.0);
        cc.on_loss(Ns::ZERO, LossEvent::Timeout);
        assert_eq!(cc.cwnd(), 1.0);
    }
}
