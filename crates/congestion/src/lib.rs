//! # congestion — the human-designed baselines of *TCP ex Machina*
//!
//! Clean-room Rust implementations of every scheme the paper compares
//! RemyCCs against (§2, §5.1):
//!
//! | Scheme | Kind | Module |
//! |--------|------|--------|
//! | NewReno | end-to-end, loss-based | [`newreno`] |
//! | Vegas | end-to-end, delay-based | [`vegas`] |
//! | Cubic | end-to-end, loss-based, RTT-independent growth | [`cubic`] |
//! | Compound | end-to-end, loss + delay hybrid | [`compound`] |
//! | DCTCP | ECN-based (datacenter) | [`dctcp`] |
//! | XCP | explicit router feedback | [`xcp`] |
//!
//! Cubic-over-sfqCoDel — the remaining baseline — is a deployment
//! combination: [`cubic::Cubic`] endpoints over
//! `netsim::queue::SfqCodel`; [`Scheme::CubicSfqCodel`] wires it up.
//!
//! Each module documents the published algorithm it implements and the
//! equations used. All schemes run on `netsim`'s shared reliable transport,
//! so loss detection and retransmission behaviour is identical across
//! schemes — differences in results come from the window/pacing policies
//! alone, as in the paper's ns-2 setup.

#![warn(missing_docs)]

pub mod compound;
pub mod cubic;
pub mod dctcp;
pub mod newreno;
pub mod vegas;
pub mod xcp;

pub use compound::Compound;
pub use cubic::Cubic;
pub use dctcp::Dctcp;
pub use newreno::NewReno;
pub use vegas::Vegas;
pub use xcp::{Xcp, XcpRouter};

use netsim::cc::CongestionControl;
use netsim::link::LinkSpec;
use netsim::queue::QueueSpec;
use netsim::router::RouterHook;

/// The complete set of baseline configurations used in the paper's
/// evaluation, as self-describing experiment ingredients: a scheme knows
/// which queue discipline and router hook it runs with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheme {
    /// TCP NewReno over DropTail.
    NewReno,
    /// TCP Vegas over DropTail.
    Vegas,
    /// TCP Cubic over DropTail.
    Cubic,
    /// Compound TCP over DropTail.
    Compound,
    /// TCP Cubic over stochastic fair queueing + CoDel.
    CubicSfqCodel,
    /// XCP endpoints with the XCP router at the bottleneck.
    Xcp,
    /// DCTCP over a single-threshold ECN gateway.
    Dctcp {
        /// Marking threshold K, packets.
        mark_threshold: usize,
    },
}

impl Scheme {
    /// All end-to-end + router-assisted schemes of Figs. 4–9.
    pub fn standard_suite() -> Vec<Scheme> {
        vec![
            Scheme::NewReno,
            Scheme::Vegas,
            Scheme::Cubic,
            Scheme::Compound,
            Scheme::CubicSfqCodel,
            Scheme::Xcp,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::NewReno => "NewReno",
            Scheme::Vegas => "Vegas",
            Scheme::Cubic => "Cubic",
            Scheme::Compound => "Compound",
            Scheme::CubicSfqCodel => "Cubic/sfqCoDel",
            Scheme::Xcp => "XCP",
            Scheme::Dctcp { .. } => "DCTCP",
        }
    }

    /// Build one congestion-control instance.
    pub fn build_cc(&self) -> Box<dyn CongestionControl> {
        match self {
            Scheme::NewReno => Box::new(NewReno::new()),
            Scheme::Vegas => Box::new(Vegas::new()),
            Scheme::Cubic | Scheme::CubicSfqCodel => Box::new(Cubic::new()),
            Scheme::Compound => Box::new(Compound::new()),
            Scheme::Xcp => Box::new(Xcp::new()),
            Scheme::Dctcp { .. } => Box::new(Dctcp::new()),
        }
    }

    /// The queue discipline this scheme runs over, given the experiment's
    /// base capacity in packets.
    pub fn queue_spec(&self, capacity: usize) -> QueueSpec {
        match self {
            Scheme::CubicSfqCodel => QueueSpec::SfqCodel {
                capacity,
                buckets: 64,
            },
            Scheme::Dctcp { mark_threshold } => QueueSpec::Ecn {
                capacity,
                mark_threshold: *mark_threshold,
            },
            _ => QueueSpec::DropTail { capacity },
        }
    }

    /// The router hook, if the scheme needs one (XCP's controller, which
    /// must know the link's average rate).
    pub fn router(&self, link: &LinkSpec, mss: u32) -> Option<Box<dyn RouterHook>> {
        match self {
            Scheme::Xcp => Some(Box::new(XcpRouter::new(link.average_rate_mbps(mss), mss))),
            _ => None,
        }
    }
}

#[cfg(test)]
mod closed_loop_tests {
    //! End-to-end behaviour of each baseline inside the simulator. These
    //! are the "does the whole machine move" checks; quantitative
    //! comparisons live in the bench harnesses.

    use super::*;
    use netsim::prelude::*;

    fn run_scheme(scheme: Scheme, n: usize, secs: u64, seed: u64) -> SimResults {
        let link = LinkSpec::constant(15.0);
        let scenario = Scenario {
            link: link.clone(),
            queue: scheme.queue_spec(1000),
            senders: (0..n)
                .map(|_| SenderConfig {
                    rtt: Ns::from_millis(150),
                    traffic: TrafficSpec::saturating(),
                })
                .collect(),
            mss: 1500,
            duration: Ns::from_secs(secs),
            seed,
            record_deliveries: false,
            topology: None,
            churn: None,
        };
        let ccs = (0..n).map(|_| scheme.build_cc()).collect();
        let router = scheme.router(&link, 1500);
        Simulator::new(&scenario, ccs, router).run()
    }

    #[test]
    fn newreno_fills_a_15mbps_link() {
        let r = run_scheme(Scheme::NewReno, 1, 60, 1);
        assert!(
            r.utilization(15.0) > 0.85,
            "NewReno utilization {}",
            r.utilization(15.0)
        );
    }

    #[test]
    fn cubic_fills_the_link_and_bloats_the_queue() {
        let r = run_scheme(Scheme::Cubic, 1, 60, 1);
        assert!(r.utilization(15.0) > 0.9, "util {}", r.utilization(15.0));
        // Cubic over a 1000-packet DropTail runs the buffer high.
        assert!(
            r.flows[0].mean_queue_delay_ms > 50.0,
            "Cubic should bloat: {} ms",
            r.flows[0].mean_queue_delay_ms
        );
    }

    #[test]
    fn vegas_keeps_delay_low() {
        let r = run_scheme(Scheme::Vegas, 1, 60, 1);
        assert!(r.utilization(15.0) > 0.7, "util {}", r.utilization(15.0));
        assert!(
            r.flows[0].mean_queue_delay_ms < 20.0,
            "Vegas queueing delay {} ms should stay near the α/β band",
            r.flows[0].mean_queue_delay_ms
        );
    }

    #[test]
    fn vegas_delay_below_cubic_delay() {
        let v = run_scheme(Scheme::Vegas, 2, 60, 3);
        let c = run_scheme(Scheme::Cubic, 2, 60, 3);
        let vd = netsim::stats::mean(
            &v.flows
                .iter()
                .map(|f| f.mean_queue_delay_ms)
                .collect::<Vec<_>>(),
        );
        let cd = netsim::stats::mean(
            &c.flows
                .iter()
                .map(|f| f.mean_queue_delay_ms)
                .collect::<Vec<_>>(),
        );
        assert!(
            vd < cd / 2.0,
            "Vegas ({vd} ms) must be far less bloated than Cubic ({cd} ms)"
        );
    }

    #[test]
    fn compound_fills_the_link() {
        let r = run_scheme(Scheme::Compound, 1, 60, 1);
        assert!(r.utilization(15.0) > 0.85, "util {}", r.utilization(15.0));
    }

    #[test]
    fn dctcp_fills_link_with_shallow_queue() {
        let r = run_scheme(Scheme::Dctcp { mark_threshold: 20 }, 2, 60, 1);
        assert!(r.utilization(15.0) > 0.8, "util {}", r.utilization(15.0));
        let d = netsim::stats::mean(
            &r.flows
                .iter()
                .map(|f| f.mean_queue_delay_ms)
                .collect::<Vec<_>>(),
        );
        assert!(d < 60.0, "ECN keeps the queue shallow, got {d} ms");
    }

    #[test]
    fn xcp_reaches_high_utilization_with_modest_queue() {
        let r = run_scheme(Scheme::Xcp, 2, 60, 1);
        assert!(
            r.utilization(15.0) > 0.75,
            "XCP utilization {}",
            r.utilization(15.0)
        );
        let d = netsim::stats::mean(
            &r.flows
                .iter()
                .map(|f| f.mean_queue_delay_ms)
                .collect::<Vec<_>>(),
        );
        assert!(d < 100.0, "XCP queue delay {d} ms");
    }

    #[test]
    fn cubic_sfqcodel_cuts_cubics_delay() {
        let plain = run_scheme(Scheme::Cubic, 2, 60, 5);
        let aqm = run_scheme(Scheme::CubicSfqCodel, 2, 60, 5);
        let pd = netsim::stats::mean(
            &plain
                .flows
                .iter()
                .map(|f| f.mean_queue_delay_ms)
                .collect::<Vec<_>>(),
        );
        let ad = netsim::stats::mean(
            &aqm.flows
                .iter()
                .map(|f| f.mean_queue_delay_ms)
                .collect::<Vec<_>>(),
        );
        assert!(
            ad < pd / 2.0,
            "CoDel must tame Cubic's queue: {ad} ms vs {pd} ms"
        );
    }

    #[test]
    fn two_newreno_flows_share_fairly() {
        let r = run_scheme(Scheme::NewReno, 2, 120, 7);
        let t0 = r.flows[0].throughput_mbps;
        let t1 = r.flows[1].throughput_mbps;
        let jain = (t0 + t1).powi(2) / (2.0 * (t0 * t0 + t1 * t1));
        assert!(jain > 0.8, "Jain fairness {jain} ({t0} vs {t1})");
    }

    #[test]
    fn scheme_suite_is_complete() {
        let suite = Scheme::standard_suite();
        assert_eq!(suite.len(), 6);
        for s in &suite {
            assert!(!s.label().is_empty());
            let _ = s.build_cc();
        }
    }
}
