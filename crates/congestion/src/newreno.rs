//! TCP NewReno (RFC 5681 / RFC 6582 congestion control).
//!
//! The paper's description (§2): "slow start at the beginning, on a
//! timeout, or after an idle period…, additive increase every RTT when
//! there is no congestion, and a one-half reduction in the window on
//! receiving three duplicate ACKs." The transport supplies loss detection
//! and NewReno's partial-ACK retransmission; this module supplies the
//! window arithmetic.

use netsim::cc::{AckInfo, CongestionControl, LossEvent};
use netsim::time::Ns;

/// Initial congestion window, packets (ns-2 era default).
pub const INITIAL_WINDOW: f64 = 2.0;
/// Floor for ssthresh and the post-fast-retransmit window.
pub const MIN_SSTHRESH: f64 = 2.0;

/// NewReno congestion control.
#[derive(Clone, Debug)]
pub struct NewReno {
    cwnd: f64,
    ssthresh: f64,
}

impl NewReno {
    /// Fresh instance in slow start.
    pub fn new() -> NewReno {
        NewReno {
            cwnd: INITIAL_WINDOW,
            ssthresh: f64::INFINITY,
        }
    }

    /// Current slow-start threshold (tests).
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    /// True while in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }
}

impl Default for NewReno {
    fn default() -> Self {
        NewReno::new()
    }
}

impl CongestionControl for NewReno {
    fn on_flow_start(&mut self, _now: Ns) {
        self.cwnd = INITIAL_WINDOW;
        self.ssthresh = f64::INFINITY;
    }

    fn on_ack(&mut self, info: &AckInfo) {
        if info.newly_acked == 0 || info.in_recovery {
            // Duplicate ACKs and recovery-time ACKs don't grow the window;
            // the transport's inflation keeps the ACK clock running.
            return;
        }
        if self.in_slow_start() {
            // Exponential growth: +1 per newly acknowledged packet.
            self.cwnd += info.newly_acked as f64;
            if self.cwnd > self.ssthresh {
                self.cwnd = self.ssthresh;
            }
        } else {
            // Congestion avoidance: +1/cwnd per acknowledged packet,
            // i.e. roughly +1 per RTT.
            self.cwnd += info.newly_acked as f64 / self.cwnd;
        }
    }

    fn on_loss(&mut self, _now: Ns, event: LossEvent) {
        match event {
            LossEvent::FastRetransmit => {
                self.ssthresh = (self.cwnd / 2.0).max(MIN_SSTHRESH);
                self.cwnd = self.ssthresh;
            }
            LossEvent::Timeout => {
                self.ssthresh = (self.cwnd / 2.0).max(MIN_SSTHRESH);
                self.cwnd = 1.0;
            }
        }
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn name(&self) -> &str {
        "NewReno"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(newly: u64) -> AckInfo {
        AckInfo {
            now: Ns::from_millis(100),
            rtt_sample: Ns::from_millis(100),
            min_rtt: Ns::from_millis(100),
            srtt: Ns::from_millis(100),
            echo_ts: Ns::ZERO,
            seq: 0,
            newly_acked: newly,
            in_flight: 10,
            in_recovery: false,
            ecn_echo: false,
            xcp_feedback: None,
        }
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut cc = NewReno::new();
        // Acking a full window of 2 grows it to 4; acking 4 grows to 8.
        cc.on_ack(&ack(2));
        assert_eq!(cc.cwnd(), 4.0);
        cc.on_ack(&ack(4));
        assert_eq!(cc.cwnd(), 8.0);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn congestion_avoidance_is_linear() {
        let mut cc = NewReno::new();
        cc.on_loss(Ns::ZERO, LossEvent::FastRetransmit); // exits slow start
        let w0 = cc.cwnd();
        // One full window of ACKs ≈ +1 packet.
        let per_ack = w0.ceil() as u64;
        for _ in 0..per_ack {
            cc.on_ack(&ack(1));
        }
        assert!(
            (cc.cwnd() - (w0 + 1.0)).abs() < 0.3,
            "expected ~+1/RTT, got {} from {w0}",
            cc.cwnd()
        );
    }

    #[test]
    fn fast_retransmit_halves() {
        let mut cc = NewReno::new();
        for _ in 0..5 {
            cc.on_ack(&ack(4));
        }
        let before = cc.cwnd();
        cc.on_loss(Ns::ZERO, LossEvent::FastRetransmit);
        assert!((cc.cwnd() - before / 2.0).abs() < 1e-9);
        assert!(!cc.in_slow_start());
    }

    #[test]
    fn timeout_collapses_to_one() {
        let mut cc = NewReno::new();
        for _ in 0..5 {
            cc.on_ack(&ack(4));
        }
        let before = cc.cwnd();
        cc.on_loss(Ns::ZERO, LossEvent::Timeout);
        assert_eq!(cc.cwnd(), 1.0);
        assert!((cc.ssthresh() - before / 2.0).abs() < 1e-9);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn flow_restart_resets_to_initial_window() {
        let mut cc = NewReno::new();
        for _ in 0..10 {
            cc.on_ack(&ack(4));
        }
        cc.on_flow_start(Ns::from_secs(10));
        assert_eq!(cc.cwnd(), INITIAL_WINDOW);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn recovery_acks_do_not_grow_window() {
        let mut cc = NewReno::new();
        cc.on_loss(Ns::ZERO, LossEvent::FastRetransmit);
        let w = cc.cwnd();
        let mut info = ack(1);
        info.in_recovery = true;
        cc.on_ack(&info);
        assert_eq!(cc.cwnd(), w);
    }

    #[test]
    fn ssthresh_never_below_floor() {
        let mut cc = NewReno::new();
        cc.on_loss(Ns::ZERO, LossEvent::Timeout);
        cc.on_loss(Ns::ZERO, LossEvent::Timeout);
        cc.on_loss(Ns::ZERO, LossEvent::Timeout);
        assert_eq!(cc.ssthresh(), MIN_SSTHRESH);
    }
}
