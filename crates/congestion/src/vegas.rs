//! TCP Vegas (Brakmo & Peterson, SIGCOMM 1994).
//!
//! Vegas is the delay-based baseline of the paper (§2): it computes a
//! BaseRTT (the minimum RTT seen, i.e. the RTT absent congestion), the
//! *expected* rate `cwnd / BaseRTT`, the *actual* rate `cwnd / RTT`, and
//! `diff = (expected − actual) × BaseRTT` — an estimate of how many of the
//! flow's own packets sit in the bottleneck queue. Once per RTT the window
//! moves linearly: up if `diff < α`, down if `diff > β`, else unchanged.

use netsim::cc::{AckInfo, CongestionControl, LossEvent};
use netsim::time::Ns;

/// Vegas lower threshold, packets queued.
pub const ALPHA: f64 = 1.0;
/// Vegas upper threshold, packets queued.
pub const BETA: f64 = 3.0;
/// Slow-start exit threshold on `diff` (Vegas' gamma).
pub const GAMMA: f64 = 1.0;
/// Initial window, packets.
pub const INITIAL_WINDOW: f64 = 2.0;

/// TCP Vegas.
#[derive(Clone, Debug)]
pub struct Vegas {
    cwnd: f64,
    in_slow_start: bool,
    /// End of the current once-per-RTT adjustment epoch.
    epoch_end: Ns,
    /// Most recent RTT sample within the epoch.
    last_rtt: Ns,
}

impl Vegas {
    /// Fresh instance in Vegas slow start.
    pub fn new() -> Vegas {
        Vegas {
            cwnd: INITIAL_WINDOW,
            in_slow_start: true,
            epoch_end: Ns::ZERO,
            last_rtt: Ns::ZERO,
        }
    }

    /// The `diff` statistic for given window/RTTs, in packets.
    fn diff(cwnd: f64, base_rtt: Ns, rtt: Ns) -> f64 {
        if base_rtt.is_zero() || rtt.is_zero() {
            return 0.0;
        }
        let expected = cwnd / base_rtt.as_secs_f64();
        let actual = cwnd / rtt.as_secs_f64();
        (expected - actual) * base_rtt.as_secs_f64()
    }
}

impl Default for Vegas {
    fn default() -> Self {
        Vegas::new()
    }
}

impl CongestionControl for Vegas {
    fn on_flow_start(&mut self, _now: Ns) {
        self.cwnd = INITIAL_WINDOW;
        self.in_slow_start = true;
        self.epoch_end = Ns::ZERO;
        self.last_rtt = Ns::ZERO;
    }

    fn on_ack(&mut self, info: &AckInfo) {
        if info.newly_acked == 0 || info.in_recovery {
            return;
        }
        self.last_rtt = info.rtt_sample;
        if info.now < self.epoch_end {
            // Within the epoch: Vegas only adjusts once per RTT. During
            // slow start it still grows exponentially every other RTT; we
            // approximate with +1 per two acked packets (doubling every
            // other RTT overall).
            if self.in_slow_start {
                self.cwnd += info.newly_acked as f64 / 2.0;
            }
            return;
        }
        // Epoch boundary: evaluate diff and adjust.
        let diff = Vegas::diff(self.cwnd, info.min_rtt, info.rtt_sample);
        if self.in_slow_start {
            if diff > GAMMA {
                // Leave slow start and back off the overshoot.
                self.in_slow_start = false;
                self.cwnd = (self.cwnd - diff).max(2.0);
            } else {
                self.cwnd += info.newly_acked as f64 / 2.0;
            }
        } else if diff < ALPHA {
            self.cwnd += 1.0;
        } else if diff > BETA {
            self.cwnd = (self.cwnd - 1.0).max(2.0);
        }
        // Next adjustment one (current) RTT from now.
        self.epoch_end = info.now + info.rtt_sample;
    }

    fn on_loss(&mut self, _now: Ns, event: LossEvent) {
        match event {
            LossEvent::FastRetransmit => {
                // Vegas reduces less aggressively than Reno: a loss
                // detected while the delay signal was quiet is likely not
                // persistent congestion (Brakmo & Peterson use 3/4).
                self.cwnd = (self.cwnd * 0.75).max(2.0);
                self.in_slow_start = false;
            }
            LossEvent::Timeout => {
                self.cwnd = 2.0;
                self.in_slow_start = true;
            }
        }
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn name(&self) -> &str {
        "Vegas"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack_at(now_ms: u64, rtt_ms: u64, base_ms: u64, newly: u64) -> AckInfo {
        AckInfo {
            now: Ns::from_millis(now_ms),
            rtt_sample: Ns::from_millis(rtt_ms),
            min_rtt: Ns::from_millis(base_ms),
            srtt: Ns::from_millis(rtt_ms),
            echo_ts: Ns::ZERO,
            seq: 0,
            newly_acked: newly,
            in_flight: 10,
            in_recovery: false,
            ecn_echo: false,
            xcp_feedback: None,
        }
    }

    #[test]
    fn diff_measures_self_queued_packets() {
        // cwnd 10, base 100 ms, rtt 150 ms: expected 100 pkt/s, actual
        // 66.7 pkt/s, diff = 33.3 pkt/s × 0.1 s = 3.33 packets queued.
        let d = Vegas::diff(10.0, Ns::from_millis(100), Ns::from_millis(150));
        assert!((d - 10.0 / 3.0).abs() < 1e-9);
        assert_eq!(
            Vegas::diff(10.0, Ns::from_millis(100), Ns::from_millis(100)),
            0.0
        );
    }

    #[test]
    fn grows_when_below_alpha() {
        let mut cc = Vegas::new();
        cc.in_slow_start = false;
        let w = cc.cwnd();
        // rtt == base → diff 0 < alpha → +1.
        cc.on_ack(&ack_at(100, 100, 100, 1));
        assert_eq!(cc.cwnd(), w + 1.0);
    }

    #[test]
    fn shrinks_when_above_beta() {
        let mut cc = Vegas::new();
        cc.in_slow_start = false;
        cc.cwnd = 20.0;
        // rtt 200 vs base 100: diff = 10 packets > beta → −1.
        cc.on_ack(&ack_at(100, 200, 100, 1));
        assert_eq!(cc.cwnd(), 19.0);
    }

    #[test]
    fn holds_between_thresholds() {
        let mut cc = Vegas::new();
        cc.in_slow_start = false;
        cc.cwnd = 10.0;
        // base 100, rtt 125: diff = 10*(1/0.1 - 1/0.125)*0.1 = 2 packets —
        // inside [alpha, beta].
        cc.on_ack(&ack_at(100, 125, 100, 1));
        assert_eq!(cc.cwnd(), 10.0);
    }

    #[test]
    fn adjusts_once_per_rtt() {
        let mut cc = Vegas::new();
        cc.in_slow_start = false;
        cc.cwnd = 10.0;
        cc.on_ack(&ack_at(100, 100, 100, 1)); // epoch set, +1
        cc.on_ack(&ack_at(110, 100, 100, 1)); // within epoch: no change
        cc.on_ack(&ack_at(150, 100, 100, 1)); // still within (epoch ends at 200)
        assert_eq!(cc.cwnd(), 11.0);
        cc.on_ack(&ack_at(201, 100, 100, 1)); // next epoch: +1
        assert_eq!(cc.cwnd(), 12.0);
    }

    #[test]
    fn slow_start_exits_on_rising_delay() {
        let mut cc = Vegas::new();
        assert!(cc.in_slow_start);
        cc.cwnd = 16.0;
        // diff = 16*(1/0.1-1/0.2)*0.1 = 8 > gamma → exit and back off.
        cc.on_ack(&ack_at(100, 200, 100, 4));
        assert!(!cc.in_slow_start);
        assert!((cc.cwnd() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn losses_reduce_conservatively() {
        let mut cc = Vegas::new();
        cc.cwnd = 16.0;
        cc.on_loss(Ns::ZERO, LossEvent::FastRetransmit);
        assert_eq!(cc.cwnd(), 12.0);
        cc.on_loss(Ns::ZERO, LossEvent::Timeout);
        assert_eq!(cc.cwnd(), 2.0);
        assert!(cc.in_slow_start);
    }
}
