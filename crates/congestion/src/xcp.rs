//! XCP — the eXplicit Control Protocol (Katabi, Handley & Rohrs,
//! SIGCOMM 2002).
//!
//! XCP is the paper's strongest router-assisted baseline. Senders stamp a
//! congestion header (cwnd, RTT, desired feedback) on every packet; the
//! bottleneck router runs two controllers over a control interval `d`
//! (the mean RTT of traversing flows):
//!
//! * the **efficiency controller** computes the aggregate feedback
//!   `φ = α·d·S − β·Q`, where `S` is the spare bandwidth and `Q` the
//!   persistent queue (α = 0.4, β = 0.226);
//! * the **fairness controller** divides `φ` across packets AIMD-style —
//!   positive feedback `p_i ∝ rtt_i²/cwnd_i` (equal per-flow additive
//!   increase), negative feedback `n_i ∝ rtt_i` (multiplicative decrease) —
//!   plus bandwidth shuffling `h = max(0, 0.1·y − |φ|)` so allocations
//!   keep converging to fairness even at full utilization.
//!
//! The receiver echoes the (possibly reduced) feedback; the sender applies
//! it directly: `cwnd ← max(cwnd + H_feedback, 1)`.
//!
//! As in the paper (§5.3, footnote 6), XCP "needs to know the bandwidth of
//! the outgoing link"; for trace-driven cellular links we configure it with
//! the long-term average rate.

use netsim::cc::{AckInfo, CongestionControl, LossEvent};
use netsim::packet::{Packet, XcpHeader};
use netsim::router::RouterHook;
use netsim::time::Ns;

/// Efficiency-controller gain on spare bandwidth.
pub const XCP_ALPHA: f64 = 0.4;
/// Efficiency-controller gain on persistent queue.
pub const XCP_BETA: f64 = 0.226;
/// Fraction of traffic shuffled each interval for fairness convergence.
pub const SHUFFLE: f64 = 0.1;
/// Initial window, packets.
pub const INITIAL_WINDOW: f64 = 2.0;
/// A sender's default demand: ask for up to one extra packet of window
/// per packet sent (doubling per RTT), letting the router cap from there.
pub const DEFAULT_DEMAND: f64 = 1.0;

// ---------------------------------------------------------------------------
// Endpoint
// ---------------------------------------------------------------------------

/// XCP endpoint congestion control.
#[derive(Clone, Debug)]
pub struct Xcp {
    cwnd: f64,
    srtt: Ns,
}

impl Xcp {
    /// Fresh endpoint.
    pub fn new() -> Xcp {
        Xcp {
            cwnd: INITIAL_WINDOW,
            srtt: Ns::ZERO,
        }
    }
}

impl Default for Xcp {
    fn default() -> Self {
        Xcp::new()
    }
}

impl CongestionControl for Xcp {
    fn on_flow_start(&mut self, _now: Ns) {
        *self = Xcp::new();
    }

    fn on_ack(&mut self, info: &AckInfo) {
        self.srtt = info.srtt;
        if let Some(fb) = info.xcp_feedback {
            self.cwnd = (self.cwnd + fb).max(1.0);
        }
    }

    fn on_loss(&mut self, _now: Ns, event: LossEvent) {
        // Losses mean the explicit control loop failed (e.g. trace links
        // whose instantaneous rate dives below the configured capacity);
        // fall back to TCP-like reactions.
        match event {
            LossEvent::FastRetransmit => self.cwnd = (self.cwnd / 2.0).max(1.0),
            LossEvent::Timeout => self.cwnd = 1.0,
        }
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn xcp_header(&self) -> Option<XcpHeader> {
        Some(XcpHeader {
            cwnd_pkts: self.cwnd.max(1.0),
            rtt: self.srtt,
            feedback: DEFAULT_DEMAND,
        })
    }

    fn name(&self) -> &str {
        "XCP"
    }
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

/// Per-interval accumulators.
#[derive(Clone, Copy, Debug, Default)]
struct IntervalAcc {
    /// Packets that arrived.
    input_pkts: f64,
    /// Σ rtt_i (seconds).
    sum_rtt: f64,
    /// Σ rtt_i² / cwnd_i (seconds²/packet).
    sum_rtt2_over_cwnd: f64,
    /// Minimum queue occupancy observed (persistent queue).
    min_queue: usize,
}

/// The XCP bottleneck controller, attached to the simulator as a
/// [`RouterHook`].
pub struct XcpRouter {
    /// Link capacity, packets per second.
    capacity_pps: f64,
    /// Control interval (mean RTT estimate).
    d: Ns,
    acc: IntervalAcc,
    /// Per-packet positive-feedback scale ξ_p from the previous interval.
    xi_pos: f64,
    /// Per-packet negative-feedback scale ξ_n from the previous interval.
    xi_neg: f64,
    /// Last computed aggregate feedback (diagnostics/tests).
    last_phi: f64,
}

impl XcpRouter {
    /// Build a controller for a link of `capacity_mbps` carrying
    /// `mss`-byte packets.
    pub fn new(capacity_mbps: f64, mss: u32) -> XcpRouter {
        XcpRouter {
            capacity_pps: capacity_mbps * 1e6 / 8.0 / mss as f64,
            d: Ns::from_millis(100),
            acc: IntervalAcc {
                min_queue: usize::MAX,
                ..IntervalAcc::default()
            },
            xi_pos: 0.0,
            xi_neg: 0.0,
            last_phi: 0.0,
        }
    }

    /// Last aggregate feedback φ, packets (tests).
    pub fn last_phi(&self) -> f64 {
        self.last_phi
    }
}

impl RouterHook for XcpRouter {
    fn on_arrival(&mut self, _now: Ns, p: &mut Packet, queue_pkts: usize) {
        let Some(h) = p.xcp.as_mut() else {
            return; // non-XCP cross traffic passes untouched
        };
        let rtt = if h.rtt.is_zero() {
            self.d.as_secs_f64()
        } else {
            h.rtt.as_secs_f64()
        };
        let cwnd = h.cwnd_pkts.max(1.0);
        // Accumulate for the next interval's scales.
        self.acc.input_pkts += 1.0;
        self.acc.sum_rtt += rtt;
        self.acc.sum_rtt2_over_cwnd += rtt * rtt / cwnd;
        self.acc.min_queue = self.acc.min_queue.min(queue_pkts);
        // Hand out feedback using the scales computed at the last tick.
        let p_i = self.xi_pos * rtt * rtt / cwnd;
        let n_i = self.xi_neg * rtt;
        let computed = p_i - n_i;
        // The sender's demand caps positive feedback.
        h.feedback = computed.min(h.feedback);
    }

    fn on_departure(&mut self, _now: Ns, _p: &mut Packet, _queue_pkts: usize) {}

    fn tick_interval(&self) -> Option<Ns> {
        Some(self.d)
    }

    fn on_tick(&mut self, _now: Ns, queue_pkts: usize) {
        let d = self.d.as_secs_f64();
        let y_pps = self.acc.input_pkts / d; // input traffic rate
        let spare = self.capacity_pps - y_pps;
        let q = if self.acc.min_queue == usize::MAX {
            queue_pkts as f64
        } else {
            self.acc.min_queue as f64
        };
        // Aggregate feedback over the next interval, in packets.
        let phi = XCP_ALPHA * d * spare - XCP_BETA * q;
        self.last_phi = phi;
        let h = (SHUFFLE * self.acc.input_pkts - phi.abs()).max(0.0);
        let pos_budget = h + phi.max(0.0);
        let neg_budget = h + (-phi).max(0.0);
        self.xi_pos = if self.acc.sum_rtt2_over_cwnd > 0.0 {
            pos_budget / self.acc.sum_rtt2_over_cwnd
        } else {
            0.0
        };
        self.xi_neg = if self.acc.sum_rtt > 0.0 {
            neg_budget / self.acc.sum_rtt
        } else {
            0.0
        };
        // Refresh the control interval to the mean RTT of current traffic.
        if self.acc.input_pkts > 0.0 {
            let mean_rtt = self.acc.sum_rtt / self.acc.input_pkts;
            self.d = Ns::from_secs_f64(mean_rtt.clamp(0.010, 0.500));
        }
        self.acc = IntervalAcc {
            min_queue: usize::MAX,
            ..IntervalAcc::default()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::FlowId;

    fn ack_with_feedback(fb: f64) -> AckInfo {
        AckInfo {
            now: Ns::from_millis(100),
            rtt_sample: Ns::from_millis(100),
            min_rtt: Ns::from_millis(100),
            srtt: Ns::from_millis(100),
            echo_ts: Ns::ZERO,
            seq: 0,
            newly_acked: 1,
            in_flight: 10,
            in_recovery: false,
            ecn_echo: false,
            xcp_feedback: Some(fb),
        }
    }

    #[test]
    fn endpoint_applies_feedback_directly() {
        let mut cc = Xcp::new();
        let w = cc.cwnd();
        cc.on_ack(&ack_with_feedback(3.5));
        assert_eq!(cc.cwnd(), w + 3.5);
        cc.on_ack(&ack_with_feedback(-100.0));
        assert_eq!(cc.cwnd(), 1.0, "window floors at one packet");
    }

    #[test]
    fn endpoint_stamps_header() {
        let mut cc = Xcp::new();
        cc.on_ack(&ack_with_feedback(5.0));
        let h = cc.xcp_header().expect("XCP always stamps a header");
        assert_eq!(h.cwnd_pkts, cc.cwnd());
        assert_eq!(h.rtt, Ns::from_millis(100));
        assert_eq!(h.feedback, DEFAULT_DEMAND);
    }

    #[test]
    fn router_grants_increase_on_idle_link() {
        // 15 Mbps link (1250 pkt/s), no traffic in the first interval:
        // spare capacity is the whole link, φ > 0, and packets in the next
        // interval receive positive feedback.
        let mut r = XcpRouter::new(15.0, 1500);
        // First interval: one probe packet so the accumulators are sane.
        let mut p = Packet::data(FlowId::first(0), 0, 1500, Ns::ZERO);
        p.xcp = Some(XcpHeader {
            cwnd_pkts: 2.0,
            rtt: Ns::from_millis(100),
            feedback: 1e9, // unconstrained demand for the test
        });
        r.on_arrival(Ns::ZERO, &mut p, 0);
        r.on_tick(Ns::from_millis(100), 0);
        assert!(r.last_phi() > 0.0, "idle link yields positive feedback");
        // Second interval: a packet should receive positive feedback.
        let mut p2 = Packet::data(FlowId::first(0), 1, 1500, Ns::ZERO);
        p2.xcp = Some(XcpHeader {
            cwnd_pkts: 2.0,
            rtt: Ns::from_millis(100),
            feedback: 1e9,
        });
        r.on_arrival(Ns::from_millis(150), &mut p2, 0);
        assert!(p2.xcp.unwrap().feedback > 0.0);
    }

    #[test]
    fn router_throttles_on_standing_queue() {
        let mut r = XcpRouter::new(15.0, 1500);
        // Saturate: 1250 pkt/s × 0.1 s interval = 125 packets arriving,
        // with a persistent queue of 200 packets.
        for i in 0..125 {
            let mut p = Packet::data(FlowId::first(0), i, 1500, Ns::ZERO);
            p.xcp = Some(XcpHeader {
                cwnd_pkts: 100.0,
                rtt: Ns::from_millis(100),
                feedback: 1e9,
            });
            r.on_arrival(Ns::ZERO, &mut p, 200);
        }
        r.on_tick(Ns::from_millis(100), 200);
        assert!(
            r.last_phi() < 0.0,
            "full link + standing queue must yield negative φ, got {}",
            r.last_phi()
        );
        // Next packet gets net-negative feedback.
        let mut p = Packet::data(FlowId::first(0), 999, 1500, Ns::ZERO);
        p.xcp = Some(XcpHeader {
            cwnd_pkts: 100.0,
            rtt: Ns::from_millis(100),
            feedback: 1e9,
        });
        r.on_arrival(Ns::from_millis(150), &mut p, 200);
        assert!(p.xcp.unwrap().feedback < 0.0);
    }

    #[test]
    fn demand_caps_positive_feedback() {
        let mut r = XcpRouter::new(100.0, 1500);
        let mut probe = Packet::data(FlowId::first(0), 0, 1500, Ns::ZERO);
        probe.xcp = Some(XcpHeader {
            cwnd_pkts: 1.0,
            rtt: Ns::from_millis(100),
            feedback: 1e9,
        });
        r.on_arrival(Ns::ZERO, &mut probe, 0);
        r.on_tick(Ns::from_millis(100), 0);
        let mut p = Packet::data(FlowId::first(0), 1, 1500, Ns::ZERO);
        p.xcp = Some(XcpHeader {
            cwnd_pkts: 1.0,
            rtt: Ns::from_millis(100),
            feedback: 0.25, // modest demand
        });
        r.on_arrival(Ns::from_millis(150), &mut p, 0);
        assert!(p.xcp.unwrap().feedback <= 0.25);
    }

    #[test]
    fn non_xcp_packets_pass_untouched() {
        let mut r = XcpRouter::new(15.0, 1500);
        let mut p = Packet::data(FlowId::first(0), 0, 1500, Ns::ZERO);
        r.on_arrival(Ns::ZERO, &mut p, 5);
        assert!(p.xcp.is_none());
    }

    #[test]
    fn loss_fallback_behaves_like_tcp() {
        let mut cc = Xcp::new();
        cc.cwnd = 40.0;
        cc.on_loss(Ns::ZERO, LossEvent::FastRetransmit);
        assert_eq!(cc.cwnd(), 20.0);
        cc.on_loss(Ns::ZERO, LossEvent::Timeout);
        assert_eq!(cc.cwnd(), 1.0);
    }
}
