//! Property-based tests: no baseline scheme ever produces a non-finite or
//! non-positive window, whatever event sequence it sees.

use congestion::Scheme;
use netsim::cc::{AckInfo, LossEvent};
use netsim::time::Ns;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Event {
    Ack {
        newly: u64,
        rtt_ms: u64,
        marked: bool,
        xcp: Option<i32>,
    },
    Loss(bool), // true = timeout
    Restart,
}

fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (
            0u64..4,
            50u64..500,
            any::<bool>(),
            prop::option::of(-20i32..20)
        )
            .prop_map(|(newly, rtt_ms, marked, xcp)| Event::Ack {
                newly,
                rtt_ms,
                marked,
                xcp
            }),
        any::<bool>().prop_map(Event::Loss),
        Just(Event::Restart),
    ]
}

fn all_schemes() -> Vec<Scheme> {
    let mut v = Scheme::standard_suite();
    v.push(Scheme::Dctcp { mark_threshold: 20 });
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn windows_stay_finite_and_positive(events in prop::collection::vec(arb_event(), 1..200)) {
        for scheme in all_schemes() {
            let mut cc = scheme.build_cc();
            cc.on_flow_start(Ns::ZERO);
            let mut now = Ns::ZERO;
            let mut min_rtt = Ns::from_millis(500);
            for e in &events {
                now += Ns::from_millis(10);
                match e {
                    Event::Ack { newly, rtt_ms, marked, xcp } => {
                        let rtt = Ns::from_millis(*rtt_ms);
                        min_rtt = min_rtt.min(rtt);
                        let info = AckInfo {
                            now,
                            rtt_sample: rtt,
                            min_rtt,
                            srtt: rtt,
                            echo_ts: now.saturating_sub(rtt),
                            seq: 0,
                            newly_acked: *newly,
                            in_flight: 10,
                            in_recovery: false,
                            ecn_echo: *marked,
                            xcp_feedback: xcp.map(|x| x as f64),
                        };
                        cc.on_ack(&info);
                    }
                    Event::Loss(timeout) => {
                        let kind = if *timeout { LossEvent::Timeout } else { LossEvent::FastRetransmit };
                        cc.on_loss(now, kind);
                    }
                    Event::Restart => cc.on_flow_start(now),
                }
                let w = cc.cwnd();
                prop_assert!(w.is_finite(), "{}: non-finite window", scheme.label());
                prop_assert!(w >= 1.0 - 1e-9, "{}: window {w} below 1", scheme.label());
                prop_assert!(w <= 1e7, "{}: window {w} exploded", scheme.label());
                prop_assert!(cc.pacing().0 < u64::MAX, "{}: pacing overflow", scheme.label());
            }
        }
    }
}
