//! RemyCC actions (§4.2) and the optimizer's candidate neighbourhood
//! (§4.3 step 3).
//!
//! An action has three components, applied on every incoming ACK:
//!
//! * `m` — a multiple (≥ 0) applied to the congestion window;
//! * `b` — an increment (possibly negative) added to the window;
//! * `r` — a lower bound, in milliseconds, on the spacing between
//!   successive transmissions (a rate pacer).
//!
//! During optimization Remy evaluates "roughly 100 candidate increments to
//! the current action, increasing geometrically in granularity … e.g.
//! r±0.01, r±0.08, r±0.64, taking the Cartesian product with the
//! alternatives for m and b".

use netsim::time::Ns;

/// Bounds keeping actions physical: the window multiple.
pub const M_RANGE: (f64, f64) = (0.0, 2.0);
/// Bounds on the window increment, packets.
pub const B_RANGE: (f64, f64) = (-64.0, 256.0);
/// Bounds on the intersend pacing, milliseconds.
pub const R_RANGE: (f64, f64) = (0.001, 1_000.0);

/// Geometric offset magnitudes for the window multiple.
pub const M_STEPS: [f64; 3] = [0.01, 0.08, 0.64];
/// Geometric offset magnitudes for the window increment.
pub const B_STEPS: [f64; 3] = [1.0, 8.0, 64.0];
/// Geometric offset magnitudes for the intersend time (ms).
pub const R_STEPS: [f64; 3] = [0.01, 0.08, 0.64];

/// One RemyCC action.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Action {
    /// Window multiple `m ≥ 0`.
    pub window_multiple: f64,
    /// Window increment `b` (may be negative).
    pub window_increment: f64,
    /// Pacing lower bound `r > 0`, milliseconds.
    pub intersend_ms: f64,
}

impl Action {
    /// The default action Remy initializes a single-rule table with:
    /// `m = 1, b = 1, r = 0.01` (§4.3).
    pub const DEFAULT: Action = Action {
        window_multiple: 1.0,
        window_increment: 1.0,
        intersend_ms: 0.01,
    };

    /// Clamp all components into their physical ranges.
    pub fn clamped(mut self) -> Action {
        self.window_multiple = self.window_multiple.clamp(M_RANGE.0, M_RANGE.1);
        self.window_increment = self.window_increment.clamp(B_RANGE.0, B_RANGE.1);
        self.intersend_ms = self.intersend_ms.clamp(R_RANGE.0, R_RANGE.1);
        self
    }

    /// Apply this action to a congestion window, returning the new window
    /// (clamped to `[1, 4096]` packets so a degenerate candidate cannot
    /// silence a flow forever — the RTO path keeps the ACK clock alive).
    pub fn apply(&self, window: f64) -> f64 {
        (self.window_multiple * window + self.window_increment).clamp(1.0, 4096.0)
    }

    /// The pacing gap as simulator time.
    pub fn intersend(&self) -> Ns {
        Ns::from_millis_f64(self.intersend_ms)
    }

    /// The optimizer's candidate neighbourhood: the Cartesian product of
    /// `{0, ±step}` moves per component over the geometric step tables,
    /// clamped and deduplicated, current action excluded.
    pub fn neighbourhood(&self) -> Vec<Action> {
        let mut ms = vec![self.window_multiple];
        for s in M_STEPS {
            ms.push(self.window_multiple + s);
            ms.push(self.window_multiple - s);
        }
        let mut bs = vec![self.window_increment];
        for s in B_STEPS {
            bs.push(self.window_increment + s);
            bs.push(self.window_increment - s);
        }
        let mut rs = vec![self.intersend_ms];
        for s in R_STEPS {
            rs.push(self.intersend_ms + s);
            rs.push(self.intersend_ms - s);
        }
        let mut out = Vec::with_capacity(ms.len() * bs.len() * rs.len());
        for &m in &ms {
            for &b in &bs {
                for &r in &rs {
                    let c = Action {
                        window_multiple: m,
                        window_increment: b,
                        intersend_ms: r,
                    }
                    .clamped();
                    if c != *self && !out.contains(&c) {
                        out.push(c);
                    }
                }
            }
        }
        out
    }
}

impl Default for Action {
    fn default() -> Self {
        Action::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let a = Action::DEFAULT;
        assert_eq!(a.window_multiple, 1.0);
        assert_eq!(a.window_increment, 1.0);
        assert_eq!(a.intersend_ms, 0.01);
    }

    #[test]
    fn apply_is_affine_and_clamped() {
        let a = Action {
            window_multiple: 0.5,
            window_increment: 3.0,
            intersend_ms: 1.0,
        };
        assert_eq!(a.apply(10.0), 8.0);
        // Lower clamp at one packet.
        let shrink = Action {
            window_multiple: 0.0,
            window_increment: -10.0,
            intersend_ms: 1.0,
        };
        assert_eq!(shrink.apply(100.0), 1.0);
        // Upper clamp.
        let grow = Action {
            window_multiple: 2.0,
            window_increment: 256.0,
            intersend_ms: 1.0,
        };
        assert_eq!(grow.apply(4096.0), 4096.0);
    }

    #[test]
    fn clamp_ranges() {
        let a = Action {
            window_multiple: -1.0,
            window_increment: 1e9,
            intersend_ms: 0.0,
        }
        .clamped();
        assert_eq!(a.window_multiple, 0.0);
        assert_eq!(a.window_increment, B_RANGE.1);
        assert_eq!(a.intersend_ms, R_RANGE.0);
    }

    #[test]
    fn neighbourhood_is_roughly_a_hundred_up_to_clamping() {
        let n = Action::DEFAULT.neighbourhood();
        // 7×7×7 − 1 = 342 raw; clamping dedups some (b = 1−64 clamps to
        // −63 ≠ −64 boundary etc.). It must be "roughly 100" or more and
        // never contain the current action.
        assert!(n.len() >= 100, "only {} candidates", n.len());
        assert!(!n.contains(&Action::DEFAULT));
        // All clamped.
        for c in &n {
            assert!(c.window_multiple >= M_RANGE.0 && c.window_multiple <= M_RANGE.1);
            assert!(c.intersend_ms >= R_RANGE.0);
        }
    }

    #[test]
    fn neighbourhood_contains_geometric_moves() {
        let n = Action::DEFAULT.neighbourhood();
        let has = |m: f64, b: f64, r: f64| {
            n.iter().any(|a| {
                (a.window_multiple - m).abs() < 1e-12
                    && (a.window_increment - b).abs() < 1e-12
                    && (a.intersend_ms - r).abs() < 1e-12
            })
        };
        assert!(has(1.01, 1.0, 0.01), "m+0.01");
        assert!(has(1.64, 1.0, 0.01), "m+0.64");
        assert!(has(1.0, 9.0, 0.01), "b+8");
        assert!(has(1.0, 1.0, 0.65), "r+0.64");
    }

    #[test]
    fn intersend_conversion() {
        let a = Action {
            intersend_ms: 2.5,
            ..Action::DEFAULT
        };
        assert_eq!(a.intersend(), Ns::from_micros(2500));
    }
}
