//! Pre-trained RemyCC rule tables.
//!
//! The paper's RemyCCs took "3–5 CPU-days" each on large servers; the
//! tables shipped here were produced by `examples/train_remycc.rs` with a
//! laptop-scale budget (see each table's embedded `provenance` string for
//! the exact model, objective, and budget). Regenerate any of them with:
//!
//! ```text
//! cargo run --release -p remy-sim --example train_remycc -- <name> <seconds>
//! ```
//!
//! Tables are stored as JSON under `crates/core/assets/` and compiled into
//! the binary, so experiment harnesses need no filesystem access.

use crate::whisker::WhiskerTree;
use std::sync::Arc;

/// Names of the shipped tables.
pub const TABLE_NAMES: [&str; 7] = [
    "delta01",
    "delta1",
    "delta10",
    "onex",
    "tenx",
    "datacenter",
    "coexist",
];

fn parse(name: &str, json: &str) -> Arc<WhiskerTree> {
    Arc::new(
        WhiskerTree::from_json(json)
            // lint:allow(p2-sim-panic): the table is compiled into the
            // binary; a parse failure means the build itself is corrupt.
            .unwrap_or_else(|e| panic!("shipped table '{name}' is corrupt: {e}")),
    )
}

/// RemyCC for the general model with δ = 0.1 (throughput-leaning).
pub fn delta01() -> Arc<WhiskerTree> {
    parse("delta01", include_str!("../assets/delta01.json"))
}

/// RemyCC for the general model with δ = 1.
pub fn delta1() -> Arc<WhiskerTree> {
    parse("delta1", include_str!("../assets/delta1.json"))
}

/// RemyCC for the general model with δ = 10 (delay-leaning).
pub fn delta10() -> Arc<WhiskerTree> {
    parse("delta10", include_str!("../assets/delta10.json"))
}

/// The "1×" RemyCC of §5.7: link speed known exactly (15 Mbps).
pub fn onex() -> Arc<WhiskerTree> {
    parse("onex", include_str!("../assets/onex.json"))
}

/// The "10×" RemyCC of §5.7: link speed known to a tenfold range
/// (4.7–47 Mbps).
pub fn tenx() -> Arc<WhiskerTree> {
    parse("tenx", include_str!("../assets/tenx.json"))
}

/// The datacenter RemyCC of §5.5 (α = 2 objective, 10 Gbps / 4 ms model).
pub fn datacenter() -> Arc<WhiskerTree> {
    parse("datacenter", include_str!("../assets/datacenter.json"))
}

/// The §5.6 coexistence RemyCC (designed for RTTs of 100 ms – 10 s).
pub fn coexist() -> Arc<WhiskerTree> {
    parse("coexist", include_str!("../assets/coexist.json"))
}

/// Look a table up by name (the names in [`TABLE_NAMES`]).
pub fn by_name(name: &str) -> Option<Arc<WhiskerTree>> {
    match name {
        "delta01" => Some(delta01()),
        "delta1" => Some(delta1()),
        "delta10" => Some(delta10()),
        "onex" => Some(onex()),
        "tenx" => Some(tenx()),
        "datacenter" => Some(datacenter()),
        "coexist" => Some(coexist()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::Memory;

    #[test]
    fn all_tables_parse_and_cover_memory_space() {
        for name in TABLE_NAMES {
            let t = by_name(name).expect("known name");
            assert!(!t.is_empty(), "{name} is empty");
            // Lookup is total over a grid of points.
            for &a in &[0.0, 1.0, 50.0, 16_000.0] {
                for &r in &[0.0, 1.0, 2.5, 100.0] {
                    let m = Memory {
                        ack_ewma_ms: a,
                        send_ewma_ms: a / 2.0,
                        rtt_ratio: r,
                    };
                    let w = t.lookup(m);
                    assert!(w.domain.contains(m.clamped()), "{name} lookup broken");
                }
            }
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn tables_carry_provenance() {
        for name in TABLE_NAMES {
            let t = by_name(name).expect("known name");
            assert!(
                !t.provenance.is_empty(),
                "{name} should record how it was trained"
            );
        }
    }
}
