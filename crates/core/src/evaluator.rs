//! Evaluating candidate rule tables (§4.3's inner loop).
//!
//! "A single evaluation step … consists of drawing 16 or more network
//! specimens from the network model, then simulating the RemyCC algorithm
//! at each sender for 100 seconds on each network specimen. At the end of
//! the simulation, the objective function for each sender … is totaled to
//! produce an overall figure of merit."
//!
//! Common random numbers are essential: the same specimen scenarios (same
//! seeds) are reused for every candidate action so comparisons see the
//! same traffic randomness.

use crate::model::NetworkModel;
use crate::objective::Objective;
use crate::remycc::RemyCc;
use crate::whisker::{Usage, WhiskerTree};
use netsim::cc::CongestionControl;
use netsim::rng::SimRng;
use netsim::scenario::Scenario;
use netsim::sim::Simulator;
use netsim::time::Ns;
use rayon::prelude::*;
use std::sync::{Arc, Mutex};

/// Evaluation budget knobs. The paper simulates ≥16 specimens for 100 s
/// each on a 48-core server; the defaults here are laptop-scale and can be
/// raised for sharper tables.
#[derive(Clone, Copy, Debug)]
pub struct EvalConfig {
    /// Specimen networks per evaluation.
    pub specimens: usize,
    /// Simulated seconds per specimen.
    pub sim_secs: f64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            specimens: 16,
            sim_secs: 100.0,
        }
    }
}

/// Evaluates rule tables against a network model and objective.
pub struct Evaluator {
    /// The design-range model specimens are drawn from.
    pub model: NetworkModel,
    /// The figure of merit.
    pub objective: Objective,
    /// Budget knobs.
    pub config: EvalConfig,
}

impl Evaluator {
    /// Build an evaluator.
    pub fn new(model: NetworkModel, objective: Objective, config: EvalConfig) -> Evaluator {
        Evaluator {
            model,
            objective,
            config,
        }
    }

    /// Draw a specimen set. Each distinct `draw_seed` yields a different
    /// set; reusing a seed reproduces the same set exactly (common random
    /// numbers across candidate actions).
    pub fn specimens(&self, draw_seed: u64) -> Vec<Scenario> {
        let mut rng = SimRng::new(draw_seed ^ 0x5EED_5EED);
        let dur = Ns::from_secs_f64(self.config.sim_secs);
        (0..self.config.specimens)
            .map(|_| self.model.sample(&mut rng, dur))
            .collect()
    }

    /// Run one table over a specimen set: total objective score plus
    /// whisker-usage statistics.
    pub fn evaluate(&self, tree: &Arc<WhiskerTree>, specimens: &[Scenario]) -> (f64, Usage) {
        let sink = Arc::new(Mutex::new(Usage::new(tree.id_bound())));
        let mut score = 0.0;
        for sc in specimens {
            let ccs: Vec<Box<dyn CongestionControl>> = (0..sc.n())
                .map(|_| {
                    Box::new(
                        RemyCc::new(Arc::clone(tree)).with_usage_sink(Arc::clone(&sink)),
                    ) as Box<dyn CongestionControl>
                })
                .collect();
            let (results, ccs) = Simulator::new(sc, ccs, None).run_returning_ccs();
            drop(ccs); // flush usage sinks
            score += self.objective.score_results(&results);
        }
        let usage = Arc::try_unwrap(sink)
            .map(|m| m.into_inner().expect("sink"))
            .unwrap_or_else(|arc| arc.lock().expect("sink").clone());
        (score, usage)
    }

    /// Score only (skips usage plumbing where it isn't needed).
    pub fn score(&self, tree: &Arc<WhiskerTree>, specimens: &[Scenario]) -> f64 {
        let mut score = 0.0;
        for sc in specimens {
            let ccs: Vec<Box<dyn CongestionControl>> = (0..sc.n())
                .map(|_| {
                    Box::new(RemyCc::new(Arc::clone(tree))) as Box<dyn CongestionControl>
                })
                .collect();
            let results = Simulator::new(sc, ccs, None).run();
            score += self.objective.score_results(&results);
        }
        score
    }

    /// Evaluate many candidate tables in parallel over the *same*
    /// specimens, returning each candidate's score in input order.
    /// Deterministic: scores are collected positionally, so thread timing
    /// cannot change the result.
    pub fn score_candidates(
        &self,
        candidates: &[Arc<WhiskerTree>],
        specimens: &[Scenario],
    ) -> Vec<f64> {
        candidates
            .par_iter()
            .map(|tree| self.score(tree, specimens))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;

    fn tiny_eval() -> Evaluator {
        Evaluator::new(
            NetworkModel::general(),
            Objective::proportional(1.0),
            EvalConfig {
                specimens: 3,
                sim_secs: 8.0,
            },
        )
    }

    #[test]
    fn specimen_sets_reproduce_with_same_seed() {
        let e = tiny_eval();
        let a = e.specimens(5);
        let b = e.specimens(5);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.n(), y.n());
            assert_eq!(x.seed, y.seed);
        }
        let c = e.specimens(6);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.seed != y.seed),
            "different draw seeds give different specimens"
        );
    }

    #[test]
    fn evaluation_is_deterministic() {
        let e = tiny_eval();
        let tree = Arc::new(WhiskerTree::single_rule());
        let specimens = e.specimens(1);
        let (s1, u1) = e.evaluate(&tree, &specimens);
        let (s2, u2) = e.evaluate(&tree, &specimens);
        assert_eq!(s1, s2);
        assert_eq!(u1.total(), u2.total());
        assert!(u1.total() > 0, "rules must actually fire");
    }

    #[test]
    fn score_matches_evaluate() {
        let e = tiny_eval();
        let tree = Arc::new(WhiskerTree::single_rule());
        let specimens = e.specimens(2);
        let (s, _) = e.evaluate(&tree, &specimens);
        assert_eq!(s, e.score(&tree, &specimens));
    }

    #[test]
    fn better_actions_score_better() {
        // A pathologically slow action (tiny window forever, huge pacing
        // gap) must lose to the sane default under the same specimens.
        let e = tiny_eval();
        let specimens = e.specimens(3);
        let good = Arc::new(WhiskerTree::single_rule());
        let mut bad_tree = WhiskerTree::single_rule();
        bad_tree.set_action(
            0,
            Action {
                window_multiple: 0.0,
                window_increment: 1.0,
                intersend_ms: 200.0,
            },
        );
        let bad = Arc::new(bad_tree);
        let scores = e.score_candidates(&[good, bad], &specimens);
        assert!(
            scores[0] > scores[1],
            "default ({}) must beat crippled ({})",
            scores[0],
            scores[1]
        );
    }

    #[test]
    fn parallel_scores_match_serial() {
        let e = tiny_eval();
        let specimens = e.specimens(4);
        let t1 = Arc::new(WhiskerTree::single_rule());
        let mut t2m = WhiskerTree::single_rule();
        t2m.set_action(
            0,
            Action {
                window_multiple: 1.0,
                window_increment: 2.0,
                intersend_ms: 0.01,
            },
        );
        let t2 = Arc::new(t2m);
        let par = e.score_candidates(&[Arc::clone(&t1), Arc::clone(&t2)], &specimens);
        assert_eq!(par[0], e.score(&t1, &specimens));
        assert_eq!(par[1], e.score(&t2, &specimens));
    }
}
