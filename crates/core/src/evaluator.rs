//! Evaluating candidate rule tables (§4.3's inner loop).
//!
//! "A single evaluation step … consists of drawing 16 or more network
//! specimens from the network model, then simulating the RemyCC algorithm
//! at each sender for 100 seconds on each network specimen. At the end of
//! the simulation, the objective function for each sender … is totaled to
//! produce an overall figure of merit."
//!
//! Common random numbers are essential: the same specimen scenarios (same
//! seeds) are reused for every candidate action so comparisons see the
//! same traffic randomness.

use crate::action::Action;
use crate::model::NetworkModel;
use crate::objective::Objective;
use crate::remycc::RemyCc;
use crate::whisker::{Usage, WhiskerTree};
use netsim::cc::CongestionControl;
use netsim::rng::SimRng;
use netsim::scenario::Scenario;
use netsim::sim::Simulator;
use netsim::time::Ns;
use rayon::prelude::*;
use std::sync::Arc;

/// Set the number of worker threads used by all parallel evaluation
/// (`0` = automatic: `REMY_JOBS` if set, else all available cores).
/// Trained tables are byte-identical at any setting — parallel results
/// are collected positionally, never by completion order.
pub fn set_jobs(n: usize) {
    rayon::set_num_threads(n);
}

/// The worker count parallel evaluation will use right now.
pub fn jobs() -> usize {
    rayon::current_num_threads()
}

/// Evaluation budget knobs. The paper simulates ≥16 specimens for 100 s
/// each on a 48-core server; the defaults here are laptop-scale and can be
/// raised for sharper tables.
#[derive(Clone, Copy, Debug)]
pub struct EvalConfig {
    /// Specimen networks per evaluation.
    pub specimens: usize,
    /// Simulated seconds per specimen.
    pub sim_secs: f64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            specimens: 16,
            sim_secs: 100.0,
        }
    }
}

/// Evaluates rule tables against a network model and objective.
pub struct Evaluator {
    /// The design-range model specimens are drawn from.
    pub model: NetworkModel,
    /// The figure of merit.
    pub objective: Objective,
    /// Budget knobs.
    pub config: EvalConfig,
}

impl Evaluator {
    /// Build an evaluator.
    pub fn new(model: NetworkModel, objective: Objective, config: EvalConfig) -> Evaluator {
        Evaluator {
            model,
            objective,
            config,
        }
    }

    /// Draw a specimen set. Each distinct `draw_seed` yields a different
    /// set; reusing a seed reproduces the same set exactly (common random
    /// numbers across candidate actions).
    pub fn specimens(&self, draw_seed: u64) -> Vec<Scenario> {
        // lint:allow(r2-rng-underived-seed): frozen specimen-draw stream constant;
        // changing the derivation re-randomizes every published evaluation.
        let mut rng = SimRng::new(draw_seed ^ 0x5EED_5EED);
        let dur = Ns::from_secs_f64(self.config.sim_secs);
        (0..self.config.specimens)
            .map(|_| self.model.sample(&mut rng, dur))
            .collect()
    }

    /// One simulation cell: a table (optionally with a hill-climb overlay
    /// on one rule) on one specimen. Returns the objective score and, if
    /// requested, the whisker-usage statistics of that run.
    fn simulate_cell(
        &self,
        tree: &Arc<WhiskerTree>,
        overlay: Option<(usize, Action)>,
        sc: &Scenario,
        want_usage: bool,
    ) -> (f64, Option<Usage>) {
        let ccs: Vec<Box<dyn CongestionControl>> = (0..sc.n())
            .map(|_| {
                let cc = RemyCc::new(Arc::clone(tree));
                let cc = match overlay {
                    Some((rule, action)) => cc.with_candidate(rule, action),
                    None => cc,
                };
                Box::new(cc) as Box<dyn CongestionControl>
            })
            .collect();
        let (results, mut ccs) = Simulator::new(sc, ccs, None).run_returning_ccs();
        let usage = want_usage.then(|| {
            // Merge sender usages in sender order: deterministic.
            let mut usage = Usage::new(tree.id_bound());
            for cc in ccs.iter_mut() {
                if let Some(u) = cc.take_usage() {
                    usage.merge(&u);
                }
            }
            usage
        });
        (self.objective.score_results(&results), usage)
    }

    /// Run one table over a specimen set, each specimen simulated on its
    /// own worker: per-specimen scores (in specimen order) plus the merged
    /// whisker-usage statistics. Deterministic at any thread count: cells
    /// are collected positionally and usages merged in specimen order.
    pub fn evaluate_per_specimen(
        &self,
        tree: &Arc<WhiskerTree>,
        specimens: &[Scenario],
    ) -> (Vec<f64>, Usage) {
        let cells: Vec<(f64, Option<Usage>)> = specimens
            .par_iter()
            .map(|sc| self.simulate_cell(tree, None, sc, true))
            .collect();
        let mut usage = Usage::new(tree.id_bound());
        let mut scores = Vec::with_capacity(cells.len());
        for (score, cell_usage) in cells {
            scores.push(score);
            // lint:allow(p1-sim-unwrap): simulate_cell was called with
            // want_usage=true two lines up, so the usage is always Some.
            usage.merge(&cell_usage.expect("usage requested"));
        }
        (scores, usage)
    }

    /// Run one table over a specimen set: total objective score plus
    /// whisker-usage statistics.
    pub fn evaluate(&self, tree: &Arc<WhiskerTree>, specimens: &[Scenario]) -> (f64, Usage) {
        let (scores, usage) = self.evaluate_per_specimen(tree, specimens);
        (scores.iter().sum(), usage)
    }

    /// Score only (skips usage plumbing where it isn't needed). Specimens
    /// run in parallel; the total is summed in specimen order.
    pub fn score(&self, tree: &Arc<WhiskerTree>, specimens: &[Scenario]) -> f64 {
        self.score_matrix(1, specimens, |_, sc| {
            self.simulate_cell(tree, None, sc, false).0
        })[0]
    }

    /// The flattened (row × specimen) work matrix behind all candidate
    /// scoring: `rows` candidates, each simulated on every specimen by
    /// `cell(row, specimen)`, as one parallel map so load-balancing is
    /// per-simulation rather than per-candidate — a slow specimen can't
    /// serialize a whole candidate behind one worker. Deterministic: cells
    /// are collected positionally and each row's score is summed in
    /// specimen order, so thread timing cannot change the result.
    fn score_matrix(
        &self,
        rows: usize,
        specimens: &[Scenario],
        cell: impl Fn(usize, &Scenario) -> f64 + Sync,
    ) -> Vec<f64> {
        if specimens.is_empty() {
            return vec![0.0; rows];
        }
        let cells: Vec<(usize, usize)> = (0..rows)
            .flat_map(|r| (0..specimens.len()).map(move |si| (r, si)))
            .collect();
        let scored: Vec<f64> = cells
            .par_iter()
            .map(|&(r, si)| cell(r, &specimens[si]))
            .collect();
        scored
            .chunks(specimens.len())
            .map(|row| row.iter().sum())
            .collect()
    }

    /// Evaluate many candidate tables over the *same* specimens, returning
    /// each candidate's score in input order (see [`Self::score_matrix`]
    /// for the parallelism and determinism guarantees).
    pub fn score_candidates(
        &self,
        candidates: &[Arc<WhiskerTree>],
        specimens: &[Scenario],
    ) -> Vec<f64> {
        self.score_matrix(candidates.len(), specimens, |ci, sc| {
            self.simulate_cell(&candidates[ci], None, sc, false).0
        })
    }

    /// Score hill-climb candidates as cheap overlays of a base table:
    /// candidate `k` behaves as `base` with rule `rule`'s action replaced
    /// by `actions[k]`, with no per-candidate tree clone. Same flattened
    /// work matrix and determinism guarantees as [`Self::score_candidates`].
    pub fn score_overlays(
        &self,
        base: &Arc<WhiskerTree>,
        rule: usize,
        actions: &[Action],
        specimens: &[Scenario],
    ) -> Vec<f64> {
        self.score_matrix(actions.len(), specimens, |ai, sc| {
            self.simulate_cell(base, Some((rule, actions[ai])), sc, false)
                .0
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;

    fn tiny_eval() -> Evaluator {
        Evaluator::new(
            NetworkModel::general(),
            Objective::proportional(1.0),
            EvalConfig {
                specimens: 3,
                sim_secs: 8.0,
            },
        )
    }

    #[test]
    fn specimen_sets_reproduce_with_same_seed() {
        let e = tiny_eval();
        let a = e.specimens(5);
        let b = e.specimens(5);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.n(), y.n());
            assert_eq!(x.seed, y.seed);
        }
        let c = e.specimens(6);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.seed != y.seed),
            "different draw seeds give different specimens"
        );
    }

    #[test]
    fn evaluation_is_deterministic() {
        let e = tiny_eval();
        let tree = Arc::new(WhiskerTree::single_rule());
        let specimens = e.specimens(1);
        let (s1, u1) = e.evaluate(&tree, &specimens);
        let (s2, u2) = e.evaluate(&tree, &specimens);
        assert_eq!(s1, s2);
        assert_eq!(u1.total(), u2.total());
        assert!(u1.total() > 0, "rules must actually fire");
    }

    #[test]
    fn score_matches_evaluate() {
        let e = tiny_eval();
        let tree = Arc::new(WhiskerTree::single_rule());
        let specimens = e.specimens(2);
        let (s, _) = e.evaluate(&tree, &specimens);
        assert_eq!(s, e.score(&tree, &specimens));
    }

    #[test]
    fn better_actions_score_better() {
        // A pathologically slow action (tiny window forever, huge pacing
        // gap) must lose to the sane default under the same specimens.
        let e = tiny_eval();
        let specimens = e.specimens(3);
        let good = Arc::new(WhiskerTree::single_rule());
        let mut bad_tree = WhiskerTree::single_rule();
        bad_tree.set_action(
            0,
            Action {
                window_multiple: 0.0,
                window_increment: 1.0,
                intersend_ms: 200.0,
            },
        );
        let bad = Arc::new(bad_tree);
        let scores = e.score_candidates(&[good, bad], &specimens);
        assert!(
            scores[0] > scores[1],
            "default ({}) must beat crippled ({})",
            scores[0],
            scores[1]
        );
    }

    #[test]
    fn overlay_scores_match_full_clones() {
        // A candidate evaluated as an overlay must score bit-identically
        // to the same candidate materialized as a cloned, mutated table.
        let e = tiny_eval();
        let specimens = e.specimens(2);
        let base = Arc::new(WhiskerTree::single_rule());
        let actions: Vec<Action> = Action::DEFAULT
            .neighbourhood()
            .into_iter()
            .take(5)
            .collect();
        let clones: Vec<Arc<WhiskerTree>> = actions
            .iter()
            .map(|&a| {
                let mut t = (*base).clone();
                t.set_action(0, a);
                Arc::new(t)
            })
            .collect();
        assert_eq!(
            e.score_overlays(&base, 0, &actions, &specimens),
            e.score_candidates(&clones, &specimens)
        );
    }

    #[test]
    fn per_specimen_scores_sum_to_total() {
        let e = tiny_eval();
        let specimens = e.specimens(9);
        let tree = Arc::new(WhiskerTree::single_rule());
        let (scores, usage) = e.evaluate_per_specimen(&tree, &specimens);
        assert_eq!(scores.len(), specimens.len());
        let (total, usage2) = e.evaluate(&tree, &specimens);
        assert_eq!(total, scores.iter().sum::<f64>());
        assert_eq!(usage.total(), usage2.total());
    }

    #[test]
    fn empty_specimen_sets_score_zero() {
        let e = tiny_eval();
        let t = Arc::new(WhiskerTree::single_rule());
        assert_eq!(e.score_candidates(&[Arc::clone(&t)], &[]), vec![0.0]);
        assert_eq!(e.score_overlays(&t, 0, &[Action::DEFAULT], &[]), vec![0.0]);
    }

    #[test]
    fn parallel_scores_match_serial() {
        let e = tiny_eval();
        let specimens = e.specimens(4);
        let t1 = Arc::new(WhiskerTree::single_rule());
        let mut t2m = WhiskerTree::single_rule();
        t2m.set_action(
            0,
            Action {
                window_multiple: 1.0,
                window_increment: 2.0,
                intersend_ms: 0.01,
            },
        );
        let t2 = Arc::new(t2m);
        let par = e.score_candidates(&[Arc::clone(&t1), Arc::clone(&t2)], &specimens);
        assert_eq!(par[0], e.score(&t1, &specimens));
        assert_eq!(par[1], e.score(&t2, &specimens));
    }
}
