//! Human-readable rule-table reports.
//!
//! §6 of the paper: "digging through the dozens of rules in a RemyCC and
//! figuring out their purpose and function is a challenging job in
//! reverse-engineering." This module is the shovel: it renders a
//! [`WhiskerTree`] as a sorted, annotated table — optionally with usage
//! counts from an evaluation run — so the learned control law can be read.

use crate::whisker::{Usage, Whisker, WhiskerTree};
use std::fmt::Write as _;

/// Compact rendering of one domain bound: `lo..hi` with the huge default
/// upper bound shown as `∞`.
fn bound(lo: f64, hi: f64) -> String {
    let hi_s = if hi > 16_000.0 {
        "inf".to_string()
    } else {
        format!("{hi:.2}")
    };
    format!("[{lo:.2},{hi_s})")
}

fn describe_rule(w: &Whisker, hits: Option<u64>) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "rule {:>3}  ack{} send{} ratio{}  ->  m={:.2} b={:+.1} r={:.3}ms",
        w.id,
        bound(w.domain.lo.ack_ewma_ms, w.domain.hi.ack_ewma_ms),
        bound(w.domain.lo.send_ewma_ms, w.domain.hi.send_ewma_ms),
        bound(w.domain.lo.rtt_ratio, w.domain.hi.rtt_ratio),
        w.action.window_multiple,
        w.action.window_increment,
        w.action.intersend_ms,
    );
    if let Some(h) = hits {
        let _ = write!(s, "  ({h} hits)");
    }
    s
}

/// Render the whole table. With `usage`, rules are sorted by hit count
/// (most-used first) and annotated; without, they appear in tree order.
pub fn report(tree: &WhiskerTree, usage: Option<&Usage>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "RemyCC rule table: {} rules", tree.len());
    if !tree.provenance.is_empty() {
        let _ = writeln!(out, "provenance: {}", tree.provenance);
    }
    let mut rules: Vec<&Whisker> = tree.whiskers();
    if let Some(u) = usage {
        rules.sort_by_key(|w| std::cmp::Reverse(u.count(w.id)));
    }
    for w in rules {
        let _ = writeln!(out, "{}", describe_rule(w, usage.map(|u| u.count(w.id))));
    }
    // A qualitative summary of what the table does.
    let ws = tree.whiskers();
    let aggressive = ws
        .iter()
        .filter(|w| w.action.window_multiple >= 1.0 || w.action.window_increment > 8.0)
        .count();
    let braking = ws
        .iter()
        .filter(|w| w.action.window_multiple < 0.5 && w.action.window_increment <= 8.0)
        .count();
    let paced = ws.iter().filter(|w| w.action.intersend_ms >= 1.0).count();
    let _ = writeln!(
        out,
        "summary: {aggressive} aggressive rule(s), {braking} braking rule(s), {paced} with >=1 ms pacing"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::memory::Memory;

    #[test]
    fn report_lists_every_rule() {
        let mut t = WhiskerTree::single_rule();
        t.split(
            0,
            Memory {
                ack_ewma_ms: 5.0,
                send_ewma_ms: 5.0,
                rtt_ratio: 1.5,
            },
        );
        t.provenance = "test-table".into();
        let r = report(&t, None);
        assert!(r.contains("8 rules"));
        assert!(r.contains("test-table"));
        assert_eq!(r.lines().filter(|l| l.starts_with("rule ")).count(), 8);
        assert!(r.contains("summary:"));
    }

    #[test]
    fn usage_sorts_most_used_first() {
        let mut t = WhiskerTree::single_rule();
        t.split(
            0,
            Memory {
                ack_ewma_ms: 5.0,
                send_ewma_ms: 5.0,
                rtt_ratio: 1.5,
            },
        );
        let ids: Vec<usize> = t.whiskers().iter().map(|w| w.id).collect();
        let mut u = Usage::new(t.id_bound());
        for _ in 0..10 {
            u.record(ids[5], Memory::INITIAL);
        }
        u.record(ids[1], Memory::INITIAL);
        let r = report(&t, Some(&u));
        let pos5 = r.find(&format!("rule {:>3}", ids[5])).unwrap();
        let pos1 = r.find(&format!("rule {:>3}", ids[1])).unwrap();
        assert!(pos5 < pos1, "most-used rule should be listed first");
        assert!(r.contains("(10 hits)"));
    }

    #[test]
    fn summary_classifies_actions() {
        let mut t = WhiskerTree::single_rule();
        t.set_action(
            0,
            Action {
                window_multiple: 0.2,
                window_increment: 1.0,
                intersend_ms: 3.0,
            },
        );
        let r = report(&t, None);
        assert!(r.contains("1 braking rule(s)"));
        assert!(r.contains("1 with >=1 ms pacing"));
    }

    #[test]
    fn infinite_bounds_render_compactly() {
        let t = WhiskerTree::single_rule();
        let r = report(&t, None);
        assert!(r.contains("inf"));
    }
}
