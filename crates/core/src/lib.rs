//! # remy — computer-generated congestion control
//!
//! A from-scratch Rust implementation of the system described in *TCP ex
//! Machina: Computer-Generated Congestion Control* (Winstein &
//! Balakrishnan, SIGCOMM 2013): an offline optimizer ("Remy") that, given
//! prior assumptions about the network and an explicit objective, designs
//! the congestion-control algorithm ("RemyCC") that endpoints should run.
//!
//! * [`memory`] — the three-signal sender state (ack EWMA, send EWMA,
//!   RTT ratio);
//! * [`action`] — (window multiple, window increment, intersend pacing)
//!   triples and the optimizer's candidate neighbourhood;
//! * [`whisker`] — the octree rule table mapping memory regions to
//!   actions, plus usage statistics;
//! * [`remycc`] — the runtime that executes a rule table inside a TCP-like
//!   sender (implements `netsim::cc::CongestionControl`);
//! * [`objective`] — alpha-fairness scoring, `U_α(tput) − δ·U_β(delay)`;
//! * [`model`] — design-range network models (the paper's design tables);
//! * [`evaluator`] — common-random-number evaluation of candidate tables;
//! * [`optimizer`] — the greedy improve/subdivide design loop;
//! * [`assets`] — pre-trained rule tables shipped with the crate.
//!
//! ## Designing a RemyCC
//!
//! ```no_run
//! use remy::prelude::*;
//!
//! let remy = Remy::new(
//!     NetworkModel::general(),          // 10–20 Mbps, 100–200 ms, n ≤ 16
//!     Objective::proportional(1.0),     // log tput − 1·log delay
//!     TrainConfig::default(),
//! );
//! let table = remy.design(|event| println!("{event:?}"));
//! std::fs::write("my_remycc.json", table.to_json()).unwrap();
//! ```
//!
//! ## Running one
//!
//! ```
//! use remy::prelude::*;
//! use netsim::prelude::*;
//! use std::sync::Arc;
//!
//! let tree = Arc::new(WhiskerTree::single_rule());
//! let scenario = Scenario::dumbbell(
//!     LinkSpec::constant(15.0),
//!     QueueSpec::DropTail { capacity: 1000 },
//!     2,
//!     Ns::from_millis(150),
//!     TrafficSpec::saturating(),
//!     Ns::from_secs(5),
//!     1,
//! );
//! let results = run_scenario(&scenario, &|_| Box::new(RemyCc::new(Arc::clone(&tree))));
//! assert!(results.flows[0].bytes > 0);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod action;
pub mod assets;
pub mod evaluator;
pub mod inspect;
pub mod memory;
pub mod model;
pub mod objective;
pub mod optimizer;
pub mod remycc;
pub mod whisker;

pub use netsim::json;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::action::Action;
    pub use crate::evaluator::{set_jobs, EvalConfig, Evaluator};
    pub use crate::memory::{Memory, MemoryTracker};
    pub use crate::model::NetworkModel;
    pub use crate::objective::Objective;
    pub use crate::optimizer::{Remy, TrainConfig, TrainEvent};
    pub use crate::remycc::RemyCc;
    pub use crate::whisker::{Usage, Whisker, WhiskerTree};
}
