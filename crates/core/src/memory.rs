//! The RemyCC memory: the three congestion signals of §4.1.
//!
//! A RemyCC tracks exactly three state variables, updated on each ACK:
//!
//! 1. `ack_ewma` — an EWMA of the interarrival time between new ACKs;
//! 2. `send_ewma` — an EWMA of the spacing between the *sender timestamps*
//!    echoed in those ACKs (the spacing at which the acknowledged packets
//!    were transmitted);
//! 3. `rtt_ratio` — the most recent RTT over the connection's minimum RTT.
//!
//! Both EWMAs give weight 1/8 to the new sample. Deliberately absent are
//! packet loss and the raw RTT: loss-freeness lets RemyCCs ride out
//! stochastic loss, and using the RTT *ratio* prevents the optimizer from
//! learning RTT-specific behaviours (§4.1).

use netsim::time::Ns;

// The `Memory` point type itself lives in `netsim::cc` so that the
// `CongestionControl::take_usage` hook can report per-rule statistics in
// terms of it; the tracking logic below is what makes it a RemyCC.
pub use netsim::cc::{Memory, MEMORY_MAX};

/// EWMA gain for new samples.
pub const EWMA_GAIN: f64 = 1.0 / 8.0;

/// Tracks the raw signals and folds ACKs into a [`Memory`].
#[derive(Clone, Debug, Default)]
pub struct MemoryTracker {
    mem: Memory,
    last_ack_arrival: Option<Ns>,
    last_echo: Option<Ns>,
}

impl MemoryTracker {
    /// Fresh tracker in the initial state.
    pub fn new() -> MemoryTracker {
        MemoryTracker {
            mem: Memory::INITIAL,
            last_ack_arrival: None,
            last_echo: None,
        }
    }

    /// Reset to the all-zeroes state (a new "on" period: RemyCCs "do not
    /// keep state from one on period to the next", §4.1).
    pub fn reset(&mut self) {
        *self = MemoryTracker::new();
    }

    /// Fold one acknowledgment into the memory.
    ///
    /// `now` is the ACK's arrival time, `echo_ts` the echoed sender
    /// timestamp, `rtt_sample`/`min_rtt` the transport's RTT tracking.
    pub fn on_ack(&mut self, now: Ns, echo_ts: Ns, rtt_sample: Ns, min_rtt: Ns) -> Memory {
        if let Some(last) = self.last_ack_arrival {
            let gap = now.saturating_sub(last).as_millis_f64();
            self.mem.ack_ewma_ms += EWMA_GAIN * (gap - self.mem.ack_ewma_ms);
        }
        self.last_ack_arrival = Some(now);

        if let Some(last) = self.last_echo {
            let gap = echo_ts.saturating_sub(last).as_millis_f64();
            self.mem.send_ewma_ms += EWMA_GAIN * (gap - self.mem.send_ewma_ms);
        }
        self.last_echo = Some(echo_ts);

        if !min_rtt.is_zero() && min_rtt != Ns::MAX {
            self.mem.rtt_ratio = rtt_sample.as_secs_f64() / min_rtt.as_secs_f64();
        }
        self.mem = self.mem.clamped();
        self.mem
    }

    /// Current memory value.
    pub fn memory(&self) -> Memory {
        self.mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_zero() {
        let t = MemoryTracker::new();
        assert_eq!(t.memory(), Memory::INITIAL);
    }

    #[test]
    fn first_ack_sets_only_rtt_ratio() {
        let mut t = MemoryTracker::new();
        let m = t.on_ack(
            Ns::from_millis(150),
            Ns::ZERO,
            Ns::from_millis(150),
            Ns::from_millis(150),
        );
        assert_eq!(m.ack_ewma_ms, 0.0, "no interarrival yet");
        assert_eq!(m.send_ewma_ms, 0.0);
        assert!((m.rtt_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_converges_to_steady_gap() {
        let mut t = MemoryTracker::new();
        // ACKs every 10 ms, echoes every 10 ms.
        let mut m = Memory::INITIAL;
        for k in 0..200u64 {
            m = t.on_ack(
                Ns::from_millis(100 + 10 * k),
                Ns::from_millis(10 * k),
                Ns::from_millis(100),
                Ns::from_millis(100),
            );
        }
        assert!(
            (m.ack_ewma_ms - 10.0).abs() < 0.01,
            "ack_ewma {}",
            m.ack_ewma_ms
        );
        assert!((m.send_ewma_ms - 10.0).abs() < 0.01);
    }

    #[test]
    fn ewma_weight_is_one_eighth() {
        let mut t = MemoryTracker::new();
        t.on_ack(
            Ns::from_millis(0),
            Ns::ZERO,
            Ns::from_millis(100),
            Ns::from_millis(100),
        );
        // Second ack 8 ms later: ewma = 0 + (8 − 0)/8 = 1.0.
        let m = t.on_ack(
            Ns::from_millis(8),
            Ns::from_millis(1),
            Ns::from_millis(100),
            Ns::from_millis(100),
        );
        assert!((m.ack_ewma_ms - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rtt_ratio_tracks_queue_growth() {
        let mut t = MemoryTracker::new();
        let m = t.on_ack(
            Ns::from_millis(100),
            Ns::ZERO,
            Ns::from_millis(300),
            Ns::from_millis(100),
        );
        assert!((m.rtt_ratio - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reset_forgets_everything() {
        let mut t = MemoryTracker::new();
        t.on_ack(
            Ns::from_millis(100),
            Ns::ZERO,
            Ns::from_millis(100),
            Ns::from_millis(100),
        );
        t.on_ack(
            Ns::from_millis(120),
            Ns::from_millis(10),
            Ns::from_millis(110),
            Ns::from_millis(100),
        );
        t.reset();
        assert_eq!(t.memory(), Memory::INITIAL);
    }

    #[test]
    fn memory_clamps_to_domain() {
        let m = Memory {
            ack_ewma_ms: 1e9,
            send_ewma_ms: -5.0,
            rtt_ratio: 20_000.0,
        }
        .clamped();
        assert_eq!(m.ack_ewma_ms, MEMORY_MAX);
        assert_eq!(m.send_ewma_ms, 0.0);
        assert_eq!(m.rtt_ratio, MEMORY_MAX);
    }

    #[test]
    fn axis_accessors_roundtrip() {
        let mut m = Memory::INITIAL;
        *m.axis_mut(0) = 1.0;
        *m.axis_mut(1) = 2.0;
        *m.axis_mut(2) = 3.0;
        assert_eq!((m.axis(0), m.axis(1), m.axis(2)), (1.0, 2.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "3 axes")]
    fn axis_out_of_range_panics() {
        let _ = Memory::INITIAL.axis(3);
    }
}
