//! Design-range network models (§3.1, §5.1).
//!
//! Remy's input is a stochastic model of the networks the protocol should
//! handle: ranges for the bottleneck rate, propagation RTT, and the degree
//! of multiplexing, plus the on/off traffic process. Every preset below
//! reproduces a design table from the paper.

use netsim::link::LinkSpec;
use netsim::queue::QueueSpec;
use netsim::rng::SimRng;
use netsim::scenario::{Scenario, SenderConfig};
use netsim::time::Ns;
use netsim::traffic::{OnSpec, TrafficSpec};

/// A stochastic generative model of networks (the "prior assumptions").
#[derive(Clone, Debug)]
pub struct NetworkModel {
    /// Degree of multiplexing: `n` drawn uniformly in this inclusive range.
    pub n_senders: (usize, usize),
    /// Bottleneck link speed, Mbps, drawn uniformly in this range (equal
    /// endpoints = known exactly).
    pub link_mbps: (f64, f64),
    /// Propagation RTT, milliseconds, drawn uniformly.
    pub rtt_ms: (f64, f64),
    /// The senders' offered-load process.
    pub traffic: TrafficSpec,
    /// Queue at design time (the paper uses "unlimited").
    pub queue: QueueSpec,
    /// Segment size, bytes.
    pub mss: u32,
}

impl NetworkModel {
    /// The general-purpose design range (§5.1): n ∈ [1, 16], link
    /// 10–20 Mbps, RTT 100–200 ms, on/off by time with 5 s means,
    /// unlimited queue — "a 64-fold range of bandwidth-delay product
    /// per user".
    pub fn general() -> NetworkModel {
        NetworkModel {
            n_senders: (1, 16),
            link_mbps: (10.0, 20.0),
            rtt_ms: (100.0, 200.0),
            traffic: TrafficSpec {
                on: OnSpec::ByTime {
                    mean: Ns::from_secs(5),
                },
                off_mean: Ns::from_secs(5),
                start_on: false,
            },
            queue: QueueSpec::Unlimited,
            mss: 1500,
        }
    }

    /// The "1×" model of §5.7: link speed known exactly (15 Mbps),
    /// RTT 150 ms, n = 2.
    pub fn exact_link() -> NetworkModel {
        NetworkModel {
            n_senders: (2, 2),
            link_mbps: (15.0, 15.0),
            rtt_ms: (150.0, 150.0),
            ..NetworkModel::general()
        }
    }

    /// The "10×" model of §5.7: link speed in a tenfold range
    /// (4.7–47 Mbps), RTT 150 ms, n = 2.
    pub fn tenx_link() -> NetworkModel {
        NetworkModel {
            n_senders: (2, 2),
            link_mbps: (4.7, 47.0),
            rtt_ms: (150.0, 150.0),
            ..NetworkModel::general()
        }
    }

    /// The datacenter model of §5.5: 10 Gbps, RTT 4 ms, up to 64 senders,
    /// 20 MB mean transfers with 100 ms mean off time.
    pub fn datacenter() -> NetworkModel {
        NetworkModel {
            n_senders: (1, 64),
            link_mbps: (10_000.0, 10_000.0),
            rtt_ms: (4.0, 4.0),
            traffic: TrafficSpec {
                on: OnSpec::ByBytes { mean_bytes: 20e6 },
                off_mean: Ns::from_millis(100),
                start_on: false,
            },
            queue: QueueSpec::DropTail { capacity: 1000 },
            mss: 1500,
        }
    }

    /// The coexistence model of §5.6: RTTs from 100 ms to 10 s "to
    /// accommodate a buffer-filling competitor on the same bottleneck".
    pub fn coexist() -> NetworkModel {
        NetworkModel {
            n_senders: (1, 2),
            link_mbps: (10.0, 20.0),
            rtt_ms: (100.0, 10_000.0),
            ..NetworkModel::general()
        }
    }

    /// Draw one specimen network. The scenario's seed is derived from the
    /// draw so traffic randomness is specimen-specific but reproducible.
    pub fn sample(&self, rng: &mut SimRng, duration: Ns) -> Scenario {
        let n = rng.range_usize(self.n_senders.0, self.n_senders.1);
        let link = rng.range_f64(self.link_mbps.0, self.link_mbps.1);
        let rtt = rng.range_f64(self.rtt_ms.0, self.rtt_ms.1);
        let seed = rng.next_u64();
        Scenario {
            link: LinkSpec::constant(link.max(0.01)),
            queue: self.queue.clone(),
            senders: (0..n)
                .map(|_| SenderConfig {
                    rtt: Ns::from_millis_f64(rtt),
                    traffic: self.traffic.clone(),
                })
                .collect(),
            mss: self.mss,
            duration,
            seed,
            record_deliveries: false,
            topology: None,
            churn: None,
        }
    }

    /// Human-readable summary for provenance strings.
    pub fn describe(&self) -> String {
        format!(
            "n={}..{}, link={}..{} Mbps, rtt={}..{} ms, traffic={:?}",
            self.n_senders.0,
            self.n_senders.1,
            self.link_mbps.0,
            self.link_mbps.1,
            self.rtt_ms.0,
            self.rtt_ms.1,
            self.traffic.on,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn general_model_matches_design_table() {
        let m = NetworkModel::general();
        assert_eq!(m.n_senders, (1, 16));
        assert_eq!(m.link_mbps, (10.0, 20.0));
        assert_eq!(m.rtt_ms, (100.0, 200.0));
        assert_eq!(m.queue, QueueSpec::Unlimited);
        assert_eq!(m.traffic.off_mean, Ns::from_secs(5));
    }

    #[test]
    fn samples_stay_in_range() {
        let m = NetworkModel::general();
        let mut rng = SimRng::new(1);
        for _ in 0..200 {
            let s = m.sample(&mut rng, Ns::from_secs(10));
            assert!((1..=16).contains(&s.n()));
            let LinkSpec::Constant { rate_mbps } = s.link else {
                panic!("constant link expected");
            };
            assert!((10.0..=20.0).contains(&rate_mbps));
            let rtt = s.senders[0].rtt.as_millis_f64();
            assert!((100.0..=200.0).contains(&rtt));
        }
    }

    #[test]
    fn samples_are_diverse() {
        let m = NetworkModel::general();
        let mut rng = SimRng::new(2);
        let ns: std::collections::HashSet<usize> = (0..100)
            .map(|_| m.sample(&mut rng, Ns::SECOND).n())
            .collect();
        assert!(ns.len() > 8, "n should vary across specimens: {ns:?}");
    }

    #[test]
    fn exact_model_is_degenerate() {
        let m = NetworkModel::exact_link();
        let mut rng = SimRng::new(3);
        let s = m.sample(&mut rng, Ns::SECOND);
        assert_eq!(s.n(), 2);
        let LinkSpec::Constant { rate_mbps } = s.link else {
            panic!();
        };
        assert_eq!(rate_mbps, 15.0);
        assert_eq!(s.senders[0].rtt, Ns::from_millis(150));
    }

    #[test]
    fn datacenter_model_shape() {
        let m = NetworkModel::datacenter();
        assert_eq!(m.link_mbps.0, 10_000.0);
        assert_eq!(m.rtt_ms, (4.0, 4.0));
        assert!(matches!(m.traffic.on, OnSpec::ByBytes { mean_bytes } if mean_bytes == 20e6));
    }

    #[test]
    fn sampling_is_deterministic_per_rng_stream() {
        let m = NetworkModel::general();
        let a = m.sample(&mut SimRng::new(9), Ns::SECOND);
        let b = m.sample(&mut SimRng::new(9), Ns::SECOND);
        assert_eq!(a.n(), b.n());
        assert_eq!(a.seed, b.seed);
    }
}
