//! The objective function (§3.3, Eq. 1).
//!
//! Each flow with average throughput `x` and average round-trip delay `y`
//! scores `U_α(x) − δ·U_β(y)` with the alpha-fairness utility
//! `U_a(v) = v^(1−a)/(1−a)` (and `U_1 = ln`). The evaluation uses
//! `α = β = 1` with δ ∈ {0.1, 1, 10} (proportional throughput and delay
//! fairness) and `α = 2, δ = 0` (minimum potential delay, the datacenter
//! table).

use netsim::metrics::{FlowSummary, SimResults};

/// Floor applied to throughput (Mbps) and delay (ms) before the utility,
/// so a silent flow scores very badly instead of producing −∞/NaN.
pub const UTILITY_FLOOR: f64 = 1e-4;

/// Ceiling applied to the same inputs: no physical specimen reaches it,
/// but it keeps a degenerate summary (infinite throughput from a
/// zero-length interval, say) from injecting ±∞ into a score sum, where a
/// later −∞ would turn the total into NaN and poison candidate selection.
pub const UTILITY_CEIL: f64 = 1e12;

/// Clamp a utility input into `[UTILITY_FLOOR, UTILITY_CEIL]`, mapping
/// NaN and −∞ to the floor and +∞ to the ceiling.
fn sanitize(v: f64) -> f64 {
    if v.is_nan() {
        UTILITY_FLOOR
    } else {
        v.clamp(UTILITY_FLOOR, UTILITY_CEIL)
    }
}

/// The alpha-fairness utility `U_a`. The input is sanitized (floored,
/// capped, NaN-proofed) so the result is always finite for the α range
/// the paper uses.
pub fn alpha_fair(alpha: f64, v: f64) -> f64 {
    let v = sanitize(v);
    if (alpha - 1.0).abs() < 1e-9 {
        v.ln()
    } else {
        v.powf(1.0 - alpha) / (1.0 - alpha)
    }
}

/// A complete objective configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Objective {
    /// Throughput fairness exponent α.
    pub alpha: f64,
    /// Delay fairness exponent β.
    pub beta: f64,
    /// Relative weight of delay vs. throughput δ.
    pub delta: f64,
}

impl Objective {
    /// `α = β = 1` with the given δ: `log(throughput) − δ·log(delay)`.
    pub fn proportional(delta: f64) -> Objective {
        Objective {
            alpha: 1.0,
            beta: 1.0,
            delta,
        }
    }

    /// `α = 2, δ = 0`: maximize `−1/throughput` (minimum potential delay),
    /// the datacenter objective.
    pub fn min_potential_delay() -> Objective {
        Objective {
            alpha: 2.0,
            beta: 1.0,
            delta: 0.0,
        }
    }

    /// Score one flow from its summary: throughput in Mbps, delay =
    /// average RTT in milliseconds (the paper's `y` is the flow's average
    /// round-trip delay). Inputs are clamped into
    /// `[UTILITY_FLOOR, UTILITY_CEIL]` first, so a degenerate flow (never
    /// on, zero delay, NaN mean) yields a terrible-but-finite score
    /// rather than a ±∞ that could NaN-poison a specimen sum.
    pub fn score_flow(&self, f: &FlowSummary) -> f64 {
        // The clamp itself lives in alpha_fair, which sanitizes its input.
        let tput = alpha_fair(self.alpha, f.throughput_mbps);
        if self.delta == 0.0 {
            return tput;
        }
        tput - self.delta * alpha_fair(self.beta, f.mean_rtt_ms)
    }

    /// Total score of a simulation: the sum over senders that were ever
    /// active ("the objective function for each sender … is totaled to
    /// produce an overall figure of merit", §4.3).
    pub fn score_results(&self, r: &SimResults) -> f64 {
        r.active_flows().map(|f| self.score_flow(f)).sum()
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        if self.alpha == 2.0 && self.delta == 0.0 {
            "alpha=2 (min potential delay)".to_string()
        } else {
            format!(
                "alpha={} beta={} delta={}",
                self.alpha, self.beta, self.delta
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::metrics::FlowSummary;

    fn flow(tput_mbps: f64, rtt_ms: f64) -> FlowSummary {
        FlowSummary {
            throughput_mbps: tput_mbps,
            mean_rtt_ms: rtt_ms,
            on_secs: 10.0,
            bytes: 1,
            ..FlowSummary::default()
        }
    }

    #[test]
    fn log_utility_at_alpha_one() {
        assert!((alpha_fair(1.0, std::f64::consts::E) - 1.0).abs() < 1e-12);
        assert_eq!(alpha_fair(1.0, 1.0), 0.0);
    }

    #[test]
    fn alpha_two_is_negative_inverse() {
        assert!((alpha_fair(2.0, 4.0) - (-0.25)).abs() < 1e-12);
    }

    #[test]
    fn alpha_zero_is_identity() {
        assert!((alpha_fair(0.0, 7.0) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn utilities_are_monotone_increasing() {
        for alpha in [0.0, 0.5, 1.0, 2.0, 5.0] {
            let mut prev = f64::NEG_INFINITY;
            for v in [0.01, 0.1, 1.0, 10.0, 100.0] {
                let u = alpha_fair(alpha, v);
                assert!(u > prev, "U_{alpha}({v}) not increasing");
                prev = u;
            }
        }
    }

    #[test]
    fn utilities_are_concave() {
        // Midpoint utility exceeds mean of endpoint utilities for α > 0.
        for alpha in [0.5, 1.0, 2.0] {
            let (a, b) = (1.0, 9.0);
            let mid = alpha_fair(alpha, (a + b) / 2.0);
            let avg = 0.5 * (alpha_fair(alpha, a) + alpha_fair(alpha, b));
            assert!(mid > avg, "U_{alpha} not concave");
        }
    }

    #[test]
    fn silent_flow_scores_floor_not_nan() {
        let u = alpha_fair(1.0, 0.0);
        assert!(u.is_finite());
        assert_eq!(u, UTILITY_FLOOR.ln());
    }

    #[test]
    fn degenerate_flow_summaries_score_finite() {
        // A never-on sender (or a summary corrupted to NaN/∞) must yield a
        // finite score under every objective in use, so candidate
        // selection never sees NaN.
        let cases = [
            flow(0.0, 0.0),           // never delivered, no RTT sample
            flow(f64::NAN, f64::NAN), // poisoned summary
            flow(f64::INFINITY, 0.0), // degenerate interval
            flow(0.0, f64::INFINITY),
            flow(-1.0, -5.0), // nonsense negatives
        ];
        for obj in [
            Objective::proportional(0.1),
            Objective::proportional(1.0),
            Objective::proportional(10.0),
            Objective::min_potential_delay(),
        ] {
            for f in &cases {
                let s = obj.score_flow(f);
                assert!(
                    s.is_finite(),
                    "{} scored {s} for tput={} rtt={}",
                    obj.label(),
                    f.throughput_mbps,
                    f.mean_rtt_ms
                );
            }
        }
    }

    #[test]
    fn delta_trades_throughput_for_delay() {
        let fast_bloated = flow(10.0, 1000.0);
        let slow_snappy = flow(2.0, 160.0);
        let tput_lover = Objective::proportional(0.1);
        let delay_lover = Objective::proportional(10.0);
        assert!(
            tput_lover.score_flow(&fast_bloated) > tput_lover.score_flow(&slow_snappy),
            "delta=0.1 prefers throughput"
        );
        assert!(
            delay_lover.score_flow(&slow_snappy) > delay_lover.score_flow(&fast_bloated),
            "delta=10 prefers low delay"
        );
    }

    #[test]
    fn fairness_prefers_equal_split() {
        // log utility: (5,5) beats (9,1) at equal total.
        let obj = Objective::proportional(0.0);
        let even = obj.score_flow(&flow(5.0, 100.0)) + obj.score_flow(&flow(5.0, 100.0));
        let skew = obj.score_flow(&flow(9.0, 100.0)) + obj.score_flow(&flow(1.0, 100.0));
        assert!(even > skew);
    }

    #[test]
    fn min_potential_delay_ignores_rtt() {
        let obj = Objective::min_potential_delay();
        assert_eq!(
            obj.score_flow(&flow(4.0, 100.0)),
            obj.score_flow(&flow(4.0, 5000.0))
        );
        assert!((obj.score_flow(&flow(4.0, 1.0)) - (-0.25)).abs() < 1e-12);
    }

    #[test]
    fn results_total_skips_inactive_senders() {
        let obj = Objective::proportional(1.0);
        let idle = FlowSummary {
            on_secs: 0.0,
            ..FlowSummary::default()
        };
        let r = SimResults {
            flows: vec![flow(5.0, 100.0), idle],
            duration: netsim::time::Ns::from_secs(10),
            ..SimResults::default()
        };
        let expected = obj.score_flow(&flow(5.0, 100.0));
        assert!((obj.score_results(&r) - expected).abs() < 1e-12);
    }
}
