//! Remy's automated design procedure (§4.3).
//!
//! Starting from a single rule mapping all of memory space to the default
//! action, Remy alternates two kinds of greedy step:
//!
//! 1. **Improve**: find the most-used rule in the current epoch, then hill-
//!    climb its action over the geometric candidate neighbourhood, always
//!    re-simulating the *same* specimen networks with the same seeds
//!    (common random numbers). When no candidate improves the total
//!    objective, the rule's epoch advances.
//! 2. **Subdivide**: once every rule has left the epoch, bump the global
//!    epoch; every `K = 4` epochs, split the most-used rule at the median
//!    memory value that triggered it, producing eight octree children.
//!
//! "Areas of the memory space more likely to occur receive correspondingly
//! more attention from the optimizer."

use crate::action::Action;
use crate::evaluator::{EvalConfig, Evaluator};
use crate::model::NetworkModel;
use crate::objective::Objective;
use crate::whisker::WhiskerTree;
use std::collections::BTreeMap;
use std::sync::Arc;
// lint:allow(d2-wallclock-rng): wall-clock here bounds the *training*
// budget (`TrainConfig::wall_secs`); it decides when to stop, never what
// any simulation computes — results are a function of steps and seeds.
use std::time::Instant;

/// Ordered fingerprint of an action (exact f64 bits — memoization must
/// only ever hit for bit-identical candidates).
type ActionKey = [u64; 3];

fn action_key(a: &Action) -> ActionKey {
    [
        a.window_multiple.to_bits(),
        a.window_increment.to_bits(),
        a.intersend_ms.to_bits(),
    ]
}

/// Subdivision cadence: split every K epochs ("We use K = 4 to balance
/// structural improvements vs. honing the existing structure").
pub const K_SUBDIVIDE: u64 = 4;

/// Training budget and reproducibility knobs.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    /// Evaluation budget per step (specimen count, sim length).
    pub eval: EvalConfig,
    /// Hard wall-clock budget, seconds. Training returns the best table
    /// found when it expires.
    pub wall_secs: f64,
    /// Hard cap on improvement steps (deterministic budget for tests);
    /// `usize::MAX` to rely on wall time only.
    pub max_steps: usize,
    /// Stop subdividing once the table has this many rules (the paper's
    /// tables hold 162–204).
    pub max_rules: usize,
    /// Root seed for specimen draws.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            eval: EvalConfig {
                specimens: 8,
                sim_secs: 12.0,
            },
            wall_secs: 300.0,
            max_steps: usize::MAX,
            max_rules: 256,
            seed: 1,
        }
    }
}

/// Progress callback payloads (training logs).
#[derive(Clone, Debug)]
pub enum TrainEvent {
    /// A new global epoch began.
    Epoch {
        /// The epoch number.
        epoch: u64,
        /// Rules currently in the table.
        rules: usize,
        /// Best score so far.
        score: f64,
    },
    /// A rule's action was improved.
    Improved {
        /// Whisker id.
        rule: usize,
        /// Score before/after.
        from: f64,
        /// New total objective.
        to: f64,
    },
    /// A rule was subdivided.
    Split {
        /// Whisker id that was split.
        rule: usize,
        /// Rules after the split.
        rules: usize,
    },
    /// Training finished.
    Done {
        /// Final rule count.
        rules: usize,
        /// Final score on the last specimen set.
        score: f64,
        /// Improvement steps taken.
        steps: usize,
    },
}

/// The Remy optimizer.
pub struct Remy {
    /// Design-range model (prior assumptions).
    pub model: NetworkModel,
    /// The objective to maximize.
    pub objective: Objective,
    /// Budgets and seeds.
    pub config: TrainConfig,
}

impl Remy {
    /// Construct an optimizer.
    pub fn new(model: NetworkModel, objective: Objective, config: TrainConfig) -> Remy {
        Remy {
            model,
            objective,
            config,
        }
    }

    /// Run the design procedure from scratch (a single default rule),
    /// reporting progress through `progress`.
    pub fn design(&self, progress: impl FnMut(TrainEvent)) -> WhiskerTree {
        self.design_from(WhiskerTree::single_rule(), progress)
    }

    /// Continue the design procedure from an existing table (warm start).
    ///
    /// The paper's procedure is an anytime algorithm: the rule table only
    /// ever improves under the training distribution, so topping up a
    /// shipped table with more budget is always safe. Epoch counters are
    /// reset; the structure and actions are kept.
    pub fn design_from(
        &self,
        mut tree: WhiskerTree,
        mut progress: impl FnMut(TrainEvent),
    ) -> WhiskerTree {
        // lint:allow(d2-wallclock-rng): the anytime-training stop clock;
        // see the allow on the import — budget only, never observable.
        let started = Instant::now();
        let evaluator = Evaluator::new(self.model.clone(), self.objective, self.config.eval);
        let mut global_epoch = 0u64;
        let mut draw_seed = self.config.seed;
        let mut steps = 0usize;
        let mut last_score = f64::NEG_INFINITY;

        let out_of_budget = |steps: usize, cfg: &TrainConfig| {
            started.elapsed().as_secs_f64() >= cfg.wall_secs || steps >= cfg.max_steps
        };

        'outer: loop {
            // Step 1: set all rules to the current epoch.
            tree.set_all_epochs(global_epoch);
            progress(TrainEvent::Epoch {
                epoch: global_epoch,
                rules: tree.len(),
                score: last_score,
            });

            // Step 2/3: repeatedly improve the most-used rule of the epoch.
            loop {
                if out_of_budget(steps, &self.config) {
                    break 'outer;
                }
                draw_seed = draw_seed.wrapping_add(1);
                let specimens = evaluator.specimens(draw_seed);
                let shared = Arc::new(tree.clone());
                let (base_score, usage) = evaluator.evaluate(&shared, &specimens);
                last_score = base_score;
                let Some(rule) = tree.most_used_in_epoch(global_epoch, &usage) else {
                    break; // step 4: no used rules left in this epoch
                };

                // Step 3: hill-climb this rule's action on fixed specimens.
                // Candidates are scored as overlays of the shared base
                // table (no per-candidate clone), and every scored action —
                // including the unchanged base — is memoized, so an action
                // revisited by overlapping neighbourhoods is never
                // re-simulated within this improve step.
                // lint:allow(p1-sim-unwrap): `rule` comes from iterating the
                // tree's own leaf ids this epoch; a miss is a logic error.
                let start_action = tree.get(rule).expect("rule exists").action;
                let mut memo: BTreeMap<ActionKey, f64> = BTreeMap::new();
                memo.insert(action_key(&start_action), base_score);
                let mut current_action = start_action;
                let mut current = base_score;
                let mut budget_hit = false;
                loop {
                    if out_of_budget(steps, &self.config) {
                        budget_hit = true;
                        break;
                    }
                    steps += 1;
                    let candidates = current_action.neighbourhood();
                    let fresh: Vec<Action> = candidates
                        .iter()
                        .copied()
                        .filter(|c| !memo.contains_key(&action_key(c)))
                        .collect();
                    let fresh_scores = evaluator.score_overlays(&shared, rule, &fresh, &specimens);
                    for (a, s) in fresh.iter().zip(&fresh_scores) {
                        memo.insert(action_key(a), *s);
                    }
                    let (best_idx, best_score) = candidates
                        .iter()
                        .map(|c| memo[&action_key(c)])
                        .enumerate()
                        .max_by(|a, b| a.1.total_cmp(&b.1))
                        // lint:allow(p1-sim-unwrap): neighbourhood() always
                        // returns the base action plus its perturbations, so
                        // the candidate set is non-empty by construction.
                        .expect("non-empty candidate set");
                    if best_score > current {
                        current_action = candidates[best_idx];
                        progress(TrainEvent::Improved {
                            rule,
                            from: current,
                            to: best_score,
                        });
                        current = best_score;
                        last_score = best_score;
                    } else {
                        break;
                    }
                }
                // Commit the climb's winner to the real table (the shared
                // base stayed untouched while overlays were scored).
                if current_action != start_action {
                    tree.set_action(rule, current_action);
                }
                if budget_hit {
                    break 'outer;
                }
                tree.bump_epoch(rule);
            }

            // Step 4: advance the global epoch; every K epochs, subdivide.
            global_epoch += 1;
            if global_epoch.is_multiple_of(K_SUBDIVIDE) && tree.len() < self.config.max_rules {
                draw_seed = draw_seed.wrapping_add(1);
                let specimens = evaluator.specimens(draw_seed);
                let shared = Arc::new(tree.clone());
                let (_, usage) = evaluator.evaluate(&shared, &specimens);
                if let Some(rule) = tree.most_used(&usage) {
                    let split_at = usage
                        .median_memory(rule)
                        // lint:allow(p1-sim-unwrap): `rule` was just returned
                        // by most_used() over this tree, so the lookup holds.
                        .unwrap_or_else(|| tree.get(rule).expect("rule exists").domain.midpoint());
                    if tree.split(rule, split_at) {
                        progress(TrainEvent::Split {
                            rule,
                            rules: tree.len(),
                        });
                    }
                }
            }
            if out_of_budget(steps, &self.config) {
                break;
            }
        }

        tree.provenance = format!(
            "remy-rs: model=[{}], objective=[{}], specimens={}, sim_secs={}, \
             steps={}, rules={}, seed={}",
            self.model.describe(),
            self.objective.label(),
            self.config.eval.specimens,
            self.config.eval.sim_secs,
            steps,
            tree.len(),
            self.config.seed,
        );
        progress(TrainEvent::Done {
            rules: tree.len(),
            score: last_score,
            steps,
        });
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;

    fn quick_remy(max_steps: usize) -> Remy {
        Remy::new(
            NetworkModel::general(),
            Objective::proportional(1.0),
            TrainConfig {
                eval: EvalConfig {
                    specimens: 2,
                    sim_secs: 5.0,
                },
                wall_secs: 120.0,
                max_steps,
                max_rules: 64,
                seed: 7,
            },
        )
    }

    #[test]
    fn design_runs_and_reports() {
        let remy = quick_remy(2);
        let mut events = Vec::new();
        let tree = remy.design(|e| events.push(e));
        assert!(!tree.is_empty());
        assert!(matches!(events.last(), Some(TrainEvent::Done { .. })));
        assert!(
            events.iter().any(|e| matches!(e, TrainEvent::Epoch { .. })),
            "epoch events expected"
        );
        assert!(tree.provenance.contains("remy-rs"));
    }

    #[test]
    fn design_is_deterministic_under_step_budget() {
        let a = quick_remy(3).design(|_| {});
        let b = quick_remy(3).design(|_| {});
        assert_eq!(a.len(), b.len());
        let wa = a.whiskers();
        let wb = b.whiskers();
        for (x, y) in wa.iter().zip(&wb) {
            assert_eq!(x.action, y.action);
            assert_eq!(x.id, y.id);
        }
    }

    #[test]
    fn warm_start_keeps_structure_and_actions() {
        let remy = quick_remy(1);
        let first = remy.design(|_| {});
        let n_rules = first.len();
        let actions: Vec<Action> = first.whiskers().iter().map(|w| w.action).collect();
        // Zero-step continuation returns the same table (modulo epochs).
        let frozen = Remy::new(
            NetworkModel::general(),
            Objective::proportional(1.0),
            TrainConfig {
                max_steps: 0,
                ..remy.config
            },
        )
        .design_from(first, |_| {});
        assert_eq!(frozen.len(), n_rules);
        let after: Vec<Action> = frozen.whiskers().iter().map(|w| w.action).collect();
        assert_eq!(actions, after);
    }

    #[test]
    fn never_on_senders_do_not_poison_training() {
        // A design range whose senders never turn on produces zero active
        // flows in every specimen; scores must stay finite (no NaN panics
        // in candidate selection) and the design loop must come back.
        use netsim::time::Ns;
        use netsim::traffic::{OnSpec, TrafficSpec};
        let model = NetworkModel {
            traffic: TrafficSpec {
                on: OnSpec::ByTime {
                    mean: Ns::from_secs(5),
                },
                off_mean: Ns::from_secs(1_000_000),
                start_on: false,
            },
            ..NetworkModel::general()
        };
        let remy = Remy::new(
            model,
            Objective::proportional(1.0),
            TrainConfig {
                eval: EvalConfig {
                    specimens: 2,
                    sim_secs: 3.0,
                },
                wall_secs: 1.0,
                max_steps: 4,
                max_rules: 8,
                seed: 2,
            },
        );
        let mut done_score = f64::NAN;
        let tree = remy.design(|e| {
            if let TrainEvent::Done { score, .. } = e {
                done_score = score;
            }
        });
        assert!(!tree.is_empty());
        // Specimens with zero active flows score 0; a rare off-time draw
        // can still activate a sender and yield a real finite score, and
        // −∞ is the "budget expired before the first evaluation" sentinel.
        // What must never appear is NaN — the failure mode that used to
        // panic candidate selection mid-training.
        assert!(
            !done_score.is_nan(),
            "NaN training score poisoned candidate selection"
        );
    }

    #[test]
    fn improvement_steps_change_the_default_action() {
        // With a real budget the optimizer should move off the naive
        // default on the general model (the default builds infinite
        // queues on an unlimited buffer, which log-delay punishes).
        let remy = Remy::new(
            NetworkModel::general(),
            Objective::proportional(1.0),
            TrainConfig {
                eval: EvalConfig {
                    specimens: 3,
                    sim_secs: 6.0,
                },
                wall_secs: 60.0,
                max_steps: 6,
                max_rules: 8,
                seed: 3,
            },
        );
        let tree = remy.design(|_| {});
        let acted: Vec<Action> = tree.whiskers().iter().map(|w| w.action).collect();
        assert!(
            acted.iter().any(|a| *a != Action::DEFAULT),
            "no action ever improved: {acted:?}"
        );
    }
}
