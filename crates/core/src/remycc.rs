//! The RemyCC runtime: executing a whisker tree at a sender (§4.2).
//!
//! "Operationally, a RemyCC runs as a sequence of lookups triggered by
//! incoming ACKs. Each time a RemyCC sender receives an ACK, it updates
//! its memory and then looks up the corresponding action." The action sets
//! a window multiple `m`, a window increment `b`, and a pacing floor `r`;
//! the shared transport enforces `outstanding < cwnd` and the `r`-spacing.
//!
//! Losses are deliberately not congestion signals here: RemyCCs "inherit
//! the loss-recovery behavior of whatever TCP sender they are added to"
//! but make no window adjustment of their own on loss (§4.1).

use crate::memory::MemoryTracker;
use crate::whisker::{Usage, WhiskerTree};
use netsim::cc::{AckInfo, CongestionControl, LossEvent};
use netsim::time::Ns;
use std::sync::{Arc, Mutex};

/// Initial congestion window before the first ACK arrives.
pub const INITIAL_WINDOW: f64 = 2.0;

/// Shared sink for whisker-usage statistics, filled in when the optimizer
/// evaluates candidate tables.
pub type UsageSink = Arc<Mutex<Usage>>;

/// A sender-side RemyCC executing a (typically Remy-designed) rule table.
pub struct RemyCc {
    tree: Arc<WhiskerTree>,
    memory: MemoryTracker,
    window: f64,
    intersend: Ns,
    /// Local usage accumulation, flushed to `sink` on drop.
    local: Usage,
    sink: Option<UsageSink>,
    name: String,
    /// Ablation hook: axes set to `false` are zeroed before lookup,
    /// blinding the controller to that congestion signal (§4.1 discusses
    /// why exactly these three signals were chosen — this lets you
    /// measure it).
    signal_mask: [bool; 3],
}

impl RemyCc {
    /// Run the given rule table.
    pub fn new(tree: Arc<WhiskerTree>) -> RemyCc {
        let local = Usage::new(tree.id_bound());
        RemyCc {
            tree,
            memory: MemoryTracker::new(),
            window: INITIAL_WINDOW,
            intersend: Ns::ZERO,
            local,
            sink: None,
            name: "RemyCC".to_string(),
            signal_mask: [true; 3],
        }
    }

    /// Attach a usage sink (the optimizer's statistics channel).
    pub fn with_usage_sink(mut self, sink: UsageSink) -> RemyCc {
        self.sink = Some(sink);
        self
    }

    /// Override the display name (e.g. "RemyCC δ=0.1").
    pub fn with_name(mut self, name: impl Into<String>) -> RemyCc {
        self.name = name.into();
        self
    }

    /// Blind the controller to some memory axes (ablation studies):
    /// `[ack_ewma, send_ewma, rtt_ratio]`, `false` = zeroed before lookup.
    pub fn with_signal_mask(mut self, mask: [bool; 3]) -> RemyCc {
        self.signal_mask = mask;
        self
    }

    /// The rule table in use.
    pub fn tree(&self) -> &WhiskerTree {
        &self.tree
    }
}

impl Drop for RemyCc {
    fn drop(&mut self) {
        if let Some(sink) = &self.sink {
            sink.lock().expect("usage sink poisoned").merge(&self.local);
        }
    }
}

impl CongestionControl for RemyCc {
    fn on_flow_start(&mut self, _now: Ns) {
        // New on-period: memory returns to the all-zeroes state; the
        // window restarts like a fresh connection.
        self.memory.reset();
        self.window = INITIAL_WINDOW;
        self.intersend = Ns::ZERO;
    }

    fn on_ack(&mut self, info: &AckInfo) {
        let mut mem = self.memory.on_ack(
            info.now,
            info.echo_ts,
            info.rtt_sample,
            info.min_rtt,
        );
        for i in 0..3 {
            if !self.signal_mask[i] {
                *mem.axis_mut(i) = 0.0;
            }
        }
        let whisker = self.tree.lookup(mem);
        self.local.record(whisker.id, mem);
        self.window = whisker.action.apply(self.window);
        self.intersend = whisker.action.intersend();
    }

    fn on_loss(&mut self, _now: Ns, _event: LossEvent) {
        // Intentional no-op: loss is not a RemyCC congestion signal.
    }

    fn cwnd(&self) -> f64 {
        self.window
    }

    fn pacing(&self) -> Ns {
        self.intersend
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::memory::Memory;

    fn ack(now_ms: u64, rtt_ms: u64, min_ms: u64) -> AckInfo {
        AckInfo {
            now: Ns::from_millis(now_ms),
            rtt_sample: Ns::from_millis(rtt_ms),
            min_rtt: Ns::from_millis(min_ms),
            srtt: Ns::from_millis(rtt_ms),
            echo_ts: Ns::from_millis(now_ms.saturating_sub(rtt_ms)),
            seq: 0,
            newly_acked: 1,
            in_flight: 4,
            in_recovery: false,
            ecn_echo: false,
            xcp_feedback: None,
        }
    }

    #[test]
    fn default_rule_grows_additively() {
        // Single-rule tree, default action m=1 b=1: window += 1 per ACK.
        let mut cc = RemyCc::new(Arc::new(WhiskerTree::single_rule()));
        cc.on_flow_start(Ns::ZERO);
        let w0 = cc.cwnd();
        cc.on_ack(&ack(100, 100, 100));
        cc.on_ack(&ack(110, 100, 100));
        assert_eq!(cc.cwnd(), w0 + 2.0);
        assert_eq!(cc.pacing(), Ns::from_micros(10)); // r = 0.01 ms
    }

    #[test]
    fn region_specific_actions_apply() {
        let mut tree = WhiskerTree::single_rule();
        tree.split(
            0,
            Memory {
                ack_ewma_ms: 10.0,
                send_ewma_ms: 10.0,
                rtt_ratio: 2.0,
            },
        );
        // Rule covering high rtt_ratio territory halves the window.
        let shrink = Action {
            window_multiple: 0.5,
            window_increment: 0.0,
            intersend_ms: 5.0,
        };
        let high_ratio = Memory {
            ack_ewma_ms: 0.0,
            send_ewma_ms: 0.0,
            rtt_ratio: 4.0,
        };
        let id = tree.lookup(high_ratio).id;
        tree.set_action(id, shrink);
        let mut cc = RemyCc::new(Arc::new(tree));
        cc.on_flow_start(Ns::ZERO);
        // First ACK has rtt_ratio 4 (400 vs 100 min): shrink rule fires.
        cc.on_ack(&ack(400, 400, 100));
        assert_eq!(cc.cwnd(), 1.0, "0.5×2+0 clamped at 1");
        assert_eq!(cc.pacing(), Ns::from_millis(5));
    }

    #[test]
    fn loss_is_not_a_signal() {
        let mut cc = RemyCc::new(Arc::new(WhiskerTree::single_rule()));
        cc.on_flow_start(Ns::ZERO);
        cc.on_ack(&ack(100, 100, 100));
        let w = cc.cwnd();
        cc.on_loss(Ns::from_millis(200), LossEvent::FastRetransmit);
        cc.on_loss(Ns::from_millis(300), LossEvent::Timeout);
        assert_eq!(cc.cwnd(), w, "RemyCC ignores loss events");
    }

    #[test]
    fn flow_restart_resets_memory_and_window() {
        let mut cc = RemyCc::new(Arc::new(WhiskerTree::single_rule()));
        cc.on_flow_start(Ns::ZERO);
        for k in 0..10 {
            cc.on_ack(&ack(100 + k * 10, 120, 100));
        }
        assert!(cc.cwnd() > INITIAL_WINDOW);
        cc.on_flow_start(Ns::from_secs(5));
        assert_eq!(cc.cwnd(), INITIAL_WINDOW);
        assert_eq!(cc.memory.memory(), Memory::INITIAL);
    }

    #[test]
    fn usage_flows_to_sink_on_drop() {
        let sink: UsageSink = Arc::new(Mutex::new(Usage::new(1)));
        {
            let mut cc = RemyCc::new(Arc::new(WhiskerTree::single_rule()))
                .with_usage_sink(Arc::clone(&sink));
            cc.on_flow_start(Ns::ZERO);
            cc.on_ack(&ack(100, 100, 100));
            cc.on_ack(&ack(110, 100, 100));
            cc.on_ack(&ack(120, 100, 100));
        } // drop flushes
        assert_eq!(sink.lock().unwrap().count(0), 3);
    }

    #[test]
    fn signal_mask_blinds_an_axis() {
        // Tree splits on rtt_ratio; with the ratio masked, the high-ratio
        // rule must never fire.
        let mut tree = WhiskerTree::single_rule();
        tree.split(
            0,
            Memory {
                ack_ewma_ms: 10.0,
                send_ewma_ms: 10.0,
                rtt_ratio: 2.0,
            },
        );
        let high_ratio = Memory {
            ack_ewma_ms: 0.0,
            send_ewma_ms: 0.0,
            rtt_ratio: 4.0,
        };
        let id = tree.lookup(high_ratio).id;
        tree.set_action(
            id,
            Action {
                window_multiple: 0.5,
                window_increment: 0.0,
                intersend_ms: 5.0,
            },
        );
        let mut cc = RemyCc::new(Arc::new(tree)).with_signal_mask([true, true, false]);
        cc.on_flow_start(Ns::ZERO);
        cc.on_ack(&ack(400, 400, 100)); // true ratio 4, masked to 0
        // The default rule (m=1, b=1) fires instead of the shrink rule.
        assert_eq!(cc.cwnd(), 3.0);
        assert_eq!(cc.pacing(), Ns::from_micros(10));
    }

    #[test]
    fn named_instances() {
        let cc = RemyCc::new(Arc::new(WhiskerTree::single_rule())).with_name("RemyCC δ=1");
        assert_eq!(cc.name(), "RemyCC δ=1");
    }
}
