//! The RemyCC runtime: executing a whisker tree at a sender (§4.2).
//!
//! "Operationally, a RemyCC runs as a sequence of lookups triggered by
//! incoming ACKs. Each time a RemyCC sender receives an ACK, it updates
//! its memory and then looks up the corresponding action." The action sets
//! a window multiple `m`, a window increment `b`, and a pacing floor `r`;
//! the shared transport enforces `outstanding < cwnd` and the `r`-spacing.
//!
//! Losses are deliberately not congestion signals here: RemyCCs "inherit
//! the loss-recovery behavior of whatever TCP sender they are added to"
//! but make no window adjustment of their own on loss (§4.1).

use crate::action::Action;
use crate::memory::MemoryTracker;
use crate::whisker::{FlatTree, Usage, WhiskerTree};
use netsim::cc::{AckInfo, CongestionControl, LossEvent};
use netsim::time::Ns;
use std::sync::Arc;

/// Initial congestion window before the first ACK arrives.
pub const INITIAL_WINDOW: f64 = 2.0;

/// Sentinel for "no candidate override" (see [`RemyCc::with_candidate`]).
const NO_OVERRIDE: usize = usize::MAX;

/// A sender-side RemyCC executing a (typically Remy-designed) rule table.
pub struct RemyCc {
    tree: Arc<WhiskerTree>,
    /// Flattened lookup view shared by all senders running this table.
    flat: Arc<FlatTree>,
    /// Hill-climb candidate overlay: when the lookup lands on this leaf
    /// slot, `override_action` applies instead of the stored action. This
    /// lets the optimizer evaluate "base table + one changed rule" without
    /// cloning the tree per candidate.
    override_slot: usize,
    override_action: Action,
    memory: MemoryTracker,
    window: f64,
    intersend: Ns,
    /// Per-sender usage accumulation; the evaluator collects it after a
    /// run via [`CongestionControl::take_usage`].
    local: Usage,
    name: String,
    /// Ablation hook: axes set to `false` are zeroed before lookup,
    /// blinding the controller to that congestion signal (§4.1 discusses
    /// why exactly these three signals were chosen — this lets you
    /// measure it).
    signal_mask: [bool; 3],
}

impl RemyCc {
    /// Run the given rule table.
    pub fn new(tree: Arc<WhiskerTree>) -> RemyCc {
        let local = Usage::new(tree.id_bound());
        let flat = tree.flat();
        RemyCc {
            tree,
            flat,
            override_slot: NO_OVERRIDE,
            override_action: Action::DEFAULT,
            memory: MemoryTracker::new(),
            window: INITIAL_WINDOW,
            intersend: Ns::ZERO,
            local,
            name: "RemyCC".to_string(),
            signal_mask: [true; 3],
        }
    }

    /// Evaluate a hill-climb candidate: behave exactly as if rule `rule`'s
    /// action were `action`, without mutating or cloning the shared table.
    /// A `rule` id not present in the table leaves behaviour unchanged.
    pub fn with_candidate(mut self, rule: usize, action: Action) -> RemyCc {
        self.override_slot = self.flat.slot_of(rule).unwrap_or(NO_OVERRIDE);
        self.override_action = action;
        self
    }

    /// Override the display name (e.g. "RemyCC δ=0.1").
    pub fn with_name(mut self, name: impl Into<String>) -> RemyCc {
        self.name = name.into();
        self
    }

    /// Blind the controller to some memory axes (ablation studies):
    /// `[ack_ewma, send_ewma, rtt_ratio]`, `false` = zeroed before lookup.
    pub fn with_signal_mask(mut self, mask: [bool; 3]) -> RemyCc {
        self.signal_mask = mask;
        self
    }

    /// The rule table in use.
    pub fn tree(&self) -> &WhiskerTree {
        &self.tree
    }
}

impl CongestionControl for RemyCc {
    fn on_flow_start(&mut self, _now: Ns) {
        // New on-period: memory returns to the all-zeroes state; the
        // window restarts like a fresh connection.
        self.memory.reset();
        self.window = INITIAL_WINDOW;
        self.intersend = Ns::ZERO;
    }

    fn on_ack(&mut self, info: &AckInfo) {
        let mut mem = self
            .memory
            .on_ack(info.now, info.echo_ts, info.rtt_sample, info.min_rtt);
        for i in 0..3 {
            if !self.signal_mask[i] {
                *mem.axis_mut(i) = 0.0;
            }
        }
        let slot = self.flat.lookup_slot(mem);
        let leaf = self.flat.leaf(slot);
        let action = if slot == self.override_slot {
            &self.override_action
        } else {
            &leaf.action
        };
        self.local.record(leaf.id, mem);
        self.window = action.apply(self.window);
        self.intersend = action.intersend();
    }

    fn on_loss(&mut self, _now: Ns, _event: LossEvent) {
        // Intentional no-op: loss is not a RemyCC congestion signal.
    }

    fn cwnd(&self) -> f64 {
        self.window
    }

    fn pacing(&self) -> Ns {
        self.intersend
    }

    fn name(&self) -> &str {
        &self.name
    }

    /// Drain the whisker-usage statistics accumulated so far (the
    /// evaluator's statistics channel; replaces the old shared-mutex sink
    /// and the `as_any_mut` downcast hack before it).
    fn take_usage(&mut self) -> Option<Usage> {
        Some(std::mem::replace(
            &mut self.local,
            Usage::new(self.tree.id_bound()),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::memory::Memory;

    fn ack(now_ms: u64, rtt_ms: u64, min_ms: u64) -> AckInfo {
        AckInfo {
            now: Ns::from_millis(now_ms),
            rtt_sample: Ns::from_millis(rtt_ms),
            min_rtt: Ns::from_millis(min_ms),
            srtt: Ns::from_millis(rtt_ms),
            echo_ts: Ns::from_millis(now_ms.saturating_sub(rtt_ms)),
            seq: 0,
            newly_acked: 1,
            in_flight: 4,
            in_recovery: false,
            ecn_echo: false,
            xcp_feedback: None,
        }
    }

    #[test]
    fn default_rule_grows_additively() {
        // Single-rule tree, default action m=1 b=1: window += 1 per ACK.
        let mut cc = RemyCc::new(Arc::new(WhiskerTree::single_rule()));
        cc.on_flow_start(Ns::ZERO);
        let w0 = cc.cwnd();
        cc.on_ack(&ack(100, 100, 100));
        cc.on_ack(&ack(110, 100, 100));
        assert_eq!(cc.cwnd(), w0 + 2.0);
        assert_eq!(cc.pacing(), Ns::from_micros(10)); // r = 0.01 ms
    }

    #[test]
    fn region_specific_actions_apply() {
        let mut tree = WhiskerTree::single_rule();
        tree.split(
            0,
            Memory {
                ack_ewma_ms: 10.0,
                send_ewma_ms: 10.0,
                rtt_ratio: 2.0,
            },
        );
        // Rule covering high rtt_ratio territory halves the window.
        let shrink = Action {
            window_multiple: 0.5,
            window_increment: 0.0,
            intersend_ms: 5.0,
        };
        let high_ratio = Memory {
            ack_ewma_ms: 0.0,
            send_ewma_ms: 0.0,
            rtt_ratio: 4.0,
        };
        let id = tree.lookup(high_ratio).id;
        tree.set_action(id, shrink);
        let mut cc = RemyCc::new(Arc::new(tree));
        cc.on_flow_start(Ns::ZERO);
        // First ACK has rtt_ratio 4 (400 vs 100 min): shrink rule fires.
        cc.on_ack(&ack(400, 400, 100));
        assert_eq!(cc.cwnd(), 1.0, "0.5×2+0 clamped at 1");
        assert_eq!(cc.pacing(), Ns::from_millis(5));
    }

    #[test]
    fn loss_is_not_a_signal() {
        let mut cc = RemyCc::new(Arc::new(WhiskerTree::single_rule()));
        cc.on_flow_start(Ns::ZERO);
        cc.on_ack(&ack(100, 100, 100));
        let w = cc.cwnd();
        cc.on_loss(Ns::from_millis(200), LossEvent::FastRetransmit);
        cc.on_loss(Ns::from_millis(300), LossEvent::Timeout);
        assert_eq!(cc.cwnd(), w, "RemyCC ignores loss events");
    }

    #[test]
    fn flow_restart_resets_memory_and_window() {
        let mut cc = RemyCc::new(Arc::new(WhiskerTree::single_rule()));
        cc.on_flow_start(Ns::ZERO);
        for k in 0..10 {
            cc.on_ack(&ack(100 + k * 10, 120, 100));
        }
        assert!(cc.cwnd() > INITIAL_WINDOW);
        cc.on_flow_start(Ns::from_secs(5));
        assert_eq!(cc.cwnd(), INITIAL_WINDOW);
        assert_eq!(cc.memory.memory(), Memory::INITIAL);
    }

    #[test]
    fn usage_accumulates_and_drains() {
        let mut cc = RemyCc::new(Arc::new(WhiskerTree::single_rule()));
        cc.on_flow_start(Ns::ZERO);
        cc.on_ack(&ack(100, 100, 100));
        cc.on_ack(&ack(110, 100, 100));
        cc.on_ack(&ack(120, 100, 100));
        let usage = cc.take_usage().expect("RemyCC reports usage");
        assert_eq!(usage.count(0), 3);
        assert_eq!(cc.take_usage().unwrap().total(), 0, "take drains");
    }

    #[test]
    fn candidate_overlay_changes_only_its_rule() {
        let mut tree = WhiskerTree::single_rule();
        tree.split(
            0,
            Memory {
                ack_ewma_ms: 10.0,
                send_ewma_ms: 10.0,
                rtt_ratio: 2.0,
            },
        );
        let high_ratio = Memory {
            ack_ewma_ms: 0.0,
            send_ewma_ms: 0.0,
            rtt_ratio: 4.0,
        };
        let rule = tree.lookup(high_ratio).id;
        let shared = Arc::new(tree);
        let shrink = Action {
            window_multiple: 0.5,
            window_increment: 0.0,
            intersend_ms: 5.0,
        };
        let mut cc = RemyCc::new(Arc::clone(&shared)).with_candidate(rule, shrink);
        cc.on_flow_start(Ns::ZERO);
        // High-ratio ACK hits the overridden rule: overlay action applies.
        cc.on_ack(&ack(400, 400, 100));
        assert_eq!(cc.cwnd(), 1.0, "overlay shrink applies: 0.5×2 clamped at 1");
        assert_eq!(cc.pacing(), Ns::from_millis(5));
        // Low-ratio ACK hits a different rule: base action applies.
        cc.on_ack(&ack(500, 100, 100));
        assert_eq!(cc.cwnd(), 2.0, "base default rule still applies elsewhere");
        // Usage is recorded against the real whisker id either way.
        assert_eq!(cc.take_usage().unwrap().count(rule), 1);
        // The shared base table itself is untouched.
        assert_eq!(shared.lookup(high_ratio).action, Action::DEFAULT);
    }

    #[test]
    fn candidate_overlay_with_retired_rule_is_inert() {
        let tree = Arc::new(WhiskerTree::single_rule());
        let mut cc = RemyCc::new(tree).with_candidate(
            999,
            Action {
                window_multiple: 0.0,
                window_increment: -64.0,
                intersend_ms: 1000.0,
            },
        );
        cc.on_flow_start(Ns::ZERO);
        cc.on_ack(&ack(100, 100, 100));
        assert_eq!(cc.cwnd(), 3.0, "unknown rule id leaves behaviour unchanged");
    }

    #[test]
    fn signal_mask_blinds_an_axis() {
        // Tree splits on rtt_ratio; with the ratio masked, the high-ratio
        // rule must never fire.
        let mut tree = WhiskerTree::single_rule();
        tree.split(
            0,
            Memory {
                ack_ewma_ms: 10.0,
                send_ewma_ms: 10.0,
                rtt_ratio: 2.0,
            },
        );
        let high_ratio = Memory {
            ack_ewma_ms: 0.0,
            send_ewma_ms: 0.0,
            rtt_ratio: 4.0,
        };
        let id = tree.lookup(high_ratio).id;
        tree.set_action(
            id,
            Action {
                window_multiple: 0.5,
                window_increment: 0.0,
                intersend_ms: 5.0,
            },
        );
        let mut cc = RemyCc::new(Arc::new(tree)).with_signal_mask([true, true, false]);
        cc.on_flow_start(Ns::ZERO);
        cc.on_ack(&ack(400, 400, 100)); // true ratio 4, masked to 0
                                        // The default rule (m=1, b=1) fires instead of the shrink rule.
        assert_eq!(cc.cwnd(), 3.0);
        assert_eq!(cc.pacing(), Ns::from_micros(10));
    }

    #[test]
    fn named_instances() {
        let cc = RemyCc::new(Arc::new(WhiskerTree::single_rule())).with_name("RemyCC δ=1");
        assert_eq!(cc.name(), "RemyCC δ=1");
    }
}
