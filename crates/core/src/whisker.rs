//! The whisker tree: Remy's piecewise-constant rule table (§4.2–4.3).
//!
//! A RemyCC "is defined by a set of piecewise-constant rules, each one
//! mapping a three-dimensional rectangular region of the three-dimensional
//! memory space to a three-dimensional action". Remy grows the table by
//! splitting the most-used rule at the median memory value that triggered
//! it, "producing eight new rules (one per dimension of the memory-space)"
//! — an octree over memory space whose granularity is finest where traffic
//! actually lands.

use crate::action::Action;
use crate::json::{self, Value};
use crate::memory::{Memory, MEMORY_MAX};
use std::sync::Arc;

/// A half-open axis-aligned box `[lo, hi)` in memory space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Cube {
    /// Inclusive lower corner.
    pub lo: Memory,
    /// Exclusive upper corner.
    pub hi: Memory,
}

impl Cube {
    /// The whole valid memory domain.
    pub fn whole() -> Cube {
        Cube {
            lo: Memory {
                ack_ewma_ms: 0.0,
                send_ewma_ms: 0.0,
                rtt_ratio: 0.0,
            },
            hi: Memory {
                // Slightly past MEMORY_MAX so clamped values at exactly
                // MEMORY_MAX fall inside the half-open domain.
                ack_ewma_ms: MEMORY_MAX + 1.0,
                send_ewma_ms: MEMORY_MAX + 1.0,
                rtt_ratio: MEMORY_MAX + 1.0,
            },
        }
    }

    /// True if the point is inside.
    pub fn contains(&self, m: Memory) -> bool {
        (0..3).all(|i| m.axis(i) >= self.lo.axis(i) && m.axis(i) < self.hi.axis(i))
    }

    /// The geometric center.
    pub fn midpoint(&self) -> Memory {
        let mut m = Memory::INITIAL;
        for i in 0..3 {
            *m.axis_mut(i) = 0.5 * (self.lo.axis(i) + self.hi.axis(i));
        }
        m
    }
}

/// One rule: a region of memory space and the action it maps to.
#[derive(Clone, Debug)]
pub struct Whisker {
    /// Stable identifier within its tree (usage statistics key).
    pub id: usize,
    /// The region this rule covers.
    pub domain: Cube,
    /// The action applied whenever memory lands in `domain`.
    pub action: Action,
    /// The optimizer epoch this rule was last improved in (§4.3).
    pub epoch: u64,
}

#[derive(Clone, Debug)]
enum Node {
    Leaf(Whisker),
    Branch {
        domain: Cube,
        /// Component-wise split point.
        split: Memory,
        /// Eight children indexed by the 3-bit code: bit i set ⇔
        /// `memory.axis(i) >= split.axis(i)`.
        children: Vec<Node>,
    },
}

impl Node {
    fn lookup(&self, m: Memory) -> &Whisker {
        match self {
            Node::Leaf(w) => w,
            Node::Branch {
                split, children, ..
            } => {
                let mut idx = 0usize;
                for i in 0..3 {
                    if m.axis(i) >= split.axis(i) {
                        idx |= 1 << i;
                    }
                }
                children[idx].lookup(m)
            }
        }
    }

    fn find_mut(&mut self, id: usize) -> Option<&mut Whisker> {
        match self {
            Node::Leaf(w) => (w.id == id).then_some(w),
            Node::Branch { children, .. } => children.iter_mut().find_map(|c| c.find_mut(id)),
        }
    }

    fn visit<'a>(&'a self, out: &mut Vec<&'a Whisker>) {
        match self {
            Node::Leaf(w) => out.push(w),
            Node::Branch { children, .. } => {
                for c in children {
                    c.visit(out);
                }
            }
        }
    }

    fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Whisker)) {
        match self {
            Node::Leaf(w) => f(w),
            Node::Branch { children, .. } => {
                for c in children {
                    c.visit_mut(f);
                }
            }
        }
    }
}

/// The complete rule table of one RemyCC.
#[derive(Clone, Debug)]
pub struct WhiskerTree {
    root: Node,
    /// Next unassigned whisker id (ids are never reused).
    next_id: usize,
    /// Free-form provenance (design ranges, δ, training budget) recorded
    /// by the optimizer for reports.
    pub provenance: String,
    /// Flattened lookup view, shared by every RemyCC running this table.
    /// Rebuilt eagerly by the mutating methods (`set_action`, `split`,
    /// `from_json`), so it is always in sync with `root` and `flat()` is
    /// a plain read — no interior mutability, nothing to invalidate.
    flat: Arc<FlatTree>,
}

impl WhiskerTree {
    /// The single-rule table Remy starts from: the whole memory domain
    /// mapped to the default action `(m=1, b=1, r=0.01)`.
    pub fn single_rule() -> WhiskerTree {
        let root = Node::Leaf(Whisker {
            id: 0,
            domain: Cube::whole(),
            action: Action::DEFAULT,
            epoch: 0,
        });
        let flat = Arc::new(FlatTree::build(&root));
        WhiskerTree {
            root,
            next_id: 1,
            provenance: String::new(),
            flat,
        }
    }

    /// The rule covering the given memory point.
    pub fn lookup(&self, m: Memory) -> &Whisker {
        self.root.lookup(m.clamped())
    }

    /// The flattened lookup view of this table, kept in sync with the
    /// octree by every mutating method. All per-ACK lookups (see
    /// [`crate::remycc::RemyCc`]) go through this view rather than
    /// walking the boxed octree.
    pub fn flat(&self) -> Arc<FlatTree> {
        Arc::clone(&self.flat)
    }

    /// All rules, in tree order.
    pub fn whiskers(&self) -> Vec<&Whisker> {
        let mut out = Vec::new();
        self.root.visit(&mut out);
        out
    }

    /// Number of rules. (The paper's general-purpose RemyCCs contain
    /// "between 162 and 204 rules".)
    pub fn len(&self) -> usize {
        self.whiskers().len()
    }

    /// True if the tree is a single rule.
    pub fn is_empty(&self) -> bool {
        false // a tree always has at least one rule
    }

    /// Upper bound on whisker ids (usage vectors size to this).
    pub fn id_bound(&self) -> usize {
        self.next_id
    }

    /// Replace the action of rule `id`.
    pub fn set_action(&mut self, id: usize, action: Action) {
        let w = self
            .root
            .find_mut(id)
            // lint:allow(p2-sim-panic): mutating a nonexistent whisker id
            // is an optimizer logic bug — silent corruption is worse.
            .unwrap_or_else(|| panic!("no whisker with id {id}"));
        w.action = action;
        self.flat = Arc::new(FlatTree::build(&self.root));
    }

    /// Fetch a rule by id.
    pub fn get(&self, id: usize) -> Option<&Whisker> {
        self.whiskers().into_iter().find(|w| w.id == id)
    }

    /// Mark every rule as belonging to `epoch` (§4.3 step 1).
    pub fn set_all_epochs(&mut self, epoch: u64) {
        self.root.visit_mut(&mut |w| w.epoch = epoch);
    }

    /// Advance one rule past the current epoch (§4.3 step 3 exit).
    pub fn bump_epoch(&mut self, id: usize) {
        let w = self
            .root
            .find_mut(id)
            // lint:allow(p2-sim-panic): same invariant as set_action —
            // ids come from iterating this tree, so a miss is a logic error.
            .unwrap_or_else(|| panic!("no whisker with id {id}"));
        w.epoch += 1;
    }

    /// Split rule `id` at `point` into eight children inheriting the
    /// parent's action (§4.3 step 5). The split point is clamped strictly
    /// inside the domain; returns `false` (tree unchanged) if the domain
    /// is too small to subdivide.
    pub fn split(&mut self, id: usize, point: Memory) -> bool {
        // Find the leaf and compute the clamped split point first.
        let Some(w) = self.root.find_mut(id) else {
            // lint:allow(p2-sim-panic): splitting a nonexistent whisker
            // id means the usage table and tree diverged — a logic error.
            panic!("no whisker with id {id}");
        };
        let domain = w.domain;
        let action = w.action;
        let epoch = w.epoch;
        let mut split = Memory::INITIAL;
        for i in 0..3 {
            let lo = domain.lo.axis(i);
            let hi = domain.hi.axis(i);
            let span = hi - lo;
            if span <= 1e-6 {
                return false; // cell too thin to split on this axis
            }
            // Keep the split strictly interior; the margin is tiny so a
            // median near zero (where most memory values live) is honored
            // almost exactly.
            let margin = (span * 1e-6).max(1e-9);
            *split.axis_mut(i) = point.axis(i).clamp(lo + margin, hi - margin);
        }
        // Build children.
        let mut children = Vec::with_capacity(8);
        for code in 0..8usize {
            let mut lo = domain.lo;
            let mut hi = domain.hi;
            for i in 0..3 {
                if code & (1 << i) != 0 {
                    *lo.axis_mut(i) = split.axis(i);
                } else {
                    *hi.axis_mut(i) = split.axis(i);
                }
            }
            children.push(Node::Leaf(Whisker {
                id: self.next_id + code,
                domain: Cube { lo, hi },
                action,
                epoch,
            }));
        }
        self.next_id += 8;
        // Replace the leaf in place.
        // lint:allow(p1-sim-unwrap): find_mut(id) succeeded at the top of
        // this method and nothing has removed nodes since.
        let target = self.root.find_node_mut(id).expect("leaf located above");
        *target = Node::Branch {
            domain,
            split,
            children,
        };
        self.flat = Arc::new(FlatTree::build(&self.root));
        true
    }

    /// Rules belonging to `epoch`, as (id, use-count) given a usage table;
    /// used by the optimizer's "most-used rule in this epoch" step.
    pub fn most_used_in_epoch(&self, epoch: u64, usage: &Usage) -> Option<usize> {
        self.whiskers()
            .into_iter()
            .filter(|w| w.epoch == epoch)
            .map(|w| (w.id, usage.count(w.id)))
            .filter(|&(_, c)| c > 0)
            .max_by_key(|&(id, c)| (c, std::cmp::Reverse(id)))
            .map(|(id, _)| id)
    }

    /// The most-used rule overall (splitting step).
    pub fn most_used(&self, usage: &Usage) -> Option<usize> {
        self.whiskers()
            .into_iter()
            .map(|w| (w.id, usage.count(w.id)))
            .filter(|&(_, c)| c > 0)
            .max_by_key(|&(id, c)| (c, std::cmp::Reverse(id)))
            .map(|(id, _)| id)
    }

    /// Serialize to pretty JSON (the shipped rule-table asset format).
    pub fn to_json(&self) -> String {
        Value::Obj(vec![
            ("root".into(), self.root.to_value()),
            ("next_id".into(), Value::Num(self.next_id as f64)),
            ("provenance".into(), Value::Str(self.provenance.clone())),
        ])
        .pretty()
    }

    /// Parse a JSON rule table.
    pub fn from_json(s: &str) -> Result<WhiskerTree, String> {
        let err = |e: String| format!("bad whisker table: {e}");
        let v = json::parse(s).map_err(err)?;
        let root = Node::from_value(v.field("root").map_err(err)?).map_err(err)?;
        let flat = Arc::new(FlatTree::build(&root));
        Ok(WhiskerTree {
            root,
            next_id: v.field("next_id").and_then(Value::as_usize).map_err(err)?,
            provenance: v
                .field("provenance")
                .and_then(Value::as_str)
                .map_err(err)?
                .to_string(),
            flat,
        })
    }
}

// --- JSON mapping (mirrors the serde derive layout these types used) -------

fn memory_to_value(m: &Memory) -> Value {
    Value::Obj(vec![
        ("ack_ewma_ms".into(), Value::Num(m.ack_ewma_ms)),
        ("send_ewma_ms".into(), Value::Num(m.send_ewma_ms)),
        ("rtt_ratio".into(), Value::Num(m.rtt_ratio)),
    ])
}

fn memory_from_value(v: &Value) -> Result<Memory, String> {
    Ok(Memory {
        ack_ewma_ms: v.field("ack_ewma_ms")?.as_f64()?,
        send_ewma_ms: v.field("send_ewma_ms")?.as_f64()?,
        rtt_ratio: v.field("rtt_ratio")?.as_f64()?,
    })
}

fn cube_to_value(c: &Cube) -> Value {
    Value::Obj(vec![
        ("lo".into(), memory_to_value(&c.lo)),
        ("hi".into(), memory_to_value(&c.hi)),
    ])
}

fn cube_from_value(v: &Value) -> Result<Cube, String> {
    Ok(Cube {
        lo: memory_from_value(v.field("lo")?)?,
        hi: memory_from_value(v.field("hi")?)?,
    })
}

fn action_to_value(a: &Action) -> Value {
    Value::Obj(vec![
        ("window_multiple".into(), Value::Num(a.window_multiple)),
        ("window_increment".into(), Value::Num(a.window_increment)),
        ("intersend_ms".into(), Value::Num(a.intersend_ms)),
    ])
}

fn action_from_value(v: &Value) -> Result<Action, String> {
    Ok(Action {
        window_multiple: v.field("window_multiple")?.as_f64()?,
        window_increment: v.field("window_increment")?.as_f64()?,
        intersend_ms: v.field("intersend_ms")?.as_f64()?,
    })
}

impl Whisker {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("id".into(), Value::Num(self.id as f64)),
            ("domain".into(), cube_to_value(&self.domain)),
            ("action".into(), action_to_value(&self.action)),
            ("epoch".into(), Value::Num(self.epoch as f64)),
        ])
    }

    fn from_value(v: &Value) -> Result<Whisker, String> {
        Ok(Whisker {
            id: v.field("id")?.as_usize()?,
            domain: cube_from_value(v.field("domain")?)?,
            action: action_from_value(v.field("action")?)?,
            epoch: v.field("epoch")?.as_u64()?,
        })
    }
}

impl Node {
    /// Externally-tagged enum encoding: `{"Leaf": {...}}` or
    /// `{"Branch": {...}}`.
    fn to_value(&self) -> Value {
        match self {
            Node::Leaf(w) => Value::Obj(vec![("Leaf".into(), w.to_value())]),
            Node::Branch {
                domain,
                split,
                children,
            } => Value::Obj(vec![(
                "Branch".into(),
                Value::Obj(vec![
                    ("domain".into(), cube_to_value(domain)),
                    ("split".into(), memory_to_value(split)),
                    (
                        "children".into(),
                        Value::Arr(children.iter().map(Node::to_value).collect()),
                    ),
                ]),
            )]),
        }
    }

    fn from_value(v: &Value) -> Result<Node, String> {
        if let Some(leaf) = v.get("Leaf") {
            return Ok(Node::Leaf(Whisker::from_value(leaf)?));
        }
        if let Some(branch) = v.get("Branch") {
            let children = branch
                .field("children")?
                .as_arr()?
                .iter()
                .map(Node::from_value)
                .collect::<Result<Vec<Node>, String>>()?;
            if children.len() != 8 {
                return Err(format!(
                    "branch must have 8 children, found {}",
                    children.len()
                ));
            }
            return Ok(Node::Branch {
                domain: cube_from_value(branch.field("domain")?)?,
                split: memory_from_value(branch.field("split")?)?,
                children,
            });
        }
        Err("node is neither Leaf nor Branch".to_string())
    }
}

impl Node {
    /// Find the *node* holding leaf `id` (for in-place replacement).
    fn find_node_mut(&mut self, id: usize) -> Option<&mut Node> {
        match self {
            Node::Leaf(w) if w.id == id => Some(self),
            Node::Leaf(_) => None,
            Node::Branch { children, .. } => children.iter_mut().find_map(|c| c.find_node_mut(id)),
        }
    }
}

// ---------------------------------------------------------------------------
// Flattened lookup view
// ---------------------------------------------------------------------------

/// Child references pack "leaf or branch" into one `u32`: the high bit
/// selects the leaf array, the low 31 bits index into it.
const LEAF_BIT: u32 = 1 << 31;

#[derive(Debug)]
struct FlatBranch {
    /// Component-wise split point of this interior node.
    split: [f64; 3],
    /// Packed refs of the eight children, indexed by the 3-bit octant code.
    children: [u32; 8],
}

/// One rule of a [`FlatTree`]: just what the per-ACK hot path needs.
#[derive(Clone, Copy, Debug)]
pub struct FlatLeaf {
    /// The whisker id (usage-statistics key).
    pub id: usize,
    /// The action this rule maps to.
    pub action: Action,
}

/// A flattened, allocation-dense view of a [`WhiskerTree`] built once per
/// table: interior nodes live in one branch array, rules in one leaf
/// array, and a lookup is a short loop over packed `u32` child refs
/// instead of a recursive walk over boxed `Vec<Node>` octree nodes.
#[derive(Debug)]
pub struct FlatTree {
    branches: Vec<FlatBranch>,
    leaves: Vec<FlatLeaf>,
    /// Packed ref of the root (a table can be a single leaf).
    root: u32,
    /// Whisker id → leaf slot (`u32::MAX` for ids not present).
    slot_of_id: Vec<u32>,
}

impl FlatTree {
    fn build(root: &Node) -> FlatTree {
        let mut flat = FlatTree {
            branches: Vec::new(),
            leaves: Vec::new(),
            root: 0,
            slot_of_id: Vec::new(),
        };
        flat.root = flat.intern(root);
        flat
    }

    fn intern(&mut self, node: &Node) -> u32 {
        match node {
            Node::Leaf(w) => {
                let slot = self.leaves.len() as u32;
                self.leaves.push(FlatLeaf {
                    id: w.id,
                    action: w.action,
                });
                if self.slot_of_id.len() <= w.id {
                    self.slot_of_id.resize(w.id + 1, u32::MAX);
                }
                self.slot_of_id[w.id] = slot;
                slot | LEAF_BIT
            }
            Node::Branch {
                split, children, ..
            } => {
                let idx = self.branches.len();
                self.branches.push(FlatBranch {
                    split: [split.ack_ewma_ms, split.send_ewma_ms, split.rtt_ratio],
                    children: [0; 8],
                });
                for (code, child) in children.iter().enumerate() {
                    let packed = self.intern(child);
                    self.branches[idx].children[code] = packed;
                }
                idx as u32
            }
        }
    }

    /// The leaf slot covering memory point `m` (clamped into the domain,
    /// exactly as [`WhiskerTree::lookup`] clamps).
    #[inline]
    pub fn lookup_slot(&self, m: Memory) -> usize {
        let m = m.clamped();
        let mut r = self.root;
        while r & LEAF_BIT == 0 {
            let b = &self.branches[r as usize];
            let mut code = 0usize;
            if m.ack_ewma_ms >= b.split[0] {
                code |= 1;
            }
            if m.send_ewma_ms >= b.split[1] {
                code |= 2;
            }
            if m.rtt_ratio >= b.split[2] {
                code |= 4;
            }
            r = b.children[code];
        }
        (r & !LEAF_BIT) as usize
    }

    /// The rule stored at a leaf slot.
    #[inline]
    pub fn leaf(&self, slot: usize) -> &FlatLeaf {
        &self.leaves[slot]
    }

    /// The leaf covering memory point `m`.
    #[inline]
    pub fn lookup(&self, m: Memory) -> &FlatLeaf {
        &self.leaves[self.lookup_slot(m)]
    }

    /// The leaf slot of whisker `id`, if present.
    pub fn slot_of(&self, id: usize) -> Option<usize> {
        match self.slot_of_id.get(id) {
            Some(&s) if s != u32::MAX => Some(s as usize),
            _ => None,
        }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// A flat tree always holds at least one rule.
    pub fn is_empty(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// Usage statistics
// ---------------------------------------------------------------------------

// `Usage` lives next to the `CongestionControl` trait so that its
// `take_usage` hook can return it without a downcast; the optimizer-side
// consumers (most-used rule selection, median split points) stay here.
pub use netsim::cc::{Usage, MAX_SAMPLES};

#[cfg(test)]
mod tests {
    use super::*;

    fn mem(a: f64, s: f64, r: f64) -> Memory {
        Memory {
            ack_ewma_ms: a,
            send_ewma_ms: s,
            rtt_ratio: r,
        }
    }

    #[test]
    fn single_rule_covers_everything() {
        let t = WhiskerTree::single_rule();
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(Memory::INITIAL).id, 0);
        assert_eq!(t.lookup(mem(16_384.0, 0.0, 9_000.0)).id, 0);
        assert_eq!(t.lookup(mem(1e18, -5.0, 3.0)).id, 0, "clamped lookup");
    }

    #[test]
    fn split_produces_eight_disjoint_children() {
        let mut t = WhiskerTree::single_rule();
        assert!(t.split(0, mem(100.0, 200.0, 2.0)));
        assert_eq!(t.len(), 8);
        // Every corner of the old domain maps to a distinct child.
        let mut seen = std::collections::HashSet::new();
        for &a in &[50.0, 150.0] {
            for &s in &[100.0, 300.0] {
                for &r in &[1.0, 3.0] {
                    seen.insert(t.lookup(mem(a, s, r)).id);
                }
            }
        }
        assert_eq!(seen.len(), 8, "each octant its own rule");
    }

    #[test]
    fn children_inherit_action_and_epoch() {
        let mut t = WhiskerTree::single_rule();
        let act = Action {
            window_multiple: 0.5,
            window_increment: 3.0,
            intersend_ms: 1.0,
        };
        t.set_action(0, act);
        t.set_all_epochs(7);
        t.split(0, mem(8.0, 8.0, 2.0));
        for w in t.whiskers() {
            assert_eq!(w.action, act);
            assert_eq!(w.epoch, 7);
        }
    }

    #[test]
    fn lookup_total_after_many_splits() {
        // The partition property: every memory point maps to exactly one
        // rule whose domain contains it.
        let mut t = WhiskerTree::single_rule();
        t.split(0, mem(10.0, 10.0, 1.5));
        let first_children: Vec<usize> = t.whiskers().iter().map(|w| w.id).collect();
        t.split(first_children[0], mem(5.0, 5.0, 1.2));
        t.split(first_children[7], mem(1000.0, 1000.0, 4.0));
        assert_eq!(t.len(), 22);
        for &a in &[0.0, 5.0, 9.0, 11.0, 500.0, 16_000.0] {
            for &s in &[0.0, 7.0, 20.0, 12_000.0] {
                for &r in &[0.0, 1.3, 2.0, 10.0] {
                    let w = t.lookup(mem(a, s, r));
                    assert!(w.domain.contains(mem(a, s, r)));
                }
            }
        }
    }

    #[test]
    fn split_point_is_clamped_inside() {
        let mut t = WhiskerTree::single_rule();
        // Degenerate median at the domain edge must still split.
        assert!(t.split(0, mem(0.0, 0.0, 0.0)));
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn tiny_cells_refuse_to_split() {
        let mut t = WhiskerTree::single_rule();
        let mut id = 0;
        // Repeatedly split the lowest-corner child; spans shrink toward
        // the 1e-6 floor and the split must eventually refuse.
        let mut splits = 0;
        loop {
            if !t.split(id, mem(0.0, 0.0, 0.0)) {
                break;
            }
            splits += 1;
            assert!(splits < 100, "split never refused");
            // child 0 of the fresh split has the smallest corner
            id = t
                .whiskers()
                .iter()
                .map(|w| w.id)
                .max()
                .expect("rules exist")
                - 7;
        }
        // Each corner split shrinks the corner child by ~10⁶×, so the
        // 1e-6 span floor is reached after a couple of splits.
        assert!(splits >= 2, "should manage a few splits before refusing");
    }

    #[test]
    fn epochs_and_most_used() {
        let mut t = WhiskerTree::single_rule();
        t.split(0, mem(10.0, 10.0, 2.0));
        let ids: Vec<usize> = t.whiskers().iter().map(|w| w.id).collect();
        let mut u = Usage::new(t.id_bound());
        u.record(ids[3], mem(5.0, 20.0, 3.0));
        u.record(ids[3], mem(6.0, 21.0, 3.0));
        u.record(ids[5], mem(20.0, 5.0, 3.0));
        assert_eq!(t.most_used(&u), Some(ids[3]));
        assert_eq!(t.most_used_in_epoch(0, &u), Some(ids[3]));
        t.bump_epoch(ids[3]);
        assert_eq!(t.most_used_in_epoch(0, &u), Some(ids[5]));
        t.bump_epoch(ids[5]);
        assert_eq!(t.most_used_in_epoch(0, &u), None, "unused rules skipped");
    }

    #[test]
    fn flat_view_matches_octree_lookup() {
        let mut t = WhiskerTree::single_rule();
        t.split(0, mem(10.0, 10.0, 1.5));
        let ids: Vec<usize> = t.whiskers().iter().map(|w| w.id).collect();
        t.split(ids[0], mem(5.0, 5.0, 1.2));
        t.split(ids[7], mem(1000.0, 1000.0, 4.0));
        let flat = t.flat();
        assert_eq!(flat.len(), t.len());
        for &a in &[0.0, 5.0, 9.0, 11.0, 500.0, 16_000.0, 1e18] {
            for &s in &[0.0, 7.0, 20.0, 12_000.0] {
                for &r in &[0.0, 1.3, 2.0, 10.0] {
                    let m = mem(a, s, r);
                    let slow = t.lookup(m);
                    let fast = flat.lookup(m);
                    assert_eq!(slow.id, fast.id);
                    assert_eq!(slow.action, fast.action);
                }
            }
        }
    }

    #[test]
    fn flat_view_slot_mapping_and_invalidation() {
        let mut t = WhiskerTree::single_rule();
        t.split(0, mem(10.0, 10.0, 1.5));
        let flat = t.flat();
        assert!(flat.slot_of(0).is_none(), "split rule ids are retired");
        for w in t.whiskers() {
            let slot = flat.slot_of(w.id).expect("live rule has a slot");
            assert_eq!(flat.leaf(slot).id, w.id);
            assert_eq!(flat.leaf(slot).action, w.action);
        }
        assert!(flat.slot_of(999).is_none());
        // Mutating an action must invalidate the cached view.
        let ids: Vec<usize> = t.whiskers().iter().map(|w| w.id).collect();
        let act = Action {
            window_multiple: 0.25,
            window_increment: -1.0,
            intersend_ms: 2.0,
        };
        t.set_action(ids[3], act);
        let flat2 = t.flat();
        let slot = flat2.slot_of(ids[3]).expect("slot");
        assert_eq!(flat2.leaf(slot).action, act);
    }

    #[test]
    fn flat_view_is_shared_until_mutation() {
        let t = {
            let mut t = WhiskerTree::single_rule();
            t.split(0, mem(8.0, 8.0, 2.0));
            t
        };
        let a = t.flat();
        let b = t.flat();
        assert!(Arc::ptr_eq(&a, &b), "cached view is reused");
    }

    #[test]
    fn usage_median_is_componentwise() {
        let mut u = Usage::new(1);
        u.record(0, mem(1.0, 30.0, 1.0));
        u.record(0, mem(2.0, 10.0, 5.0));
        u.record(0, mem(3.0, 20.0, 3.0));
        let m = u.median_memory(0).expect("samples exist");
        assert_eq!(m.ack_ewma_ms, 2.0);
        assert_eq!(m.send_ewma_ms, 20.0);
        assert_eq!(m.rtt_ratio, 3.0);
        assert!(u.median_memory(5).is_none());
    }

    #[test]
    fn usage_merge_accumulates() {
        let mut a = Usage::new(2);
        let mut b = Usage::new(2);
        a.record(0, Memory::INITIAL);
        b.record(0, Memory::INITIAL);
        b.record(1, Memory::INITIAL);
        a.merge(&b);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.count(1), 1);
        assert_eq!(a.total(), 3);
    }

    #[test]
    fn usage_sample_cap_holds() {
        let mut u = Usage::new(1);
        for k in 0..10_000 {
            u.record(0, mem(k as f64, 0.0, 1.0));
        }
        assert_eq!(u.count(0), 10_000);
        assert!(u.median_memory(0).is_some());
    }

    #[test]
    fn json_round_trip() {
        let mut t = WhiskerTree::single_rule();
        t.split(0, mem(50.0, 60.0, 2.0));
        let ids: Vec<usize> = t.whiskers().iter().map(|w| w.id).collect();
        t.set_action(
            ids[2],
            Action {
                window_multiple: 0.8,
                window_increment: -2.0,
                intersend_ms: 3.5,
            },
        );
        t.provenance = "test".into();
        let json = t.to_json();
        let back = WhiskerTree::from_json(&json).expect("parse");
        assert_eq!(back.len(), t.len());
        assert_eq!(back.provenance, "test");
        let m = mem(100.0, 100.0, 3.0);
        assert_eq!(back.lookup(m).action, t.lookup(m).action);
        assert!(WhiskerTree::from_json("{").is_err());
    }
}
