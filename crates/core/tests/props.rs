//! Property-based tests of Remy's rule-table machinery.

use proptest::prelude::*;
use remy::action::Action;
use remy::memory::{Memory, MEMORY_MAX};
use remy::whisker::{Usage, WhiskerTree};

fn arb_memory() -> impl Strategy<Value = Memory> {
    (0.0..MEMORY_MAX, 0.0..MEMORY_MAX, 0.0..MEMORY_MAX).prop_map(|(a, s, r)| Memory {
        ack_ewma_ms: a,
        send_ewma_ms: s,
        rtt_ratio: r,
    })
}

proptest! {
    /// The whisker tree is a partition: after arbitrary splits, every
    /// memory point maps to exactly one rule whose domain contains it.
    #[test]
    fn tree_partition_property(
        splits in prop::collection::vec(arb_memory(), 0..12),
        probes in prop::collection::vec(arb_memory(), 1..50),
    ) {
        let mut tree = WhiskerTree::single_rule();
        for p in splits {
            let id = tree.lookup(p).id;
            let _ = tree.split(id, p);
        }
        for m in probes {
            let w = tree.lookup(m);
            prop_assert!(w.domain.contains(m.clamped()),
                "lookup returned a rule not containing the probe");
        }
    }

    /// Rule count after k successful splits is 1 + 7k (each split
    /// replaces one leaf with eight).
    #[test]
    fn split_counts(splits in prop::collection::vec(arb_memory(), 0..10)) {
        let mut tree = WhiskerTree::single_rule();
        let mut ok = 0usize;
        for p in splits {
            let id = tree.lookup(p).id;
            if tree.split(id, p) { ok += 1; }
        }
        prop_assert_eq!(tree.len(), 1 + 7 * ok);
    }

    /// Action application always lands in the legal window range.
    #[test]
    fn action_apply_bounded(
        m in -10.0f64..10.0,
        b in -1e4f64..1e4,
        r in -10.0f64..1e4,
        w in 0.0f64..1e5,
    ) {
        let a = Action { window_multiple: m, window_increment: b, intersend_ms: r }.clamped();
        let out = a.apply(w);
        prop_assert!((1.0..=4096.0).contains(&out));
        prop_assert!(a.intersend_ms > 0.0);
    }

    /// Candidate neighbourhoods never contain the current action and stay
    /// clamped.
    #[test]
    fn neighbourhood_well_formed(
        m in 0.0f64..2.0,
        b in -64.0f64..256.0,
        r in 0.001f64..100.0,
    ) {
        let a = Action { window_multiple: m, window_increment: b, intersend_ms: r }.clamped();
        let n = a.neighbourhood();
        prop_assert!(!n.is_empty());
        for c in &n {
            prop_assert!(*c != a);
            prop_assert!(c.window_multiple >= 0.0 && c.window_multiple <= 2.0);
            prop_assert!(c.intersend_ms >= 0.001);
        }
    }

    /// Memory clamping is idempotent and in-domain.
    #[test]
    fn memory_clamp(a in -1e9f64..1e9, s in -1e9f64..1e9, r in -1e9f64..1e9) {
        let m = Memory { ack_ewma_ms: a, send_ewma_ms: s, rtt_ratio: r }.clamped();
        for i in 0..3 {
            prop_assert!((0.0..=MEMORY_MAX).contains(&m.axis(i)));
        }
        prop_assert_eq!(m.clamped(), m);
    }

    /// Usage merge is order-independent on counts.
    #[test]
    fn usage_merge_commutes(
        hits_a in prop::collection::vec(0usize..8, 0..50),
        hits_b in prop::collection::vec(0usize..8, 0..50),
    ) {
        let m = Memory::INITIAL;
        let mut a1 = Usage::new(8);
        let mut b1 = Usage::new(8);
        for &h in &hits_a { a1.record(h, m); }
        for &h in &hits_b { b1.record(h, m); }
        let mut ab = a1.clone();
        ab.merge(&b1);
        let mut ba = b1;
        ba.merge(&a1);
        for id in 0..8 {
            prop_assert_eq!(ab.count(id), ba.count(id));
        }
        prop_assert_eq!(ab.total(), ba.total());
    }

    /// JSON serialization round-trips arbitrary trees (lookup-equivalent).
    #[test]
    fn json_round_trip(splits in prop::collection::vec(arb_memory(), 0..6),
                       probes in prop::collection::vec(arb_memory(), 1..20)) {
        let mut tree = WhiskerTree::single_rule();
        for p in splits {
            let id = tree.lookup(p).id;
            let _ = tree.split(id, p);
        }
        let back = WhiskerTree::from_json(&tree.to_json()).unwrap();
        prop_assert_eq!(back.len(), tree.len());
        for m in probes {
            prop_assert_eq!(back.lookup(m).id, tree.lookup(m).id);
        }
    }
}
