//! Over-approximate workspace call graph + reachability from the
//! simulation entry points.
//!
//! The P/R/S rule families ask one question of every token: *can the
//! function holding this token run during a simulation?* This module
//! answers it conservatively. From the per-file symbol tables
//! ([`crate::parser`]) it extracts call edges by token shape:
//!
//! - `name(` — a direct call; resolves to **every** function named
//!   `name` in the workspace (free or method — over-approximate),
//! - `Type::name(` / `Type::name` — a qualified call or path reference;
//!   resolves to the method `(Type, name)` when the workspace defines
//!   it, falling back to name-only resolution otherwise (trait-qualified
//!   and aliased paths must not silently drop edges),
//! - `Self::name(` — resolved through the enclosing `impl`'s self type,
//! - `.name(` — a method call; name-only resolution (the receiver's
//!   type is unknown without inference, and trait-object dispatch means
//!   even a known receiver under-approximates).
//!
//! Reachability is a BFS over those edges from the fixed [`ROOTS`] — the
//! simulator event loop, the scenario/experiment runners, and the
//! trainer's scoring surface. Everything transitively callable is
//! *sim-reachable*; false edges only ever widen that set, never shrink
//! it, which is the safe direction for deny-by-default rules.
//!
//! Functions inside `#[cfg(test)]` regions or test paths neither act as
//! roots nor contribute edges: test code exercising a helper must not
//! drag that helper's callees into the sim-reachable set on its own.

use crate::lexer::{Tok, TokKind};
use crate::parser::FileSymbols;
use std::collections::BTreeMap;

/// The simulation entry points. `(None, name)` matches any function with
/// that name; `(Some(ty), name)` only methods of that self type.
///
/// Kept in sync with the actual surface:
/// - `Simulator::run` / `run_returning_ccs` and the free `run_scenario`
///   (the event loop and its wrapper, `crates/netsim/src/sim.rs`),
/// - `Evaluator::{evaluate, evaluate_per_specimen, score_candidates,
///   score_overlays}` (training's scoring surface,
///   `crates/core/src/evaluator.rs`),
/// - `Remy::{design, design_from}` (the optimizer driver),
/// - `Experiment::run`, `NamedExperiment::run`, `evaluate_scenarios`,
///   `run_main` (the experiment harness, `crates/remy-sim`).
pub const ROOTS: &[(Option<&str>, &str)] = &[
    (Some("Simulator"), "run"),
    (Some("Simulator"), "run_returning_ccs"),
    (None, "run_scenario"),
    (Some("Evaluator"), "evaluate"),
    (Some("Evaluator"), "evaluate_per_specimen"),
    (Some("Evaluator"), "score_candidates"),
    (Some("Evaluator"), "score_overlays"),
    (Some("Remy"), "design"),
    (Some("Remy"), "design_from"),
    (Some("Experiment"), "run"),
    (Some("NamedExperiment"), "run"),
    (None, "evaluate_scenarios"),
    (None, "run_main"),
];

/// One file's inputs to the graph.
pub struct GraphFile<'a> {
    pub toks: &'a [Tok],
    pub symbols: &'a FileSymbols,
}

/// Global function id: (file index, def index within that file).
pub type DefId = (usize, usize);

/// Extract every function's callee list: one `Vec<DefId>` per definition,
/// parallel to each file's `symbols.defs`. This is the materialized call
/// graph — reachability is a BFS over it, and the effect analysis
/// ([`crate::effects`]) propagates read/write footprints along the same
/// edges, so both views can never disagree about what calls what.
pub fn def_edges(files: &[GraphFile<'_>]) -> Vec<Vec<Vec<DefId>>> {
    // Name indexes over non-test definitions.
    let mut by_name: BTreeMap<&str, Vec<DefId>> = BTreeMap::new();
    let mut by_qual: BTreeMap<(&str, &str), Vec<DefId>> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        for (di, d) in f.symbols.defs.iter().enumerate() {
            if d.is_test {
                continue;
            }
            by_name.entry(&d.name).or_default().push((fi, di));
            if let Some(ty) = &d.self_ty {
                by_qual.entry((ty, &d.name)).or_default().push((fi, di));
            }
        }
    }
    files
        .iter()
        .map(|f| {
            f.symbols
                .defs
                .iter()
                .map(|d| body_edges(f, d.body, d.self_ty.as_deref(), &by_name, &by_qual))
                .collect()
        })
        .collect()
}

/// BFS over precomputed [`def_edges`] from the given root set, without
/// expanding through `stop` functions (by `(self type, name)`): a stop
/// function is neither marked nor descended into. The effect analysis
/// uses this with its commit-point list; plain reachability passes an
/// empty stop set.
pub fn reachable_over(
    files: &[GraphFile<'_>],
    edges: &[Vec<Vec<DefId>>],
    roots: &[(Option<&str>, &str)],
    stop: &[(&str, &str)],
) -> Vec<Vec<bool>> {
    let stopped = |id: DefId| -> bool {
        let d = &files[id.0].symbols.defs[id.1];
        stop.iter()
            .any(|&(ty, name)| d.name == name && d.self_ty.as_deref() == Some(ty))
    };
    let mut reach: Vec<Vec<bool>> = files
        .iter()
        .map(|f| vec![false; f.symbols.defs.len()])
        .collect();
    let mut work: Vec<DefId> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        for (di, d) in f.symbols.defs.iter().enumerate() {
            if d.is_test {
                continue;
            }
            let is_root = roots.iter().any(|&(ty, name)| {
                d.name == name
                    && match ty {
                        Some(ty) => d.self_ty.as_deref() == Some(ty),
                        None => true,
                    }
            });
            if is_root && !stopped((fi, di)) && !reach[fi][di] {
                reach[fi][di] = true;
                work.push((fi, di));
            }
        }
    }
    while let Some((fi, di)) = work.pop() {
        for &callee in &edges[fi][di] {
            let (cf, cd) = callee;
            if !reach[cf][cd] && !stopped(callee) {
                reach[cf][cd] = true;
                work.push(callee);
            }
        }
    }
    reach
}

/// Compute, for every file, which function definitions are reachable
/// from [`ROOTS`]. Returns one `Vec<bool>` per file, parallel to that
/// file's `symbols.defs`.
pub fn reachable_defs(files: &[GraphFile<'_>]) -> Vec<Vec<bool>> {
    let edges = def_edges(files);
    reachable_over(files, &edges, ROOTS, &[])
}

/// Extract the callee set of one function body.
fn body_edges(
    f: &GraphFile<'_>,
    body: (usize, usize),
    self_ty: Option<&str>,
    by_name: &BTreeMap<&str, Vec<DefId>>,
    by_qual: &BTreeMap<(&str, &str), Vec<DefId>>,
) -> Vec<DefId> {
    let toks = f.toks;
    // Code tokens of this body only; nested fns own their tokens, but
    // including them here is harmless (a nested fn is trivially called
    // by its parent in every case we care about — it is defined there).
    let code: Vec<usize> = (body.0..body.1.min(toks.len()))
        .filter(|&i| toks[i].kind != TokKind::Comment)
        .collect();
    let mut out: Vec<DefId> = Vec::new();
    for (k, &i) in code.iter().enumerate() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let next = code.get(k + 1).map(|&j| &toks[j]);
        // `name::<T>(` — a turbofish call; the ident before the `::<` is
        // the callable even though `(` is not the very next token.
        let turbofish = next.is_some_and(|t| t.is_punct(':'))
            && code.get(k + 2).is_some_and(|&j| toks[j].is_punct(':'))
            && code.get(k + 3).is_some_and(|&j| toks[j].is_punct('<'));
        let next_is_call = next.is_some_and(|t| t.is_punct('(')) || turbofish;
        // `name!(` is a macro invocation, not a call edge.
        if next.is_some_and(|t| t.is_punct('!')) {
            continue;
        }
        // Qualified path `Qual::name...`: the two tokens before are `::`
        // and before that the qualifier ident.
        let qual: Option<&str> = if k >= 3
            && toks[code[k - 1]].is_punct(':')
            && toks[code[k - 2]].is_punct(':')
            && toks[code[k - 3]].kind == TokKind::Ident
        {
            Some(toks[code[k - 3]].text.as_str())
        } else {
            None
        };
        let is_method = k >= 1 && toks[code[k - 1]].is_punct('.');
        // Plain identifiers that are neither called, nor a path segment,
        // nor a method call carry no edge (variables, field names…).
        if !next_is_call && qual.is_none() && !is_method {
            continue;
        }
        if is_method && !next_is_call {
            continue; // field access `a.b`, not a call
        }
        let name = toks[i].text.as_str();
        // Skip a path segment that has more path after it (`a::b::c` —
        // only `c` is the callable) — unless the `::` opens a turbofish
        // (`parse::<f64>(`, `collect::<Vec<_>>()`): there the segment IS
        // the callable and dropping it would lose the tail call of a
        // method chain.
        if !turbofish
            && next.is_some_and(|t| t.is_punct(':'))
            && code.get(k + 2).is_some_and(|&j| toks[j].is_punct(':'))
        {
            continue;
        }
        match qual {
            Some(q) => {
                let q = if q == "Self" { self_ty.unwrap_or(q) } else { q };
                if let Some(ids) = by_qual.get(&(q, name)) {
                    out.extend(ids.iter().copied());
                } else if let Some(ids) = by_name.get(name) {
                    // Unknown/external qualifier (trait path, alias):
                    // over-approximate by name.
                    out.extend(ids.iter().copied());
                }
            }
            None => {
                if let Some(ids) = by_name.get(name) {
                    out.extend(ids.iter().copied());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;
    use crate::test_region_mask;

    /// Lex + parse a set of (path, source) files and return the
    /// reachable qualified names, sorted.
    fn reach(files: &[(&str, &str)]) -> Vec<String> {
        let lexed: Vec<(Vec<Tok>, FileSymbols)> = files
            .iter()
            .map(|(path, src)| {
                let toks = lex(src);
                let mask = test_region_mask(&toks, path);
                let syms = parse_file(&toks, &mask);
                (toks, syms)
            })
            .collect();
        let gfiles: Vec<GraphFile<'_>> = lexed
            .iter()
            .map(|(toks, symbols)| GraphFile { toks, symbols })
            .collect();
        let r = reachable_defs(&gfiles);
        let mut out: Vec<String> = Vec::new();
        for (fi, flags) in r.iter().enumerate() {
            for (di, &on) in flags.iter().enumerate() {
                if on {
                    out.push(lexed[fi].1.defs[di].qual_name());
                }
            }
        }
        out.sort();
        out
    }

    #[test]
    fn direct_call_chain_from_root() {
        let src = "\
impl Simulator {
    pub fn run(self) { step(); }
}
fn step() { leaf(); }
fn leaf() {}
fn dead() { also_dead(); }
fn also_dead() {}
";
        assert_eq!(
            reach(&[("crates/netsim/src/sim.rs", src)]),
            vec!["Simulator::run", "leaf", "step"]
        );
    }

    #[test]
    fn trait_object_method_call_is_over_approximate() {
        let src = "\
impl Simulator {
    pub fn run(self, cc: &mut dyn CongestionControl) { cc.on_ack(1); }
}
impl Cubic {
    fn on_ack(&mut self, n: u64) {}
}
impl Vegas {
    fn on_ack(&mut self, n: u64) {}
}
impl Unrelated {
    fn on_nack(&mut self) {}
}
";
        // `.on_ack(` reaches every on_ack in the workspace — that is the
        // point: dynamic dispatch cannot be narrowed, so all impls count.
        assert_eq!(
            reach(&[("crates/netsim/src/sim.rs", src)]),
            vec!["Cubic::on_ack", "Simulator::run", "Vegas::on_ack"]
        );
    }

    #[test]
    fn cross_crate_edge_by_qualified_and_plain_call() {
        let a = "\
impl Evaluator {
    pub fn score_candidates(&self) {
        netsim::run_scenario();
        helper_in_b();
    }
}
";
        let b = "\
pub fn run_scenario() { inner(); }
fn inner() {}
pub fn helper_in_b() {}
fn not_called() {}
";
        assert_eq!(
            reach(&[
                ("crates/core/src/evaluator.rs", a),
                ("crates/netsim/src/sim.rs", b),
            ]),
            vec![
                "Evaluator::score_candidates",
                "helper_in_b",
                "inner",
                "run_scenario"
            ]
        );
    }

    #[test]
    fn self_qualified_calls_resolve_through_the_impl_type() {
        let src = "\
impl Simulator {
    pub fn run(self) { Self::tick(); }
    fn tick() { Simulator::finish(); }
    fn finish() {}
    fn unused() {}
}
";
        assert_eq!(
            reach(&[("crates/netsim/src/sim.rs", src)]),
            vec!["Simulator::finish", "Simulator::run", "Simulator::tick"]
        );
    }

    #[test]
    fn path_reference_without_call_parens_is_an_edge() {
        let src = "\
impl Simulator {
    pub fn run(self) { let f = Simulator::tick; f(); }
    fn tick() {}
}
";
        let r = reach(&[("crates/netsim/src/sim.rs", src)]);
        assert!(r.contains(&"Simulator::tick".to_string()), "{r:?}");
    }

    #[test]
    fn test_functions_do_not_create_reachability() {
        let src = "\
impl Simulator {
    pub fn run(self) {}
}
fn helper_only_tests_call() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { helper_only_tests_call(); }
}
";
        assert_eq!(
            reach(&[("crates/netsim/src/sim.rs", src)]),
            vec!["Simulator::run"]
        );
    }

    #[test]
    fn unknown_qualifier_falls_back_to_name_resolution() {
        let src = "\
impl Simulator {
    pub fn run(self) { <T as Steppable>::step_once(); }
}
impl Wheel {
    fn step_once(&mut self) {}
}
";
        let r = reach(&[("crates/netsim/src/sim.rs", src)]);
        assert!(r.contains(&"Wheel::step_once".to_string()), "{r:?}");
    }

    #[test]
    fn mid_path_segments_are_not_edges() {
        let src = "\
impl Simulator {
    pub fn run(self) { a::b::target(); }
}
fn b() {}
fn target() {}
";
        let r = reach(&[("crates/netsim/src/sim.rs", src)]);
        assert!(r.contains(&"target".to_string()));
        assert!(!r.contains(&"b".to_string()), "{r:?}");
    }

    #[test]
    fn no_roots_means_nothing_reachable() {
        let src = "fn a() { b(); } fn b() {}";
        assert!(reach(&[("crates/netsim/src/x.rs", src)]).is_empty());
    }

    #[test]
    fn turbofish_method_tail_call_is_an_edge() {
        // `self.raw.parse::<f64>()` — the `::<` used to make the parser
        // treat `parse` as a mid-path segment and drop the edge, hiding
        // the tail call of the receiver chain from every graph rule.
        let src = "\
impl Simulator {
    pub fn run(self) { self.raw.parse::<f64>(); }
}
impl Field {
    fn parse(&self) -> f64 { 0.0 }
}
";
        let r = reach(&[("crates/netsim/src/sim.rs", src)]);
        assert!(r.contains(&"Field::parse".to_string()), "{r:?}");
    }

    #[test]
    fn turbofish_free_function_call_is_an_edge() {
        let src = "\
impl Simulator {
    pub fn run(self) { decode::<u32>(); }
}
fn decode() {}
";
        let r = reach(&[("crates/netsim/src/sim.rs", src)]);
        assert!(r.contains(&"decode".to_string()), "{r:?}");
    }

    #[test]
    fn every_link_of_a_method_chain_is_an_edge() {
        let src = "\
impl Simulator {
    pub fn run(self) { self.table.snapshot().normalize().total(); }
}
impl Table {
    fn snapshot(&self) -> View { View }
}
impl View {
    fn normalize(self) -> View { self }
    fn total(&self) -> f64 { 0.0 }
}
";
        let r = reach(&[("crates/netsim/src/sim.rs", src)]);
        for want in ["Table::snapshot", "View::normalize", "View::total"] {
            assert!(r.contains(&want.to_string()), "missing {want}: {r:?}");
        }
    }

    #[test]
    fn reachable_over_stops_at_but_does_not_mark_stop_fns() {
        let src = "\
impl Simulator {
    pub fn run(&mut self) { self.step(); self.finish(); }
    fn step(&mut self) { helper(); }
    fn finish(&mut self) { behind_barrier(); }
}
fn helper() {}
fn behind_barrier() {}
";
        let toks = lex(src);
        let mask = test_region_mask(&toks, "crates/netsim/src/sim.rs");
        let syms = parse_file(&toks, &mask);
        let gfiles = [GraphFile {
            toks: &toks,
            symbols: &syms,
        }];
        let edges = def_edges(&gfiles);
        let r = reachable_over(
            &gfiles,
            &edges,
            &[(Some("Simulator"), "run")],
            &[("Simulator", "finish")],
        );
        let names: Vec<&str> = syms
            .defs
            .iter()
            .zip(&r[0])
            .filter(|&(_, &on)| on)
            .map(|(d, _)| d.name.as_str())
            .collect();
        assert_eq!(names, vec!["run", "step", "helper"]);
    }
}
