//! Over-approximate workspace call graph + reachability from the
//! simulation entry points.
//!
//! The P/R/S rule families ask one question of every token: *can the
//! function holding this token run during a simulation?* This module
//! answers it conservatively. From the per-file symbol tables
//! ([`crate::parser`]) it extracts call edges by token shape:
//!
//! - `name(` — a direct call; resolves to **every** function named
//!   `name` in the workspace (free or method — over-approximate),
//! - `Type::name(` / `Type::name` — a qualified call or path reference;
//!   resolves to the method `(Type, name)` when the workspace defines
//!   it, falling back to name-only resolution otherwise (trait-qualified
//!   and aliased paths must not silently drop edges),
//! - `Self::name(` — resolved through the enclosing `impl`'s self type,
//! - `.name(` — a method call; name-only resolution (the receiver's
//!   type is unknown without inference, and trait-object dispatch means
//!   even a known receiver under-approximates).
//!
//! Reachability is a BFS over those edges from the fixed [`ROOTS`] — the
//! simulator event loop, the scenario/experiment runners, and the
//! trainer's scoring surface. Everything transitively callable is
//! *sim-reachable*; false edges only ever widen that set, never shrink
//! it, which is the safe direction for deny-by-default rules.
//!
//! Functions inside `#[cfg(test)]` regions or test paths neither act as
//! roots nor contribute edges: test code exercising a helper must not
//! drag that helper's callees into the sim-reachable set on its own.

use crate::lexer::{Tok, TokKind};
use crate::parser::FileSymbols;
use std::collections::BTreeMap;

/// The simulation entry points. `(None, name)` matches any function with
/// that name; `(Some(ty), name)` only methods of that self type.
///
/// Kept in sync with the actual surface:
/// - `Simulator::run` / `run_returning_ccs` and the free `run_scenario`
///   (the event loop and its wrapper, `crates/netsim/src/sim.rs`),
/// - `Evaluator::{evaluate, evaluate_per_specimen, score_candidates,
///   score_overlays}` (training's scoring surface,
///   `crates/core/src/evaluator.rs`),
/// - `Remy::{design, design_from}` (the optimizer driver),
/// - `Experiment::run`, `NamedExperiment::run`, `evaluate_scenarios`,
///   `run_main` (the experiment harness, `crates/remy-sim`).
pub const ROOTS: &[(Option<&str>, &str)] = &[
    (Some("Simulator"), "run"),
    (Some("Simulator"), "run_returning_ccs"),
    (None, "run_scenario"),
    (Some("Evaluator"), "evaluate"),
    (Some("Evaluator"), "evaluate_per_specimen"),
    (Some("Evaluator"), "score_candidates"),
    (Some("Evaluator"), "score_overlays"),
    (Some("Remy"), "design"),
    (Some("Remy"), "design_from"),
    (Some("Experiment"), "run"),
    (Some("NamedExperiment"), "run"),
    (None, "evaluate_scenarios"),
    (None, "run_main"),
];

/// One file's inputs to the graph.
pub struct GraphFile<'a> {
    pub toks: &'a [Tok],
    pub symbols: &'a FileSymbols,
}

/// Global function id: (file index, def index within that file).
pub type DefId = (usize, usize);

/// Compute, for every file, which function definitions are reachable
/// from [`ROOTS`]. Returns one `Vec<bool>` per file, parallel to that
/// file's `symbols.defs`.
pub fn reachable_defs(files: &[GraphFile<'_>]) -> Vec<Vec<bool>> {
    // Name indexes over non-test definitions.
    let mut by_name: BTreeMap<&str, Vec<DefId>> = BTreeMap::new();
    let mut by_qual: BTreeMap<(&str, &str), Vec<DefId>> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        for (di, d) in f.symbols.defs.iter().enumerate() {
            if d.is_test {
                continue;
            }
            by_name.entry(&d.name).or_default().push((fi, di));
            if let Some(ty) = &d.self_ty {
                by_qual.entry((ty, &d.name)).or_default().push((fi, di));
            }
        }
    }

    let mut reach: Vec<Vec<bool>> = files
        .iter()
        .map(|f| vec![false; f.symbols.defs.len()])
        .collect();
    let mut work: Vec<DefId> = Vec::new();
    for &(ty, name) in ROOTS {
        let ids: &[DefId] = match ty {
            Some(ty) => by_qual.get(&(ty, name)).map(Vec::as_slice).unwrap_or(&[]),
            None => by_name.get(name).map(Vec::as_slice).unwrap_or(&[]),
        };
        for &(fi, di) in ids {
            if !reach[fi][di] {
                reach[fi][di] = true;
                work.push((fi, di));
            }
        }
    }

    while let Some((fi, di)) = work.pop() {
        let f = &files[fi];
        let def = &f.symbols.defs[di];
        for callee in body_edges(f, def.body, def.self_ty.as_deref(), &by_name, &by_qual) {
            let (cf, cd) = callee;
            if !reach[cf][cd] {
                reach[cf][cd] = true;
                work.push(callee);
            }
        }
    }
    reach
}

/// Extract the callee set of one function body.
fn body_edges(
    f: &GraphFile<'_>,
    body: (usize, usize),
    self_ty: Option<&str>,
    by_name: &BTreeMap<&str, Vec<DefId>>,
    by_qual: &BTreeMap<(&str, &str), Vec<DefId>>,
) -> Vec<DefId> {
    let toks = f.toks;
    // Code tokens of this body only; nested fns own their tokens, but
    // including them here is harmless (a nested fn is trivially called
    // by its parent in every case we care about — it is defined there).
    let code: Vec<usize> = (body.0..body.1.min(toks.len()))
        .filter(|&i| toks[i].kind != TokKind::Comment)
        .collect();
    let mut out: Vec<DefId> = Vec::new();
    for (k, &i) in code.iter().enumerate() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        let next = code.get(k + 1).map(|&j| &toks[j]);
        let next_is_call = next.is_some_and(|t| t.is_punct('('));
        // `name!(` is a macro invocation, not a call edge.
        if next.is_some_and(|t| t.is_punct('!')) {
            continue;
        }
        // Qualified path `Qual::name...`: the two tokens before are `::`
        // and before that the qualifier ident.
        let qual: Option<&str> = if k >= 3
            && toks[code[k - 1]].is_punct(':')
            && toks[code[k - 2]].is_punct(':')
            && toks[code[k - 3]].kind == TokKind::Ident
        {
            Some(toks[code[k - 3]].text.as_str())
        } else {
            None
        };
        let is_method = k >= 1 && toks[code[k - 1]].is_punct('.');
        // Plain identifiers that are neither called, nor a path segment,
        // nor a method call carry no edge (variables, field names…).
        if !next_is_call && qual.is_none() && !is_method {
            continue;
        }
        if is_method && !next_is_call {
            continue; // field access `a.b`, not a call
        }
        let name = toks[i].text.as_str();
        // Skip a path segment that has more path after it (`a::b::c` —
        // only `c` is the callable).
        if next.is_some_and(|t| t.is_punct(':'))
            && code.get(k + 2).is_some_and(|&j| toks[j].is_punct(':'))
        {
            continue;
        }
        match qual {
            Some(q) => {
                let q = if q == "Self" { self_ty.unwrap_or(q) } else { q };
                if let Some(ids) = by_qual.get(&(q, name)) {
                    out.extend(ids.iter().copied());
                } else if let Some(ids) = by_name.get(name) {
                    // Unknown/external qualifier (trait path, alias):
                    // over-approximate by name.
                    out.extend(ids.iter().copied());
                }
            }
            None => {
                if let Some(ids) = by_name.get(name) {
                    out.extend(ids.iter().copied());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;
    use crate::test_region_mask;

    /// Lex + parse a set of (path, source) files and return the
    /// reachable qualified names, sorted.
    fn reach(files: &[(&str, &str)]) -> Vec<String> {
        let lexed: Vec<(Vec<Tok>, FileSymbols)> = files
            .iter()
            .map(|(path, src)| {
                let toks = lex(src);
                let mask = test_region_mask(&toks, path);
                let syms = parse_file(&toks, &mask);
                (toks, syms)
            })
            .collect();
        let gfiles: Vec<GraphFile<'_>> = lexed
            .iter()
            .map(|(toks, symbols)| GraphFile { toks, symbols })
            .collect();
        let r = reachable_defs(&gfiles);
        let mut out: Vec<String> = Vec::new();
        for (fi, flags) in r.iter().enumerate() {
            for (di, &on) in flags.iter().enumerate() {
                if on {
                    out.push(lexed[fi].1.defs[di].qual_name());
                }
            }
        }
        out.sort();
        out
    }

    #[test]
    fn direct_call_chain_from_root() {
        let src = "\
impl Simulator {
    pub fn run(self) { step(); }
}
fn step() { leaf(); }
fn leaf() {}
fn dead() { also_dead(); }
fn also_dead() {}
";
        assert_eq!(
            reach(&[("crates/netsim/src/sim.rs", src)]),
            vec!["Simulator::run", "leaf", "step"]
        );
    }

    #[test]
    fn trait_object_method_call_is_over_approximate() {
        let src = "\
impl Simulator {
    pub fn run(self, cc: &mut dyn CongestionControl) { cc.on_ack(1); }
}
impl Cubic {
    fn on_ack(&mut self, n: u64) {}
}
impl Vegas {
    fn on_ack(&mut self, n: u64) {}
}
impl Unrelated {
    fn on_nack(&mut self) {}
}
";
        // `.on_ack(` reaches every on_ack in the workspace — that is the
        // point: dynamic dispatch cannot be narrowed, so all impls count.
        assert_eq!(
            reach(&[("crates/netsim/src/sim.rs", src)]),
            vec!["Cubic::on_ack", "Simulator::run", "Vegas::on_ack"]
        );
    }

    #[test]
    fn cross_crate_edge_by_qualified_and_plain_call() {
        let a = "\
impl Evaluator {
    pub fn score_candidates(&self) {
        netsim::run_scenario();
        helper_in_b();
    }
}
";
        let b = "\
pub fn run_scenario() { inner(); }
fn inner() {}
pub fn helper_in_b() {}
fn not_called() {}
";
        assert_eq!(
            reach(&[
                ("crates/core/src/evaluator.rs", a),
                ("crates/netsim/src/sim.rs", b),
            ]),
            vec![
                "Evaluator::score_candidates",
                "helper_in_b",
                "inner",
                "run_scenario"
            ]
        );
    }

    #[test]
    fn self_qualified_calls_resolve_through_the_impl_type() {
        let src = "\
impl Simulator {
    pub fn run(self) { Self::tick(); }
    fn tick() { Simulator::finish(); }
    fn finish() {}
    fn unused() {}
}
";
        assert_eq!(
            reach(&[("crates/netsim/src/sim.rs", src)]),
            vec!["Simulator::finish", "Simulator::run", "Simulator::tick"]
        );
    }

    #[test]
    fn path_reference_without_call_parens_is_an_edge() {
        let src = "\
impl Simulator {
    pub fn run(self) { let f = Simulator::tick; f(); }
    fn tick() {}
}
";
        let r = reach(&[("crates/netsim/src/sim.rs", src)]);
        assert!(r.contains(&"Simulator::tick".to_string()), "{r:?}");
    }

    #[test]
    fn test_functions_do_not_create_reachability() {
        let src = "\
impl Simulator {
    pub fn run(self) {}
}
fn helper_only_tests_call() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { helper_only_tests_call(); }
}
";
        assert_eq!(
            reach(&[("crates/netsim/src/sim.rs", src)]),
            vec!["Simulator::run"]
        );
    }

    #[test]
    fn unknown_qualifier_falls_back_to_name_resolution() {
        let src = "\
impl Simulator {
    pub fn run(self) { <T as Steppable>::step_once(); }
}
impl Wheel {
    fn step_once(&mut self) {}
}
";
        let r = reach(&[("crates/netsim/src/sim.rs", src)]);
        assert!(r.contains(&"Wheel::step_once".to_string()), "{r:?}");
    }

    #[test]
    fn mid_path_segments_are_not_edges() {
        let src = "\
impl Simulator {
    pub fn run(self) { a::b::target(); }
}
fn b() {}
fn target() {}
";
        let r = reach(&[("crates/netsim/src/sim.rs", src)]);
        assert!(r.contains(&"target".to_string()));
        assert!(!r.contains(&"b".to_string()), "{r:?}");
    }

    #[test]
    fn no_roots_means_nothing_reachable() {
        let src = "fn a() { b(); } fn b() {}";
        assert!(reach(&[("crates/netsim/src/x.rs", src)]).is_empty());
    }
}
