//! Field-level effect analysis: who writes what, and can two event
//! handlers commute?
//!
//! ROADMAP item 1 (zone-partitioned conservative PDES) needs one question
//! answered *mechanically*: which event handlers touch which mutable
//! state, and do any two handlers' write-sets collide outside
//! flow-/hop-keyed data? This module grows the lint from reachability
//! ([`crate::callgraph`]) to effects:
//!
//! 1. **Extraction** — for every function body, a token-level pass
//!    recovers field accesses through `self`, `&mut`-typed parameters,
//!    and local aliases bound from them (`let Some(c) =
//!    self.churn.as_mut()` makes every access through `c` an access to
//!    `Simulator.churn`). Writes are plain assignment, compound
//!    assignment, `&mut` borrows, and method calls whose name resolves to
//!    a `&mut self` receiver anywhere in the workspace (or a builtin
//!    mutator like `push`).
//! 2. **The state model** — [`STATE_MODEL`] classifies every mutable
//!    field of the sim-scope structs into a partition bucket:
//!    [`Bucket::PerFlow`] / [`Bucket::PerHop`] / [`Bucket::PerZone`] /
//!    [`Bucket::Global`]. A field absent from the model that the sim
//!    mutates is an `e3-unmodeled-state` diagnostic — the gate that keeps
//!    the model current as code grows.
//! 3. **Propagation** — footprints flow transitively over the call graph.
//!    From the event-loop roots ([`HANDLER_ROOTS`]), every write that
//!    reaches `global`-bucket state outside an allowlisted commit point
//!    ([`COMMIT_POINTS`]) is an `e1-global-write-in-handler` diagnostic
//!    and a *global-write edge* in the `--effects` report. The committed
//!    `lint/effects_baseline.json` ratchets that edge set: CI fails on
//!    any new edge.
//!
//! Everything here is over-approximate in the safe direction: name-only
//! method resolution widens write-sets, never narrows them, so a clean
//! report means clean, while a finding may still merit a justified allow.

use crate::callgraph::{self, DefId, GraphFile};
use crate::lexer::{Tok, TokKind};
use crate::parser::FileSymbols;
use crate::{Analysis, FileCtx};
use std::collections::{BTreeMap, BTreeSet};

/// Partition bucket of one piece of mutable state in the PDES design.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Bucket {
    /// Keyed by flow: lives with the flow's owning zone, migrates with
    /// the flow, never shared.
    PerFlow,
    /// Keyed by hop/link: owned by the zone containing that hop.
    PerHop,
    /// One instance per zone (clock, event wheel, arena, counters with a
    /// commutative merge at commit).
    PerZone,
    /// Genuinely shared across zones: every write outside a commit point
    /// is an ordering hazard for the parallel event loop.
    Global,
}

impl Bucket {
    /// The bucket's stable spelling, as used in the state model docs,
    /// the JSON report, and the diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Bucket::PerFlow => "per_flow",
            Bucket::PerHop => "per_hop",
            Bucket::PerZone => "per_zone",
            Bucket::Global => "global",
        }
    }
}

/// The declarative state model: `(type, field, bucket)`. A field entry
/// of `"*"` classifies every field of the type at once (value types
/// whose instances inherit the bucket of whatever field owns them).
/// Exact entries take precedence over the wildcard.
///
/// CONTRIBUTING.md ("State model") documents how to classify a new
/// field; `e3-unmodeled-state` fires when a sim-mutated netsim field is
/// missing here, and the stale-entry check fires when an exact entry
/// outlives its field.
pub const STATE_MODEL: &[(&str, &str, Bucket)] = &[
    // --- Simulator: the event loop's own state, field by field. ---
    ("Simulator", "now", Bucket::PerZone),
    ("Simulator", "end", Bucket::PerZone),
    ("Simulator", "events", Bucket::PerZone),
    ("Simulator", "arena", Bucket::PerZone),
    ("Simulator", "hops", Bucket::PerHop),
    ("Simulator", "flows", Bucket::PerFlow),
    ("Simulator", "n_persistent", Bucket::PerZone),
    // One Poisson arrival stream + order-sensitive population stats:
    // the headline global on the PDES worklist.
    ("Simulator", "churn", Bucket::Global),
    // Routing epoch + failover counters shared by every path: link
    // events are global barriers (see COMMIT_POINTS).
    ("Simulator", "net", Bucket::Global),
    ("Simulator", "mss", Bucket::PerZone),
    ("Simulator", "packets_forwarded", Bucket::PerZone),
    ("Simulator", "deliveries", Bucket::PerZone),
    ("Simulator", "deliveries_dropped", Bucket::PerZone),
    ("Simulator", "record_deliveries", Bucket::PerZone),
    ("Simulator", "delivery_log_cap", Bucket::PerZone),
    // --- FlowTable: SoA per-flow state + its allocator. ---
    ("FlowTable", "slots", Bucket::PerFlow),
    ("FlowTable", "hot", Bucket::PerFlow),
    ("FlowTable", "cold", Bucket::PerFlow),
    ("FlowTable", "free", Bucket::PerZone),
    ("FlowTable", "live", Bucket::PerZone),
    // --- Shared engine containers: one instance per zone. ---
    ("PacketArena", "*", Bucket::PerZone),
    ("EventQueue", "*", Bucket::PerZone),
    ("TimingWheel", "*", Bucket::PerZone),
    ("Shadow", "*", Bucket::PerZone),
    // --- Hop-keyed state: queues, links, routers. ---
    ("Hop", "*", Bucket::PerHop),
    ("DropTail", "*", Bucket::PerHop),
    ("EcnThreshold", "*", Bucket::PerHop),
    ("Codel", "*", Bucket::PerHop),
    ("CodelLaw", "*", Bucket::PerHop),
    ("SfqCodel", "*", Bucket::PerHop),
    ("Red", "*", Bucket::PerHop),
    ("Lossy", "*", Bucket::PerHop),
    ("TraceCursor", "*", Bucket::PerHop),
    ("HopSpec", "*", Bucket::PerHop),
    // --- Flow-keyed value types: live inside FlowTable columns or the
    //     flow's congestion-control instance. ---
    ("FlowHot", "*", Bucket::PerFlow),
    ("FlowCold", "*", Bucket::PerFlow),
    ("Receiver", "*", Bucket::PerFlow),
    ("Transport", "*", Bucket::PerFlow),
    ("FlowMetrics", "*", Bucket::PerFlow),
    ("TrafficProcess", "*", Bucket::PerFlow),
    ("Memory", "*", Bucket::PerFlow),
    ("Usage", "*", Bucket::PerFlow),
    ("AckInfo", "*", Bucket::PerFlow),
    ("FlowPath", "*", Bucket::PerFlow),
    // --- Packets: owned by the zone currently holding them; handoff at
    //     zone boundaries is the inter-zone channel. ---
    ("Packet", "*", Bucket::PerZone),
    ("Ack", "*", Bucket::PerZone),
    ("XcpHeader", "*", Bucket::PerZone),
    // --- Value types bucketed by their owning field (per_zone = sound
    //     whenever exactly one zone owns the instance). ---
    ("SimRng", "*", Bucket::PerZone),
    ("StreamingSummary", "*", Bucket::PerZone),
    ("Reservoir", "*", Bucket::PerZone),
    ("P2Quantile", "*", Bucket::PerZone),
    // --- Single-owner ephemeral state: alive only during construction
    //     or results assembly, never shared mid-loop. ---
    ("NetworkBuilder", "*", Bucket::PerZone),
    ("Parser", "*", Bucket::PerZone),
    ("Scenario", "*", Bucket::PerZone),
    // --- Genuinely global state behind the Simulator.churn / .net
    //     container fields. ---
    ("ChurnState", "*", Bucket::Global),
    ("NetState", "*", Bucket::Global),
    ("NetGraph", "*", Bucket::Global),
    ("Network", "*", Bucket::Global),
];

/// Commit points: functions whose writes are *excluded* from the
/// handler-scope global-write gate. `Simulator::finish` assembles results
/// after the event loop drains (a natural end-of-run commit);
/// `Simulator::on_link_event` is a topology change — in the PDES design a
/// global barrier where every zone quiesces, re-routes, and resumes, so
/// its global writes are synchronization by construction, not a race.
pub const COMMIT_POINTS: &[(&str, &str)] =
    &[("Simulator", "finish"), ("Simulator", "on_link_event")];

/// The event-loop entry points whose transitive write-sets the
/// `e1-global-write-in-handler` gate and the baseline ratchet cover.
/// (The full 13-root footprint report covers training and harness roots
/// too; construction-time writes there are not handler hazards.)
pub const HANDLER_ROOTS: &[(Option<&str>, &str)] = &[
    (Some("Simulator"), "run"),
    (Some("Simulator"), "run_returning_ccs"),
    (None, "run_scenario"),
];

/// The per-event dispatch handlers of `Simulator::drive`, in dispatch
/// order — the rows/columns of the commutativity matrix. Two handlers
/// commute when no global-bucket field is in one's write-set and the
/// other's read-or-write-set.
pub const HANDLERS: &[(&str, &str)] = &[
    ("Simulator", "on_toggle"),
    ("Simulator", "on_trace_slot"),
    ("Simulator", "on_hop_arrive"),
    ("Simulator", "on_deliver"),
    ("Simulator", "on_ack_arrive"),
    ("Simulator", "on_rto"),
    ("Simulator", "on_router_tick"),
    ("Simulator", "on_spawn"),
    ("Simulator", "on_link_event"),
];

/// Method names that mutate their receiver even though no workspace
/// definition carries the `&mut self` signature (std types). Resolution
/// by name only — over-approximate in the safe (write) direction.
const BUILTIN_MUT_METHODS: &[&str] = &[
    "append",
    "as_mut",
    "clear",
    "drain",
    "extend",
    "fill",
    "first_mut",
    "get_mut",
    "get_or_insert_with",
    "insert",
    "iter_mut",
    "last_mut",
    "pop",
    "pop_front",
    "push",
    "push_back",
    "remove",
    "replace",
    "resize",
    "retain",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "split_off",
    "swap",
    "take",
    "truncate",
];

/// Look up the bucket of `(ty, field)`: exact entry first, then the
/// type's `"*"` wildcard.
pub fn bucket_of(ty: &str, field: &str) -> Option<Bucket> {
    STATE_MODEL
        .iter()
        .find(|(t, f, _)| *t == ty && *f == field)
        .or_else(|| STATE_MODEL.iter().find(|(t, f, _)| *t == ty && *f == "*"))
        .map(|&(_, _, b)| b)
}

/// One field access extracted from a function body, attributed to the
/// *container* field of the root object (`self.churn.arrivals.next()` is
/// an access to `(Simulator, churn)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Access {
    /// The root object's type (`Simulator`, `FlowTable`, ...).
    pub ty: String,
    /// The root field accessed through it.
    pub field: String,
    /// True for writes (assignment, compound assignment, `&mut` borrow,
    /// mutating method call); compound assignment records a read too.
    pub write: bool,
    /// True for compound assignment (`+=`, `*=`, ...) — a
    /// read-modify-write whose result depends on the old value.
    pub compound: bool,
    /// 1-based source line of the access.
    pub line: u32,
    /// Raw token index of the base identifier (for lexical-span checks
    /// like "is this access inside a loop body").
    pub tok: usize,
    /// The innermost field of the projection chain (equal to `field` for
    /// single-step accesses): `self.churn.spawned` has field `churn`,
    /// leaf `spawned`.
    pub leaf: String,
}

/// Whole-workspace effect state, computed once per [`Analysis`].
pub struct Effects {
    /// Per file, per definition: the direct (non-transitive) accesses.
    pub accesses: Vec<Vec<Vec<Access>>>,
    /// The materialized call graph (parallel to `symbols.defs`).
    pub edges: Vec<Vec<Vec<DefId>>>,
    /// Definitions reachable from [`HANDLER_ROOTS`] without passing
    /// through a [`COMMIT_POINTS`] function — the `e1` scope.
    pub handler_scope: Vec<Vec<bool>>,
    /// Every `(type, field)` written by some sim-reachable definition,
    /// with one witness site `(file index, line, via qual name)`.
    pub written: BTreeMap<(String, String), (usize, u32, String)>,
}

/// Extract per-function accesses and handler-scope reachability.
pub fn compute(
    files: &[FileCtx],
    symbols: &[FileSymbols],
    edges: Vec<Vec<Vec<DefId>>>,
    reachable: &[Vec<bool>],
) -> Effects {
    // Names of workspace methods with a `&mut self` receiver: a method
    // call `.name(` resolves to a write when any definition of that name
    // mutates its receiver (over-approximate, the safe direction).
    let mut mut_names: BTreeSet<&str> = BUILTIN_MUT_METHODS.iter().copied().collect();
    for (f, s) in files.iter().zip(symbols) {
        // Shims and test code mimic external APIs (the criterion shim has
        // an `iter(&mut self)`); their receiver conventions must not
        // poison name resolution for sim code.
        if f.path.contains("/shims/") || crate::is_test_path(&f.path) {
            continue;
        }
        for d in &s.defs {
            if d.self_mut && !d.is_test {
                mut_names.insert(&d.name);
            }
        }
    }

    let accesses: Vec<Vec<Vec<Access>>> = files
        .iter()
        .zip(symbols)
        .map(|(f, s)| {
            s.defs
                .iter()
                .map(|d| fn_accesses(&f.toks, d, &mut_names))
                .collect()
        })
        .collect();

    let gfiles: Vec<GraphFile<'_>> = files
        .iter()
        .zip(symbols)
        .map(|(f, s)| GraphFile {
            toks: &f.toks,
            symbols: s,
        })
        .collect();
    let handler_scope = callgraph::reachable_over(&gfiles, &edges, HANDLER_ROOTS, COMMIT_POINTS);

    let mut written: BTreeMap<(String, String), (usize, u32, String)> = BTreeMap::new();
    for (fi, flags) in reachable.iter().enumerate() {
        for (di, &on) in flags.iter().enumerate() {
            if !on || symbols[fi].defs[di].is_test {
                continue;
            }
            for a in &accesses[fi][di] {
                if a.write {
                    written.entry((a.ty.clone(), a.field.clone())).or_insert((
                        fi,
                        a.line,
                        symbols[fi].defs[di].qual_name(),
                    ));
                }
            }
        }
    }

    Effects {
        accesses,
        edges,
        handler_scope,
        written,
    }
}

/// What an identifier in scope roots to: a struct base (`self`, a typed
/// reference parameter) whose field projections are attributed directly,
/// or an alias pinned to one `(type, field)` pair.
#[derive(Clone, Debug)]
enum Base {
    /// Accesses project a field: `base.f` → `(ty, f)`.
    Struct(String),
    /// Accesses are pinned: any use is an access to `(ty, field)`.
    Alias(String, String),
}

/// Extract the direct field accesses of one function body.
fn fn_accesses(
    toks: &[Tok],
    def: &crate::parser::FnDef,
    mut_names: &BTreeSet<&str>,
) -> Vec<Access> {
    let code: Vec<usize> = (def.body.0..def.body.1.min(toks.len()))
        .filter(|&i| toks[i].kind != TokKind::Comment)
        .collect();
    let mut bases: BTreeMap<String, Base> = BTreeMap::new();
    if let Some(ty) = &def.self_ty {
        bases.insert("self".to_string(), Base::Struct(ty.clone()));
    }
    param_bases(toks, def.sig, &mut bases);

    let mut out: Vec<Access> = Vec::new();
    // Token indices (into `code`) that are `let`-pattern bindings: they
    // look like `c = ...` but bind a name instead of writing through it.
    let mut pattern_tokens: BTreeSet<usize> = BTreeSet::new();

    for k in 0..code.len() {
        let t = &toks[code[k]];
        if t.is_ident("let") {
            bind_let_aliases(toks, &code, k, &mut bases, &mut pattern_tokens);
            continue;
        }
        if t.kind != TokKind::Ident || pattern_tokens.contains(&k) {
            continue;
        }
        // A base use must not itself be a field/path segment.
        if k > 0 && (toks[code[k - 1]].is_punct('.') || toks[code[k - 1]].is_punct(':')) {
            continue;
        }
        let Some(base) = bases.get(&t.text) else {
            continue;
        };
        let line = t.line;
        let (end, first_field, last_field, method) = walk_projection(toks, &code, k + 1);
        let (ty, field) = match base {
            Base::Alias(ty, field) => (ty.clone(), field.clone()),
            Base::Struct(ty) => match first_field {
                Some(f) => (ty.clone(), f),
                // `self.method(...)` or a bare `self`: no field access of
                // its own — the callee's footprint covers it via the call
                // graph (and `&mut self` borrows say nothing field-level).
                None => continue,
            },
        };
        let write = match &method {
            Some(m) => mut_names.contains(m.as_str()),
            None => {
                is_write_op(toks, &code, end)
                    || (k >= 2
                        && toks[code[k - 1]].is_ident("mut")
                        && toks[code[k - 2]].is_punct('&'))
            }
        };
        let compound = method.is_none() && write && !is_plain_assign(toks, &code, end);
        let leaf = last_field.unwrap_or_else(|| field.clone());
        if compound || !write {
            out.push(Access {
                ty: ty.clone(),
                field: field.clone(),
                write: false,
                compound,
                line,
                tok: code[k],
                leaf: leaf.clone(),
            });
        }
        if write {
            out.push(Access {
                ty,
                field,
                write: true,
                compound,
                line,
                tok: code[k],
                leaf,
            });
        }
    }
    out.sort_by(|a, b| (a.line, &a.ty, &a.field, a.write).cmp(&(b.line, &b.ty, &b.field, b.write)));
    out.dedup();
    out
}

/// Record reference parameters (`hop: &mut Hop`, `net: &NetState`) as
/// struct bases: accesses through them attribute to the named type.
fn param_bases(toks: &[Tok], sig: (usize, usize), bases: &mut BTreeMap<String, Base>) {
    let code: Vec<usize> = (sig.0..sig.1.min(toks.len()))
        .filter(|&i| toks[i].kind != TokKind::Comment)
        .collect();
    // Find the parameter list's `(` (past generics).
    let mut j = 0usize;
    let mut angle = 0i32;
    while j < code.len() {
        let t = &toks[code[j]];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = (angle - 1).max(0);
        } else if angle == 0 && t.is_punct('(') {
            break;
        }
        j += 1;
    }
    let mut depth = 0i32;
    let mut param_start = j + 1;
    while j < code.len() {
        let t = &toks[code[j]];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                record_param(toks, &code[param_start..j], bases);
                break;
            }
        } else if depth == 1 && t.is_punct(',') {
            record_param(toks, &code[param_start..j], bases);
            param_start = j + 1;
        }
        j += 1;
    }
}

/// One parameter's tokens: `name : [&] [mut] path::Type<...>`. Records a
/// struct base when the type's head identifier is type-cased.
fn record_param(toks: &[Tok], param: &[usize], bases: &mut BTreeMap<String, Base>) {
    let mut it = param.iter();
    let Some(&name_i) = it.next() else { return };
    let name = &toks[name_i];
    if name.kind != TokKind::Ident || name.is_ident("self") || name.is_ident("mut") {
        return;
    }
    if !param.get(1).is_some_and(|&i| toks[i].is_punct(':')) {
        return;
    }
    // The type's principal identifier: the last path ident at angle
    // depth 0 (`crate::graph::NetGraph` → `NetGraph`, `Vec<Hop>` → `Vec`).
    let mut angle = 0i32;
    let mut last: Option<&str> = None;
    for &i in &param[2..] {
        let t = &toks[i];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = (angle - 1).max(0);
        } else if angle == 0 && t.kind == TokKind::Ident && !t.is_ident("dyn") && !t.is_ident("mut")
        {
            last = Some(&t.text);
        }
    }
    if let Some(ty) = last {
        if ty.starts_with(|c: char| c.is_ascii_uppercase()) {
            bases.insert(name.text.clone(), Base::Struct(ty.to_string()));
        }
    }
}

/// Handle one `let` statement starting at `code[k]` (the keyword): mark
/// its pattern bindings (so they are not misread as writes) and, when the
/// initializer's first base access resolves, alias each binding to that
/// `(type, field)` root.
fn bind_let_aliases(
    toks: &[Tok],
    code: &[usize],
    k: usize,
    bases: &mut BTreeMap<String, Base>,
    pattern_tokens: &mut BTreeSet<usize>,
) {
    // Pattern: tokens up to the `=` at delimiter depth 0 (or the `;` of
    // a bindingless `let x;`).
    let mut j = k + 1;
    let mut depth = 0i32;
    let mut binders: Vec<(usize, String)> = Vec::new();
    let eq = loop {
        let Some(&i) = code.get(j) else { return };
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('=') {
            break j;
        } else if depth == 0 && t.is_punct(';') {
            return;
        } else if t.kind == TokKind::Ident {
            // Bindings are lowercase-initial idents that are not path
            // segments or struct-pattern field names (`f:` in `Foo { f: x }`).
            let lower = t
                .text
                .starts_with(|c: char| c.is_ascii_lowercase() || c == '_');
            let path_adj = code.get(j + 1).is_some_and(|&n| toks[n].is_punct(':'))
                || (j > 0 && toks[code[j - 1]].is_punct(':'));
            if lower && !path_adj && !matches!(t.text.as_str(), "mut" | "ref" | "box") {
                binders.push((j, t.text.clone()));
            }
            pattern_tokens.insert(j);
        }
        j += 1;
    };
    if binders.is_empty() {
        return;
    }
    // Initializer: find the first resolvable base access before the
    // statement ends (`;` at depth 0) or the block of an
    // `if let`/`while let`/`let … else` opens (`{` at depth 0).
    let mut j = eq + 1;
    let mut depth = 0i32;
    let mut root: Option<(String, String)> = None;
    while let Some(&i) = code.get(j) {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && (t.is_punct(';') || t.is_punct('{')) {
            break;
        } else if t.kind == TokKind::Ident
            && !(j > 0 && (toks[code[j - 1]].is_punct('.') || toks[code[j - 1]].is_punct(':')))
        {
            if let Some(base) = bases.get(&t.text) {
                let (_, first_field, _, method) = walk_projection(toks, code, j + 1);
                // Only alias through initializers that yield a *view* of
                // the base: a plain field borrow, or a method returning a
                // reference (`as_mut`, `pair_mut`, `get`, ...). A value
                // copy (`let n = self.routers.len()`) must not alias —
                // writes through the copy never touch the base.
                let views = method.as_deref().is_none_or(|m| {
                    m.ends_with("_mut")
                        || matches!(
                            m,
                            "as_ref" | "as_deref" | "get" | "entry" | "last" | "first"
                        )
                });
                let resolved = match base {
                    Base::Alias(ty, field) if views => Some((ty.clone(), field.clone())),
                    Base::Struct(ty) if views => first_field.map(|f| (ty.clone(), f)),
                    _ => None,
                };
                if let Some(r) = resolved {
                    root = Some(r);
                    break;
                }
            }
        }
        j += 1;
    }
    // Rebind (shadow) each binder: either to the resolved root or — when
    // the initializer roots nowhere we track — to nothing, clearing any
    // outer binding the shadow hides.
    for (_, name) in binders {
        match &root {
            Some((ty, field)) => {
                bases.insert(name, Base::Alias(ty.clone(), field.clone()));
            }
            None => {
                bases.remove(&name);
            }
        }
    }
}

/// Walk a projection chain starting at `code[from]` (the token after the
/// base identifier): field segments (`.name`, `.0`) and index brackets
/// extend the chain; a method call (`.name(`, `.name::<T>(`) or anything
/// else ends it. Returns `(end, first_field, last_field, method)` where
/// `end` indexes the first token past the chain.
fn walk_projection(
    toks: &[Tok],
    code: &[usize],
    from: usize,
) -> (usize, Option<String>, Option<String>, Option<String>) {
    let mut j = from;
    let mut first_field: Option<String> = None;
    let mut last_field: Option<String> = None;
    loop {
        let Some(&i) = code.get(j) else {
            return (j, first_field, last_field, None);
        };
        let t = &toks[i];
        if t.is_punct('.') {
            let Some(&ni) = code.get(j + 1) else {
                return (j, first_field, last_field, None);
            };
            let n = &toks[ni];
            if n.kind == TokKind::Ident {
                let called = code.get(j + 2).is_some_and(|&ci| toks[ci].is_punct('('))
                    || (code.get(j + 2).is_some_and(|&ci| toks[ci].is_punct(':'))
                        && code.get(j + 3).is_some_and(|&ci| toks[ci].is_punct(':'))
                        && code.get(j + 4).is_some_and(|&ci| toks[ci].is_punct('<')));
                if called {
                    return (j, first_field, last_field, Some(n.text.clone()));
                }
                if first_field.is_none() {
                    first_field = Some(n.text.clone());
                }
                last_field = Some(n.text.clone());
                j += 2;
                continue;
            }
            if n.kind == TokKind::Num {
                // Tuple index `.0` (and `.0.1`, lexed as one `0.1` Num).
                if first_field.is_none() {
                    first_field = Some(n.text.clone());
                }
                last_field = Some(n.text.clone());
                j += 2;
                continue;
            }
            return (j, first_field, last_field, None);
        }
        if t.is_punct('[') {
            let mut depth = 0i32;
            while let Some(&bi) = code.get(j) {
                if toks[bi].is_punct('[') {
                    depth += 1;
                } else if toks[bi].is_punct(']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            j += 1;
            continue;
        }
        return (j, first_field, last_field, None);
    }
}

/// Is the operator at `code[end]` (just past a projection chain) a write?
/// Plain assignment `=` (not `==`, `=>`), compound assignment
/// (`+=` … `>>=`, lexed as single-char puncts).
fn is_write_op(toks: &[Tok], code: &[usize], end: usize) -> bool {
    let Some(&i) = code.get(end) else {
        return false;
    };
    let t = &toks[i];
    let at = |n: usize, c: char| code.get(n).is_some_and(|&j| toks[j].is_punct(c));
    if t.is_punct('=') {
        // `==` is comparison, `=>` a match arm.
        return !at(end + 1, '=') && !at(end + 1, '>');
    }
    for c in ['+', '-', '*', '/', '%', '^', '|', '&'] {
        if t.is_punct(c) && at(end + 1, '=') && !at(end + 2, '=') {
            return true;
        }
    }
    // Shift-assign: `<<=` / `>>=` (a single `<`/`>` + `=` is comparison).
    if (t.is_punct('<') && at(end + 1, '<') && at(end + 2, '='))
        || (t.is_punct('>') && at(end + 1, '>') && at(end + 2, '='))
    {
        return true;
    }
    false
}

/// Is the operator at `code[end]` a *plain* assignment (no read of the
/// old value)? Compound assignments read and write.
fn is_plain_assign(toks: &[Tok], code: &[usize], end: usize) -> bool {
    let Some(&i) = code.get(end) else {
        return false;
    };
    toks[i].is_punct('=')
        && !code.get(end + 1).is_some_and(|&j| toks[j].is_punct('='))
        && !code.get(end + 1).is_some_and(|&j| toks[j].is_punct('>'))
}

// ---------------------------------------------------------------------------
// The --effects / --pdes-report document
// ---------------------------------------------------------------------------

/// Transitive read/write footprint of one root, restricted to modeled
/// fields (entries are `Type.field`).
#[derive(Clone, Debug)]
pub struct RootEffect {
    /// The root's qualified name.
    pub name: String,
    /// Modeled fields read (sorted, deduped).
    pub reads: Vec<String>,
    /// Modeled fields written (sorted, deduped).
    pub writes: Vec<String>,
}

/// One global-bucket write reachable from a handler root outside commit
/// points — an entry of the ratcheted PDES worklist.
#[derive(Clone, Debug)]
pub struct GlobalWrite {
    /// The handler root the write is reachable from.
    pub root: String,
    /// The written field, `Type.field`.
    pub field: String,
    /// The function whose body holds the write.
    pub via: String,
    /// Workspace-relative file of the write site.
    pub file: String,
    /// 1-based line of the write site.
    pub line: u32,
}

impl GlobalWrite {
    /// The ratchet key: stable across line-number churn, so the baseline
    /// only moves when an *edge* appears or disappears.
    pub fn key(&self) -> String {
        format!("{}|{}|{}", self.root, self.field, self.via)
    }
}

/// One handler pair's commutativity verdict.
#[derive(Clone, Debug)]
pub struct PairVerdict {
    /// First handler (dispatch order).
    pub a: String,
    /// Second handler.
    pub b: String,
    /// Global-bucket fields in one side's write-set and the other's
    /// read-or-write set; empty means the pair commutes.
    pub conflicts: Vec<String>,
}

/// A sim-mutated field missing from [`STATE_MODEL`].
#[derive(Clone, Debug)]
pub struct Unmodeled {
    /// The struct's name.
    pub ty: String,
    /// The unmodeled field.
    pub field: String,
    /// Workspace-relative file declaring the struct.
    pub decl_file: String,
    /// 1-based line of the field declaration.
    pub decl_line: u32,
    /// A witness write site, `file:line` of the mutating function.
    pub witness: String,
}

/// The complete `--effects` document.
pub struct EffectsReport {
    /// Footprints of all 13 simulation roots ([`callgraph::ROOTS`]).
    pub roots: Vec<RootEffect>,
    /// Footprints of the dispatch handlers ([`HANDLERS`]).
    pub handlers: Vec<RootEffect>,
    /// Commutativity verdict per handler pair (upper triangle, dispatch
    /// order).
    pub matrix: Vec<PairVerdict>,
    /// The ratcheted worklist: global writes in handler scope.
    pub global_writes: Vec<GlobalWrite>,
    /// Sim-mutated netsim fields missing from the model (must be empty
    /// for the gate to pass).
    pub unmodeled: Vec<Unmodeled>,
    /// Exact model entries whose field no longer exists on the declared
    /// struct (stale — remove or rename them).
    pub stale: Vec<String>,
}

/// Footprint of a BFS over `edges` from `seeds`, restricted to modeled
/// fields.
fn footprint(an: &Analysis, seeds: &[DefId]) -> (BTreeSet<String>, BTreeSet<String>) {
    let eff = &an.effects;
    let mut seen: BTreeSet<DefId> = BTreeSet::new();
    let mut work: Vec<DefId> = Vec::new();
    for &s in seeds {
        if seen.insert(s) {
            work.push(s);
        }
    }
    let (mut reads, mut writes) = (BTreeSet::new(), BTreeSet::new());
    while let Some((fi, di)) = work.pop() {
        for a in &eff.accesses[fi][di] {
            if bucket_of(&a.ty, &a.field).is_some() {
                let entry = format!("{}.{}", a.ty, a.field);
                if a.write {
                    writes.insert(entry);
                } else {
                    reads.insert(entry);
                }
            }
        }
        for &callee in &eff.edges[fi][di] {
            if seen.insert(callee) {
                work.push(callee);
            }
        }
    }
    (reads, writes)
}

/// Definitions matching `(self type, name)`, tests excluded.
fn defs_named(an: &Analysis, ty: Option<&str>, name: &str) -> Vec<DefId> {
    let mut out = Vec::new();
    for (fi, s) in an.symbols.iter().enumerate() {
        for (di, d) in s.defs.iter().enumerate() {
            if d.is_test || d.name != name {
                continue;
            }
            match ty {
                Some(ty) if d.self_ty.as_deref() != Some(ty) => continue,
                _ => out.push((fi, di)),
            }
        }
    }
    out
}

/// Build the complete effects document from a finished [`Analysis`].
pub fn report(an: &Analysis) -> EffectsReport {
    let root_name = |ty: Option<&str>, name: &str| match ty {
        Some(t) => format!("{t}::{name}"),
        None => name.to_string(),
    };

    let roots = callgraph::ROOTS
        .iter()
        .map(|&(ty, name)| {
            let (reads, writes) = footprint(an, &defs_named(an, ty, name));
            RootEffect {
                name: root_name(ty, name),
                reads: reads.into_iter().collect(),
                writes: writes.into_iter().collect(),
            }
        })
        .collect();

    let handler_prints: Vec<(String, BTreeSet<String>, BTreeSet<String>)> = HANDLERS
        .iter()
        .map(|&(ty, name)| {
            let (reads, writes) = footprint(an, &defs_named(an, Some(ty), name));
            (root_name(Some(ty), name), reads, writes)
        })
        .collect();
    let is_global = |entry: &str| {
        entry
            .split_once('.')
            .and_then(|(t, f)| bucket_of(t, f))
            .is_some_and(|b| b == Bucket::Global)
    };
    let mut matrix = Vec::new();
    for i in 0..handler_prints.len() {
        for j in i + 1..handler_prints.len() {
            let (na, ra, wa) = &handler_prints[i];
            let (nb, rb, wb) = &handler_prints[j];
            let mut conflicts: BTreeSet<String> = BTreeSet::new();
            for w in wa {
                if is_global(w) && (rb.contains(w) || wb.contains(w)) {
                    conflicts.insert(w.clone());
                }
            }
            for w in wb {
                if is_global(w) && (ra.contains(w) || wa.contains(w)) {
                    conflicts.insert(w.clone());
                }
            }
            matrix.push(PairVerdict {
                a: na.clone(),
                b: nb.clone(),
                conflicts: conflicts.into_iter().collect(),
            });
        }
    }
    let handlers = handler_prints
        .into_iter()
        .map(|(name, reads, writes)| RootEffect {
            name,
            reads: reads.into_iter().collect(),
            writes: writes.into_iter().collect(),
        })
        .collect();

    // Global-write edges: direct global-bucket writes of every definition
    // in handler scope, attributed to each handler root that reaches it.
    let mut global_writes: Vec<GlobalWrite> = Vec::new();
    for &(rty, rname) in HANDLER_ROOTS {
        let seeds = defs_named(an, rty, rname);
        if seeds.is_empty() {
            continue;
        }
        let mut seen: BTreeSet<DefId> = BTreeSet::new();
        let mut work: Vec<DefId> = Vec::new();
        let stopped = |id: DefId| {
            let d = &an.symbols[id.0].defs[id.1];
            COMMIT_POINTS
                .iter()
                .any(|&(ty, name)| d.name == name && d.self_ty.as_deref() == Some(ty))
        };
        for s in seeds {
            if !stopped(s) && seen.insert(s) {
                work.push(s);
            }
        }
        let mut edges_here: BTreeMap<String, GlobalWrite> = BTreeMap::new();
        while let Some((fi, di)) = work.pop() {
            for a in &an.effects.accesses[fi][di] {
                if !a.write || bucket_of(&a.ty, &a.field) != Some(Bucket::Global) {
                    continue;
                }
                let gw = GlobalWrite {
                    root: root_name(rty, rname),
                    field: format!("{}.{}", a.ty, a.field),
                    via: an.symbols[fi].defs[di].qual_name(),
                    file: an.files[fi].path.clone(),
                    line: a.line,
                };
                edges_here.entry(gw.key()).or_insert(gw);
            }
            for &callee in &an.effects.edges[fi][di] {
                if !stopped(callee) && seen.insert(callee) {
                    work.push(callee);
                }
            }
        }
        global_writes.extend(edges_here.into_values());
    }
    global_writes.sort_by_key(|g| g.key());

    // Unmodeled fields + stale exact entries, over netsim-declared
    // structs (plus anything scanned under that virtual prefix).
    let mut unmodeled = Vec::new();
    let mut declared: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (fi, s) in an.symbols.iter().enumerate() {
        if !an.files[fi].path.starts_with("crates/netsim/src/") {
            continue;
        }
        for st in &s.structs {
            if st.is_test {
                continue;
            }
            let entry = declared.entry(&st.name).or_default();
            for f in &st.fields {
                entry.insert(&f.name);
                let key = (st.name.clone(), f.name.clone());
                if let Some(&(wfi, wline, ref via)) = an.effects.written.get(&key) {
                    if bucket_of(&st.name, &f.name).is_none() {
                        unmodeled.push(Unmodeled {
                            ty: st.name.clone(),
                            field: f.name.clone(),
                            decl_file: an.files[fi].path.clone(),
                            decl_line: f.line,
                            witness: format!("{}:{} ({via})", an.files[wfi].path, wline),
                        });
                    }
                }
            }
        }
    }
    let mut stale = Vec::new();
    for &(ty, field, _) in STATE_MODEL {
        if field == "*" {
            continue;
        }
        if let Some(fields) = declared.get(ty) {
            if !fields.contains(field) {
                stale.push(format!("{ty}.{field}"));
            }
        }
    }

    EffectsReport {
        roots,
        handlers,
        matrix,
        global_writes,
        unmodeled,
        stale,
    }
}

/// Render the effects document as deterministic JSON (the
/// `target/lint_effects.json` CI artifact).
pub fn report_json(r: &EffectsReport) -> String {
    let esc = crate::json_escape;
    let strs = |xs: &[String]| {
        xs.iter()
            .map(|x| format!("\"{}\"", esc(x)))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut s = String::from("{\n");
    s.push_str("  \"model\": [");
    for (i, &(ty, field, b)) in STATE_MODEL.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"type\": \"{}\", \"field\": \"{}\", \"bucket\": \"{}\"}}",
            esc(ty),
            esc(field),
            b.name()
        ));
    }
    s.push_str("\n  ],\n");
    for (label, effects) in [("roots", &r.roots), ("handlers", &r.handlers)] {
        s.push_str(&format!("  \"{label}\": ["));
        for (i, e) in effects.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"reads\": [{}], \"writes\": [{}]}}",
                esc(&e.name),
                strs(&e.reads),
                strs(&e.writes)
            ));
        }
        s.push_str("\n  ],\n");
    }
    s.push_str("  \"matrix\": [");
    for (i, p) in r.matrix.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"a\": \"{}\", \"b\": \"{}\", \"commutes\": {}, \"conflicts\": [{}]}}",
            esc(&p.a),
            esc(&p.b),
            p.conflicts.is_empty(),
            strs(&p.conflicts)
        ));
    }
    s.push_str("\n  ],\n");
    s.push_str("  \"global_writes\": [");
    for (i, g) in r.global_writes.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"key\": \"{}\", \"file\": \"{}\", \"line\": {}}}",
            esc(&g.key()),
            esc(&g.file),
            g.line
        ));
    }
    s.push_str("\n  ],\n");
    s.push_str("  \"unmodeled\": [");
    for (i, u) in r.unmodeled.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"type\": \"{}\", \"field\": \"{}\", \"decl\": \"{}:{}\", \"witness\": \"{}\"}}",
            esc(&u.ty),
            esc(&u.field),
            esc(&u.decl_file),
            u.decl_line,
            esc(&u.witness)
        ));
    }
    s.push_str("\n  ],\n");
    s.push_str(&format!("  \"stale_model\": [{}]\n", strs(&r.stale)));
    s.push_str("}\n");
    s
}

/// Extract the ratchet keys from a committed baseline document: every
/// string in the `"global_writes"` array (the baseline stores bare keys;
/// this also accepts the full report format's `"key"` fields).
pub fn parse_baseline(text: &str) -> Vec<String> {
    let Some(at) = text.find("\"global_writes\"") else {
        return Vec::new();
    };
    let rest = &text[at..];
    let Some(open) = rest.find('[') else {
        return Vec::new();
    };
    let Some(close) = rest.find(']') else {
        return Vec::new();
    };
    let body = &rest[open + 1..close];
    let mut keys = Vec::new();
    let mut it = body.split('"');
    // Every odd split element is a quoted string; keep the ones shaped
    // like ratchet keys (`root|Type.field|via`), skipping JSON labels.
    it.next();
    while let (Some(s), next) = (it.next(), it.next()) {
        if s.contains('|') {
            keys.push(s.to_string());
        }
        if next.is_none() {
            break;
        }
    }
    keys.sort();
    keys
}

/// The committed-baseline document for the current report: bare ratchet
/// keys only, so line-number churn never touches it.
pub fn baseline_json(r: &EffectsReport) -> String {
    let mut s = String::from("{\n  \"global_writes\": [");
    for (i, g) in r.global_writes.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n    \"{}\"", crate::json_escape(&g.key())));
    }
    if !r.global_writes.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Compare the report against baseline keys: `(new, removed)` edges.
pub fn ratchet_diff(r: &EffectsReport, baseline: &[String]) -> (Vec<String>, Vec<String>) {
    let current: BTreeSet<String> = r.global_writes.iter().map(|g| g.key()).collect();
    let base: BTreeSet<String> = baseline.iter().cloned().collect();
    let new = current.difference(&base).cloned().collect();
    let removed = base.difference(&current).cloned().collect();
    (new, removed)
}

/// Render the human `--pdes-report`: the worklist burn-down. Takes the
/// allow inventory so the remaining S-family allows (interior
/// mutability) appear alongside the computed global-write edges, each
/// annotated with its state-model bucket where one applies.
pub fn render_pdes(an: &Analysis, r: &EffectsReport, allows: &[crate::AllowEntry]) -> String {
    let mut s = String::from("PDES readiness report\n=====================\n\n");

    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for &(_, _, b) in STATE_MODEL {
        *counts.entry(b.name()).or_default() += 1;
    }
    s.push_str(&format!(
        "state model: {} entries ({})\n\n",
        STATE_MODEL.len(),
        counts
            .iter()
            .map(|(k, v)| format!("{k} {v}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));

    s.push_str("s-family worklist (interior-mutability allows):\n");
    let mut any = false;
    for a in allows {
        if !a.rule.starts_with("s1-") && !a.rule.starts_with("s2-") && !a.rule.starts_with("s3-") {
            continue;
        }
        any = true;
        // Annotate with the bucket of the field the allow guards, when
        // the guarded line is a modeled struct field.
        let bucket = an
            .symbols
            .iter()
            .enumerate()
            .filter(|(fi, _)| an.files[*fi].path == a.file)
            .flat_map(|(_, sy)| &sy.structs)
            .flat_map(|st| st.fields.iter().map(move |f| (st, f)))
            .find(|(_, f)| f.line > a.line && f.line <= a.line + 4)
            .and_then(|(st, f)| bucket_of(&st.name, &f.name))
            .map(|b| format!(" [{}]", b.name()))
            .unwrap_or_default();
        s.push_str(&format!(
            "  {}:{}: [{}]{} {}\n",
            a.file, a.line, a.rule, bucket, a.justification
        ));
    }
    if !any {
        s.push_str("  (none — worklist clear)\n");
    }

    s.push_str("\nglobal-write edges in handler scope (the ratcheted worklist):\n");
    if r.global_writes.is_empty() {
        s.push_str("  (none)\n");
    }
    for g in &r.global_writes {
        s.push_str(&format!(
            "  {} -> {} via {} ({}:{})\n",
            g.root, g.field, g.via, g.file, g.line
        ));
    }

    s.push_str("\nhandler commutativity (conflicting pairs):\n");
    let mut any = false;
    for p in &r.matrix {
        if p.conflicts.is_empty() {
            continue;
        }
        any = true;
        s.push_str(&format!(
            "  {} x {}: CONFLICT on {}\n",
            p.a,
            p.b,
            p.conflicts.join(", ")
        ));
    }
    if !any {
        s.push_str("  (all handler pairs commute on modeled global state)\n");
    }

    s.push_str("\nunmodeled sim-scope mutable fields:\n");
    if r.unmodeled.is_empty() {
        s.push_str("  (none — the state model is complete)\n");
    }
    for u in &r.unmodeled {
        s.push_str(&format!(
            "  {}.{} declared {}:{} written {}\n",
            u.ty, u.field, u.decl_file, u.decl_line, u.witness
        ));
    }
    if !r.stale.is_empty() {
        s.push_str("\nstale model entries (field no longer exists):\n");
        for e in &r.stale {
            s.push_str(&format!("  {e}\n"));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Analysis;

    fn analyze(src: &str) -> Analysis {
        Analysis::build(vec![("crates/netsim/src/under_test.rs".into(), src.into())])
    }

    /// Accesses of the named def, as `(ty.field, write, line)`.
    fn accesses_of(an: &Analysis, name: &str) -> Vec<(String, bool, u32)> {
        let mut out = Vec::new();
        for (fi, sy) in an.symbols.iter().enumerate() {
            for (di, d) in sy.defs.iter().enumerate() {
                if d.qual_name() == name {
                    for a in &an.effects.accesses[fi][di] {
                        out.push((format!("{}.{}", a.ty, a.field), a.write, a.line));
                    }
                }
            }
        }
        out
    }

    #[test]
    fn plain_assignment_is_a_write() {
        let an = analyze(
            "impl Simulator {\n    pub fn run(&mut self) { self.now = next(); }\n}\nfn next() {}\n",
        );
        assert_eq!(
            accesses_of(&an, "Simulator::run"),
            vec![("Simulator.now".to_string(), true, 2)]
        );
    }

    #[test]
    fn compound_assignment_reads_and_writes() {
        let an = analyze(
            "impl Simulator {\n    pub fn run(&mut self) { self.packets_forwarded += 1; }\n}\n",
        );
        assert_eq!(
            accesses_of(&an, "Simulator::run"),
            vec![
                ("Simulator.packets_forwarded".to_string(), false, 2),
                ("Simulator.packets_forwarded".to_string(), true, 2),
            ]
        );
    }

    #[test]
    fn comparisons_and_match_arms_are_reads() {
        let an = analyze(
            "impl Simulator {\n    pub fn run(&mut self) {\n        if self.now == self.end { leaf(); }\n        let _ = self.mss <= 9000;\n        match self.record_deliveries { true => leaf(), _ => {} }\n    }\n}\nfn leaf() {}\n",
        );
        assert!(
            accesses_of(&an, "Simulator::run").iter().all(|a| !a.1),
            "{:?}",
            accesses_of(&an, "Simulator::run")
        );
    }

    #[test]
    fn mut_borrow_and_mut_method_are_writes() {
        let an = analyze(
            "impl Simulator {\n    pub fn run(&mut self) {\n        take_rng(&mut self.arena);\n        self.deliveries.push(1);\n        let n = self.deliveries.len();\n        let _ = n;\n    }\n}\nfn take_rng(_x: &mut u32) {}\n",
        );
        let acc = accesses_of(&an, "Simulator::run");
        assert!(
            acc.contains(&("Simulator.arena".into(), true, 3)),
            "{acc:?}"
        );
        assert!(
            acc.contains(&("Simulator.deliveries".into(), true, 4)),
            "{acc:?}"
        );
        assert!(
            acc.contains(&("Simulator.deliveries".into(), false, 5)),
            "{acc:?}"
        );
    }

    #[test]
    fn method_resolving_to_workspace_mut_receiver_is_a_write() {
        let an = analyze(
            "impl Simulator {\n    pub fn run(&mut self) { self.flows.compact(0); let _ = self.flows.count(); }\n}\nimpl FlowTable {\n    pub fn compact(&mut self, _i: usize) {}\n    pub fn count(&self) -> usize { 0 }\n}\n",
        );
        let acc = accesses_of(&an, "Simulator::run");
        assert!(
            acc.contains(&("Simulator.flows".into(), true, 2)),
            "{acc:?}"
        );
        assert!(
            acc.contains(&("Simulator.flows".into(), false, 2)),
            "{acc:?}"
        );
    }

    #[test]
    fn let_alias_attributes_to_the_container_field() {
        let an = analyze(
            "impl Simulator {\n    pub fn run(&mut self) {\n        let Some(c) = self.churn.as_mut() else { return; };\n        c.spawned += 1;\n    }\n}\n",
        );
        let acc = accesses_of(&an, "Simulator::run");
        // Line 3: as_mut() is a mutating access; line 4: the aliased write.
        assert!(
            acc.contains(&("Simulator.churn".into(), true, 3)),
            "{acc:?}"
        );
        assert!(
            acc.contains(&("Simulator.churn".into(), true, 4)),
            "{acc:?}"
        );
    }

    #[test]
    fn shadowed_locals_rebind_the_alias() {
        let an = analyze(
            "impl Simulator {\n    pub fn run(&mut self) {\n        let c = self.arena.slot();\n        let c = unrelated();\n        c.write_through();\n    }\n}\nfn unrelated() {}\n",
        );
        let acc = accesses_of(&an, "Simulator::run");
        // After the shadow, writes through `c` no longer touch the arena.
        assert!(
            !acc.iter().any(|a| a.0 == "Simulator.arena" && a.2 >= 4),
            "{acc:?}"
        );
    }

    #[test]
    fn mut_ref_params_attribute_to_their_type() {
        let an = analyze(
            "impl Simulator {\n    pub fn run(&mut self) { helper(&mut self.hops); }\n}\nfn helper(hop: &mut Hop) { hop.busy = true; }\n",
        );
        let acc = accesses_of(&an, "helper");
        assert_eq!(acc, vec![("Hop.busy".to_string(), true, 4)]);
    }

    #[test]
    fn tuple_destructuring_aliases_both_bindings() {
        let an = analyze(
            "impl Simulator {\n    pub fn run(&mut self) {\n        let (hot, cold) = self.flows.pair_mut(0);\n        hot.cwnd = 1.0;\n        cold.reset();\n    }\n}\nimpl FlowTable {\n    pub fn pair_mut(&mut self, _i: usize) {}\n}\nimpl FlowCold {\n    pub fn reset(&mut self) {}\n}\n",
        );
        let acc = accesses_of(&an, "Simulator::run");
        assert!(
            acc.contains(&("Simulator.flows".into(), true, 4)),
            "{acc:?}"
        );
        assert!(
            acc.contains(&("Simulator.flows".into(), true, 5)),
            "{acc:?}"
        );
    }

    #[test]
    fn handler_scope_stops_at_commit_points() {
        let an = analyze(
            "impl Simulator {\n    pub fn run(&mut self) { self.step(); self.finish(); }\n    fn step(&mut self) { self.now = self.end; }\n    fn finish(&mut self) { self.churn = commit(); }\n}\nfn commit() {}\n",
        );
        let r = report(&an);
        // step's write is in scope; finish's global write is commit-time.
        assert!(
            !r.global_writes.iter().any(|g| g.via.contains("finish")),
            "{:?}",
            r.global_writes
        );
    }

    #[test]
    fn global_write_edges_carry_stable_keys() {
        let an = analyze(
            "impl Simulator {\n    pub fn run(&mut self) { self.spawn_one(); }\n    fn spawn_one(&mut self) {\n        let Some(c) = self.churn.as_mut() else { return; };\n        c.completed += 1;\n    }\n}\n",
        );
        let r = report(&an);
        let keys: Vec<String> = r.global_writes.iter().map(|g| g.key()).collect();
        assert!(
            keys.contains(&"Simulator::run|Simulator.churn|Simulator::spawn_one".to_string()),
            "{keys:?}"
        );
        // Round-trip through the committed-baseline format.
        assert_eq!(parse_baseline(&baseline_json(&r)), keys);
        let (new, removed) = ratchet_diff(&r, &keys);
        assert!(new.is_empty() && removed.is_empty());
    }

    #[test]
    fn bucket_lookup_prefers_exact_over_wildcard() {
        assert_eq!(bucket_of("Simulator", "churn"), Some(Bucket::Global));
        assert_eq!(bucket_of("Simulator", "hops"), Some(Bucket::PerHop));
        assert_eq!(bucket_of("ChurnState", "anything"), Some(Bucket::Global));
        assert_eq!(bucket_of("NoSuchType", "x"), None);
    }
}
