//! A hand-rolled token scanner for Rust source.
//!
//! `remy-lint` has no access to crates.io (so no `syn`); in the spirit of
//! the workspace's hand-rolled `netsim::json`, this module lexes Rust
//! source just finely enough for the rule set: identifiers, punctuation,
//! string/char/number literals, and comments, each tagged with a 1-based
//! line number. Strings and comments are isolated as their own token
//! kinds so a rule matching the identifier `HashMap` can never fire on
//! prose or test strings mentioning it.
//!
//! The scanner understands the Rust constructs that would otherwise
//! desynchronize a naive splitter: nested block comments, raw strings
//! with arbitrary `#` fences, byte and C strings, raw identifiers
//! (`r#match` surfaces as the identifier `match`), signed float
//! exponents, and the `'a` lifetime vs `'a'` char-literal ambiguity.
//! Any mis-lex here is a false-positive/negative factory for every rule
//! family downstream, so each of these has a regression test below.

/// What a token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `unsafe`, `fn`, ...).
    Ident,
    /// A single punctuation character (`.`, `:`, `#`, `{`, ...).
    Punct,
    /// String literal, including raw and byte strings. `text` is the
    /// *unquoted* content (escapes left as written).
    Str,
    /// Character literal (`'x'`). `text` is the quoted form.
    Char,
    /// Numeric literal (loosely lexed; no rule inspects the value).
    Num,
    /// Line or block comment, doc comments included. `text` is the full
    /// comment including its delimiters.
    Comment,
}

/// One token with its source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Kind of token.
    pub kind: TokKind,
    /// Token text; see [`TokKind`] for what each kind stores.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// True for an identifier token spelling exactly `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for a punctuation token spelling exactly `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// Lex `src` into a token stream. Never fails: unterminated constructs
/// consume to end of input (the linter's job is scanning, not parsing
/// diagnostics — rustc reports malformed source).
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    // Count newlines in chars[from..to] into `line`.
    fn bump_lines(chars: &[char], from: usize, to: usize, line: &mut u32) {
        *line += chars[from..to].iter().filter(|&&c| c == '\n').count() as u32;
    }

    while i < chars.len() {
        let c = chars[i];
        let start_line = line;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Comment,
                    text: chars[start..i].iter().collect(),
                    line: start_line,
                });
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Comment,
                    text: chars[start..i].iter().collect(),
                    line: start_line,
                });
            }
            '"' => {
                let (text, next) = lex_string(&chars, i + 1);
                bump_lines(&chars, i, next, &mut line);
                i = next;
                toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line: start_line,
                });
            }
            'r' if chars.get(i + 1) == Some(&'#')
                && chars
                    .get(i + 2)
                    .is_some_and(|c| c.is_alphabetic() || *c == '_') =>
            {
                // Raw identifier `r#match`: one Ident token spelling the
                // bare name, so keyword-named items look like their
                // ordinary spelling to every rule.
                i += 2;
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line: start_line,
                });
            }
            'r' | 'b' | 'c' if is_string_prefix(&chars, i) => {
                let (text, next) = lex_prefixed_string(&chars, i);
                bump_lines(&chars, i, next, &mut line);
                i = next;
                toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line: start_line,
                });
            }
            '\'' => {
                // Char literal or lifetime. `'\...'` and `'x'` are chars;
                // `'static`, `'_` (no closing quote) are lifetimes.
                let is_char = match chars.get(i + 1) {
                    Some('\\') => true,
                    Some(&n) if n != '\'' => chars.get(i + 2) == Some(&'\''),
                    _ => false,
                };
                if is_char {
                    let start = i;
                    i += 1; // opening quote
                    if chars.get(i) == Some(&'\\') {
                        i += 2; // escape + escaped char
                        while i < chars.len() && chars[i] != '\'' {
                            i += 1; // \u{...} etc.
                        }
                    } else {
                        i += 1;
                    }
                    i += 1; // closing quote (or EOF)
                    let end = i.min(chars.len());
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: chars[start..end].iter().collect(),
                        line: start_line,
                    });
                } else {
                    // Lifetime: skip the quote and the identifier.
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: chars[start..i].iter().collect(),
                    line: start_line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                // Decimal part — but never swallow `..` (range syntax) or
                // a method call on a literal (`10f64.powi`).
                if chars.get(i) == Some(&'.')
                    && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
                // Signed exponent (`1.5e-3`, `2E+10`): the alnum scan stops
                // at the sign, which would split one float into
                // Num/Punct/Num and desynchronize span-sensitive rules.
                let is_radix_prefixed = chars[start] == '0'
                    && matches!(chars.get(start + 1), Some('x' | 'X' | 'b' | 'o'));
                if !is_radix_prefixed
                    && i > start
                    && matches!(chars[i - 1], 'e' | 'E')
                    && matches!(chars.get(i), Some('+') | Some('-'))
                    && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Num,
                    text: chars[start..i].iter().collect(),
                    line: start_line,
                });
            }
            c => {
                i += 1;
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line: start_line,
                });
            }
        }
    }
    toks
}

/// True if the `r`/`b`/`c` at `chars[i]` starts a raw/byte/C string
/// rather than an identifier (`r"`, `r#"`, `b"`, `br"`, `c"`, `cr#"`;
/// `b'`-like forms excluded).
fn is_string_prefix(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if matches!(chars.get(j), Some('b') | Some('c')) {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
    }
    j > i && chars.get(j) == Some(&'"')
}

/// Lex a plain (escaped) string body starting after the opening quote;
/// returns (content, index past the closing quote).
fn lex_string(chars: &[char], mut i: usize) -> (String, usize) {
    let start = i;
    while i < chars.len() {
        match chars[i] {
            // A trailing backslash at end of input must not step past the
            // buffer (the unterminated-construct contract is "consume to
            // EOF", never panic).
            '\\' => i = (i + 2).min(chars.len()),
            '"' => {
                return (chars[start..i].iter().collect(), i + 1);
            }
            _ => i += 1,
        }
    }
    (chars[start..i].iter().collect(), i)
}

/// Lex a raw/byte/C string starting at its `r`/`b`/`c` prefix; returns
/// (content, index past the closing delimiter).
fn lex_prefixed_string(chars: &[char], mut i: usize) -> (String, usize) {
    if matches!(chars.get(i), Some('b') | Some('c')) {
        i += 1;
    }
    let raw = chars.get(i) == Some(&'r');
    if raw {
        i += 1;
    }
    let mut fence = 0usize;
    while chars.get(i) == Some(&'#') {
        fence += 1;
        i += 1;
    }
    i += 1; // opening quote
    let start = i;
    if raw {
        while i < chars.len() {
            if chars[i] == '"'
                && chars[i + 1..]
                    .iter()
                    .take(fence)
                    .filter(|&&c| c == '#')
                    .count()
                    == fence
            {
                let content: String = chars[start..i].iter().collect();
                return (content, i + 1 + fence);
            }
            i += 1;
        }
        (chars[start..i].iter().collect(), i)
    } else {
        let (s, next) = lex_string(chars, start);
        (s, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_and_lines() {
        let toks = lex("fn main() {\n    let x = foo();\n}\n");
        let main = toks.iter().find(|t| t.is_ident("main")).unwrap();
        assert_eq!(main.line, 1);
        let foo = toks.iter().find(|t| t.is_ident("foo")).unwrap();
        assert_eq!(foo.line, 2);
    }

    #[test]
    fn strings_do_not_leak_identifiers() {
        let src = r#"let s = "HashMap inside a string"; let h = HashMap::new();"#;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "HashMap").count(), 1);
        let strs: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "HashMap inside a string");
    }

    #[test]
    fn raw_and_byte_strings() {
        let src = "let a = r#\"raw \"quoted\" HashMap\"#; let b = br\"bytes\"; let c = b\"x\";";
        let strs: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text)
            .collect();
        assert_eq!(strs, vec!["raw \"quoted\" HashMap", "bytes", "x"]);
        assert!(idents(src).iter().all(|s| s != "HashMap"));
    }

    #[test]
    fn comments_are_isolated() {
        let src = "// HashMap in a comment\n/* block\nHashMap */ let x = 1;";
        assert!(idents(src).iter().all(|s| s != "HashMap"));
        let comments: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Comment)
            .collect();
        assert_eq!(comments.len(), 2);
        assert_eq!(comments[0].line, 1);
        assert_eq!(comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn f() {}";
        let toks = lex(src);
        assert!(toks[0].kind == TokKind::Comment);
        assert!(toks.iter().any(|t| t.is_ident("fn")));
        assert!(idents(src).iter().all(|s| s != "inner"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let toks = lex(src);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "'x'"));
        // The lifetime's `a` must not surface as a stray identifier that a
        // rule could mistake for code.
        assert_eq!(idents(src).iter().filter(|s| *s == "a").count(), 0);
    }

    #[test]
    fn escaped_chars_and_strings() {
        let src = r#"let a = '\n'; let b = '\''; let s = "esc \" quote";"#;
        let toks = lex(src);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
        let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.text, r#"esc \" quote"#);
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_method_calls() {
        let src = "for i in 0..=7 { let x = 10f64.powi(i); let y = 1.5e3; }";
        let toks = lex(src);
        assert!(toks.iter().any(|t| t.is_ident("powi")));
        // `..=` survives as punctuation.
        assert!(toks.iter().filter(|t| t.is_punct('.')).count() >= 2);
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "1.5e3"));
    }

    #[test]
    fn raw_string_with_multi_hash_fence_and_inner_fences() {
        // A `##`-fenced raw string containing a `"#` that must NOT close
        // it, across a newline; the token after it keeps its line number.
        let src = "let a = r##\"quote\"# still \"inside\"\nline two\"##;\nlet b = after();";
        let toks = lex(src);
        let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.text, "quote\"# still \"inside\"\nline two");
        let after = toks.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 3);
    }

    #[test]
    fn raw_byte_string_with_fence() {
        let src = "let a = br#\"HashMap \"in\" bytes\"#; let x = 1;";
        let strs: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text)
            .collect();
        assert_eq!(strs, vec!["HashMap \"in\" bytes"]);
        assert!(idents(src).iter().all(|s| s != "HashMap" && s != "br"));
    }

    #[test]
    fn byte_string_escapes_do_not_desync() {
        let src = r#"let a = b"esc \" HashMap \\"; let h = ok();"#;
        let toks = lex(src);
        let s = toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert_eq!(s.text, r#"esc \" HashMap \\"#);
        assert!(toks.iter().any(|t| t.is_ident("ok")));
        assert!(idents(src).iter().all(|s| s != "HashMap"));
    }

    #[test]
    fn c_string_literals() {
        let src = "let a = c\"HashMap\"; let b = cr#\"raw \"c\" HashMap\"#; f();";
        let strs: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text)
            .collect();
        assert_eq!(strs, vec!["HashMap", "raw \"c\" HashMap"]);
        assert!(idents(src)
            .iter()
            .all(|s| s != "HashMap" && s != "c" && s != "cr"));
    }

    #[test]
    fn raw_identifiers_surface_as_bare_names() {
        let src = "fn r#match(r#type: u32) -> u32 { r#type }";
        let ids = idents(src);
        assert_eq!(ids, vec!["fn", "match", "type", "u32", "u32", "type"]);
    }

    #[test]
    fn deeply_nested_block_comments_with_line_tracking() {
        let src = "/* a /* b\n /* c */\n */ d */ fn f() {}\nfn g() {}";
        let toks = lex(src);
        assert_eq!(toks[0].kind, TokKind::Comment);
        let f = toks.iter().find(|t| t.is_ident("f")).unwrap();
        assert_eq!(f.line, 3);
        let g = toks.iter().find(|t| t.is_ident("g")).unwrap();
        assert_eq!(g.line, 4);
        assert!(idents(src).iter().all(|s| s != "b" && s != "c" && s != "d"));
    }

    #[test]
    fn unterminated_constructs_never_panic() {
        // Each of these used to be (or could be) a place where the lexer
        // stepped past the buffer: an escape as the last character, an
        // unterminated raw string / block comment / char escape.
        for src in [
            "let s = \"ends with escape \\",
            "let s = \"\\",
            "let s = r#\"never closed",
            "let s = b\"\\",
            "/* never closed /* nested",
            "let c = '\\",
            "let c = '\\u{12",
        ] {
            let toks = lex(src);
            assert!(!toks.is_empty(), "lexed nothing for {src:?}");
        }
    }

    #[test]
    fn signed_float_exponents_stay_one_token() {
        let src = "let a = 1.5e-3; let b = 2E+10; let c = 7e-2 - x; let d = 0xE-1;";
        let nums: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text)
            .collect();
        assert_eq!(nums, vec!["1.5e-3", "2E+10", "7e-2", "0xE", "1"]);
    }

    #[test]
    fn multiline_string_keeps_line_numbers() {
        let src = "let s = \"line\nbreak\";\nlet t = after();";
        let toks = lex(src);
        let after = toks.iter().find(|t| t.is_ident("after")).unwrap();
        assert_eq!(after.line, 3);
    }
}
