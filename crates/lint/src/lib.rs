//! # remy-lint — workspace determinism & safety analyzer
//!
//! Every headline number in this reproduction rests on one invariant:
//! simulations and training are **bit-identical** across `--jobs` counts,
//! scheduler backends, and spec round-trips. The runtime equivalence
//! suites check that invariant after the fact; `remy-lint` rejects the
//! *sources* of nondeterminism at commit time, as deny-by-default
//! diagnostics with `file:line` spans.
//!
//! The rule set (one module per rule, see [`rules`]):
//!
//! | id | rule |
//! |----|------|
//! | `d1-unordered-collections` | no `HashMap`/`HashSet` in sim/training library code (iteration order is nondeterministic — use `BTreeMap`/`BTreeSet` or a sorted drain) |
//! | `d2-wallclock-rng` | no `Instant`/`SystemTime`/`thread_rng`/raw `rand` in library code — all time comes from the event loop, all randomness from `SimRng::split_seed` |
//! | `d3-float-partial-sort` | no `.partial_cmp` on the result path — NaN makes `sort_by(partial_cmp)` panic or reorder; use `f64::total_cmp` |
//! | `d4-unsafe-safety-comment` | every `unsafe` must be preceded by a `// SAFETY:` comment |
//! | `d5-shared-state-sim-path` | no `Mutex`/`RwLock`/atomics in per-event sim code — the PDES design wants message passing at zone boundaries, not shared locks |
//! | `d6-wallclock-serialization` | no date/timestamp-like field names in serialized results — goldens must be byte-stable across runs |
//!
//! A justified escape hatch exists per finding:
//!
//! ```text
//! // lint:allow(d2-wallclock-rng): wall-clock here bounds the training
//! // budget; it is never observable by any simulation.
//! let started = Instant::now();
//! ```
//!
//! The justification after `):` is mandatory; a bare `lint:allow` is
//! itself a diagnostic. The scanner is a hand-rolled lexer
//! ([`lexer`]) — no `syn`, no crates.io — that skips `#[cfg(test)]`
//! items and `tests/`/`benches/`/`examples/` trees for all rules except
//! `d4` (unsafe needs a SAFETY comment even in tests).

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod callgraph;
pub mod effects;
pub mod lexer;
pub mod parser;
pub mod rules;

use lexer::{lex, Tok, TokKind};
use std::path::Path;

/// One finding, anchored to a file and 1-based line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`d1-unordered-collections`, ... or `lint-allow` for a
    /// malformed allow directive).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// Everything a rule sees about one file.
pub struct FileCtx {
    /// Workspace-relative path, `/`-separated (scoping key).
    pub path: String,
    /// Token stream of the file.
    pub toks: Vec<Tok>,
    /// `test_mask[i]` is true when `toks[i]` sits inside a
    /// `#[cfg(test)]` item (or the whole file is test code).
    pub test_mask: Vec<bool>,
}

impl FileCtx {
    /// Code tokens (not comments) outside test regions, with indices.
    pub fn code_tokens(&self) -> impl Iterator<Item = (usize, &Tok)> {
        self.toks
            .iter()
            .enumerate()
            .filter(|(i, t)| !self.test_mask[*i] && t.kind != TokKind::Comment)
    }
}

/// A single token-level lint rule (the D family).
pub struct Rule {
    /// Stable id, used in reports and `lint:allow(<id>)`.
    pub id: &'static str,
    /// One-line summary for `--list-rules` and docs.
    pub summary: &'static str,
    /// Path-scoping predicate over workspace-relative paths.
    pub applies: fn(&str) -> bool,
    /// The check itself: (line, message) findings.
    pub check: fn(&FileCtx) -> Vec<(u32, String)>,
}

/// A call-graph-aware lint rule (the P/R/S families): scoped by
/// *reachability from the simulation entry points* rather than by path
/// glob alone. The check sees the whole-workspace [`Analysis`] and
/// reports findings for one file at a time.
pub struct GraphRule {
    /// Stable id, used in reports and `lint:allow(<id>)`.
    pub id: &'static str,
    /// One-line summary for `--list-rules` and docs.
    pub summary: &'static str,
    /// Path-scoping predicate (coarse pre-filter; the fine filter is
    /// reachability, applied inside `check`).
    pub applies: fn(&str) -> bool,
    /// The check: (line, message) findings for `analysis.files[file]`.
    pub check: fn(&Analysis, usize) -> Vec<(u32, String)>,
}

/// Whole-workspace analysis state: lexed files, per-file symbol tables,
/// and the sim-reachability verdict for every function definition.
pub struct Analysis {
    /// One [`FileCtx`] per input file, in input order.
    pub files: Vec<FileCtx>,
    /// Parallel to `files`: the parsed function symbol tables.
    pub symbols: Vec<parser::FileSymbols>,
    /// Parallel to `files`/`symbols.defs`: which definitions are
    /// reachable from [`callgraph::ROOTS`].
    pub reachable: Vec<Vec<bool>>,
    /// Field-level effect state (per-definition accesses, the
    /// materialized call graph, and handler-scope reachability) — the E
    /// rule family and the `--effects` report read from here.
    pub effects: effects::Effects,
}

impl Analysis {
    /// Lex, parse, and compute reachability over a set of
    /// `(workspace-relative path, source text)` inputs.
    pub fn build(inputs: Vec<(String, String)>) -> Analysis {
        let files: Vec<FileCtx> = inputs
            .into_iter()
            .map(|(path, text)| {
                let toks = lex(&text);
                let test_mask = test_region_mask(&toks, &path);
                FileCtx {
                    path,
                    toks,
                    test_mask,
                }
            })
            .collect();
        let symbols: Vec<parser::FileSymbols> = files
            .iter()
            .map(|f| parser::parse_file(&f.toks, &f.test_mask))
            .collect();
        let gfiles: Vec<callgraph::GraphFile<'_>> = files
            .iter()
            .zip(&symbols)
            .map(|(f, s)| callgraph::GraphFile {
                toks: &f.toks,
                symbols: s,
            })
            .collect();
        let edges = callgraph::def_edges(&gfiles);
        let reachable = callgraph::reachable_over(&gfiles, &edges, callgraph::ROOTS, &[]);
        let effects = effects::compute(&files, &symbols, edges, &reachable);
        Analysis {
            files,
            symbols,
            reachable,
            effects,
        }
    }

    /// The function definition whose body holds token `ti` of file `fi`.
    pub fn owner_def(&self, fi: usize, ti: usize) -> Option<&parser::FnDef> {
        let di = self.symbols[fi].owner.get(ti).copied().flatten()?;
        Some(&self.symbols[fi].defs[di])
    }

    /// Is token `ti` of file `fi` inside a sim-reachable function body?
    pub fn token_in_reachable_fn(&self, fi: usize, ti: usize) -> bool {
        self.symbols[fi]
            .owner
            .get(ti)
            .copied()
            .flatten()
            .map(|di| self.reachable[fi][di])
            .unwrap_or(false)
    }

    /// Item-level scoping for state declared *outside* any function
    /// (statics, struct fields, `thread_local!` blocks): such state is
    /// sim-relevant when the file defines at least one sim-reachable
    /// function. Body tokens defer to their owner's reachability.
    pub fn token_in_sim_scope(&self, fi: usize, ti: usize) -> bool {
        match self.symbols[fi].owner.get(ti).copied().flatten() {
            Some(di) => self.reachable[fi][di],
            None => self.file_has_reachable_fn(fi),
        }
    }

    /// Does file `fi` define any sim-reachable function?
    pub fn file_has_reachable_fn(&self, fi: usize) -> bool {
        self.reachable[fi].iter().any(|&b| b)
    }

    /// Every sim-reachable function as `(file, qualified name, line)`,
    /// sorted — the `--reachable` listing and the superset-pinning test.
    pub fn reachable_fns(&self) -> Vec<(String, String, u32)> {
        let mut out: Vec<(String, String, u32)> = Vec::new();
        for (fi, flags) in self.reachable.iter().enumerate() {
            for (di, &on) in flags.iter().enumerate() {
                if on {
                    let d = &self.symbols[fi].defs[di];
                    out.push((self.files[fi].path.clone(), d.qual_name(), d.line));
                }
            }
        }
        out.sort();
        out
    }
}

/// Scan a set of `(workspace-relative path, source text)` files as one
/// unit: the call graph spans all of them, so cross-file reachability is
/// visible to the P/R/S families. This is the engine under the binary,
/// `scan_source`, `scan_workspace`, and the fixture tests.
///
/// Diagnostics are filtered through justified `lint:allow` directives
/// and sorted by `(file, line, rule)`. An allow naming a rule id that no
/// longer exists is itself a diagnostic (stale-allow detection).
pub fn scan_files(inputs: Vec<(String, String)>) -> Vec<Diagnostic> {
    let analysis = Analysis::build(inputs);
    let known: Vec<&'static str> = rules::all()
        .iter()
        .map(|r| r.id)
        .chain(rules::graph_rules().iter().map(|r| r.id))
        .collect();
    let mut out: Vec<Diagnostic> = Vec::new();

    for (fi, ctx) in analysis.files.iter().enumerate() {
        let allows = parse_allows(ctx);

        // Malformed allow directives are diagnostics in their own right:
        // an unjustified suppression is exactly what the gate must not
        // accept — and a stale one (naming a rule id that no longer
        // exists) is a suppression of nothing, hiding a dead comment.
        for a in &allows {
            if !a.justified {
                out.push(Diagnostic {
                    rule: "lint-allow",
                    file: ctx.path.clone(),
                    line: a.line,
                    message: format!(
                        "lint:allow({}) without a justification — write \
                         `// lint:allow({}): <why this is sound>`",
                        a.rule, a.rule
                    ),
                });
            } else if !known.contains(&a.rule.as_str()) {
                out.push(Diagnostic {
                    rule: "lint-allow",
                    file: ctx.path.clone(),
                    line: a.line,
                    message: format!(
                        "stale lint:allow({}): no such rule — remove the \
                         directive or update the rule id (see --list-rules)",
                        a.rule
                    ),
                });
            }
        }

        let mut raw: Vec<(&'static str, u32, String)> = Vec::new();
        for rule in rules::all() {
            if (rule.applies)(&ctx.path) {
                for (line, message) in (rule.check)(ctx) {
                    raw.push((rule.id, line, message));
                }
            }
        }
        for rule in rules::graph_rules() {
            if (rule.applies)(&ctx.path) {
                for (line, message) in (rule.check)(&analysis, fi) {
                    raw.push((rule.id, line, message));
                }
            }
        }
        for (rule_id, line, message) in raw {
            let allowed = allows
                .iter()
                .any(|a| a.justified && a.rule == rule_id && a.covers.contains(&line));
            if !allowed {
                out.push(Diagnostic {
                    rule: rule_id,
                    file: ctx.path.clone(),
                    line,
                    message,
                });
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

/// Scan one file's text as if it lived at workspace-relative `rel_path`.
///
/// Single-file view of [`scan_files`]: reachability is computed within
/// the file alone, so sources scanned this way must carry their own
/// entry point (the P/R/S fixtures embed an `impl Simulator { fn run }`
/// root for exactly this reason).
pub fn scan_source(rel_path: &str, text: &str) -> Vec<Diagnostic> {
    scan_files(vec![(rel_path.to_string(), text.to_string())])
}

/// Read every workspace `.rs` file for [`Analysis`] — shared by
/// `scan_workspace` and the `--reachable` listing.
///
/// Skips `target/`, `.git/`, and `fixtures/` directories (the seeded-bad
/// lint fixtures must not fail the gate for the tree that tests them).
pub fn read_workspace_files(root: &Path) -> Result<Vec<(String, String)>, String> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        let text =
            std::fs::read_to_string(root.join(&rel)).map_err(|e| format!("reading {rel}: {e}"))?;
        out.push((rel, text));
    }
    Ok(out)
}

/// Walk the workspace at `root` and scan every Rust source file as one
/// analysis unit (cross-crate call graph included). Diagnostics come
/// back sorted by `(file, line, rule)` so output — and the `--json`
/// document — is deterministic.
pub fn scan_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    Ok(scan_files(read_workspace_files(root)?))
}

/// Build the whole-workspace [`Analysis`] without running any rules —
/// the `--reachable` listing and the scope tests use this directly.
pub fn analyze_workspace(root: &Path) -> Result<Analysis, String> {
    Ok(Analysis::build(read_workspace_files(root)?))
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walking {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if matches!(
                name.as_str(),
                "target" | ".git" | "fixtures" | "node_modules"
            ) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("relativizing {}: {e}", path.display()))?
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Render diagnostics as the machine-readable `--json` document: an
/// object with a `count` and a `diagnostics` array, each entry carrying
/// `rule`, `file`, `line`, and `message`.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"count\": {},\n", diags.len()));
    s.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            json_escape(d.rule),
            json_escape(&d.file),
            d.line,
            json_escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        s.push('\n');
        s.push_str("  ");
    }
    s.push_str("]\n}\n");
    s
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render diagnostics for humans, one `file:line: [rule] message` per
/// finding plus a summary line.
pub fn render_human(diags: &[Diagnostic]) -> String {
    let mut s = String::new();
    for d in diags {
        s.push_str(&format!(
            "{}:{}: [{}] {}\n",
            d.file, d.line, d.rule, d.message
        ));
    }
    if diags.is_empty() {
        s.push_str("remy-lint: clean\n");
    } else {
        s.push_str(&format!("remy-lint: {} diagnostic(s)\n", diags.len()));
    }
    s
}

// ---------------------------------------------------------------------------
// Allow inventory (--allow-report)
// ---------------------------------------------------------------------------

/// One `lint:allow` directive found in the tree, for the
/// `--allow-report` inventory. Every S-family allow in this list is an
/// entry on the PDES-migration worklist.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// The rule id the directive names.
    pub rule: String,
    /// Workspace-relative path of the file holding the directive.
    pub file: String,
    /// 1-based line of the directive comment.
    pub line: u32,
    /// The justification text (directive line + continuation comments).
    pub justification: String,
    /// False for a bare/malformed directive (which the gate rejects).
    pub justified: bool,
    /// False when the rule id no longer exists (stale allow).
    pub known_rule: bool,
}

/// Inventory every `lint:allow` directive in the given files, sorted by
/// `(file, line)`.
pub fn collect_allows(inputs: &[(String, String)]) -> Vec<AllowEntry> {
    let known: Vec<&'static str> = rules::all()
        .iter()
        .map(|r| r.id)
        .chain(rules::graph_rules().iter().map(|r| r.id))
        .collect();
    let mut out: Vec<AllowEntry> = Vec::new();
    for (path, text) in inputs {
        let toks = lex(text);
        let test_mask = test_region_mask(&toks, path);
        let ctx = FileCtx {
            path: path.clone(),
            toks,
            test_mask,
        };
        for a in parse_allows(&ctx) {
            out.push(AllowEntry {
                known_rule: known.contains(&a.rule.as_str()),
                rule: a.rule,
                file: ctx.path.clone(),
                line: a.line,
                justification: a.justification,
                justified: a.justified,
            });
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

/// Inventory every `lint:allow` in the workspace at `root`.
pub fn allow_report(root: &Path) -> Result<Vec<AllowEntry>, String> {
    Ok(collect_allows(&read_workspace_files(root)?))
}

/// The `--allow-report --json` document: `count` plus an `allows` array
/// with `rule`, `file`, `line`, `justified`, `known_rule`, and
/// `justification` per entry.
pub fn allow_report_json(entries: &[AllowEntry]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"count\": {},\n", entries.len()));
    s.push_str("  \"allows\": [");
    for (i, a) in entries.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \
             \"justified\": {}, \"known_rule\": {}, \"justification\": \"{}\"}}",
            json_escape(&a.rule),
            json_escape(&a.file),
            a.line,
            a.justified,
            a.known_rule,
            json_escape(&a.justification)
        ));
    }
    if !entries.is_empty() {
        s.push('\n');
        s.push_str("  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Human rendering of the allow inventory, one
/// `file:line: [rule] justification` per entry plus a summary line.
pub fn render_allow_report(entries: &[AllowEntry]) -> String {
    let mut s = String::new();
    for a in entries {
        let mark = if !a.justified {
            " (UNJUSTIFIED)"
        } else if !a.known_rule {
            " (STALE RULE ID)"
        } else {
            ""
        };
        s.push_str(&format!(
            "{}:{}: [{}]{} {}\n",
            a.file, a.line, a.rule, mark, a.justification
        ));
    }
    s.push_str(&format!(
        "remy-lint: {} allow directive(s)\n",
        entries.len()
    ));
    s
}

// ---------------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------------

/// Paths whose whole content is test/bench/example code: every rule but
/// `d4-unsafe-safety-comment` skips these.
pub fn is_test_path(rel_path: &str) -> bool {
    rel_path
        .split('/')
        .any(|seg| matches!(seg, "tests" | "benches" | "examples"))
}

/// Mark tokens inside `#[cfg(test)]` items. Handles the conventional
/// shapes: `#[cfg(test)] mod tests { ... }`, possibly with further
/// attributes between the cfg and the item, and `#[cfg(test)]` on
/// brace-less items (skips to the `;`).
pub fn test_region_mask(toks: &[Tok], rel_path: &str) -> Vec<bool> {
    let mut mask = vec![is_test_path(rel_path); toks.len()];
    if mask.first().copied().unwrap_or(false) {
        return mask; // whole file is test code
    }
    let code: Vec<usize> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind != TokKind::Comment)
        .map(|(i, _)| i)
        .collect();
    let mut k = 0usize;
    while k < code.len() {
        if is_cfg_test_attr(toks, &code, k) {
            // Skip the attr itself, then any further attrs, then mark the
            // following item.
            let mut j = skip_attr(toks, &code, k);
            while j < code.len() && toks[code[j]].is_punct('#') {
                j = skip_attr(toks, &code, j);
            }
            // Find the item's opening `{` (or terminating `;`).
            let mut depth = 0i32;
            let item_start = j;
            while j < code.len() {
                let t = &toks[code[j]];
                if depth == 0 && t.is_punct(';') {
                    j += 1;
                    break;
                }
                if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 && toks[code[j]].is_punct('}') {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
            for &ti in &code[item_start..j.min(code.len())] {
                mask[ti] = true;
            }
            // Mask the attribute tokens too.
            for &ti in &code[k..item_start.min(code.len())] {
                mask[ti] = true;
            }
            k = j;
        } else {
            k += 1;
        }
    }
    mask
}

/// Is `code[k]` the `#` of an attribute containing `cfg ( test`?
fn is_cfg_test_attr(toks: &[Tok], code: &[usize], k: usize) -> bool {
    if !toks[code[k]].is_punct('#') {
        return false;
    }
    let end = skip_attr(toks, code, k);
    let mut saw_cfg = false;
    for &ti in &code[k..end] {
        let t = &toks[ti];
        if t.is_ident("cfg") {
            saw_cfg = true;
        } else if saw_cfg && t.is_ident("test") {
            return true;
        }
    }
    false
}

/// Given `code[k]` at a `#`, return the code-index just past the
/// attribute's closing `]`.
fn skip_attr(toks: &[Tok], code: &[usize], k: usize) -> usize {
    let mut j = k + 1;
    // Optional inner-attr `!`.
    if j < code.len() && toks[code[j]].is_punct('!') {
        j += 1;
    }
    if j >= code.len() || !toks[code[j]].is_punct('[') {
        return k + 1;
    }
    let mut depth = 0i32;
    while j < code.len() {
        let t = &toks[code[j]];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    code.len()
}

// ---------------------------------------------------------------------------
// lint:allow directives
// ---------------------------------------------------------------------------

struct Allow {
    rule: String,
    line: u32,
    /// Lines this directive suppresses: its own line (trailing-comment
    /// form) and the first code line after the comment block it opens.
    covers: Vec<u32>,
    justified: bool,
    /// The justification text: everything after `):` on the directive
    /// line, plus immediately following comment lines up to the next
    /// code token (the multi-line justification form).
    justification: String,
}

/// Extract `lint:allow(<rule>): <justification>` directives from
/// comments. A directive suppresses matching diagnostics on its own line
/// (trailing-comment form) or on the first code line following its
/// comment block — the justification may continue across further comment
/// lines in between. What is mandatory is non-empty text (≥ 8 chars)
/// after the `):` on the directive line itself.
fn parse_allows(ctx: &FileCtx) -> Vec<Allow> {
    let mut out = Vec::new();
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind != TokKind::Comment {
            continue;
        }
        // A directive must *start* the comment's content (after the
        // `//`/`//!`/`///` marker); backticked mid-sentence mentions in
        // prose are not directives.
        let content = t.text.trim_start_matches(['/', '!', '*', ' ', '\t']);
        let Some(rest) = content.strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            out.push(Allow {
                rule: String::from("?"),
                line: t.line,
                covers: Vec::new(),
                justified: false,
                justification: String::new(),
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = &rest[close + 1..];
        let justified = after
            .strip_prefix(':')
            .map(|j| j.trim().len() >= 8)
            .unwrap_or(false);
        let mut justification = after
            .strip_prefix(':')
            .map(|j| j.trim().to_string())
            .unwrap_or_default();
        let mut covers = vec![t.line];
        // Continuation comment lines extend the justification; the first
        // code token after the block is the guarded line.
        for n in &ctx.toks[i + 1..] {
            if n.kind == TokKind::Comment {
                let cont = n.text.trim_start_matches(['/', '!', '*', ' ', '\t']).trim();
                if !cont.is_empty() && !cont.starts_with("lint:allow(") {
                    if !justification.is_empty() {
                        justification.push(' ');
                    }
                    justification.push_str(cont);
                }
            } else {
                covers.push(n.line);
                break;
            }
        }
        out.push(Allow {
            rule,
            line: t.line,
            covers,
            justified,
            justification,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_path_detection() {
        assert!(is_test_path("crates/netsim/tests/props.rs"));
        assert!(is_test_path("tests/lint_gate.rs"));
        assert!(is_test_path("examples/quickstart.rs"));
        assert!(is_test_path("crates/bench/benches/queues.rs"));
        assert!(!is_test_path("crates/netsim/src/sim.rs"));
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "\
use std::collections::HashMap;
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { let _ = HashMap::<u32, u32>::new(); }
}
";
        let d = scan_source("crates/netsim/src/x.rs", src);
        // Only the non-test use on line 1 fires.
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 1);
        assert_eq!(d[0].rule, "d1-unordered-collections");
    }

    #[test]
    fn cfg_test_fn_without_braces_in_signature_is_masked() {
        let src = "\
#[cfg(test)]
fn helper() -> std::collections::HashMap<u32, u32> {
    std::collections::HashMap::new()
}
fn live() {}
";
        let d = scan_source("crates/netsim/src/x.rs", src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_with_justification_suppresses_next_line() {
        let src = "\
// lint:allow(d1-unordered-collections): keys are drained in sorted order
use std::collections::HashMap;
";
        assert!(scan_source("crates/netsim/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_trailing_comment_suppresses_same_line() {
        let src = "use std::collections::HashMap; // lint:allow(d1-unordered-collections): lookup-only memo table\n";
        assert!(scan_source("crates/netsim/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_justification_may_span_multiple_comment_lines() {
        let src = "\
// lint:allow(d1-unordered-collections): this map is lookup-only; the
// iteration order is never observed by anything downstream.
use std::collections::HashMap;
";
        assert!(scan_source("crates/netsim/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_without_justification_is_a_diagnostic() {
        let src = "\
// lint:allow(d1-unordered-collections)
use std::collections::HashMap;
";
        let d = scan_source("crates/netsim/src/x.rs", src);
        assert!(d.iter().any(|d| d.rule == "lint-allow"), "{d:?}");
        assert!(
            d.iter().any(|d| d.rule == "d1-unordered-collections"),
            "an unjustified allow must not suppress: {d:?}"
        );
    }

    #[test]
    fn allow_for_a_different_rule_does_not_suppress() {
        let src = "\
// lint:allow(d2-wallclock-rng): wrong rule named here on purpose
use std::collections::HashMap;
";
        let d = scan_source("crates/netsim/src/x.rs", src);
        assert!(d.iter().any(|d| d.rule == "d1-unordered-collections"));
    }

    #[test]
    fn json_document_shape() {
        let diags = vec![Diagnostic {
            rule: "d1-unordered-collections",
            file: "crates/x.rs".into(),
            line: 3,
            message: "say \"no\"".into(),
        }];
        let j = to_json(&diags);
        assert!(j.contains("\"count\": 1"));
        assert!(j.contains("\\\"no\\\""));
        assert!(j.contains("\"line\": 3"));
        let empty = to_json(&[]);
        assert!(empty.contains("\"count\": 0"));
        assert!(empty.contains("\"diagnostics\": []"));
    }

    #[test]
    fn out_of_scope_paths_are_clean() {
        let src = "use std::collections::HashMap;\n";
        assert!(scan_source("crates/bench/src/lib.rs", src).is_empty());
    }
}
