//! # remy-lint — workspace determinism & safety analyzer
//!
//! Every headline number in this reproduction rests on one invariant:
//! simulations and training are **bit-identical** across `--jobs` counts,
//! scheduler backends, and spec round-trips. The runtime equivalence
//! suites check that invariant after the fact; `remy-lint` rejects the
//! *sources* of nondeterminism at commit time, as deny-by-default
//! diagnostics with `file:line` spans.
//!
//! The rule set (one module per rule, see [`rules`]):
//!
//! | id | rule |
//! |----|------|
//! | `d1-unordered-collections` | no `HashMap`/`HashSet` in sim/training library code (iteration order is nondeterministic — use `BTreeMap`/`BTreeSet` or a sorted drain) |
//! | `d2-wallclock-rng` | no `Instant`/`SystemTime`/`thread_rng`/raw `rand` in library code — all time comes from the event loop, all randomness from `SimRng::split_seed` |
//! | `d3-float-partial-sort` | no `.partial_cmp` on the result path — NaN makes `sort_by(partial_cmp)` panic or reorder; use `f64::total_cmp` |
//! | `d4-unsafe-safety-comment` | every `unsafe` must be preceded by a `// SAFETY:` comment |
//! | `d5-shared-state-sim-path` | no `Mutex`/`RwLock`/atomics in per-event sim code — the PDES design wants message passing at zone boundaries, not shared locks |
//! | `d6-wallclock-serialization` | no date/timestamp-like field names in serialized results — goldens must be byte-stable across runs |
//!
//! A justified escape hatch exists per finding:
//!
//! ```text
//! // lint:allow(d2-wallclock-rng): wall-clock here bounds the training
//! // budget; it is never observable by any simulation.
//! let started = Instant::now();
//! ```
//!
//! The justification after `):` is mandatory; a bare `lint:allow` is
//! itself a diagnostic. The scanner is a hand-rolled lexer
//! ([`lexer`]) — no `syn`, no crates.io — that skips `#[cfg(test)]`
//! items and `tests/`/`benches/`/`examples/` trees for all rules except
//! `d4` (unsafe needs a SAFETY comment even in tests).

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod lexer;
pub mod rules;

use lexer::{lex, Tok, TokKind};
use std::path::Path;

/// One finding, anchored to a file and 1-based line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`d1-unordered-collections`, ... or `lint-allow` for a
    /// malformed allow directive).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable explanation.
    pub message: String,
}

/// Everything a rule sees about one file.
pub struct FileCtx {
    /// Workspace-relative path, `/`-separated (scoping key).
    pub path: String,
    /// Token stream of the file.
    pub toks: Vec<Tok>,
    /// `test_mask[i]` is true when `toks[i]` sits inside a
    /// `#[cfg(test)]` item (or the whole file is test code).
    pub test_mask: Vec<bool>,
}

impl FileCtx {
    /// Code tokens (not comments) outside test regions, with indices.
    pub fn code_tokens(&self) -> impl Iterator<Item = (usize, &Tok)> {
        self.toks
            .iter()
            .enumerate()
            .filter(|(i, t)| !self.test_mask[*i] && t.kind != TokKind::Comment)
    }
}

/// A single lint rule.
pub struct Rule {
    /// Stable id, used in reports and `lint:allow(<id>)`.
    pub id: &'static str,
    /// One-line summary for `--list-rules` and docs.
    pub summary: &'static str,
    /// Path-scoping predicate over workspace-relative paths.
    pub applies: fn(&str) -> bool,
    /// The check itself: (line, message) findings.
    pub check: fn(&FileCtx) -> Vec<(u32, String)>,
}

/// Scan one file's text as if it lived at workspace-relative `rel_path`.
///
/// This is the engine under both the binary and the fixture tests (which
/// scan seeded-bad sources under a virtual in-scope path). Returned
/// diagnostics are filtered through `lint:allow` directives and sorted by
/// `(line, rule)`.
pub fn scan_source(rel_path: &str, text: &str) -> Vec<Diagnostic> {
    let toks = lex(text);
    let test_mask = test_region_mask(&toks, rel_path);
    let ctx = FileCtx {
        path: rel_path.to_string(),
        toks,
        test_mask,
    };
    let allows = parse_allows(&ctx);
    let mut out: Vec<Diagnostic> = Vec::new();

    // Malformed allow directives are diagnostics in their own right: an
    // unjustified suppression is exactly what the gate must not accept.
    for a in &allows {
        if !a.justified {
            out.push(Diagnostic {
                rule: "lint-allow",
                file: ctx.path.clone(),
                line: a.line,
                message: format!(
                    "lint:allow({}) without a justification — write \
                     `// lint:allow({}): <why this is sound>`",
                    a.rule, a.rule
                ),
            });
        }
    }

    for rule in rules::all() {
        if !(rule.applies)(rel_path) {
            continue;
        }
        for (line, message) in (rule.check)(&ctx) {
            let allowed = allows
                .iter()
                .any(|a| a.justified && a.rule == rule.id && a.covers.contains(&line));
            if !allowed {
                out.push(Diagnostic {
                    rule: rule.id,
                    file: ctx.path.clone(),
                    line,
                    message,
                });
            }
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Walk the workspace at `root` and scan every Rust source file.
///
/// Skips `target/`, `.git/`, and `fixtures/` directories (the seeded-bad
/// lint fixtures must not fail the gate for the tree that tests them).
/// Diagnostics come back sorted by `(file, line, rule)` so output — and
/// the `--json` document — is deterministic.
pub fn scan_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        let text =
            std::fs::read_to_string(root.join(&rel)).map_err(|e| format!("reading {rel}: {e}"))?;
        out.extend(scan_source(&rel, &text));
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(out)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walking {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if matches!(
                name.as_str(),
                "target" | ".git" | "fixtures" | "node_modules"
            ) {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("relativizing {}: {e}", path.display()))?
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Render diagnostics as the machine-readable `--json` document: an
/// object with a `count` and a `diagnostics` array, each entry carrying
/// `rule`, `file`, `line`, and `message`.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"count\": {},\n", diags.len()));
    s.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            json_escape(d.rule),
            json_escape(&d.file),
            d.line,
            json_escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        s.push('\n');
        s.push_str("  ");
    }
    s.push_str("]\n}\n");
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render diagnostics for humans, one `file:line: [rule] message` per
/// finding plus a summary line.
pub fn render_human(diags: &[Diagnostic]) -> String {
    let mut s = String::new();
    for d in diags {
        s.push_str(&format!(
            "{}:{}: [{}] {}\n",
            d.file, d.line, d.rule, d.message
        ));
    }
    if diags.is_empty() {
        s.push_str("remy-lint: clean\n");
    } else {
        s.push_str(&format!("remy-lint: {} diagnostic(s)\n", diags.len()));
    }
    s
}

// ---------------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------------

/// Paths whose whole content is test/bench/example code: every rule but
/// `d4-unsafe-safety-comment` skips these.
pub fn is_test_path(rel_path: &str) -> bool {
    rel_path
        .split('/')
        .any(|seg| matches!(seg, "tests" | "benches" | "examples"))
}

/// Mark tokens inside `#[cfg(test)]` items. Handles the conventional
/// shapes: `#[cfg(test)] mod tests { ... }`, possibly with further
/// attributes between the cfg and the item, and `#[cfg(test)]` on
/// brace-less items (skips to the `;`).
fn test_region_mask(toks: &[Tok], rel_path: &str) -> Vec<bool> {
    let mut mask = vec![is_test_path(rel_path); toks.len()];
    if mask.first().copied().unwrap_or(false) {
        return mask; // whole file is test code
    }
    let code: Vec<usize> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind != TokKind::Comment)
        .map(|(i, _)| i)
        .collect();
    let mut k = 0usize;
    while k < code.len() {
        if is_cfg_test_attr(toks, &code, k) {
            // Skip the attr itself, then any further attrs, then mark the
            // following item.
            let mut j = skip_attr(toks, &code, k);
            while j < code.len() && toks[code[j]].is_punct('#') {
                j = skip_attr(toks, &code, j);
            }
            // Find the item's opening `{` (or terminating `;`).
            let mut depth = 0i32;
            let item_start = j;
            while j < code.len() {
                let t = &toks[code[j]];
                if depth == 0 && t.is_punct(';') {
                    j += 1;
                    break;
                }
                if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                    if depth == 0 && toks[code[j]].is_punct('}') {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
            for &ti in &code[item_start..j.min(code.len())] {
                mask[ti] = true;
            }
            // Mask the attribute tokens too.
            for &ti in &code[k..item_start.min(code.len())] {
                mask[ti] = true;
            }
            k = j;
        } else {
            k += 1;
        }
    }
    mask
}

/// Is `code[k]` the `#` of an attribute containing `cfg ( test`?
fn is_cfg_test_attr(toks: &[Tok], code: &[usize], k: usize) -> bool {
    if !toks[code[k]].is_punct('#') {
        return false;
    }
    let end = skip_attr(toks, code, k);
    let mut saw_cfg = false;
    for &ti in &code[k..end] {
        let t = &toks[ti];
        if t.is_ident("cfg") {
            saw_cfg = true;
        } else if saw_cfg && t.is_ident("test") {
            return true;
        }
    }
    false
}

/// Given `code[k]` at a `#`, return the code-index just past the
/// attribute's closing `]`.
fn skip_attr(toks: &[Tok], code: &[usize], k: usize) -> usize {
    let mut j = k + 1;
    // Optional inner-attr `!`.
    if j < code.len() && toks[code[j]].is_punct('!') {
        j += 1;
    }
    if j >= code.len() || !toks[code[j]].is_punct('[') {
        return k + 1;
    }
    let mut depth = 0i32;
    while j < code.len() {
        let t = &toks[code[j]];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    code.len()
}

// ---------------------------------------------------------------------------
// lint:allow directives
// ---------------------------------------------------------------------------

struct Allow {
    rule: String,
    line: u32,
    /// Lines this directive suppresses: its own line (trailing-comment
    /// form) and the first code line after the comment block it opens.
    covers: Vec<u32>,
    justified: bool,
}

/// Extract `lint:allow(<rule>): <justification>` directives from
/// comments. A directive suppresses matching diagnostics on its own line
/// (trailing-comment form) or on the first code line following its
/// comment block — the justification may continue across further comment
/// lines in between. What is mandatory is non-empty text (≥ 8 chars)
/// after the `):` on the directive line itself.
fn parse_allows(ctx: &FileCtx) -> Vec<Allow> {
    let mut out = Vec::new();
    for (i, t) in ctx.toks.iter().enumerate() {
        if t.kind != TokKind::Comment {
            continue;
        }
        // A directive must *start* the comment's content (after the
        // `//`/`//!`/`///` marker); backticked mid-sentence mentions in
        // prose are not directives.
        let content = t.text.trim_start_matches(['/', '!', '*', ' ', '\t']);
        let Some(rest) = content.strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            out.push(Allow {
                rule: String::from("?"),
                line: t.line,
                covers: Vec::new(),
                justified: false,
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = &rest[close + 1..];
        let justified = after
            .strip_prefix(':')
            .map(|j| j.trim().len() >= 8)
            .unwrap_or(false);
        let mut covers = vec![t.line];
        // First code token after this comment (skipping the rest of the
        // justification block): the guarded line.
        if let Some(next) = ctx.toks[i + 1..]
            .iter()
            .find(|n| n.kind != TokKind::Comment)
        {
            covers.push(next.line);
        }
        out.push(Allow {
            rule,
            line: t.line,
            covers,
            justified,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_path_detection() {
        assert!(is_test_path("crates/netsim/tests/props.rs"));
        assert!(is_test_path("tests/lint_gate.rs"));
        assert!(is_test_path("examples/quickstart.rs"));
        assert!(is_test_path("crates/bench/benches/queues.rs"));
        assert!(!is_test_path("crates/netsim/src/sim.rs"));
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "\
use std::collections::HashMap;
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() { let _ = HashMap::<u32, u32>::new(); }
}
";
        let d = scan_source("crates/netsim/src/x.rs", src);
        // Only the non-test use on line 1 fires.
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 1);
        assert_eq!(d[0].rule, "d1-unordered-collections");
    }

    #[test]
    fn cfg_test_fn_without_braces_in_signature_is_masked() {
        let src = "\
#[cfg(test)]
fn helper() -> std::collections::HashMap<u32, u32> {
    std::collections::HashMap::new()
}
fn live() {}
";
        let d = scan_source("crates/netsim/src/x.rs", src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn allow_with_justification_suppresses_next_line() {
        let src = "\
// lint:allow(d1-unordered-collections): keys are drained in sorted order
use std::collections::HashMap;
";
        assert!(scan_source("crates/netsim/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_trailing_comment_suppresses_same_line() {
        let src = "use std::collections::HashMap; // lint:allow(d1-unordered-collections): lookup-only memo table\n";
        assert!(scan_source("crates/netsim/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_justification_may_span_multiple_comment_lines() {
        let src = "\
// lint:allow(d1-unordered-collections): this map is lookup-only; the
// iteration order is never observed by anything downstream.
use std::collections::HashMap;
";
        assert!(scan_source("crates/netsim/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_without_justification_is_a_diagnostic() {
        let src = "\
// lint:allow(d1-unordered-collections)
use std::collections::HashMap;
";
        let d = scan_source("crates/netsim/src/x.rs", src);
        assert!(d.iter().any(|d| d.rule == "lint-allow"), "{d:?}");
        assert!(
            d.iter().any(|d| d.rule == "d1-unordered-collections"),
            "an unjustified allow must not suppress: {d:?}"
        );
    }

    #[test]
    fn allow_for_a_different_rule_does_not_suppress() {
        let src = "\
// lint:allow(d2-wallclock-rng): wrong rule named here on purpose
use std::collections::HashMap;
";
        let d = scan_source("crates/netsim/src/x.rs", src);
        assert!(d.iter().any(|d| d.rule == "d1-unordered-collections"));
    }

    #[test]
    fn json_document_shape() {
        let diags = vec![Diagnostic {
            rule: "d1-unordered-collections",
            file: "crates/x.rs".into(),
            line: 3,
            message: "say \"no\"".into(),
        }];
        let j = to_json(&diags);
        assert!(j.contains("\"count\": 1"));
        assert!(j.contains("\\\"no\\\""));
        assert!(j.contains("\"line\": 3"));
        let empty = to_json(&[]);
        assert!(empty.contains("\"count\": 0"));
        assert!(empty.contains("\"diagnostics\": []"));
    }

    #[test]
    fn out_of_scope_paths_are_clean() {
        let src = "use std::collections::HashMap;\n";
        assert!(scan_source("crates/bench/src/lib.rs", src).is_empty());
    }
}
