//! `remy-lint` — the workspace determinism & safety gate.
//!
//! ```text
//! remy-lint [--json] [--root <dir>] [--scope-as <prefix>] [--list-rules]
//!           [--allow-report] [--reachable] [--effects [--baseline <file>]
//!           [--write-baseline <file>]] [--pdes-report] [paths...]
//! ```
//!
//! With no paths, walks the workspace (found by ascending from `--root`
//! or the current directory to the first `Cargo.toml` containing
//! `[workspace]`) and scans every `.rs` file as one unit — the call
//! graph behind the P/R/S families spans crates. With paths, scans those
//! files/directories; `--scope-as` maps each scanned file to a virtual
//! workspace-relative prefix so rule scoping applies (this is how the CI
//! gate proves the seeded-bad fixtures still fail).
//!
//! `--allow-report` inventories every `lint:allow` in the workspace with
//! its rule id and justification (the S-family entries are the PDES
//! migration worklist); it exits non-zero if any allow is unjustified or
//! names a rule that no longer exists. `--reachable` lists every
//! function the call graph considers reachable from the simulation entry
//! points, as `file:line: name`.
//!
//! `--effects` emits the field-level effect report (per-root read/write
//! sets over the state model, the handler commutativity matrix, and the
//! global-write worklist); with `--json` it prints the
//! `target/lint_effects.json` document. `--baseline <file>` compares the
//! global-write edge set against a committed baseline and fails on any
//! *new* edge (the ratchet); `--write-baseline <file>` regenerates the
//! committed document after a deliberate change. `--pdes-report` renders
//! the human worklist
//! burn-down: remaining S-family allows annotated with their state-model
//! buckets plus the computed global-write edges. Both fail when the
//! state model has unmodeled sim-scope mutable fields.
//!
//! Exit status: `0` clean, `1` diagnostics found, `2` usage/IO error.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use remy_lint::{render_human, scan_source, scan_workspace, to_json, Diagnostic};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut list_rules = false;
    let mut allow_report = false;
    let mut reachable = false;
    let mut effects = false;
    let mut pdes_report = false;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut scope_as: Option<String> = None;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--list-rules" => list_rules = true,
            "--allow-report" => allow_report = true,
            "--reachable" => reachable = true,
            "--effects" => effects = true,
            "--pdes-report" => pdes_report = true,
            "--baseline" => match args.next() {
                Some(f) => baseline = Some(PathBuf::from(f)),
                None => return usage("--baseline needs a file"),
            },
            "--write-baseline" => match args.next() {
                Some(f) => write_baseline = Some(PathBuf::from(f)),
                None => return usage("--write-baseline needs a file"),
            },
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => return usage("--root needs a directory"),
            },
            "--scope-as" => match args.next() {
                Some(p) => scope_as = Some(p.trim_end_matches('/').to_string()),
                None => return usage("--scope-as needs a virtual path prefix"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: remy-lint [--json] [--root <dir>] [--scope-as <prefix>] \
                     [--list-rules] [--allow-report] [--reachable] \
                     [--effects [--baseline <file>] [--write-baseline <file>]] \
                     [--pdes-report] [paths...]"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag {other}"));
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    if list_rules {
        for r in remy_lint::rules::all() {
            println!("{:<28} {}", r.id, r.summary);
        }
        for r in remy_lint::rules::graph_rules() {
            println!("{:<28} {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    if allow_report || reachable || effects || pdes_report {
        let start = root.unwrap_or_else(|| PathBuf::from("."));
        let Some(ws) = find_workspace_root(&start) else {
            return usage(&format!(
                "no workspace Cargo.toml found above {}",
                start.display()
            ));
        };
        if effects || pdes_report {
            return run_effects(
                &ws,
                effects,
                pdes_report,
                json,
                baseline.as_deref(),
                write_baseline.as_deref(),
            );
        }
        if reachable {
            let analysis = match remy_lint::analyze_workspace(&ws) {
                Ok(a) => a,
                Err(e) => return usage(&e),
            };
            for (file, name, line) in analysis.reachable_fns() {
                println!("{file}:{line}: {name}");
            }
            return ExitCode::SUCCESS;
        }
        let entries = match remy_lint::allow_report(&ws) {
            Ok(e) => e,
            Err(e) => return usage(&e),
        };
        if json {
            print!("{}", remy_lint::allow_report_json(&entries));
        } else {
            print!("{}", remy_lint::render_allow_report(&entries));
        }
        let unsound = entries.iter().any(|a| !a.justified || !a.known_rule);
        return if unsound {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let diags = if paths.is_empty() {
        let start = root.unwrap_or_else(|| PathBuf::from("."));
        let Some(ws) = find_workspace_root(&start) else {
            return usage(&format!(
                "no workspace Cargo.toml found above {}",
                start.display()
            ));
        };
        match scan_workspace(&ws) {
            Ok(d) => d,
            Err(e) => return usage(&e),
        }
    } else {
        match scan_paths(&paths, scope_as.as_deref()) {
            Ok(d) => d,
            Err(e) => return usage(&e),
        }
    };

    if json {
        print!("{}", to_json(&diags));
    } else {
        print!("{}", render_human(&diags));
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("remy-lint: {msg}");
    ExitCode::from(2)
}

/// The `--effects` / `--pdes-report` modes: build the effect report,
/// print the requested rendering, then enforce model completeness and —
/// when a baseline is given — the global-write ratchet. Gate messages go
/// to stderr so `--json` output stays a valid document.
fn run_effects(
    ws: &Path,
    effects: bool,
    pdes: bool,
    json: bool,
    baseline: Option<&Path>,
    write_baseline: Option<&Path>,
) -> ExitCode {
    let analysis = match remy_lint::analyze_workspace(ws) {
        Ok(a) => a,
        Err(e) => return usage(&e),
    };
    let report = remy_lint::effects::report(&analysis);
    if let Some(path) = write_baseline {
        let doc = remy_lint::effects::baseline_json(&report);
        if let Err(e) = std::fs::write(path, doc) {
            return usage(&format!("writing {}: {e}", path.display()));
        }
        eprintln!("remy-lint: wrote {}", path.display());
    }
    if effects {
        if json {
            print!("{}", remy_lint::effects::report_json(&report));
        } else {
            for e in report.roots.iter().chain(&report.handlers) {
                println!("{}", e.name);
                println!("  reads:  {}", e.reads.join(", "));
                println!("  writes: {}", e.writes.join(", "));
            }
        }
    }
    if pdes {
        let entries = match remy_lint::allow_report(ws) {
            Ok(e) => e,
            Err(e) => return usage(&e),
        };
        print!(
            "{}",
            remy_lint::effects::render_pdes(&analysis, &report, &entries)
        );
    }

    let mut failed = false;
    for u in &report.unmodeled {
        eprintln!(
            "remy-lint: unmodeled sim-scope field {}.{} ({}:{}) — add it to \
             effects::STATE_MODEL",
            u.ty, u.field, u.decl_file, u.decl_line
        );
        failed = true;
    }
    for s in &report.stale {
        eprintln!("remy-lint: stale state-model entry {s} — the field no longer exists");
        failed = true;
    }
    if let Some(path) = baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return usage(&format!("reading {}: {e}", path.display())),
        };
        let keys = remy_lint::effects::parse_baseline(&text);
        let (new, removed) = remy_lint::effects::ratchet_diff(&report, &keys);
        for k in &new {
            eprintln!(
                "remy-lint: NEW global-write edge {k} — a handler now reaches \
                 global-bucket state; move it behind a commit point or justify \
                 and re-baseline lint/effects_baseline.json"
            );
            failed = true;
        }
        for k in &removed {
            eprintln!(
                "remy-lint: global-write edge {k} burned down — tighten the \
                 baseline (remove it from lint/effects_baseline.json)"
            );
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Ascend from `start` to the first directory whose `Cargo.toml` declares
/// `[workspace]`.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.canonicalize().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Scan explicit files/directories. With `scope_as`, every file is
/// scanned as if it lived at `<scope_as>/<file name>`; otherwise its
/// given path is used as the workspace-relative path.
fn scan_paths(paths: &[PathBuf], scope_as: Option<&str>) -> Result<Vec<Diagnostic>, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    for p in paths {
        if p.is_dir() {
            collect_dir(p, &mut files)?;
        } else {
            files.push(p.clone());
        }
    }
    files.sort();
    let mut out = Vec::new();
    for f in &files {
        let text =
            std::fs::read_to_string(f).map_err(|e| format!("reading {}: {e}", f.display()))?;
        let rel = match scope_as {
            Some(prefix) => {
                let name = f
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                format!("{prefix}/{name}")
            }
            None => f.to_string_lossy().replace('\\', "/"),
        };
        out.extend(scan_source(&rel, &text));
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(out)
}

fn collect_dir(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walking {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_dir(&path, out)?;
        } else if path.to_string_lossy().ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
