//! `remy-lint` — the workspace determinism & safety gate.
//!
//! ```text
//! remy-lint [--json] [--root <dir>] [--scope-as <prefix>] [--list-rules]
//!           [--allow-report] [--reachable] [paths...]
//! ```
//!
//! With no paths, walks the workspace (found by ascending from `--root`
//! or the current directory to the first `Cargo.toml` containing
//! `[workspace]`) and scans every `.rs` file as one unit — the call
//! graph behind the P/R/S families spans crates. With paths, scans those
//! files/directories; `--scope-as` maps each scanned file to a virtual
//! workspace-relative prefix so rule scoping applies (this is how the CI
//! gate proves the seeded-bad fixtures still fail).
//!
//! `--allow-report` inventories every `lint:allow` in the workspace with
//! its rule id and justification (the S-family entries are the PDES
//! migration worklist); it exits non-zero if any allow is unjustified or
//! names a rule that no longer exists. `--reachable` lists every
//! function the call graph considers reachable from the simulation entry
//! points, as `file:line: name`.
//!
//! Exit status: `0` clean, `1` diagnostics found, `2` usage/IO error.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use remy_lint::{render_human, scan_source, scan_workspace, to_json, Diagnostic};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut list_rules = false;
    let mut allow_report = false;
    let mut reachable = false;
    let mut root: Option<PathBuf> = None;
    let mut scope_as: Option<String> = None;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json = true,
            "--list-rules" => list_rules = true,
            "--allow-report" => allow_report = true,
            "--reachable" => reachable = true,
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => return usage("--root needs a directory"),
            },
            "--scope-as" => match args.next() {
                Some(p) => scope_as = Some(p.trim_end_matches('/').to_string()),
                None => return usage("--scope-as needs a virtual path prefix"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: remy-lint [--json] [--root <dir>] [--scope-as <prefix>] \
                     [--list-rules] [--allow-report] [--reachable] [paths...]"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag {other}"));
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    if list_rules {
        for r in remy_lint::rules::all() {
            println!("{:<28} {}", r.id, r.summary);
        }
        for r in remy_lint::rules::graph_rules() {
            println!("{:<28} {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    if allow_report || reachable {
        let start = root.unwrap_or_else(|| PathBuf::from("."));
        let Some(ws) = find_workspace_root(&start) else {
            return usage(&format!(
                "no workspace Cargo.toml found above {}",
                start.display()
            ));
        };
        if reachable {
            let analysis = match remy_lint::analyze_workspace(&ws) {
                Ok(a) => a,
                Err(e) => return usage(&e),
            };
            for (file, name, line) in analysis.reachable_fns() {
                println!("{file}:{line}: {name}");
            }
            return ExitCode::SUCCESS;
        }
        let entries = match remy_lint::allow_report(&ws) {
            Ok(e) => e,
            Err(e) => return usage(&e),
        };
        if json {
            print!("{}", remy_lint::allow_report_json(&entries));
        } else {
            print!("{}", remy_lint::render_allow_report(&entries));
        }
        let unsound = entries.iter().any(|a| !a.justified || !a.known_rule);
        return if unsound {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let diags = if paths.is_empty() {
        let start = root.unwrap_or_else(|| PathBuf::from("."));
        let Some(ws) = find_workspace_root(&start) else {
            return usage(&format!(
                "no workspace Cargo.toml found above {}",
                start.display()
            ));
        };
        match scan_workspace(&ws) {
            Ok(d) => d,
            Err(e) => return usage(&e),
        }
    } else {
        match scan_paths(&paths, scope_as.as_deref()) {
            Ok(d) => d,
            Err(e) => return usage(&e),
        }
    };

    if json {
        print!("{}", to_json(&diags));
    } else {
        print!("{}", render_human(&diags));
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("remy-lint: {msg}");
    ExitCode::from(2)
}

/// Ascend from `start` to the first directory whose `Cargo.toml` declares
/// `[workspace]`.
fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.canonicalize().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Scan explicit files/directories. With `scope_as`, every file is
/// scanned as if it lived at `<scope_as>/<file name>`; otherwise its
/// given path is used as the workspace-relative path.
fn scan_paths(paths: &[PathBuf], scope_as: Option<&str>) -> Result<Vec<Diagnostic>, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    for p in paths {
        if p.is_dir() {
            collect_dir(p, &mut files)?;
        } else {
            files.push(p.clone());
        }
    }
    files.sort();
    let mut out = Vec::new();
    for f in &files {
        let text =
            std::fs::read_to_string(f).map_err(|e| format!("reading {}: {e}", f.display()))?;
        let rel = match scope_as {
            Some(prefix) => {
                let name = f
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                format!("{prefix}/{name}")
            }
            None => f.to_string_lossy().replace('\\', "/"),
        };
        out.extend(scan_source(&rel, &text));
    }
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(out)
}

fn collect_dir(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walking {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_dir(&path, out)?;
        } else if path.to_string_lossy().ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
