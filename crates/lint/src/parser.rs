//! A lightweight recursive-descent *item* parser over the lexer's token
//! stream.
//!
//! `remy-lint` v1 scoped its rules by file path; the P/R/S rule families
//! scope by *reachability from the simulation entry points*, which needs
//! to know where functions are defined and what their bodies span. This
//! module recovers exactly that — no more: for every `.rs` file it
//! produces a symbol table of [`FnDef`]s (free functions, inherent and
//! trait-impl methods, trait default methods), each with
//!
//! - its name and, for methods, the self type recovered from the
//!   enclosing `impl`/`trait` header (`impl<T> Foo<T>` → `Foo`,
//!   `impl Display for Bar` → `Bar`),
//! - the token range of its body, and
//! - an owner map assigning every body token to its *innermost*
//!   enclosing function (nested `fn`s own their tokens, closures belong
//!   to the function holding them).
//!
//! In the spirit of the workspace's zero-dependency constraint this is
//! not `syn`: no expression grammar, no types, no generics resolution —
//! just enough item structure for an over-approximate call graph
//! ([`crate::callgraph`]). `macro_rules!` bodies are skipped wholesale
//! (fragment pseudo-syntax would desynchronize the brace tracking).

use crate::lexer::{Tok, TokKind};

/// One function definition recovered from a file's token stream.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Self type for inherent/trait-impl methods and trait default
    /// methods (`impl Foo` / `impl Trait for Foo` / `trait Foo`); `None`
    /// for free functions.
    pub self_ty: Option<String>,
    /// The function's bare name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range (half-open) of the signature, from the `fn`
    /// keyword to (not including) the body's opening brace — the effect
    /// analysis reads parameter types out of this span.
    pub sig: (usize, usize),
    /// Token-index range (half-open, into the file's token stream) of
    /// the body, *including* the delimiting braces.
    pub body: (usize, usize),
    /// True when the receiver is `&mut self` / `mut self` /
    /// `self: &mut Self` — a call through `.name(` may mutate the
    /// receiver. The effect analysis classifies such calls as writes.
    pub self_mut: bool,
    /// True when the definition sits inside a `#[cfg(test)]` region or a
    /// whole-file test path (per the file's test mask).
    pub is_test: bool,
}

impl FnDef {
    /// `Type::name` for methods, `name` for free functions.
    pub fn qual_name(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One named field of a `struct` item.
#[derive(Clone, Debug)]
pub struct StructField {
    /// The field's name.
    pub name: String,
    /// The field's type, as source text with single spaces between
    /// tokens (`Vec < FlowHot >`). Heuristic material only — the effect
    /// analysis greps it for `f64` and the like; it is not a parsed type.
    pub ty: String,
    /// 1-based line of the field name.
    pub line: u32,
}

/// One `struct` item with named fields, recovered for the effect
/// analysis's state model (tuple and unit structs are not recorded:
/// they have no named fields to classify).
#[derive(Clone, Debug)]
pub struct StructDef {
    /// The struct's name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Named fields, in declaration order.
    pub fields: Vec<StructField>,
    /// True inside a `#[cfg(test)]` region or whole-file test path.
    pub is_test: bool,
}

/// Parse result for one file: the definitions plus a token→definition
/// owner map.
pub struct FileSymbols {
    /// All function definitions, in source order.
    pub defs: Vec<FnDef>,
    /// All named-field struct definitions, in source order.
    pub structs: Vec<StructDef>,
    /// `owner[i]` is the index (into `defs`) of the innermost function
    /// whose body contains token `i`, if any.
    pub owner: Vec<Option<usize>>,
}

/// What an open brace belongs to, on the nesting stack.
enum Scope {
    /// An `impl`/`trait` body with the recovered self type.
    TypeBody(Option<String>),
    /// A function body: index into `defs`, plus the owner index that was
    /// active outside it.
    FnBody(usize, Option<usize>),
    /// Any other brace group (blocks, match arms, struct literals…).
    Other,
}

/// Parse one file's token stream into its function symbol table.
///
/// `test_mask` is the per-token `#[cfg(test)]` mask produced by
/// [`crate::test_region_mask`]; definitions inherit it so the call graph
/// can ignore test-only code.
pub fn parse_file(toks: &[Tok], test_mask: &[bool]) -> FileSymbols {
    let code: Vec<usize> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| t.kind != TokKind::Comment)
        .map(|(i, _)| i)
        .collect();
    let mut defs: Vec<FnDef> = Vec::new();
    let mut structs: Vec<StructDef> = Vec::new();
    let mut owner: Vec<Option<usize>> = vec![None; toks.len()];
    let mut stack: Vec<Scope> = Vec::new();
    // The impl/trait self type and fn-body owner currently in effect.
    let mut cur_ty: Option<String> = None;
    let mut cur_owner: Option<usize> = None;

    let mut k = 0usize;
    while k < code.len() {
        let t = &toks[code[k]];
        if let Some(o) = cur_owner {
            owner[code[k]] = Some(o);
        }
        if t.is_ident("macro_rules") {
            // `macro_rules! name { ... }` — skip the whole definition;
            // its fragment syntax is not Rust code.
            k = skip_to_group_end(toks, &code, k, '{', '}');
            continue;
        }
        if t.is_ident("struct") {
            // Record the struct's named fields (lookahead only — the
            // main loop keeps walking the body as ordinary brace groups,
            // so owner assignment and scope tracking are untouched).
            if let Some(s) = parse_struct(toks, &code, k, test_mask) {
                structs.push(s);
            }
            k += 1;
            continue;
        }
        if t.is_ident("impl") || t.is_ident("trait") {
            let is_impl = t.is_ident("impl");
            let (ty, body_open) = parse_type_header(toks, &code, k, is_impl);
            match body_open {
                // `impl Foo;`-like or unterminated: nothing to enter.
                None => k += 1,
                Some(open) => {
                    stack.push(Scope::TypeBody(cur_ty.clone()));
                    cur_ty = ty;
                    k = open + 1;
                }
            }
            continue;
        }
        if t.is_ident("fn") {
            let name_k = k + 1;
            let Some(name_tok) = code.get(name_k).map(|&i| &toks[i]) else {
                k += 1;
                continue;
            };
            if name_tok.kind != TokKind::Ident {
                k += 1; // `fn` inside a type position (`Fn`-like), skip
                continue;
            }
            // Scan the signature for the body `{` (or a `;` for a trait
            // method declaration / extern fn) at group depth 0.
            let mut j = name_k + 1;
            let mut depth = 0i32;
            let mut open = None;
            while j < code.len() {
                let s = &toks[code[j]];
                if s.is_punct('(') || s.is_punct('[') {
                    depth += 1;
                } else if s.is_punct(')') || s.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && s.is_punct('{') {
                    open = Some(j);
                    break;
                } else if depth == 0 && s.is_punct(';') {
                    break;
                }
                j += 1;
            }
            match open {
                None => {
                    // Declaration without body: record nothing (no body
                    // tokens to analyze; calls resolve to the impls).
                    k = j + 1;
                }
                Some(open) => {
                    let def = FnDef {
                        self_ty: cur_ty.clone(),
                        name: name_tok.text.clone(),
                        line: t.line,
                        sig: (code[k], code[open]),
                        body: (code[open], code[open]), // end patched at pop
                        self_mut: receiver_is_mut(toks, &code, name_k + 1, open),
                        is_test: test_mask.get(code[k]).copied().unwrap_or(false),
                    };
                    defs.push(def);
                    let idx = defs.len() - 1;
                    stack.push(Scope::FnBody(idx, cur_owner));
                    cur_owner = Some(idx);
                    owner[code[open]] = Some(idx);
                    k = open + 1;
                }
            }
            continue;
        }
        if t.is_punct('{') {
            stack.push(Scope::Other);
            k += 1;
            continue;
        }
        if t.is_punct('}') {
            match stack.pop() {
                Some(Scope::TypeBody(prev)) => cur_ty = prev,
                Some(Scope::FnBody(idx, prev)) => {
                    defs[idx].body.1 = code[k] + 1;
                    owner[code[k]] = Some(idx);
                    cur_owner = prev;
                }
                Some(Scope::Other) | None => {}
            }
            k += 1;
            continue;
        }
        k += 1;
    }
    // Unterminated bodies (malformed source): close them at EOF.
    for s in stack {
        if let Scope::FnBody(idx, _) = s {
            defs[idx].body.1 = toks.len();
        }
    }
    FileSymbols {
        defs,
        structs,
        owner,
    }
}

/// Does the signature segment `code[from..sig_end]` declare a mutable
/// receiver? The receiver is everything from the parameter list's `(` to
/// the first `,` at depth 1; `&mut self`, `mut self`, and
/// `self: &mut Self` all qualify.
fn receiver_is_mut(toks: &[Tok], code: &[usize], from: usize, sig_end: usize) -> bool {
    let mut j = from;
    // Find the parameter list's opening paren (past any generics).
    let mut angle = 0i32;
    while j < sig_end {
        let t = &toks[code[j]];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = (angle - 1).max(0);
        } else if angle == 0 && t.is_punct('(') {
            break;
        }
        j += 1;
    }
    if j >= sig_end {
        return false;
    }
    let mut depth = 0i32;
    let (mut saw_self, mut saw_mut) = (false, false);
    while j < sig_end {
        let t = &toks[code[j]];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1 && t.is_punct(',') {
            break; // end of the receiver parameter
        } else if t.is_ident("self") {
            saw_self = true;
        } else if t.is_ident("mut") {
            saw_mut = true;
        }
        j += 1;
    }
    saw_self && saw_mut
}

/// Parse the `struct` item starting at `code[k]` (the keyword) into a
/// [`StructDef`], if it has named fields. Tuple structs, unit structs,
/// and malformed headers return `None`.
fn parse_struct(toks: &[Tok], code: &[usize], k: usize, test_mask: &[bool]) -> Option<StructDef> {
    let name_tok = code.get(k + 1).map(|&i| &toks[i])?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    // Scan the header (generics, where clause) for the body's `{`. A `;`
    // (unit struct) or `(` at angle depth 0 (tuple struct) ends it.
    let mut j = k + 2;
    let mut angle = 0i32;
    let open = loop {
        let t = &toks[*code.get(j)?];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = (angle - 1).max(0);
        } else if angle == 0 && t.is_punct('{') {
            break j;
        } else if angle == 0 && (t.is_punct(';') || t.is_punct('(')) {
            return None;
        }
        j += 1;
    };
    let mut fields = Vec::new();
    let mut depth = 1i32; // inside the struct braces
    let mut j = open + 1;
    while j < code.len() && depth > 0 {
        let t = &toks[code[j]];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
            j += 1;
            continue;
        }
        if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            j += 1;
            continue;
        }
        if depth != 1 {
            j += 1;
            continue;
        }
        // At field position: skip attributes and visibility.
        if t.is_punct('#') {
            j = crate::skip_attr(toks, code, j);
            continue;
        }
        if t.is_ident("pub") {
            j += 1;
            continue;
        }
        // `name :` opens a field; collect its type up to the `,` that
        // closes it (at angle depth 0 and delimiter depth 1).
        if t.kind == TokKind::Ident && code.get(j + 1).is_some_and(|&i| toks[i].is_punct(':')) {
            let name = t.text.clone();
            let line = t.line;
            let mut ty = String::new();
            let mut ty_angle = 0i32;
            let mut m = j + 2;
            while m < code.len() {
                let s = &toks[code[m]];
                if s.is_punct('<') {
                    ty_angle += 1;
                } else if s.is_punct('>') {
                    // `->` in fn-pointer types must not close a generic.
                    if !toks[code[m - 1]].is_punct('-') {
                        ty_angle = (ty_angle - 1).max(0);
                    }
                } else if s.is_punct('(') || s.is_punct('[') {
                    depth += 1;
                } else if s.is_punct(')') || s.is_punct(']') || s.is_punct('}') {
                    if s.is_punct('}') || depth == 1 {
                        break; // struct body (or a malformed field) ends
                    }
                    depth -= 1;
                } else if ty_angle == 0 && depth == 1 && s.is_punct(',') {
                    break;
                }
                if !ty.is_empty() {
                    ty.push(' ');
                }
                ty.push_str(&s.text);
                m += 1;
            }
            fields.push(StructField { name, ty, line });
            j = m;
            continue;
        }
        j += 1;
    }
    Some(StructDef {
        name: name_tok.text.clone(),
        line: toks[code[k]].line,
        fields,
        is_test: test_mask.get(code[k]).copied().unwrap_or(false),
    })
}

/// Parse an `impl`/`trait` header starting at `code[k]` (the keyword).
/// Returns the recovered self-type name and the code index of the body's
/// opening `{`, if any.
///
/// The self type is the last path identifier at angle-depth 0 of the
/// header segment — after `for` when present (`impl Trait for Type`),
/// otherwise after the keyword and its generic parameters. `&`, `dyn`,
/// `mut` and path prefixes (`crate::x::Type`) fall out naturally:
/// the *last* identifier of the segment is the type name.
fn parse_type_header(
    toks: &[Tok],
    code: &[usize],
    k: usize,
    is_impl: bool,
) -> (Option<String>, Option<usize>) {
    let mut angle = 0i32;
    let mut j = k + 1;
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    while j < code.len() {
        let t = &toks[code[j]];
        if angle == 0 && t.is_punct('{') {
            let ty = after_for.or(last_ident);
            return (ty, Some(j));
        }
        if angle == 0 && t.is_punct(';') {
            return (None, None);
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle = (angle - 1).max(0); // `->` in assoc-fn bounds etc.
        } else if angle == 0 && t.kind == TokKind::Ident {
            if is_impl && t.text == "for" {
                // The target type follows; reset collection.
                last_ident = None;
                after_for = None;
            } else if t.text != "dyn" && t.text != "mut" && t.text != "where" {
                last_ident = Some(t.text.clone());
                if is_impl {
                    after_for = last_ident.clone();
                }
            }
        }
        j += 1;
    }
    (None, None)
}

/// From `code[k]`, advance to just past the end of the next balanced
/// `open`…`close` group (used to skip `macro_rules!` bodies).
fn skip_to_group_end(toks: &[Tok], code: &[usize], k: usize, open: char, close: char) -> usize {
    let mut j = k;
    let mut depth = 0i32;
    let mut entered = false;
    while j < code.len() {
        let t = &toks[code[j]];
        if t.is_punct(open) {
            depth += 1;
            entered = true;
        } else if t.is_punct(close) {
            depth -= 1;
            if entered && depth == 0 {
                return j + 1;
            }
        } else if !entered && t.is_punct(';') {
            return j + 1; // `macro_rules`-like item without a brace group
        }
        j += 1;
    }
    code.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> FileSymbols {
        let toks = lex(src);
        let mask = vec![false; toks.len()];
        parse_file(&toks, &mask)
    }

    fn quals(sym: &FileSymbols) -> Vec<String> {
        sym.defs.iter().map(|d| d.qual_name()).collect()
    }

    #[test]
    fn free_fns_and_methods() {
        let src = "\
fn free() {}
impl Foo {
    pub fn method(&self) -> u32 { 1 }
    fn helper() {}
}
impl Display for Bar {
    fn fmt(&self) {}
}
";
        let sym = parse(src);
        assert_eq!(
            quals(&sym),
            vec!["free", "Foo::method", "Foo::helper", "Bar::fmt"]
        );
    }

    #[test]
    fn generic_impl_headers_resolve_the_target_type() {
        let src = "\
impl<T: Clone> Wrapper<T> {
    fn get(&self) -> &T { &self.0 }
}
impl<'a, Q> From<&'a Q> for Holder<Q> {
    fn from(q: &'a Q) -> Self { Holder(q.clone()) }
}
impl crate::deep::path::Thing {
    fn act(&self) {}
}
";
        let sym = parse(src);
        assert_eq!(
            quals(&sym),
            vec!["Wrapper::get", "Holder::from", "Thing::act"]
        );
    }

    #[test]
    fn trait_default_methods_and_bodyless_declarations() {
        let src = "\
trait Queue {
    fn enqueue(&mut self, x: u32);
    fn enqueue_all(&mut self, xs: &[u32]) {
        for &x in xs { self.enqueue(x); }
    }
}
";
        let sym = parse(src);
        assert_eq!(quals(&sym), vec!["Queue::enqueue_all"]);
    }

    #[test]
    fn nested_fns_own_their_tokens() {
        let src = "\
fn outer() {
    let a = before();
    fn inner() { let b = within(); }
    let c = after();
}
";
        let toks = lex(src);
        let mask = vec![false; toks.len()];
        let sym = parse_file(&toks, &mask);
        assert_eq!(quals(&sym), vec!["outer", "inner"]);
        let owner_of = |name: &str| {
            let i = toks.iter().position(|t| t.is_ident(name)).unwrap();
            sym.owner[i].map(|d| sym.defs[d].name.clone())
        };
        assert_eq!(owner_of("before").as_deref(), Some("outer"));
        assert_eq!(owner_of("within").as_deref(), Some("inner"));
        assert_eq!(owner_of("after").as_deref(), Some("outer"));
    }

    #[test]
    fn closures_belong_to_the_enclosing_fn() {
        let src = "fn f() { let g = |x: u32| helper(x); g(1); }";
        let toks = lex(src);
        let mask = vec![false; toks.len()];
        let sym = parse_file(&toks, &mask);
        let i = toks.iter().position(|t| t.is_ident("helper")).unwrap();
        assert_eq!(sym.owner[i], Some(0));
    }

    #[test]
    fn macro_rules_bodies_are_skipped() {
        let src = "\
macro_rules! make {
    ($n:ident) => { fn $n() {} };
}
fn real() {}
";
        let sym = parse(src);
        assert_eq!(quals(&sym), vec!["real"]);
    }

    #[test]
    fn signatures_with_complex_return_types() {
        let src = "\
fn factory() -> Box<dyn Fn(u64) -> Box<dyn CongestionControl>> {
    Box::new(|k| build(k))
}
fn next_one() {}
";
        let sym = parse(src);
        assert_eq!(quals(&sym), vec!["factory", "next_one"]);
    }

    #[test]
    fn test_mask_marks_defs() {
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}
";
        let toks = lex(src);
        let mask = crate::test_region_mask(&toks, "crates/netsim/src/x.rs");
        let sym = parse_file(&toks, &mask);
        assert_eq!(quals(&sym), vec!["live", "helper"]);
        assert!(!sym.defs[0].is_test);
        assert!(sym.defs[1].is_test);
    }

    #[test]
    fn malformed_source_never_panics() {
        for src in [
            "fn broken(",
            "impl Foo {",
            "fn x() { {",
            "impl",
            "fn",
            "trait T { fn a(); ",
        ] {
            let _ = parse(src);
        }
    }

    #[test]
    fn struct_fields_record_names_types_and_lines() {
        let src = "\
pub struct Hop {
    #[allow(dead_code)]
    pub queue: Vec<Packet>,
    rate_bps: f64,
    on_drop: fn(u32) -> bool,
}
struct Unit;
struct Tuple(u32, f64);
";
        let sym = parse(src);
        assert_eq!(sym.structs.len(), 1, "tuple/unit structs are skipped");
        let s = &sym.structs[0];
        assert_eq!(s.name, "Hop");
        assert_eq!(s.line, 1);
        let got: Vec<(&str, u32)> = s.fields.iter().map(|f| (f.name.as_str(), f.line)).collect();
        assert_eq!(got, vec![("queue", 3), ("rate_bps", 4), ("on_drop", 5)]);
        assert_eq!(s.fields[0].ty, "Vec < Packet >");
        assert!(s.fields[1].ty.contains("f64"));
        // The `->` in the fn-pointer type must not eat the next field.
        assert_eq!(s.fields[2].ty, "fn ( u32 ) - > bool");
    }

    #[test]
    fn struct_with_generics_and_where_clause_parses() {
        let src = "\
pub struct Table<K: Ord, V>
where
    V: Clone,
{
    slots: Vec<(K, V)>,
}
";
        let sym = parse(src);
        assert_eq!(sym.structs.len(), 1);
        assert_eq!(sym.structs[0].name, "Table");
        assert_eq!(sym.structs[0].fields.len(), 1);
        assert_eq!(sym.structs[0].fields[0].name, "slots");
    }

    #[test]
    fn self_mut_reflects_the_receiver_mode() {
        let src = "\
impl Wheel {
    fn tick(&mut self) {}
    fn peek(&self) -> u64 { 0 }
    fn consume(mut self) {}
    fn explicit(self: &mut Self) {}
    fn assoc(mut spec: Spec) {}
}
";
        let sym = parse(src);
        let by_name = |n: &str| sym.defs.iter().find(|d| d.name == n).expect(n);
        assert!(by_name("tick").self_mut);
        assert!(!by_name("peek").self_mut);
        assert!(by_name("consume").self_mut);
        assert!(by_name("explicit").self_mut);
        assert!(
            !by_name("assoc").self_mut,
            "`mut` on a non-self first parameter is not a mutable receiver"
        );
    }

    #[test]
    fn sig_span_covers_keyword_to_body_brace() {
        let src = "impl S { fn go<T: Ord>(&mut self, n: Vec<T>) -> u64 { 0 } }";
        let sym = parse(src);
        let d = &sym.defs[0];
        let toks = lex(src);
        assert!(toks[d.sig.0].is_ident("fn"));
        assert!(toks[d.sig.1].is_punct('{'));
        assert_eq!(d.body.0, d.sig.1, "body starts where the signature ends");
        let sig_text: Vec<&str> = toks[d.sig.0..d.sig.1]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert!(sig_text.contains(&"go"));
        assert!(sig_text.contains(&"Vec"));
    }
}
