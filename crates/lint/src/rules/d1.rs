//! **d1-unordered-collections** — no `HashMap`/`HashSet` in sim/training
//! library code.
//!
//! `std::collections::HashMap` iteration order depends on the hasher's
//! per-process `RandomState`; any result, report, or merged statistic
//! that flows through a hash-map drain can differ run to run and across
//! `--jobs` counts. The PR-2 usage-merge bug and the experiment-renderer
//! ordering hazards are exactly this class. Library code in the sim
//! crates must use `BTreeMap`/`BTreeSet`, or sort before draining — and
//! if a map really is lookup-only, say so with a justified
//! `lint:allow(d1-unordered-collections)`.
//!
//! The token-level scanner cannot prove a given map is never iterated,
//! so the rule is deny-by-default on the *type*: that is the point — an
//! allow with a written justification is the reviewable artifact.

use crate::{FileCtx, Rule};

const BANNED: [&str; 3] = ["HashMap", "HashSet", "IndexMap"];

pub(crate) fn rule() -> Rule {
    Rule {
        id: "d1-unordered-collections",
        summary: "HashMap/HashSet in sim/training library code: iteration order is \
                  nondeterministic — use BTreeMap/BTreeSet or a sorted drain",
        applies: super::sim_crate_src,
        check,
    }
}

fn check(ctx: &FileCtx) -> Vec<(u32, String)> {
    ctx.code_tokens()
        .filter(|(_, t)| BANNED.iter().any(|b| t.is_ident(b)))
        .map(|(_, t)| {
            (
                t.line,
                format!(
                    "`{}` has nondeterministic iteration order; use `BTree{}` or a \
                     sorted drain (or justify with lint:allow if lookup-only)",
                    t.text,
                    t.text
                        .trim_start_matches("Hash")
                        .trim_start_matches("Index"),
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::rules::testutil::{lines_of, scan};

    #[test]
    fn flags_hashmap_and_hashset_with_spans() {
        let src = "\
use std::collections::HashMap;
use std::collections::BTreeMap;
fn f() {
    let m: HashMap<u32, u32> = HashMap::new();
    let s = std::collections::HashSet::<u32>::new();
    let _ = (m, s);
}
";
        let d = scan(src);
        assert_eq!(lines_of(&d, "d1-unordered-collections"), vec![1, 4, 4, 5]);
    }

    #[test]
    fn btree_collections_are_clean() {
        let src = "use std::collections::{BTreeMap, BTreeSet};\nfn f(m: BTreeMap<u32, u32>) -> usize { m.len() }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn comments_strings_and_tests_do_not_fire() {
        let src = "\
// HashMap is mentioned here in prose only.
const NAME: &str = \"HashMap\";
#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    #[test]
    fn t() { let _ = HashSet::<u32>::new(); }
}
";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn out_of_scope_crates_are_clean() {
        let src = "use std::collections::HashMap;\n";
        assert!(crate::scan_source("crates/shims/rayon/src/lib.rs", src).is_empty());
        assert!(crate::scan_source("crates/bench/src/lib.rs", src).is_empty());
        assert!(crate::scan_source("crates/netsim/tests/props.rs", src).is_empty());
    }

    #[test]
    fn hash_trait_is_not_flagged() {
        let src = "#[derive(Hash, PartialEq, Eq)]\nstruct K(u32);\nimpl K { fn hash_like(&self) -> u64 { 0 } }\n";
        assert!(scan(src).is_empty());
    }
}
