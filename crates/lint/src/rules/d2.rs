//! **d2-wallclock-rng** — no wall-clock or ambient randomness in
//! sim/training library code.
//!
//! Simulated time advances only through the event loop (`Ns` deadlines
//! popped from the scheduler); randomness flows only through
//! `SimRng::split_seed`, which is what makes common-random-number
//! evaluation and the `--jobs`-independence guarantee possible. A stray
//! `Instant::now()` or `thread_rng()` in library code silently couples
//! results to the host — the defect class that makes CC comparisons
//! irreproducible.
//!
//! `crates/bench` and the criterion shim are out of scope (measuring
//! wall-clock is their job), as are examples/tests (CLI wall budgets are
//! fine there). The optimizer's wall-clock *training budget* is the one
//! legitimate library use and carries a justified `lint:allow`.

use crate::{FileCtx, Rule};

/// Identifiers that couple code to the host clock or ambient entropy.
const BANNED: [&str; 6] = [
    "Instant",
    "SystemTime",
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "getrandom",
];

pub(crate) fn rule() -> Rule {
    Rule {
        id: "d2-wallclock-rng",
        summary: "wall-clock time or ambient randomness in sim/training library code — \
                  time comes from the event loop, randomness from SimRng::split_seed",
        applies: super::sim_crate_src,
        check,
    }
}

fn check(ctx: &FileCtx) -> Vec<(u32, String)> {
    let code: Vec<_> = ctx.code_tokens().collect();
    let mut out = Vec::new();
    for (k, (_, t)) in code.iter().enumerate() {
        if BANNED.iter().any(|b| t.is_ident(b)) {
            out.push((
                t.line,
                format!(
                    "`{}` couples results to the host; simulated time comes from the \
                     event loop and randomness from `SimRng::split_seed`",
                    t.text
                ),
            ));
        } else if t.is_ident("rand") {
            // Raw `rand::...` path use (the identifier alone also names
            // harmless locals, so require the `::` path form).
            let next_is_path = code.get(k + 1).is_some_and(|(_, n)| n.is_punct(':'))
                && code.get(k + 2).is_some_and(|(_, n)| n.is_punct(':'));
            if next_is_path {
                out.push((
                    t.line,
                    "raw `rand::` use; all randomness must flow through `SimRng::split_seed`"
                        .to_string(),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::rules::testutil::{lines_of, scan};

    #[test]
    fn flags_instant_systemtime_and_thread_rng() {
        let src = "\
use std::time::Instant;
fn f() {
    let t0 = Instant::now();
    let _ = std::time::SystemTime::now();
    let mut r = rand::thread_rng();
    let _ = (t0, r);
}
";
        let d = scan(src);
        assert_eq!(lines_of(&d, "d2-wallclock-rng"), vec![1, 3, 4, 5, 5]);
    }

    #[test]
    fn sim_rng_and_duration_are_clean() {
        let src = "\
use crate::rng::SimRng;
fn f(seed: u64) -> f64 {
    let mut rng = SimRng::new(SimRng::split_seed(seed, 3));
    let d = std::time::Duration::from_secs(1);
    rng.uniform() + d.as_secs_f64()
}
";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn local_named_rand_is_not_a_path_use() {
        let src = "fn f(rand: f64) -> f64 { rand * 2.0 }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn bench_and_criterion_shim_are_out_of_scope() {
        let src = "use std::time::Instant;\nfn f() { let _ = Instant::now(); }\n";
        assert!(crate::scan_source("crates/bench/src/lib.rs", src).is_empty());
        assert!(crate::scan_source("crates/shims/criterion/src/lib.rs", src).is_empty());
        assert!(crate::scan_source("examples/train_remycc.rs", src).is_empty());
    }

    #[test]
    fn justified_allow_suppresses() {
        let src = "\
// lint:allow(d2-wallclock-rng): wall-clock bounds the training budget only;
// it is never observable by any simulation (results depend on steps, not time).
use std::time::Instant;
";
        assert!(scan(src).is_empty());
    }
}
