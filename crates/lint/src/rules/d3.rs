//! **d3-float-partial-sort** — no `.partial_cmp` on the result path.
//!
//! `sort_by(|a, b| a.partial_cmp(b).unwrap())` panics on the first NaN,
//! and the `unwrap_or(Equal)` variant silently produces an
//! implementation-defined order — both burned this project before (the
//! PR-2/PR-5 NaN lessons in `Objective::score_flow` and
//! `stats::quantile`). Library code in the sim crates must compare
//! floats with `f64::total_cmp`, which is a total order over every bit
//! pattern, NaN included.
//!
//! The rule flags *method calls* (`.partial_cmp`); implementing the
//! `PartialOrd` trait (`fn partial_cmp`) is of course fine.

use crate::{FileCtx, Rule};

pub(crate) fn rule() -> Rule {
    Rule {
        id: "d3-float-partial-sort",
        summary: ".partial_cmp on floats panics or reorders on NaN — \
                  compare with f64::total_cmp",
        applies: super::sim_crate_src,
        check,
    }
}

fn check(ctx: &FileCtx) -> Vec<(u32, String)> {
    let code: Vec<_> = ctx.code_tokens().collect();
    let mut out = Vec::new();
    for (k, (_, t)) in code.iter().enumerate() {
        if t.is_ident("partial_cmp") && k > 0 && code[k - 1].1.is_punct('.') {
            out.push((
                t.line,
                "`.partial_cmp` is not a total order (NaN): sort/select with \
                 `f64::total_cmp` instead"
                    .to_string(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::rules::testutil::{lines_of, scan};

    #[test]
    fn flags_sort_by_partial_cmp() {
        let src = "\
fn f(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs
}
";
        let d = scan(src);
        assert_eq!(lines_of(&d, "d3-float-partial-sort"), vec![2]);
    }

    #[test]
    fn flags_max_by_partial_cmp() {
        let src = "fn f(xs: &[f64]) -> Option<&f64> {\n    xs.iter().max_by(|a, b| a.partial_cmp(b).expect(\"no NaN\"))\n}\n";
        let d = scan(src);
        assert_eq!(lines_of(&d, "d3-float-partial-sort"), vec![2]);
    }

    #[test]
    fn total_cmp_is_clean() {
        let src = "fn f(mut xs: Vec<f64>) { xs.sort_by(f64::total_cmp); }\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn implementing_partial_ord_is_clean() {
        let src = "\
use std::cmp::Ordering;
struct E(u64);
impl PartialOrd for E {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.0.cmp(&other.0))
    }
}
impl PartialEq for E {
    fn eq(&self, other: &Self) -> bool { self.0 == other.0 }
}
";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let mut xs = vec![1.0f64];
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    }
}
";
        assert!(scan(src).is_empty());
    }
}
