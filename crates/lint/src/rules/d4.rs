//! **d4-unsafe-safety-comment** — every `unsafe` carries a `// SAFETY:`
//! comment.
//!
//! The arena/wheel hot path is exactly where an `unsafe` shortcut will
//! eventually be proposed (slot access without the generation check,
//! uninitialized slab growth). This rule does not ban `unsafe`; it bans
//! *undocumented* `unsafe`: the block or fn must be immediately preceded
//! by a comment containing `SAFETY:` stating the invariant that makes it
//! sound — the same contract clippy's `undocumented_unsafe_blocks`
//! enforces, available here without crates.io.
//!
//! Unlike the determinism rules, this one applies to **all** code in the
//! workspace — shims, benches, and tests included — because a memory bug
//! in test scaffolding corrupts the evidence the suites produce.

use crate::lexer::TokKind;
use crate::{FileCtx, Rule};

pub(crate) fn rule() -> Rule {
    Rule {
        id: "d4-unsafe-safety-comment",
        summary: "`unsafe` without an immediately preceding `// SAFETY:` comment \
                  stating the invariant that makes it sound",
        applies: |_| true,
        check,
    }
}

fn check(ctx: &FileCtx) -> Vec<(u32, String)> {
    // This rule deliberately ignores the test mask: unsafe in tests
    // needs its invariant written down too.
    let mut out = Vec::new();
    for (i, t) in ctx.toks.iter().enumerate() {
        if !(t.kind == TokKind::Ident && t.text == "unsafe") {
            continue;
        }
        // Line of the previous code token (file start counts as line 0):
        // a SAFETY comment must sit strictly between it and the `unsafe`.
        let prev_code_line = ctx.toks[..i]
            .iter()
            .rev()
            .find(|p| p.kind != TokKind::Comment)
            .map(|p| p.line)
            .unwrap_or(0);
        let documented = ctx.toks[..i].iter().rev().any(|p| {
            p.kind == TokKind::Comment && p.line >= prev_code_line && p.text.contains("SAFETY:")
        });
        if !documented {
            out.push((
                t.line,
                "`unsafe` without a `// SAFETY:` comment; document the invariant \
                 that makes this sound directly above it"
                    .to_string(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::rules::testutil::{lines_of, scan};

    #[test]
    fn flags_undocumented_unsafe_block() {
        let src = "\
fn f(p: *const u8) -> u8 {
    unsafe { *p }
}
";
        let d = scan(src);
        assert_eq!(lines_of(&d, "d4-unsafe-safety-comment"), vec![2]);
    }

    #[test]
    fn safety_comment_directly_above_is_accepted() {
        let src = "\
fn f(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` points into the live slab; the
    // generation check above proves the slot was not recycled.
    unsafe { *p }
}
";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn trailing_safety_on_same_line_as_previous_code_counts() {
        let src = "\
fn f(p: *const u8) -> u8 {
    let q = p; // SAFETY: q is p, non-null by construction above
    unsafe { *q }
}
";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn stale_safety_comment_far_above_does_not_count() {
        let src = "\
// SAFETY: this comment documents something else entirely
fn g() {}
fn f(p: *const u8) -> u8 {
    unsafe { *p }
}
";
        let d = scan(src);
        assert_eq!(lines_of(&d, "d4-unsafe-safety-comment"), vec![4]);
    }

    #[test]
    fn unsafe_fn_and_unsafe_impl_need_comments_too() {
        let src = "\
unsafe fn danger() {}
// SAFETY: Send is sound — the type owns no thread-affine state.
unsafe impl Send for X {}
struct X(*const u8);
";
        let d = scan(src);
        assert_eq!(lines_of(&d, "d4-unsafe-safety-comment"), vec![1]);
    }

    #[test]
    fn applies_even_in_test_code_and_out_of_scope_crates() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x = 0u8;
        let _ = unsafe { *(&x as *const u8) };
    }
}
";
        let d = crate::scan_source("crates/shims/rayon/src/lib.rs", src);
        assert_eq!(lines_of(&d, "d4-unsafe-safety-comment"), vec![6]);
    }

    #[test]
    fn word_unsafe_in_prose_is_ignored() {
        let src = "// this function is not unsafe at all\nfn f() { let unsafe_like = \"unsafe\"; let _ = unsafe_like; }\n";
        assert!(scan(src).is_empty());
    }
}
