//! **d5-shared-state-sim-path** — no locks or atomics in per-event sim
//! code.
//!
//! The zone-partitioned PDES design on the roadmap synchronizes workers
//! by *message passing* with propagation-delay lookahead; results must
//! stay bit-identical at any worker count. A `Mutex` or atomic counter
//! inside the per-event path is how nondeterminism (and lock contention)
//! creeps in: acquisition order becomes a scheduler artifact, and an
//! unordered reduction through shared state can differ run to run. This
//! rule flags shared-state primitives in `netsim`, `congestion`, and
//! `remy` library code **for review** — if one is genuinely needed (a
//! read-only `OnceLock` cache is the classic case), say why with a
//! justified `lint:allow`.
//!
//! `std::sync::mpsc` channels are deliberately *not* flagged: message
//! passing is the sanctioned mechanism.

use crate::{FileCtx, Rule};

const BANNED: [&str; 12] = [
    "Mutex",
    "RwLock",
    "Condvar",
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

pub(crate) fn rule() -> Rule {
    Rule {
        id: "d5-shared-state-sim-path",
        summary: "Mutex/RwLock/atomics in per-event sim code — the PDES design wants \
                  message passing at zone boundaries, not shared locks",
        applies: |p| {
            !crate::is_test_path(p)
                && [
                    "crates/netsim/src/",
                    "crates/congestion/src/",
                    "crates/core/src/",
                ]
                .iter()
                .any(|d| p.starts_with(d))
        },
        check,
    }
}

fn check(ctx: &FileCtx) -> Vec<(u32, String)> {
    ctx.code_tokens()
        .filter(|(_, t)| BANNED.iter().any(|b| t.is_ident(b)))
        .map(|(_, t)| {
            (
                t.line,
                format!(
                    "`{}` introduces shared mutable state into the sim path; \
                     per-event code must stay single-owner (zone workers exchange \
                     messages, not locks)",
                    t.text
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::rules::testutil::{lines_of, scan};

    #[test]
    fn flags_mutex_rwlock_and_atomics() {
        let src = "\
use std::sync::{Mutex, RwLock};
use std::sync::atomic::AtomicU64;
struct S {
    m: Mutex<u64>,
}
";
        let d = scan(src);
        assert_eq!(lines_of(&d, "d5-shared-state-sim-path"), vec![1, 1, 2, 4]);
    }

    #[test]
    fn mpsc_and_oncelock_value_types_are_clean() {
        let src = "\
use std::sync::mpsc;
fn f() {
    let (tx, rx) = mpsc::channel::<u64>();
    tx.send(1).ok();
    let _ = rx.recv();
}
";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn remy_sim_harness_is_out_of_scope() {
        let src = "use std::sync::Mutex;\n";
        assert!(crate::scan_source("crates/remy-sim/src/harness.rs", src).is_empty());
        assert!(crate::scan_source("crates/shims/rayon/src/lib.rs", src).is_empty());
    }

    #[test]
    fn justified_allow_is_honoured() {
        let src = "\
// lint:allow(d5-shared-state-sim-path): write-once cache of the flattened
// tree; contents are a pure function of the table, so order cannot matter.
use std::sync::Mutex;
";
        assert!(scan(src).is_empty());
    }
}
