//! **d6-wallclock-serialization** — no wall-clock metadata in serialized
//! results.
//!
//! Golden specs, trained tables, and experiment CSVs are compared
//! byte-for-byte by the spec gate and the determinism suites. One
//! `"generated_at": <now>` field in a serializer and every golden churns
//! on every run — the classic way reproducibility checks rot into
//! `--force` updates. This rule bans date/timestamp-like **field names**
//! in string literals of serialization-bearing library code (`netsim`,
//! `remy-sim`, `remy`): if a document needs provenance, record inputs
//! (seeds, budgets, rule counts — as `WhiskerTree::provenance` does),
//! never the time the run happened.

use crate::lexer::TokKind;
use crate::{FileCtx, Rule};

/// Field names that would embed the run's wall-clock identity.
const BANNED_FIELDS: [&str; 10] = [
    "date",
    "datetime",
    "timestamp",
    "generated_at",
    "created_at",
    "wall_time",
    "walltime",
    "wall_clock",
    "hostname",
    "build_time",
];

pub(crate) fn rule() -> Rule {
    Rule {
        id: "d6-wallclock-serialization",
        summary: "date/timestamp-like field name in a serialized document — results \
                  must be byte-stable across runs; record seeds and budgets instead",
        applies: |p| {
            !crate::is_test_path(p)
                && [
                    "crates/netsim/src/",
                    "crates/remy-sim/src/",
                    "crates/core/src/",
                ]
                .iter()
                .any(|d| p.starts_with(d))
        },
        check,
    }
}

fn check(ctx: &FileCtx) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.test_mask[i] || t.kind != TokKind::Str {
            continue;
        }
        let lower = t.text.to_ascii_lowercase();
        for field in BANNED_FIELDS {
            if contains_word(&lower, field) {
                out.push((
                    t.line,
                    format!(
                        "field name \"{field}\" leaks wall-clock identity into a \
                         serialized document; goldens must be byte-stable — record \
                         seeds/budgets, not run time"
                    ),
                ));
            }
        }
    }
    out
}

/// True when `word` occurs in `s` delimited by non-identifier characters
/// (so `"update"` does not trip on `date`, but `"\"generated_at\": "`
/// does on `generated_at`).
fn contains_word(s: &str, word: &str) -> bool {
    let bytes = s.as_bytes();
    let mut from = 0;
    while let Some(pos) = s[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let ok_before =
            start == 0 || !(bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_');
        let ok_after =
            end == s.len() || !(bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_');
        if ok_before && ok_after {
            return true;
        }
        from = start + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use crate::rules::testutil::{lines_of, scan};

    #[test]
    fn flags_timestampish_field_names() {
        let src = "\
fn to_json() -> String {
    let mut s = String::new();
    s.push_str(\"timestamp\");
    s.push_str(\"generated_at\");
    s
}
";
        let d = scan(src);
        assert_eq!(lines_of(&d, "d6-wallclock-serialization"), vec![3, 4]);
    }

    #[test]
    fn flags_fields_embedded_in_json_fragments() {
        let src = "\
fn to_json() -> String {
    let mut s = String::from(\"{\");
    s.push_str(\", \\\"generated_at\\\": 0\");
    s
}
";
        let d = scan(src);
        assert_eq!(lines_of(&d, "d6-wallclock-serialization"), vec![3]);
    }

    #[test]
    fn word_boundaries_prevent_substring_hits() {
        let src = "\
fn f() -> &'static str {
    \"update the candidate; consolidate the estimate\"
}
";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn ordinary_field_names_are_clean() {
        let src = "\
fn to_json() -> String {
    let fields = [\"seed\", \"runs\", \"sim_secs\", \"mean_throughput_mbps\"];
    fields.join(\",\")
}
";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn prose_mentioning_dates_is_clean() {
        let src = "// the date of the paper is 2013; timestamp discussion in prose\nfn f() {}\n";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn congestion_crate_is_out_of_scope() {
        let src = "fn f() -> &'static str { \"timestamp\" }\n";
        assert!(crate::scan_source("crates/congestion/src/cubic.rs", src).is_empty());
    }
}
