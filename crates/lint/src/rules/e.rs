//! **E-family** — effect-analysis rules: the machine-checked side of the
//! PDES-partitionability gate.
//!
//! Built on [`crate::effects`]: per-function field-level read/write
//! footprints, propagated over the call graph, classified by the
//! declarative state model (`per_flow`/`per_hop`/`per_zone`/`global`).
//!
//! - `e1-global-write-in-handler` — a function reachable from an
//!   event-loop root ([`crate::effects::HANDLER_ROOTS`]) writes
//!   `global`-bucket state outside the allowlisted commit points. In the
//!   zone-parallel event loop such a write is an ordering hazard: two
//!   zones executing handlers concurrently do not agree on the write
//!   order. One finding per `(function, field)`, anchored at the first
//!   write site, so a single justified allow covers the function's
//!   access pattern as a whole.
//! - `e2-order-sensitive-float-accumulation` — an f64 `+=`/`*=` fold
//!   inside a loop in sim-reachable code. Float addition does not
//!   associate, so the fold's value depends on iteration order; the
//!   justification must name the total order that makes it
//!   deterministic (sorted keys, single-zone ownership, ...).
//! - `e3-unmodeled-state` — a netsim struct field written by
//!   sim-reachable code with no entry in
//!   [`crate::effects::STATE_MODEL`] — the gate that keeps the model
//!   current as the code grows — plus stale exact entries whose field no
//!   longer exists (anchored at the struct declaration).

use crate::effects::{bucket_of, Bucket};
use crate::rules::prs_scope;
use crate::{Analysis, GraphRule};
use std::collections::BTreeSet;

pub(crate) fn rules() -> Vec<GraphRule> {
    vec![
        GraphRule {
            id: "e1-global-write-in-handler",
            summary: "event-handler scope writes global-bucket state outside a \
                      commit point — zones cannot agree on the write order",
            applies: prs_scope,
            check: check_e1,
        },
        GraphRule {
            id: "e2-order-sensitive-float-accumulation",
            summary: "f64 +=/*= fold inside a loop in sim scope — float \
                      addition does not associate; justify the total order",
            applies: prs_scope,
            check: check_e2,
        },
        GraphRule {
            id: "e3-unmodeled-state",
            summary: "sim-mutated netsim struct field missing from the effects \
                      state model (or a stale model entry)",
            applies: netsim_scope,
            check: check_e3,
        },
    ]
}

/// `e3` anchors findings at struct declarations, which live in netsim's
/// library sources (or a fixture scanned under that virtual prefix).
fn netsim_scope(rel_path: &str) -> bool {
    rel_path.starts_with("crates/netsim/src/") && !crate::is_test_path(rel_path)
}

fn check_e1(an: &Analysis, fi: usize) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (di, def) in an.symbols[fi].defs.iter().enumerate() {
        if !an.effects.handler_scope[fi][di] {
            continue;
        }
        let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
        for a in &an.effects.accesses[fi][di] {
            if !a.write || bucket_of(&a.ty, &a.field) != Some(Bucket::Global) {
                continue;
            }
            if !seen.insert((a.ty.clone(), a.field.clone())) {
                continue;
            }
            out.push((
                a.line,
                format!(
                    "`{}` writes global-bucket state `{}.{}` in event-handler \
                     scope — a zone-parallel event loop cannot order this \
                     write; move it behind a commit point \
                     (effects::COMMIT_POINTS) or justify with lint:allow",
                    def.qual_name(),
                    a.ty,
                    a.field
                ),
            ));
        }
    }
    out
}

/// Field names whose declared type mentions `f64`, across the whole
/// workspace — evidence that a `lhs += rhs` fold is a float
/// accumulation.
fn f64_field_names(an: &Analysis) -> BTreeSet<&str> {
    let mut out = BTreeSet::new();
    for s in &an.symbols {
        for st in &s.structs {
            for f in &st.fields {
                if f.ty.contains("f64") {
                    out.insert(f.name.as_str());
                }
            }
        }
    }
    out
}

/// Raw-token spans of every `for`/`while`/`loop` body in the file, as
/// `(open token, close token)` pairs.
fn loop_spans(an: &Analysis, fi: usize) -> Vec<(usize, usize)> {
    let ctx = &an.files[fi];
    let code: Vec<usize> = ctx.code_tokens().map(|(i, _)| i).collect();
    let mut spans = Vec::new();
    let mut k = 0usize;
    while k < code.len() {
        let t = &ctx.toks[code[k]];
        if !(t.is_ident("for") || t.is_ident("while") || t.is_ident("loop")) {
            k += 1;
            continue;
        }
        // The body: from the next `{` at delimiter depth 0 to its match.
        let mut j = k + 1;
        let mut depth = 0i32;
        while j < code.len() {
            let t = &ctx.toks[code[j]];
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                depth -= 1;
            } else if depth == 0 && t.is_punct('{') {
                break;
            }
            j += 1;
        }
        let open = j;
        let mut brace = 0i32;
        while j < code.len() {
            let t = &ctx.toks[code[j]];
            if t.is_punct('{') {
                brace += 1;
            } else if t.is_punct('}') {
                brace -= 1;
                if brace == 0 {
                    break;
                }
            }
            j += 1;
        }
        if open < code.len() {
            spans.push((code[open], code[j.min(code.len() - 1)]));
        }
        k = open + 1;
    }
    spans
}

fn check_e2(an: &Analysis, fi: usize) -> Vec<(u32, String)> {
    let spans = loop_spans(an, fi);
    if spans.is_empty() {
        return Vec::new();
    }
    let f64_fields = f64_field_names(an);
    // Declared-type evidence for direct single-step accesses.
    let declared_f64 = |ty: &str, field: &str| {
        an.symbols.iter().any(|s| {
            s.structs.iter().any(|st| {
                st.name == ty
                    && st
                        .fields
                        .iter()
                        .any(|f| f.name == field && f.ty.contains("f64"))
            })
        })
    };
    let mut out = Vec::new();
    for (di, _) in an.symbols[fi].defs.iter().enumerate() {
        if !an.reachable[fi][di] {
            continue;
        }
        for a in &an.effects.accesses[fi][di] {
            if !a.write || !a.compound {
                continue;
            }
            // Per-flow/per-hop folds are ordered by their owner's own
            // event sequence; the hazard is accumulation into state
            // merged across owners (per_zone) or shared (global).
            if !matches!(
                bucket_of(&a.ty, &a.field),
                Some(Bucket::PerZone | Bucket::Global)
            ) {
                continue;
            }
            if !spans.iter().any(|&(o, c)| a.tok > o && a.tok < c) {
                continue;
            }
            if !declared_f64(&a.ty, &a.field) && !f64_fields.contains(a.leaf.as_str()) {
                continue;
            }
            out.push((
                a.line,
                format!(
                    "f64 accumulation into `{}.{}` inside a loop in sim scope \
                     — float addition does not associate, so the result \
                     depends on iteration order; document the total order \
                     that makes this deterministic with lint:allow",
                    a.ty, a.field
                ),
            ));
        }
    }
    out.sort();
    out.dedup();
    out
}

fn check_e3(an: &Analysis, fi: usize) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for st in &an.symbols[fi].structs {
        if st.is_test {
            continue;
        }
        for f in &st.fields {
            let key = (st.name.clone(), f.name.clone());
            if bucket_of(&st.name, &f.name).is_some() {
                continue;
            }
            if let Some(&(wfi, wline, ref via)) = an.effects.written.get(&key) {
                out.push((
                    f.line,
                    format!(
                        "sim-mutated field `{}.{}` has no state-model entry \
                         (written at {}:{} by `{via}`) — classify it in \
                         effects::STATE_MODEL (per_flow/per_hop/per_zone/global)",
                        st.name, f.name, an.files[wfi].path, wline
                    ),
                ));
            }
        }
        // Stale exact entries: the model names a field this struct no
        // longer has (and no other declaration of the type has either).
        let stale: Vec<&str> = crate::effects::STATE_MODEL
            .iter()
            .filter(|&&(ty, field, _)| {
                ty == st.name
                    && field != "*"
                    && !an.symbols.iter().any(|s| {
                        s.structs
                            .iter()
                            .any(|o| o.name == ty && o.fields.iter().any(|f| f.name == field))
                    })
            })
            .map(|&(_, field, _)| field)
            .collect();
        if !stale.is_empty() {
            out.push((
                st.line,
                format!(
                    "stale state-model entries for `{}`: {} — the fields no \
                     longer exist; remove or rename them in effects::STATE_MODEL",
                    st.name,
                    stale.join(", ")
                ),
            ));
        }
    }
    out
}
