//! The rule set, one module per rule.
//!
//! Each rule declares a path scope (`applies`) over workspace-relative
//! paths and a token-level check. Scopes are deliberately conservative:
//! deny-by-default inside the crates where determinism is load-bearing,
//! silent elsewhere (`crates/bench` measures wall-clock on purpose; the
//! shims reimplement threaded libraries and own their synchronization).
//!
//! All rules except [`d4`] skip test code — `#[cfg(test)]` items and
//! anything under a `tests/`, `benches/`, or `examples/` directory —
//! because tests legitimately use wall-clock-free shortcuts the library
//! must not.

pub mod d1;
pub mod d2;
pub mod d3;
pub mod d4;
pub mod d5;
pub mod d6;
pub mod e;
pub mod p;
pub mod r;
pub mod s;

use crate::{GraphRule, Rule};

/// Every token-level (D-family) rule, in id order.
pub fn all() -> Vec<Rule> {
    vec![
        d1::rule(),
        d2::rule(),
        d3::rule(),
        d4::rule(),
        d5::rule(),
        d6::rule(),
    ]
}

/// Every call-graph-aware (P/R/S/E-family) rule, in id order.
pub fn graph_rules() -> Vec<GraphRule> {
    let mut out = p::rules();
    out.extend(r::rules());
    out.extend(s::rules());
    out.extend(e::rules());
    out
}

/// True when `rel_path` is library/binary source of one of the crates
/// where simulation determinism is load-bearing.
pub fn sim_crate_src(rel_path: &str) -> bool {
    !crate::is_test_path(rel_path)
        && [
            "crates/netsim/src/",
            "crates/congestion/src/",
            "crates/core/src/",
            "crates/remy-sim/src/",
            "crates/traces/src/",
        ]
        .iter()
        .any(|p| rel_path.starts_with(p))
}

/// Path pre-filter for the call-graph (P/R/S) families: any crate
/// library source except the shims (reimplement threaded libraries on
/// purpose), the lint crate itself, the bench harness, and CLI `bin/`
/// entry shims (startup code — argument parsing may panic freely; it
/// runs before any simulation). The *fine* filter is reachability.
pub fn prs_scope(rel_path: &str) -> bool {
    !crate::is_test_path(rel_path)
        && rel_path.starts_with("crates/")
        && rel_path.contains("/src/")
        && !rel_path.contains("/src/bin/")
        && !rel_path.starts_with("crates/shims/")
        && !rel_path.starts_with("crates/lint/")
        && !rel_path.starts_with("crates/bench/")
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::{scan_source, Diagnostic};

    /// Scan `src` as library code of `netsim` (in scope for every rule).
    pub fn scan(src: &str) -> Vec<Diagnostic> {
        scan_source("crates/netsim/src/under_test.rs", src)
    }

    /// Lines on which `rule` fired.
    pub fn lines_of(diags: &[Diagnostic], rule: &str) -> Vec<u32> {
        diags
            .iter()
            .filter(|d| d.rule == rule)
            .map(|d| d.line)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn rule_ids_are_unique_and_kebab() {
        let ids: Vec<(&str, &str)> = super::all()
            .iter()
            .map(|r| (r.id, r.summary))
            .chain(super::graph_rules().iter().map(|r| (r.id, r.summary)))
            .collect();
        for (i, (id, summary)) in ids.iter().enumerate() {
            assert!(
                id.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "{id} not kebab-case"
            );
            assert!(!summary.is_empty());
            for (other, _) in &ids[i + 1..] {
                assert_ne!(id, other);
            }
        }
        assert_eq!(super::all().len(), 6);
        assert_eq!(super::graph_rules().len(), 11);
    }

    #[test]
    fn prs_scope_covers_sim_crates_not_harness_infra() {
        assert!(super::prs_scope("crates/netsim/src/sim.rs"));
        assert!(super::prs_scope("crates/core/src/evaluator.rs"));
        assert!(super::prs_scope("crates/remy-sim/src/harness.rs"));
        assert!(!super::prs_scope("crates/shims/rayon/src/lib.rs"));
        assert!(!super::prs_scope("crates/lint/src/lib.rs"));
        assert!(!super::prs_scope("crates/bench/src/lib.rs"));
        assert!(!super::prs_scope("crates/remy-sim/src/bin/remy_cli.rs"));
        assert!(!super::prs_scope("crates/netsim/tests/equivalence.rs"));
    }
}
