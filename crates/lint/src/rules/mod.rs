//! The rule set, one module per rule.
//!
//! Each rule declares a path scope (`applies`) over workspace-relative
//! paths and a token-level check. Scopes are deliberately conservative:
//! deny-by-default inside the crates where determinism is load-bearing,
//! silent elsewhere (`crates/bench` measures wall-clock on purpose; the
//! shims reimplement threaded libraries and own their synchronization).
//!
//! All rules except [`d4`] skip test code — `#[cfg(test)]` items and
//! anything under a `tests/`, `benches/`, or `examples/` directory —
//! because tests legitimately use wall-clock-free shortcuts the library
//! must not.

pub mod d1;
pub mod d2;
pub mod d3;
pub mod d4;
pub mod d5;
pub mod d6;

use crate::Rule;

/// Every rule, in id order.
pub fn all() -> Vec<Rule> {
    vec![
        d1::rule(),
        d2::rule(),
        d3::rule(),
        d4::rule(),
        d5::rule(),
        d6::rule(),
    ]
}

/// True when `rel_path` is library/binary source of one of the crates
/// where simulation determinism is load-bearing.
pub(crate) fn sim_crate_src(rel_path: &str) -> bool {
    !crate::is_test_path(rel_path)
        && [
            "crates/netsim/src/",
            "crates/congestion/src/",
            "crates/core/src/",
            "crates/remy-sim/src/",
            "crates/traces/src/",
        ]
        .iter()
        .any(|p| rel_path.starts_with(p))
}

#[cfg(test)]
pub(crate) mod testutil {
    use crate::{scan_source, Diagnostic};

    /// Scan `src` as library code of `netsim` (in scope for every rule).
    pub fn scan(src: &str) -> Vec<Diagnostic> {
        scan_source("crates/netsim/src/under_test.rs", src)
    }

    /// Lines on which `rule` fired.
    pub fn lines_of(diags: &[Diagnostic], rule: &str) -> Vec<u32> {
        diags
            .iter()
            .filter(|d| d.rule == rule)
            .map(|d| d.line)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn rule_ids_are_unique_and_kebab() {
        let rules = super::all();
        for (i, r) in rules.iter().enumerate() {
            assert!(
                r.id.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "{} not kebab-case",
                r.id
            );
            assert!(!r.summary.is_empty());
            for other in &rules[i + 1..] {
                assert_ne!(r.id, other.id);
            }
        }
        assert_eq!(rules.len(), 6);
    }
}
