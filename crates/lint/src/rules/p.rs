//! **P-family** — panic-safety in sim-reachable code.
//!
//! The zone-partitioned PDES design (ROADMAP item 1) will run event
//! handlers on worker threads; a panic there is no longer a clean crash
//! with a backtrace but a poisoned worker and a hung or torn simulation.
//! These rules flag the panic *sources* in any function reachable from
//! the simulation entry points ([`crate::callgraph::ROOTS`]):
//!
//! - `p1-sim-unwrap` — `.unwrap()` / `.expect(..)`,
//! - `p2-sim-panic` — `panic!` / `unreachable!` / `todo!` /
//!   `unimplemented!` macro invocations,
//! - `p3-sim-index-arith` — indexing whose subscript performs `+ - * / %`
//!   arithmetic (`buf[i - 1]`, `q[head + n]`): the off-by-one panic
//!   class. Plain handle indexing (`arena[id]`, generational-checked) is
//!   deliberately *not* flagged — panicking on a stale handle is the
//!   arena discipline, backstopped at runtime by the strict-invariants
//!   and overflow-checks CI lanes.
//!
//! `assert!`/`debug_assert!` stay legal everywhere: construction-time
//! validation and the cfg-gated strict-invariants checks are how
//! invariants are *supposed* to be written.
//!
//! The fix ladder, in order of preference: restructure so the invariant
//! holds by type; `let .. else` + `debug_assert!` + skip (the FlowTable
//! "tolerate stale handles" discipline); a justified `lint:allow` where
//! a panic genuinely is the right response to a corrupted simulation.

use crate::lexer::TokKind;
use crate::rules::prs_scope;
use crate::{Analysis, GraphRule};

pub(crate) fn rules() -> Vec<GraphRule> {
    vec![
        GraphRule {
            id: "p1-sim-unwrap",
            summary: "`.unwrap()`/`.expect()` in a sim-reachable function — a future \
                      PDES worker panics instead of failing the run cleanly",
            applies: prs_scope,
            check: check_p1,
        },
        GraphRule {
            id: "p2-sim-panic",
            summary: "`panic!`/`unreachable!`/`todo!`/`unimplemented!` in a \
                      sim-reachable function",
            applies: prs_scope,
            check: check_p2,
        },
        GraphRule {
            id: "p3-sim-index-arith",
            summary: "indexing with arithmetic in the subscript in a sim-reachable \
                      function — the off-by-one panic class; use checked math or `.get`",
            applies: prs_scope,
            check: check_p3,
        },
    ]
}

fn check_p1(an: &Analysis, fi: usize) -> Vec<(u32, String)> {
    let ctx = &an.files[fi];
    let code: Vec<usize> = ctx.code_tokens().map(|(i, _)| i).collect();
    let mut out = Vec::new();
    for (k, &i) in code.iter().enumerate() {
        let t = &ctx.toks[i];
        if !(t.is_ident("unwrap") || t.is_ident("expect")) {
            continue;
        }
        let is_method_call = k >= 1
            && ctx.toks[code[k - 1]].is_punct('.')
            && code.get(k + 1).is_some_and(|&j| ctx.toks[j].is_punct('('));
        if !is_method_call || !an.token_in_reachable_fn(fi, i) {
            continue;
        }
        let owner = an
            .owner_def(fi, i)
            .map(|d| d.qual_name())
            .unwrap_or_default();
        out.push((
            t.line,
            format!(
                "`.{}()` in `{}`, which is reachable from the simulation \
                 entry points — convert to a typed error or `debug_assert!`+skip, \
                 or justify with lint:allow",
                t.text, owner
            ),
        ));
    }
    out
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

fn check_p2(an: &Analysis, fi: usize) -> Vec<(u32, String)> {
    let ctx = &an.files[fi];
    let code: Vec<usize> = ctx.code_tokens().map(|(i, _)| i).collect();
    let mut out = Vec::new();
    for (k, &i) in code.iter().enumerate() {
        let t = &ctx.toks[i];
        if !PANIC_MACROS.iter().any(|m| t.is_ident(m)) {
            continue;
        }
        if !code.get(k + 1).is_some_and(|&j| ctx.toks[j].is_punct('!')) {
            continue;
        }
        if !an.token_in_reachable_fn(fi, i) {
            continue;
        }
        let owner = an
            .owner_def(fi, i)
            .map(|d| d.qual_name())
            .unwrap_or_default();
        out.push((
            t.line,
            format!(
                "`{}!` in sim-reachable `{}` — a PDES worker must not panic; \
                 return an error, skip the event, or justify with lint:allow",
                t.text, owner
            ),
        ));
    }
    out
}

fn check_p3(an: &Analysis, fi: usize) -> Vec<(u32, String)> {
    let ctx = &an.files[fi];
    let code: Vec<usize> = ctx.code_tokens().map(|(i, _)| i).collect();
    let mut out = Vec::new();
    for (k, &i) in code.iter().enumerate() {
        let t = &ctx.toks[i];
        if !t.is_punct('[') {
            continue;
        }
        // Only *index expressions*: `expr[..]` — the token before the
        // bracket closes or names a value. `#[attr]`, array literals,
        // `vec![..]`, and type positions don't match.
        let is_index = k >= 1 && {
            let p = &ctx.toks[code[k - 1]];
            p.kind == TokKind::Ident && !p.is_ident("mut") && !p.is_ident("return")
                || p.is_punct(']')
                || p.is_punct(')')
        };
        if !is_index || !an.token_in_reachable_fn(fi, i) {
            continue;
        }
        // Scan the balanced subscript for a binary arithmetic operator.
        let mut depth = 0i32;
        let mut j = k;
        let mut arith: Option<String> = None;
        while j < code.len() {
            let s = &ctx.toks[code[j]];
            if s.is_punct('[') || s.is_punct('(') {
                depth += 1;
            } else if s.is_punct(']') || s.is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if arith.is_none()
                && matches!(s.text.as_str(), "+" | "-" | "*" | "/" | "%")
                && s.kind == TokKind::Punct
                && j > k + 1
            {
                // Binary position only: preceded by a value-ish token
                // (`a[*p]` deref and `a[-…]`-style unary don't count).
                let p = &ctx.toks[code[j - 1]];
                if p.kind == TokKind::Ident
                    || p.kind == TokKind::Num
                    || p.is_punct(')')
                    || p.is_punct(']')
                {
                    arith = Some(s.text.clone());
                }
            }
            j += 1;
        }
        if let Some(op) = arith {
            let owner = an
                .owner_def(fi, i)
                .map(|d| d.qual_name())
                .unwrap_or_default();
            out.push((
                t.line,
                format!(
                    "subscript arithmetic (`{op}`) in an index expression in \
                     sim-reachable `{owner}` — off-by-one here panics a PDES \
                     worker; use checked arithmetic + `.get(..)` or justify \
                     with lint:allow",
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::rules::testutil::{lines_of, scan};

    #[test]
    fn p1_fires_only_in_reachable_fns() {
        let src = "\
impl Simulator {
    pub fn run(self) { self.step(); }
    fn step(&self) { let x = self.q.pop().unwrap(); }
}
fn dead() { let y = maybe().expect(\"fine, unreachable\"); }
";
        let d = scan(src);
        assert_eq!(lines_of(&d, "p1-sim-unwrap"), vec![3], "{d:#?}");
    }

    #[test]
    fn p1_ignores_unwrap_or_family_and_bare_idents() {
        let src = "\
impl Simulator {
    pub fn run(self) {
        let a = self.q.pop().unwrap_or(0);
        let b = self.q.pop().unwrap_or_else(|| 0);
        let unwrap = 3;
        let _ = (a, b, unwrap);
    }
}
";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn p2_fires_on_panic_macros_not_asserts() {
        let src = "\
impl Simulator {
    pub fn run(self) {
        assert!(self.ok());
        debug_assert!(self.ok());
        if self.bad() { panic!(\"corrupt\"); }
        match self.kind { 0 => {} _ => unreachable!() }
    }
}
";
        let d = scan(src);
        assert_eq!(lines_of(&d, "p2-sim-panic"), vec![5, 6], "{d:#?}");
    }

    #[test]
    fn p3_fires_on_subscript_arithmetic_only() {
        let src = "\
impl Simulator {
    pub fn run(self) {
        let a = self.buf[self.head];
        let b = self.buf[self.head - 1];
        let c = self.ring[(self.head + n) % len];
        let d = self.arena[*idx];
        let e = [0u8; 4];
        let f = &self.buf[..n];
        let _ = (a, b, c, d, e, f);
    }
}
";
        let d = scan(src);
        assert_eq!(lines_of(&d, "p3-sim-index-arith"), vec![4, 5], "{d:#?}");
    }

    #[test]
    fn justified_allow_suppresses_p_rules() {
        let src = "\
impl Simulator {
    pub fn run(self) {
        // lint:allow(p1-sim-unwrap): validated at construction; absence here
        // is a corrupted-simulation invariant violation, panic is correct.
        let x = self.q.pop().unwrap();
        let _ = x;
    }
}
";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn unreachable_file_is_clean() {
        let src = "fn helper() { let x = maybe().unwrap(); panic!(\"x\"); }";
        assert!(scan(src).is_empty());
    }
}
