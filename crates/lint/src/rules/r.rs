//! **R-family** — RNG-stream hygiene in sim-reachable code.
//!
//! Determinism here means more than "seeded": every consumer must draw
//! from its *own* derived stream (`SimRng::fork` / `SimRng::split_seed`)
//! so that adding a flow, reordering initialization, or sharding work
//! across PDES zones never shifts anyone else's random sequence. Two
//! failure shapes have bitten before (PR 3 fixed a hand-found stream
//! collision):
//!
//! - `r1-rng-stream-collision` — the same `(receiver/base, stream id)`
//!   pair derived twice in one function: both consumers get the *same*
//!   sequence, silently correlating arrivals with sizes (or whatever
//!   the two draws feed).
//! - `r2-rng-underived-seed` — `SimRng::new(..)` fed by ad-hoc seed
//!   arithmetic (`seed ^ 0xBEEF`, literals): an unregistered stream the
//!   collision audit cannot see. Derive through `fork`/`split_seed`
//!   instead, or justify why this site *is* a derivation primitive.
//!
//! Both rules are syntactic over token sequences within one function —
//! cross-function collisions are out of reach without value tracking,
//! but the within-scope case is exactly the bug class that occurs in
//! practice (copy-pasted derivations).

use crate::lexer::TokKind;
use crate::rules::prs_scope;
use crate::{Analysis, GraphRule};
use std::collections::BTreeMap;

pub(crate) fn rules() -> Vec<GraphRule> {
    vec![
        GraphRule {
            id: "r1-rng-stream-collision",
            summary: "same (rng, stream id) derived twice in one sim-reachable \
                      function — both consumers draw the same sequence",
            applies: prs_scope,
            check: check_r1,
        },
        GraphRule {
            id: "r2-rng-underived-seed",
            summary: "SimRng::new over ad-hoc seed arithmetic/literals in \
                      sim-reachable code — derive streams via fork/split_seed",
            applies: prs_scope,
            check: check_r2,
        },
    ]
}

/// Token texts of one top-level argument list, split at top-level
/// commas. `code[k]` must be the opening `(`. Returns (args, end index).
fn split_args(ctx: &crate::FileCtx, code: &[usize], k: usize) -> (Vec<String>, usize) {
    let mut args: Vec<String> = Vec::new();
    let mut cur = String::new();
    let mut depth = 0i32;
    let mut j = k;
    while j < code.len() {
        let t = &ctx.toks[code[j]];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
            if depth > 1 {
                push_tok(&mut cur, &t.text);
            }
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
            push_tok(&mut cur, &t.text);
        } else if depth == 1 && t.is_punct(',') {
            args.push(std::mem::take(&mut cur));
        } else {
            push_tok(&mut cur, &t.text);
        }
        j += 1;
    }
    if !cur.is_empty() {
        args.push(cur);
    }
    (args, j)
}

fn push_tok(s: &mut String, text: &str) {
    if !s.is_empty() {
        s.push(' ');
    }
    s.push_str(text);
}

/// The receiver chain before a `.method(` call: walk back over
/// `ident`/`.` tokens (`self.rng.fork(..)` → `self . rng`).
fn receiver_chain(ctx: &crate::FileCtx, code: &[usize], dot_k: usize) -> String {
    let mut parts: Vec<&str> = Vec::new();
    let mut j = dot_k; // index of the `.` before the method name
    loop {
        if j == 0 {
            break;
        }
        let prev = &ctx.toks[code[j - 1]];
        if prev.kind == TokKind::Ident {
            parts.push(&prev.text);
            j -= 1;
            if j == 0 || !ctx.toks[code[j - 1]].is_punct('.') {
                break;
            }
            j -= 1; // consume the `.` and continue the chain
        } else {
            break;
        }
    }
    parts.reverse();
    parts.join(" . ")
}

fn check_r1(an: &Analysis, fi: usize) -> Vec<(u32, String)> {
    let ctx = &an.files[fi];
    let code: Vec<usize> = ctx.code_tokens().map(|(i, _)| i).collect();
    let mut out = Vec::new();
    // (owner def, kind, receiver/base, stream) → first line seen.
    let mut seen: BTreeMap<(usize, &'static str, String, String), u32> = BTreeMap::new();
    for (k, &i) in code.iter().enumerate() {
        let t = &ctx.toks[i];
        let is_fork = t.is_ident("fork");
        let is_split = t.is_ident("split_seed");
        if !is_fork && !is_split {
            continue;
        }
        if !code.get(k + 1).is_some_and(|&j| ctx.toks[j].is_punct('(')) {
            continue;
        }
        let Some(owner) = an.symbols[fi].owner.get(i).copied().flatten() else {
            continue;
        };
        if !an.reachable[fi][owner] {
            continue;
        }
        let (args, _) = split_args(ctx, &code, k + 1);
        let key = if is_fork {
            if k == 0 || !ctx.toks[code[k - 1]].is_punct('.') {
                continue; // not a method call on an rng
            }
            let recv = receiver_chain(ctx, &code, k - 1);
            let Some(stream) = args.first() else { continue };
            (owner, "fork", recv, stream.clone())
        } else {
            // split_seed(base, stream) — free or `SimRng::`-qualified.
            if args.len() < 2 {
                continue;
            }
            (owner, "split_seed", args[0].clone(), args[1].clone())
        };
        match seen.get(&key) {
            None => {
                seen.insert(key, t.line);
            }
            Some(first) => {
                let qual = an.symbols[fi].defs[owner].qual_name();
                out.push((
                    t.line,
                    format!(
                        "stream id `{}` derived from `{}` twice in `{}` (first at \
                         line {first}) — both consumers draw the identical sequence; \
                         give each consumer its own stream id",
                        key.3, key.2, qual
                    ),
                ));
            }
        }
    }
    out
}

fn check_r2(an: &Analysis, fi: usize) -> Vec<(u32, String)> {
    let ctx = &an.files[fi];
    let code: Vec<usize> = ctx.code_tokens().map(|(i, _)| i).collect();
    let mut out = Vec::new();
    for (k, &i) in code.iter().enumerate() {
        // `SimRng :: new (`
        if !ctx.toks[i].is_ident("SimRng") {
            continue;
        }
        let is_new_call = code.get(k + 1).is_some_and(|&j| ctx.toks[j].is_punct(':'))
            && code.get(k + 2).is_some_and(|&j| ctx.toks[j].is_punct(':'))
            && code
                .get(k + 3)
                .is_some_and(|&j| ctx.toks[j].is_ident("new"))
            && code.get(k + 4).is_some_and(|&j| ctx.toks[j].is_punct('('));
        if !is_new_call || !an.token_in_reachable_fn(fi, i) {
            continue;
        }
        let (args, _) = split_args(ctx, &code, k + 4);
        let Some(arg) = args.first() else { continue };
        let toks: Vec<&str> = arg.split(' ').collect();
        let has_arith = toks.iter().any(|t| {
            matches!(
                *t,
                "^" | "+" | "-" | "*" | "/" | "%" | "|" | "&" | "<" | ">"
            )
        });
        let is_literal =
            toks.len() == 1 && toks[0].chars().next().is_some_and(|c| c.is_ascii_digit());
        if !has_arith && !is_literal {
            continue;
        }
        let owner = an
            .owner_def(fi, i)
            .map(|d| d.qual_name())
            .unwrap_or_default();
        let what = if is_literal {
            "a literal seed"
        } else {
            "ad-hoc seed arithmetic"
        };
        out.push((
            ctx.toks[i].line,
            format!(
                "`SimRng::new` over {what} in sim-reachable `{owner}` — this \
                 creates a stream the fork/split_seed collision audit cannot \
                 see; derive it (`rng.fork(STREAM)` / `SimRng::split_seed`) or \
                 justify with lint:allow",
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::rules::testutil::{lines_of, scan};

    #[test]
    fn r1_flags_duplicate_fork_streams_same_receiver() {
        let src = "\
impl Simulator {
    pub fn run(mut self) {
        let a = self.rng.fork(3);
        let b = self.rng.fork(4);
        let c = self.rng.fork(3);
        let _ = (a, b, c);
    }
}
";
        let d = scan(src);
        assert_eq!(lines_of(&d, "r1-rng-stream-collision"), vec![5], "{d:#?}");
    }

    #[test]
    fn r1_different_receivers_or_fns_are_clean() {
        let src = "\
impl Simulator {
    pub fn run(mut self) {
        let a = self.rng.fork(3);
        let b = self.aux.fork(3);
        let _ = (a, b);
        self.helper();
    }
    fn helper(&mut self) {
        let c = self.rng.fork(3);
        let _ = c;
    }
}
";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn r1_flags_duplicate_split_seed_pairs() {
        let src = "\
impl Simulator {
    pub fn run(mut self) {
        let a = SimRng::split_seed(self.seed, 7);
        let b = SimRng::split_seed(self.seed, 7);
        let c = SimRng::split_seed(self.seed, 8);
        let _ = (a, b, c);
    }
}
";
        let d = scan(src);
        assert_eq!(lines_of(&d, "r1-rng-stream-collision"), vec![4], "{d:#?}");
    }

    #[test]
    fn r1_unreachable_fn_is_clean() {
        let src = "\
fn dead(rng: &mut SimRng) {
    let a = rng.fork(1);
    let b = rng.fork(1);
    let _ = (a, b);
}
";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn r2_flags_xor_mixing_and_literals() {
        let src = "\
impl Simulator {
    pub fn run(self, seed: u64) {
        let a = SimRng::new(seed ^ 0x5EED);
        let b = SimRng::new(0x12ED_D00D);
        let c = SimRng::new(seed);
        let d = SimRng::new(derive(seed, 3));
        let _ = (a, b, c, d);
    }
}
";
        let d = scan(src);
        assert_eq!(lines_of(&d, "r2-rng-underived-seed"), vec![3, 4], "{d:#?}");
    }

    #[test]
    fn r2_justified_allow_is_honoured() {
        let src = "\
impl Simulator {
    pub fn run(self, seed: u64) {
        // lint:allow(r2-rng-underived-seed): this call site is itself the
        // derivation primitive the audit trusts; streams register here.
        let a = SimRng::new(seed ^ 0x9E37_79B9);
        let _ = a;
    }
}
";
        assert!(scan(src).is_empty());
    }
}
