//! **S-family** — shared-state audit for PDES readiness.
//!
//! ROADMAP item 1 (zone-partitioned conservative PDES) moves event
//! handlers onto worker threads. Any state that is not owned by exactly
//! one zone at a time becomes, in that world, a data race, a lock, or a
//! source of run-to-run divergence. These rules inventory that state
//! *now*, while the code is still single-threaded, so the migration
//! starts from a complete worklist instead of a crash log:
//!
//! - `s1-sim-static-mut` — `static mut` items,
//! - `s2-sim-thread-local` — `thread_local!` blocks (per-thread state is
//!   per-*zone* state after the split: a silent semantics change),
//! - `s3-sim-interior-mutability` — `RefCell`/`Cell`/`UnsafeCell`/
//!   `OnceLock`/`OnceCell`/`LazyLock` in sim scope (`use` imports are
//!   not flagged — the state is where the cell lives, not the import).
//!
//! Unlike P/R, a finding here is not necessarily a bug today. The point
//! of deny-by-default is the *justified allow*: each `lint:allow(s…)`
//! must say why the state stays sound when handlers run concurrently
//! (write-once cache, zone-local by construction, …). The
//! `--allow-report` artifact then *is* the PDES worklist.
//!
//! Scoping: tokens inside a function body count when that function is
//! sim-reachable; item-level tokens (statics, struct fields) count when
//! the file defines at least one sim-reachable function.

use crate::rules::prs_scope;
use crate::{Analysis, GraphRule};

pub(crate) fn rules() -> Vec<GraphRule> {
    vec![
        GraphRule {
            id: "s1-sim-static-mut",
            summary: "`static mut` in sim scope — unsynchronized global state; a \
                      PDES worker split makes every access a data race",
            applies: prs_scope,
            check: check_s1,
        },
        GraphRule {
            id: "s2-sim-thread-local",
            summary: "`thread_local!` in sim scope — per-thread becomes per-zone \
                      after the PDES split, silently changing semantics",
            applies: prs_scope,
            check: check_s2,
        },
        GraphRule {
            id: "s3-sim-interior-mutability",
            summary: "interior-mutability cell (RefCell/Cell/OnceLock/…) in sim \
                      scope — each needs a concurrency-soundness justification",
            applies: prs_scope,
            check: check_s3,
        },
    ]
}

fn check_s1(an: &Analysis, fi: usize) -> Vec<(u32, String)> {
    let ctx = &an.files[fi];
    let code: Vec<usize> = ctx.code_tokens().map(|(i, _)| i).collect();
    let mut out = Vec::new();
    for (k, &i) in code.iter().enumerate() {
        let t = &ctx.toks[i];
        if !t.is_ident("static") {
            continue;
        }
        if !code
            .get(k + 1)
            .is_some_and(|&j| ctx.toks[j].is_ident("mut"))
        {
            continue;
        }
        if !an.token_in_sim_scope(fi, i) {
            continue;
        }
        out.push((
            t.line,
            "`static mut` in sim scope — unsynchronized global state cannot \
             survive the PDES worker split; move it into owned zone state or \
             justify with lint:allow"
                .to_string(),
        ));
    }
    out
}

fn check_s2(an: &Analysis, fi: usize) -> Vec<(u32, String)> {
    let ctx = &an.files[fi];
    let code: Vec<usize> = ctx.code_tokens().map(|(i, _)| i).collect();
    let mut out = Vec::new();
    for (k, &i) in code.iter().enumerate() {
        let t = &ctx.toks[i];
        if !t.is_ident("thread_local") {
            continue;
        }
        if !code.get(k + 1).is_some_and(|&j| ctx.toks[j].is_punct('!')) {
            continue;
        }
        if !an.token_in_sim_scope(fi, i) {
            continue;
        }
        out.push((
            t.line,
            "`thread_local!` in sim scope — per-thread state becomes per-zone \
             state after the PDES split (a silent semantics change); make the \
             state zone-owned or justify with lint:allow"
                .to_string(),
        ));
    }
    out
}

const CELLS: [&str; 6] = [
    "RefCell",
    "Cell",
    "UnsafeCell",
    "OnceLock",
    "OnceCell",
    "LazyLock",
];

fn check_s3(an: &Analysis, fi: usize) -> Vec<(u32, String)> {
    let ctx = &an.files[fi];
    let code: Vec<usize> = ctx.code_tokens().map(|(i, _)| i).collect();
    let mut out = Vec::new();
    let mut in_use = false;
    for &i in &code {
        let t = &ctx.toks[i];
        // Imports are not the state; skip `use …;` statements. A `use`
        // keyword only opens an import at item/statement position, which
        // is where this scanner ever sees it (expression `use` does not
        // exist in stable Rust).
        if t.is_ident("use") {
            in_use = true;
            continue;
        }
        if in_use {
            if t.is_punct(';') {
                in_use = false;
            }
            continue;
        }
        if !CELLS.iter().any(|c| t.is_ident(c)) {
            continue;
        }
        if !an.token_in_sim_scope(fi, i) {
            continue;
        }
        let site = match an.owner_def(fi, i) {
            Some(d) => format!("in sim-reachable `{}`", d.qual_name()),
            None => "at item level in a file with sim-reachable functions".to_string(),
        };
        out.push((
            t.line,
            format!(
                "interior-mutability cell `{}` {site} — shared mutation must be \
                 re-examined for the PDES worker split; each cell needs a \
                 justified lint:allow stating why it stays sound (this is the \
                 migration worklist)",
                t.text
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::rules::testutil::{lines_of, scan};

    const ROOT: &str = "impl Simulator { pub fn run(self) { touch(); } }\n";

    #[test]
    fn s1_flags_static_mut_when_file_has_reachable_fns() {
        let src = format!("{ROOT}static mut COUNTER: u64 = 0;\nfn touch() {{}}\n");
        let d = scan(&src);
        assert_eq!(lines_of(&d, "s1-sim-static-mut"), vec![2], "{d:#?}");
    }

    #[test]
    fn s1_plain_static_is_clean() {
        let src = format!("{ROOT}static TABLE: [u8; 4] = [0; 4];\nfn touch() {{}}\n");
        assert!(scan(&src).is_empty());
    }

    #[test]
    fn s2_flags_thread_local_blocks() {
        let src = format!(
            "{ROOT}thread_local! {{ static SCRATCH: Vec<u8> = Vec::new(); }}\nfn touch() {{}}\n"
        );
        let d = scan(&src);
        assert_eq!(lines_of(&d, "s2-sim-thread-local"), vec![2], "{d:#?}");
    }

    #[test]
    fn s3_flags_cells_but_not_their_imports() {
        let src = format!(
            "{ROOT}use std::sync::OnceLock;\n\
             struct S {{ cache: OnceLock<u64> }}\n\
             fn touch() {{ let c = std::cell::RefCell::new(1); let _ = c; }}\n"
        );
        let d = scan(&src);
        assert_eq!(
            lines_of(&d, "s3-sim-interior-mutability"),
            vec![3, 4],
            "{d:#?}"
        );
    }

    #[test]
    fn s_rules_silent_without_any_reachable_fn() {
        let src = "\
static mut COUNTER: u64 = 0;
thread_local! { static SCRATCH: u64 = 0; }
struct S { cache: OnceLock<u64> }
fn never_called() { let c = RefCell::new(1); let _ = c; }
";
        assert!(scan(src).is_empty());
    }

    #[test]
    fn s3_justified_allow_is_honoured() {
        let src = format!(
            "{ROOT}// lint:allow(s3-sim-interior-mutability): write-once cache of a\n\
             // pure function of the tree; any zone computing it gets the same value.\n\
             struct S {{ cache: OnceLock<u64> }}\n\
             fn touch() {{}}\n"
        );
        assert!(scan(&src).is_empty());
    }
}
