//! Seeded-violation fixture suite: every rule (token-level D1–D6 and
//! call-graph P/R/S/E) must fire on its fixture with the right
//! `file:line` spans, the justified-allow fixture must scan clean, and
//! the bare-allow fixture must produce both the `lint-allow` diagnostic
//! and the unsuppressed finding.
//!
//! Fixtures live in `tests/fixtures/` (not compile targets; the
//! workspace walker skips `fixtures/` directories) and are scanned under
//! a virtual `crates/netsim/src/` path so every rule's scope applies —
//! the same mapping `remy-lint --scope-as` uses in `scripts/lint_gate.sh`
//! to prove the gate still rejects bad code.

use remy_lint::{scan_source, Diagnostic};

fn scan_fixture(name: &str) -> Vec<Diagnostic> {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    scan_source(&format!("crates/netsim/src/{name}"), &text)
}

fn lines(diags: &[Diagnostic], rule: &str) -> Vec<u32> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn d1_fires_on_hash_collections_with_spans() {
    let d = scan_fixture("bad_d1.rs");
    assert_eq!(
        lines(&d, "d1-unordered-collections"),
        vec![3, 4, 7, 7, 16],
        "{d:#?}"
    );
    assert!(d.iter().all(|x| x.file == "crates/netsim/src/bad_d1.rs"));
}

#[test]
fn d2_fires_on_wallclock_and_rng_with_spans() {
    let d = scan_fixture("bad_d2.rs");
    assert_eq!(
        lines(&d, "d2-wallclock-rng"),
        vec![3, 4, 8, 9, 10, 10],
        "{d:#?}"
    );
}

#[test]
fn d3_fires_on_partial_cmp_sorts_with_spans() {
    let d = scan_fixture("bad_d3.rs");
    assert_eq!(lines(&d, "d3-float-partial-sort"), vec![6, 13], "{d:#?}");
}

#[test]
fn d4_fires_on_undocumented_unsafe_only() {
    let d = scan_fixture("bad_d4.rs");
    // Line 6: undocumented block; line 14: undocumented unsafe fn. The
    // `unsafe impl Send` on line 12 carries a SAFETY comment and passes.
    assert_eq!(lines(&d, "d4-unsafe-safety-comment"), vec![6, 14], "{d:#?}");
}

#[test]
fn d5_fires_on_locks_and_atomics_with_spans() {
    let d = scan_fixture("bad_d5.rs");
    assert_eq!(
        lines(&d, "d5-shared-state-sim-path"),
        vec![3, 4, 9, 10],
        "{d:#?}"
    );
}

#[test]
fn d6_fires_on_wallclock_fields_with_spans() {
    let d = scan_fixture("bad_d6.rs");
    assert_eq!(
        lines(&d, "d6-wallclock-serialization"),
        vec![10, 12],
        "{d:#?}"
    );
}

#[test]
fn p1_fires_on_reachable_unwrap_and_expect_only() {
    let d = scan_fixture("bad_p1.rs");
    // Lines 6–7 sit in `Simulator::run`; the same `.unwrap()` in the
    // unreachable `cold_helper` (line 14) must stay silent, and the
    // `.unwrap_or` fallback on line 8 is not a panic site at all.
    assert_eq!(lines(&d, "p1-sim-unwrap"), vec![6, 7], "{d:#?}");
}

#[test]
fn p2_fires_on_panic_macros_not_asserts() {
    let d = scan_fixture("bad_p2.rs");
    // `panic!` (6) and `unreachable!` (9) on the sim path; `assert!`,
    // `debug_assert!`, and the unreachable `todo!` (16) stay legal.
    assert_eq!(lines(&d, "p2-sim-panic"), vec![6, 9], "{d:#?}");
}

#[test]
fn p3_fires_on_subscript_arithmetic_in_reachable_fns() {
    let d = scan_fixture("bad_p3.rs");
    // `buf[head - 1]` (5) and `buf[(head + 7) % buf.len()]` (6); the
    // plain `buf[head]` (7) and the unreachable copy (12) stay silent.
    assert_eq!(lines(&d, "p3-sim-index-arith"), vec![5, 6], "{d:#?}");
}

#[test]
fn r1_fires_on_second_use_of_a_stream_id() {
    let d = scan_fixture("bad_r1.rs");
    // The duplicate `rng.fork(1)` (6) and duplicate `split_seed(7, 3)`
    // (9); first uses, the distinct stream (7), and the unreachable
    // duplicates (14–15) stay silent.
    assert_eq!(lines(&d, "r1-rng-stream-collision"), vec![6, 9], "{d:#?}");
}

#[test]
fn r2_fires_on_adhoc_seed_arithmetic_and_literals() {
    let d = scan_fixture("bad_r2.rs");
    // Seed arithmetic (5) and a bare literal (6); passing a seed value
    // through untouched (7) and the unreachable copy (12) stay silent.
    assert_eq!(lines(&d, "r2-rng-underived-seed"), vec![5, 6], "{d:#?}");
}

#[test]
fn s1_fires_on_static_mut_outside_tests() {
    let d = scan_fixture("bad_s1.rs");
    // The item-level `static mut` (2) in a file with a sim-reachable
    // function; the `#[cfg(test)]` copy (9) is masked.
    assert_eq!(lines(&d, "s1-sim-static-mut"), vec![2], "{d:#?}");
}

#[test]
fn s2_fires_on_thread_local() {
    let d = scan_fixture("bad_s2.rs");
    assert_eq!(lines(&d, "s2-sim-thread-local"), vec![2], "{d:#?}");
}

#[test]
fn s3_fires_on_cells_not_use_statements() {
    let d = scan_fixture("bad_s3.rs");
    // The `RefCell` field (4) and `Cell` field (5); the `use` statement
    // naming RefCell on line 2 is not a cell site.
    assert_eq!(
        lines(&d, "s3-sim-interior-mutability"),
        vec![4, 5],
        "{d:#?}"
    );
}

#[test]
fn e1_fires_on_handler_global_writes_not_commit_points() {
    let d = scan_fixture("bad_e1.rs");
    // `on_spawn` writing `Simulator.churn` (15); the write behind the
    // `finish` commit point (20) and the per_flow-bucket write (16) are
    // silent.
    assert_eq!(lines(&d, "e1-global-write-in-handler"), vec![15], "{d:#?}");
}

#[test]
fn e2_fires_on_per_zone_folds_not_per_flow() {
    let d = scan_fixture("bad_e2.rs");
    // The `StreamingSummary.sum` fold (14, per_zone); the identical
    // `FlowMetrics.bytes_acc` fold (26, per_flow) is owner-ordered and
    // stays silent.
    assert_eq!(
        lines(&d, "e2-order-sensitive-float-accumulation"),
        vec![14],
        "{d:#?}"
    );
}

#[test]
fn e3_fires_on_unmodeled_fields_and_stale_entries() {
    let d = scan_fixture("bad_e3.rs");
    // The combined stale-entry finding at the struct declaration (7) and
    // the unmodeled `rogue_counter` at its field declaration (8).
    assert_eq!(lines(&d, "e3-unmodeled-state"), vec![7, 8], "{d:#?}");
    let msgs: Vec<&str> = d.iter().map(|x| x.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("stale state-model entries")));
    assert!(msgs
        .iter()
        .any(|m| m.contains("written at crates/netsim/src/bad_e3.rs:13 by `Simulator::run`")));
}

#[test]
fn e3_catches_a_novel_struct_outside_the_bad_glob() {
    // `unmodeled_field.rs` deliberately avoids the `bad_*` prefix: the
    // gate script wires it in explicitly, and this test pins its span.
    let d = scan_fixture("unmodeled_field.rs");
    assert_eq!(lines(&d, "e3-unmodeled-state"), vec![8], "{d:#?}");
    assert_eq!(d.len(), 1, "only the unmodeled finding: {d:#?}");
}

#[test]
fn every_rule_fires_somewhere_in_the_fixture_set() {
    let all: Vec<Diagnostic> = [
        "bad_d1.rs",
        "bad_d2.rs",
        "bad_d3.rs",
        "bad_d4.rs",
        "bad_d5.rs",
        "bad_d6.rs",
        "bad_p1.rs",
        "bad_p2.rs",
        "bad_p3.rs",
        "bad_r1.rs",
        "bad_r2.rs",
        "bad_s1.rs",
        "bad_s2.rs",
        "bad_s3.rs",
        "bad_e1.rs",
        "bad_e2.rs",
        "bad_e3.rs",
    ]
    .iter()
    .flat_map(|f| scan_fixture(f))
    .collect();
    for rule in remy_lint::rules::all() {
        assert!(
            all.iter().any(|d| d.rule == rule.id),
            "rule {} never fired on the fixture set",
            rule.id
        );
    }
    for rule in remy_lint::rules::graph_rules() {
        assert!(
            all.iter().any(|d| d.rule == rule.id),
            "graph rule {} never fired on the fixture set",
            rule.id
        );
    }
}

#[test]
fn every_bad_fixture_on_disk_is_covered_and_fails() {
    // The gate script globs `bad_*.rs`; every such fixture must actually
    // produce at least one diagnostic, or the negative control is dead.
    let dir = format!("{}/tests/fixtures", env!("CARGO_MANIFEST_DIR"));
    let mut saw = 0;
    for entry in std::fs::read_dir(&dir).expect("fixtures dir") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy().to_string();
        if !name.starts_with("bad_") || !name.ends_with(".rs") {
            continue;
        }
        saw += 1;
        let d = scan_fixture(&name);
        assert!(!d.is_empty(), "negative control {name} scanned clean");
    }
    assert!(saw >= 17, "expected the full bad_* suite, found {saw}");
}

#[test]
fn justified_allows_scan_clean() {
    let d = scan_fixture("allowed_ok.rs");
    assert!(d.is_empty(), "justified allows must suppress: {d:#?}");
}

#[test]
fn stale_allow_is_flagged_and_does_not_suppress() {
    let d = scan_fixture("allow_stale_rule.rs");
    // The justified directive names a rule that doesn't exist: reported
    // stale (6), and the `.unwrap()` it sits above still fires (7).
    assert_eq!(lines(&d, "lint-allow"), vec![6], "{d:#?}");
    assert_eq!(lines(&d, "p1-sim-unwrap"), vec![7], "{d:#?}");
}

#[test]
fn bare_allow_is_flagged_and_does_not_suppress() {
    let d = scan_fixture("allow_missing_justification.rs");
    assert_eq!(lines(&d, "lint-allow"), vec![4], "{d:#?}");
    assert_eq!(lines(&d, "d1-unordered-collections"), vec![5, 7], "{d:#?}");
}

#[test]
fn json_mode_round_trips_the_findings() {
    let d = scan_fixture("bad_d3.rs");
    let j = remy_lint::to_json(&d);
    assert!(j.contains("\"count\": 2"), "{j}");
    assert!(j.contains("\"rule\": \"d3-float-partial-sort\""));
    assert!(j.contains("\"line\": 6"));
    assert!(j.contains("\"line\": 13"));
    assert!(j.contains("\"file\": \"crates/netsim/src/bad_d3.rs\""));
}
