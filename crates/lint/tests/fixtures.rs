//! Seeded-violation fixture suite: every rule (D1–D6) must fire on its
//! fixture with the right `file:line` spans, the justified-allow fixture
//! must scan clean, and the bare-allow fixture must produce both the
//! `lint-allow` diagnostic and the unsuppressed finding.
//!
//! Fixtures live in `tests/fixtures/` (not compile targets; the
//! workspace walker skips `fixtures/` directories) and are scanned under
//! a virtual `crates/netsim/src/` path so every rule's scope applies —
//! the same mapping `remy-lint --scope-as` uses in `scripts/lint_gate.sh`
//! to prove the gate still rejects bad code.

use remy_lint::{scan_source, Diagnostic};

fn scan_fixture(name: &str) -> Vec<Diagnostic> {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    scan_source(&format!("crates/netsim/src/{name}"), &text)
}

fn lines(diags: &[Diagnostic], rule: &str) -> Vec<u32> {
    diags
        .iter()
        .filter(|d| d.rule == rule)
        .map(|d| d.line)
        .collect()
}

#[test]
fn d1_fires_on_hash_collections_with_spans() {
    let d = scan_fixture("bad_d1.rs");
    assert_eq!(
        lines(&d, "d1-unordered-collections"),
        vec![3, 4, 7, 7, 16],
        "{d:#?}"
    );
    assert!(d.iter().all(|x| x.file == "crates/netsim/src/bad_d1.rs"));
}

#[test]
fn d2_fires_on_wallclock_and_rng_with_spans() {
    let d = scan_fixture("bad_d2.rs");
    assert_eq!(
        lines(&d, "d2-wallclock-rng"),
        vec![3, 4, 8, 9, 10, 10],
        "{d:#?}"
    );
}

#[test]
fn d3_fires_on_partial_cmp_sorts_with_spans() {
    let d = scan_fixture("bad_d3.rs");
    assert_eq!(lines(&d, "d3-float-partial-sort"), vec![6, 13], "{d:#?}");
}

#[test]
fn d4_fires_on_undocumented_unsafe_only() {
    let d = scan_fixture("bad_d4.rs");
    // Line 6: undocumented block; line 14: undocumented unsafe fn. The
    // `unsafe impl Send` on line 12 carries a SAFETY comment and passes.
    assert_eq!(lines(&d, "d4-unsafe-safety-comment"), vec![6, 14], "{d:#?}");
}

#[test]
fn d5_fires_on_locks_and_atomics_with_spans() {
    let d = scan_fixture("bad_d5.rs");
    assert_eq!(
        lines(&d, "d5-shared-state-sim-path"),
        vec![3, 4, 9, 10],
        "{d:#?}"
    );
}

#[test]
fn d6_fires_on_wallclock_fields_with_spans() {
    let d = scan_fixture("bad_d6.rs");
    assert_eq!(
        lines(&d, "d6-wallclock-serialization"),
        vec![10, 12],
        "{d:#?}"
    );
}

#[test]
fn every_rule_fires_somewhere_in_the_fixture_set() {
    let all: Vec<Diagnostic> = [
        "bad_d1.rs",
        "bad_d2.rs",
        "bad_d3.rs",
        "bad_d4.rs",
        "bad_d5.rs",
        "bad_d6.rs",
    ]
    .iter()
    .flat_map(|f| scan_fixture(f))
    .collect();
    for rule in remy_lint::rules::all() {
        assert!(
            all.iter().any(|d| d.rule == rule.id),
            "rule {} never fired on the fixture set",
            rule.id
        );
    }
}

#[test]
fn justified_allows_scan_clean() {
    let d = scan_fixture("allowed_ok.rs");
    assert!(d.is_empty(), "justified allows must suppress: {d:#?}");
}

#[test]
fn bare_allow_is_flagged_and_does_not_suppress() {
    let d = scan_fixture("allow_missing_justification.rs");
    assert_eq!(lines(&d, "lint-allow"), vec![4], "{d:#?}");
    assert_eq!(lines(&d, "d1-unordered-collections"), vec![5, 7], "{d:#?}");
}

#[test]
fn json_mode_round_trips_the_findings() {
    let d = scan_fixture("bad_d3.rs");
    let j = remy_lint::to_json(&d);
    assert!(j.contains("\"count\": 2"), "{j}");
    assert!(j.contains("\"rule\": \"d3-float-partial-sort\""));
    assert!(j.contains("\"line\": 6"));
    assert!(j.contains("\"line\": 13"));
    assert!(j.contains("\"file\": \"crates/netsim/src/bad_d3.rs\""));
}
