// Fixture: a bare lint:allow is itself a diagnostic AND fails to
// suppress the finding it names. Not a compile target.

// lint:allow(d1-unordered-collections)
use std::collections::HashMap;

pub fn f(m: &HashMap<u64, u64>) -> usize {
    m.len()
}
