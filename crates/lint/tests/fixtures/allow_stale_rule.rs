//! Stale-allow fixture: a justified `lint:allow` naming a rule id that
//! no longer exists must be reported and must not suppress anything.
pub struct Simulator;
impl Simulator {
    pub fn run(&self) {
        // lint:allow(p9-no-such-rule): a perfectly earnest justification.
        let _ = Some(1).unwrap();
    }
}
