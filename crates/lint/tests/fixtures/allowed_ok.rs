// Fixture: every violation here carries a justified lint:allow, so the
// file must scan clean. Not a compile target.

// lint:allow(d1-unordered-collections): lookup-only memo keyed by exact
// bit patterns; nothing ever iterates it, so order cannot be observed.
use std::collections::HashMap;

// lint:allow(d2-wallclock-rng): bounds an offline training budget only;
// never observable by any simulation result.
use std::time::Instant;

// lint:allow(d1-unordered-collections): len() observes no order.
pub fn memo_len(m: &HashMap<u64, f64>) -> usize {
    m.len()
}

// lint:allow(d2-wallclock-rng): stop-clock comparison, budget only.
pub fn budget_expired(t0: Instant, secs: f64) -> bool {
    t0.elapsed().as_secs_f64() >= secs
}
