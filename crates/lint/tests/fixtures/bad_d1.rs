// Seeded-bad fixture for d1-unordered-collections. Not a compile target:
// scanned by tests/fixtures.rs under a virtual crates/netsim/src/ path.
use std::collections::HashMap;
use std::collections::HashSet;

pub fn merge_usage(cells: &[(u64, f64)]) -> Vec<(u64, f64)> {
    let mut by_rule: HashMap<u64, f64> = HashMap::new();
    for (rule, uses) in cells {
        *by_rule.entry(*rule).or_insert(0.0) += uses;
    }
    // The hazard: draining a hash map — iteration order differs run to run.
    by_rule.into_iter().collect()
}

pub fn seen_flows(ids: &[u64]) -> usize {
    let set: HashSet<u64> = ids.iter().copied().collect();
    set.len()
}
