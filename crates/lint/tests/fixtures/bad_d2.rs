// Seeded-bad fixture for d2-wallclock-rng. Not a compile target: scanned
// by tests/fixtures.rs under a virtual crates/netsim/src/ path.
use std::time::Instant;
use std::time::SystemTime;

pub fn jitter_seed() -> u64 {
    // The hazard: ambient entropy — results now depend on the host.
    let t = SystemTime::now();
    let _ = Instant::now();
    let r = rand::thread_rng();
    let _ = (t, r);
    0
}
