// Seeded-bad fixture for d3-float-partial-sort. Not a compile target:
// scanned by tests/fixtures.rs under a virtual crates/netsim/src/ path.

pub fn median(mut xs: Vec<f64>) -> f64 {
    // The hazard: one NaN sample and this panics mid-experiment.
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

pub fn best(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).expect("no NaN"))
}
