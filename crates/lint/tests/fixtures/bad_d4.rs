// Seeded-bad fixture for d4-unsafe-safety-comment. Not a compile target:
// scanned by tests/fixtures.rs under a virtual crates/netsim/src/ path.

pub fn read_slot(base: *const u8, off: usize) -> u8 {
    // The hazard: an undocumented unsafe block in the arena hot path.
    unsafe { *base.add(off) }
}

pub struct RawHandle(*mut u8);

// SAFETY: the handle owns its allocation; no aliases exist by contract.
unsafe impl Send for RawHandle {}

unsafe fn unchecked(base: *const u8) -> u8 {
    *base
}
