// Seeded-bad fixture for d5-shared-state-sim-path. Not a compile target:
// scanned by tests/fixtures.rs under a virtual crates/netsim/src/ path.
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub struct ZoneStats {
    // The hazard: zone workers merging through a shared lock — merge
    // order becomes a scheduler artifact.
    delivered: Mutex<Vec<u64>>,
    drops: AtomicU64,
}

impl ZoneStats {
    pub fn record_drop(&self) {
        self.drops.fetch_add(1, Ordering::Relaxed);
    }
}
