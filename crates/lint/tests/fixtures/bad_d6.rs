// Seeded-bad fixture for d6-wallclock-serialization. Not a compile
// target: scanned by tests/fixtures.rs under a virtual
// crates/netsim/src/ path.

pub fn results_to_json(tput: f64, secs: u64) -> String {
    let mut s = String::from("{");
    s.push_str("\"mean_throughput_mbps\": ");
    s.push_str(&tput.to_string());
    // The hazard: a run-time field — every golden churns on every run.
    s.push_str(", \"generated_at\": ");
    s.push_str(&secs.to_string());
    s.push_str(", \"timestamp\": 0}");
    s
}
