//! Seeded e1 violations: handler-scope writes to global-bucket state.
//! `on_spawn` (reached from the event-loop root `Simulator::run`) writes
//! `Simulator.churn` — the zone-parallel ordering hazard e1 exists for.
//! The `finish` write to `Simulator.net` sits behind a commit point
//! (`effects::COMMIT_POINTS`) and must stay silent, as must the
//! `per_flow`-bucket write to `Simulator.flows` in `on_spawn`.

impl Simulator {
    pub fn run(&mut self) {
        self.on_spawn();
        self.finish();
    }

    fn on_spawn(&mut self) {
        self.churn = next_arrival();
        self.flows = rebuild_flow_table();
    }

    fn finish(&mut self) {
        self.net = recompute_routes();
    }
}
