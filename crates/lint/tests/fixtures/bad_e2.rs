//! Seeded e2 violation: an f64 `+=` fold inside a loop, into state the
//! model classifies `per_zone` (`StreamingSummary` — merged across
//! owners at zone boundaries, so iteration order is observable). The
//! identical fold into `per_flow` state (`FlowMetrics` — ordered by its
//! single owner's own event sequence) must stay silent.

pub struct StreamingSummary {
    pub sum: f64,
}

impl StreamingSummary {
    pub fn absorb(&mut self, xs: &[f64]) {
        for &x in xs {
            self.sum += x;
        }
    }
}

pub struct FlowMetrics {
    pub bytes_acc: f64,
}

impl FlowMetrics {
    pub fn fold(&mut self, xs: &[f64]) {
        for &x in xs {
            self.bytes_acc += x;
        }
    }
}

impl Simulator {
    pub fn run(&mut self, xs: &[f64]) {
        self.totals.absorb(xs);
        self.per_flow.fold(xs);
    }
}
