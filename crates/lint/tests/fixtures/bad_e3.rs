//! Seeded e3 violations: a `Simulator` field the state model has never
//! heard of, mutated on the sim path (unmodeled — anchored at the field
//! declaration), plus the flip side: because this lone declaration lacks
//! every modeled `Simulator` field, the exact model entries all come back
//! stale (one combined finding anchored at the struct declaration).

pub struct Simulator {
    pub rogue_counter: u64,
}

impl Simulator {
    pub fn run(&mut self) {
        self.rogue_counter += 1;
    }
}
