//! P1 seeded violations: unwrap/expect on the sim path.
pub struct Simulator;
impl Simulator {
    pub fn run(&self) {
        let v: Option<u32> = None;
        let _ = v.unwrap();
        let _ = v.expect("boom");
        let fine = v.unwrap_or(0);
        let _ = fine;
    }
}
fn cold_helper() {
    let v: Option<u32> = None;
    let _ = v.unwrap();
}
