//! P2 seeded violations: panic-family macros on the sim path.
pub struct Simulator;
impl Simulator {
    pub fn run(&self, x: u32) {
        if x > 3 {
            panic!("x too big");
        }
        if x == 2 {
            unreachable!();
        }
        assert!(x < 10, "asserts stay legal");
        debug_assert!(x != 9, "so do debug asserts");
    }
}
fn cold_helper() {
    todo!()
}
