//! P3 seeded violations: subscript arithmetic on the sim path.
pub struct Simulator;
impl Simulator {
    pub fn run(&self, buf: &[u64], head: usize) -> u64 {
        let a = buf[head - 1];
        let b = buf[(head + 7) % buf.len()];
        let plain = buf[head];
        a + b + plain
    }
}
fn cold_helper(buf: &[u64], head: usize) -> u64 {
    buf[head - 1]
}
