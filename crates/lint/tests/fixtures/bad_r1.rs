//! R1 seeded violations: colliding rng stream derivations.
pub struct Simulator;
impl Simulator {
    pub fn run(&self, rng: &mut SimRng) {
        let a = rng.fork(1);
        let b = rng.fork(1);
        let distinct = rng.fork(2);
        let c = SimRng::split_seed(7, 3);
        let d = SimRng::split_seed(7, 3);
        let _ = (a, b, distinct, c, d);
    }
}
fn cold_helper(rng: &mut SimRng) {
    let a = rng.fork(9);
    let b = rng.fork(9);
    let _ = (a, b);
}
