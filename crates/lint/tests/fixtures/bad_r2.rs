//! R2 seeded violations: ad-hoc seeds on the sim path.
pub struct Simulator;
impl Simulator {
    pub fn run(&self, seed: u64) {
        let a = SimRng::new(seed ^ 0xDEAD_BEEF);
        let b = SimRng::new(42);
        let derived = SimRng::new(seed);
        let _ = (a, b, derived);
    }
}
fn cold_helper(seed: u64) {
    let z = SimRng::new(seed ^ 1);
    let _ = z;
}
