//! S1 seeded violation: static mut global in sim scope.
static mut COUNTER: u64 = 0;
pub struct Simulator;
impl Simulator {
    pub fn run(&self) {}
}
#[cfg(test)]
mod tests {
    static mut TEST_ONLY: u64 = 0;
}
