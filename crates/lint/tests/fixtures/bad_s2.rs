//! S2 seeded violation: thread-local storage in sim scope.
thread_local! {
    static SCRATCH: Vec<u64> = Vec::new();
}
pub struct Simulator;
impl Simulator {
    pub fn run(&self) {}
}
