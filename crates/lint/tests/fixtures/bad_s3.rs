//! S3 seeded violations: interior-mutability cells in sim scope.
use std::cell::RefCell;
pub struct State {
    cache: RefCell<u64>,
    flag: std::cell::Cell<bool>,
}
pub struct Simulator;
impl Simulator {
    pub fn run(&self) {}
}
