//! Effects-gate control (not part of the `bad_*` glob — wired into
//! `scripts/lint_gate.sh` separately): a brand-new sim-scope struct whose
//! field is mutated by reachable code must trip `e3-unmodeled-state`
//! until someone classifies it in `effects::STATE_MODEL`. This is the
//! ratchet that keeps the state model current as the codebase grows.

pub struct ZoneLedger {
    pub deficit: i64,
}

impl Simulator {
    pub fn run(&mut self, ledger: &mut ZoneLedger) {
        ledger.deficit = 0;
    }
}
