//! The congestion-control interface.
//!
//! Every scheme in this repository — the human-designed baselines in the
//! `congestion` crate and the machine-designed RemyCC in the `remy` crate —
//! implements [`CongestionControl`]. The reliable transport
//! ([`crate::transport::Transport`]) owns one instance per flow, feeds it
//! ACK and loss events, and reads back a congestion window plus an optional
//! pacing gap.
//!
//! The split mirrors the paper's architecture: a RemyCC "runs as part of an
//! existing TCP sender implementation" and "inherits the loss-recovery
//! behavior of whatever TCP sender [it is] added to" (§4.1). Loss detection,
//! retransmission, and RTO management are the transport's job; the
//! congestion-control object only decides *how much* and *how fast* to send.

use crate::packet::XcpHeader;
use crate::time::Ns;

// ---------------------------------------------------------------------------
// Table-driven-scheme signal state and usage statistics
// ---------------------------------------------------------------------------

/// Upper bound of every memory axis: "any values of the three state
/// variables (between 0 and 16,384)" (§4.3 of the paper).
pub const MEMORY_MAX: f64 = 16_384.0;

/// A point in the three-dimensional congestion-signal space a table-driven
/// scheme (the RemyCC) tracks: ACK-interarrival EWMA, echoed-send-spacing
/// EWMA, and the RTT over the connection minimum (§4.1 of the paper).
///
/// It lives here, next to [`CongestionControl`], because the trait's
/// [`CongestionControl::take_usage`] hook reports per-rule statistics in
/// terms of these points; the tracking logic that *produces* them stays in
/// the `remy` crate (`remy::memory::MemoryTracker`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Memory {
    /// EWMA of ACK interarrival times, milliseconds.
    pub ack_ewma_ms: f64,
    /// EWMA of echoed send-timestamp spacings, milliseconds.
    pub send_ewma_ms: f64,
    /// Latest RTT divided by the connection's minimum RTT (≥ 1 once
    /// samples exist; 0 in the initial state).
    pub rtt_ratio: f64,
}

impl Memory {
    /// The well-known all-zeroes initial state every flow starts in.
    pub const INITIAL: Memory = Memory {
        ack_ewma_ms: 0.0,
        send_ewma_ms: 0.0,
        rtt_ratio: 0.0,
    };

    /// Component access by axis index (0 = ack_ewma, 1 = send_ewma,
    /// 2 = rtt_ratio); the whisker tree treats memory as a 3-vector.
    #[inline]
    pub fn axis(&self, i: usize) -> f64 {
        match i {
            0 => self.ack_ewma_ms,
            1 => self.send_ewma_ms,
            2 => self.rtt_ratio,
            // lint:allow(p2-sim-panic): axis indices come from the
            // whisker tree's fixed 3-axis geometry; any other value is a
            // compile-time logic error, not a runtime condition.
            _ => panic!("memory has 3 axes, asked for {i}"),
        }
    }

    /// Mutable component access by axis index.
    #[inline]
    pub fn axis_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.ack_ewma_ms,
            1 => &mut self.send_ewma_ms,
            2 => &mut self.rtt_ratio,
            // lint:allow(p2-sim-panic): same fixed 3-axis invariant as
            // `axis`; an out-of-range index is a caller bug.
            _ => panic!("memory has 3 axes, asked for {i}"),
        }
    }

    /// Clamp every axis into the valid domain `[0, MEMORY_MAX]`.
    pub fn clamped(mut self) -> Memory {
        for i in 0..3 {
            let v = self.axis(i);
            *self.axis_mut(i) = v.clamp(0.0, MEMORY_MAX);
        }
        self
    }
}

/// Maximum memory samples retained per rule for median estimation.
pub const MAX_SAMPLES: usize = 128;

/// Per-rule usage collected during evaluation simulations: hit counts
/// (most-used selection) and memory samples (median split points). Drained
/// from a scheme after a run via [`CongestionControl::take_usage`].
#[derive(Clone, Debug, Default)]
pub struct Usage {
    counts: Vec<u64>,
    samples: Vec<Vec<Memory>>,
}

impl Usage {
    /// Table sized for rule ids `0..id_bound`.
    pub fn new(id_bound: usize) -> Usage {
        Usage {
            counts: vec![0; id_bound],
            samples: vec![Vec::new(); id_bound],
        }
    }

    /// Record one rule hit at the given memory point.
    pub fn record(&mut self, id: usize, m: Memory) {
        if id >= self.counts.len() {
            self.counts.resize(id + 1, 0);
            self.samples.resize(id + 1, Vec::new());
        }
        self.counts[id] += 1;
        let s = &mut self.samples[id];
        if s.len() < MAX_SAMPLES {
            s.push(m);
        } else {
            // Reservoir-style thinning keyed on the count keeps samples
            // spread across the whole run, deterministically.
            let k = (self.counts[id] as usize) % MAX_SAMPLES;
            if self.counts[id].is_multiple_of(7) {
                s[k] = m;
            }
        }
    }

    /// Hits for a rule.
    pub fn count(&self, id: usize) -> u64 {
        self.counts.get(id).copied().unwrap_or(0)
    }

    /// Fold another usage table into this one.
    pub fn merge(&mut self, other: &Usage) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
            self.samples.resize(other.counts.len(), Vec::new());
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
            let room = MAX_SAMPLES.saturating_sub(self.samples[i].len());
            self.samples[i].extend(other.samples[i].iter().take(room).copied());
        }
    }

    /// Component-wise median of the memory values that hit rule `id`
    /// (the split point of §4.3 step 5). `None` if the rule was never hit.
    pub fn median_memory(&self, id: usize) -> Option<Memory> {
        let s = self.samples.get(id)?;
        if s.is_empty() {
            return None;
        }
        let mut m = Memory::INITIAL;
        for i in 0..3 {
            let mut axis: Vec<f64> = s.iter().map(|x| x.axis(i)).collect();
            axis.sort_by(f64::total_cmp);
            let mid = axis.len() / 2;
            *m.axis_mut(i) = axis[mid];
        }
        Some(m)
    }

    /// Total hits across all rules.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Everything a congestion-control module may consult when an ACK arrives.
#[derive(Clone, Copy, Debug)]
pub struct AckInfo {
    /// Sender clock at ACK arrival.
    pub now: Ns,
    /// RTT sample for the acknowledged packet (arrival − echoed send time).
    pub rtt_sample: Ns,
    /// Minimum RTT observed on this connection so far (includes this sample).
    pub min_rtt: Ns,
    /// Smoothed RTT maintained by the transport (RFC 6298 style).
    pub srtt: Ns,
    /// The echoed sender timestamp of the packet that triggered this ACK.
    pub echo_ts: Ns,
    /// Sequence of the packet that triggered this ACK.
    pub seq: u64,
    /// How many previously-unacknowledged packets this ACK newly covers
    /// (0 for a duplicate ACK).
    pub newly_acked: u64,
    /// Packets currently in flight, after accounting for this ACK.
    pub in_flight: u64,
    /// True if the transport is in fast-recovery.
    pub in_recovery: bool,
    /// True if the delivered packet carried an ECN CE mark (DCTCP).
    pub ecn_echo: bool,
    /// XCP per-packet feedback echoed by the receiver, in packets.
    pub xcp_feedback: Option<f64>,
}

/// Why the transport believes a packet was lost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LossEvent {
    /// Three duplicate ACKs — fast retransmit. The network is still
    /// delivering packets; a moderate reduction is appropriate.
    FastRetransmit,
    /// Retransmission timeout — the ACK clock stalled entirely.
    Timeout,
}

/// A congestion-control algorithm driven by per-ACK events.
///
/// Implementations must be deterministic functions of the event stream they
/// observe; the simulator relies on this for reproducibility and Remy's
/// design procedure relies on it for common-random-number comparisons.
pub trait CongestionControl: Send {
    /// A new "on" period (connection) is starting. Reset any per-connection
    /// state. RemyCCs reset their memory to the all-zeroes initial state
    /// here (§4.1); TCP schemes return to slow start.
    fn on_flow_start(&mut self, now: Ns);

    /// An acknowledgment arrived.
    fn on_ack(&mut self, info: &AckInfo);

    /// The transport inferred a loss.
    fn on_loss(&mut self, now: Ns, event: LossEvent);

    /// A data packet was handed to the network (new or retransmitted).
    fn on_packet_sent(&mut self, _now: Ns, _seq: u64, _in_flight: u64) {}

    /// Current congestion window, in packets. May be fractional; the
    /// transport sends while `in_flight < floor-or-probe(cwnd)`.
    fn cwnd(&self) -> f64;

    /// Minimum spacing between consecutive transmissions (a rate pacer).
    /// `Ns::ZERO` disables pacing. RemyCC actions set this via their `r`
    /// component; most TCP baselines leave it at zero.
    fn pacing(&self) -> Ns {
        Ns::ZERO
    }

    /// For XCP senders: the congestion header to stamp on an outgoing
    /// packet. `None` for every other scheme.
    fn xcp_header(&self) -> Option<XcpHeader> {
        None
    }

    /// Whether outgoing packets should advertise ECN capability.
    fn ecn_capable(&self) -> bool {
        false
    }

    /// Human-readable scheme name for reports.
    fn name(&self) -> &str;

    /// Drain the per-rule usage statistics accumulated during the run, if
    /// this scheme collects any (Remy's evaluator reads whisker usage this
    /// way after a simulation). Table-driven schemes return `Some` and
    /// reset their accumulator; everything else keeps the default `None`.
    fn take_usage(&mut self) -> Option<Usage> {
        None
    }
}

/// A trivial fixed-window scheme, useful for tests and for measuring the
/// raw capacity of a simulated path (it behaves like a window-clamped
/// greedy sender with no congestion response).
#[derive(Clone, Debug)]
pub struct FixedWindow {
    window: f64,
    pacing: Ns,
}

impl FixedWindow {
    /// A sender that keeps exactly `window` packets in flight.
    pub fn new(window: f64) -> FixedWindow {
        FixedWindow {
            window,
            pacing: Ns::ZERO,
        }
    }

    /// Add a fixed pacing gap between transmissions.
    pub fn with_pacing(mut self, gap: Ns) -> FixedWindow {
        self.pacing = gap;
        self
    }
}

impl CongestionControl for FixedWindow {
    fn on_flow_start(&mut self, _now: Ns) {}
    fn on_ack(&mut self, _info: &AckInfo) {}
    fn on_loss(&mut self, _now: Ns, _event: LossEvent) {}

    fn cwnd(&self) -> f64 {
        self.window
    }

    fn pacing(&self) -> Ns {
        self.pacing
    }

    fn name(&self) -> &str {
        "FixedWindow"
    }
}

/// Factory for congestion-control instances: one simulation needs one
/// instance per flow, and experiment harnesses need to construct many
/// simulations, so schemes are passed around as factories.
pub type CcFactory = Box<dyn Fn(usize) -> Box<dyn CongestionControl> + Send + Sync>;

/// Convenience: build a [`CcFactory`] from a closure returning a concrete
/// scheme.
pub fn factory<C, F>(f: F) -> CcFactory
where
    C: CongestionControl + 'static,
    F: Fn(usize) -> C + Send + Sync + 'static,
{
    Box::new(move |id| Box::new(f(id)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_window_is_inert() {
        let mut cc = FixedWindow::new(10.0).with_pacing(Ns::from_millis(2));
        cc.on_flow_start(Ns::ZERO);
        cc.on_loss(Ns::ZERO, LossEvent::Timeout);
        assert_eq!(cc.cwnd(), 10.0);
        assert_eq!(cc.pacing(), Ns::from_millis(2));
        assert!(cc.xcp_header().is_none());
        assert!(!cc.ecn_capable());
    }

    #[test]
    fn default_take_usage_is_none() {
        let mut cc = FixedWindow::new(10.0);
        assert!(
            cc.take_usage().is_none(),
            "non-table schemes report no usage"
        );
    }

    #[test]
    fn usage_records_merges_and_medians() {
        let mut a = Usage::new(2);
        a.record(
            0,
            Memory {
                ack_ewma_ms: 1.0,
                send_ewma_ms: 2.0,
                rtt_ratio: 1.5,
            },
        );
        a.record(
            0,
            Memory {
                ack_ewma_ms: 3.0,
                send_ewma_ms: 4.0,
                rtt_ratio: 2.5,
            },
        );
        let mut b = Usage::new(2);
        b.record(1, Memory::INITIAL);
        a.merge(&b);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.count(1), 1);
        assert_eq!(a.total(), 3);
        let m = a.median_memory(0).expect("rule 0 was hit");
        assert_eq!(m.ack_ewma_ms, 3.0, "upper median of two samples");
        assert!(a.median_memory(5).is_none());
    }

    #[test]
    fn memory_clamps_into_domain() {
        let m = Memory {
            ack_ewma_ms: -1.0,
            send_ewma_ms: 1e9,
            rtt_ratio: 2.0,
        }
        .clamped();
        assert_eq!(m.ack_ewma_ms, 0.0);
        assert_eq!(m.send_ewma_ms, MEMORY_MAX);
        assert_eq!(m.rtt_ratio, 2.0);
    }

    #[test]
    fn factory_builds_boxed_instances() {
        let f = factory(|_id| FixedWindow::new(4.0));
        let cc = f(0);
        assert_eq!(cc.cwnd(), 4.0);
        assert_eq!(cc.name(), "FixedWindow");
    }
}
