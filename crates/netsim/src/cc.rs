//! The congestion-control interface.
//!
//! Every scheme in this repository — the human-designed baselines in the
//! `congestion` crate and the machine-designed RemyCC in the `remy` crate —
//! implements [`CongestionControl`]. The reliable transport
//! ([`crate::transport::Transport`]) owns one instance per flow, feeds it
//! ACK and loss events, and reads back a congestion window plus an optional
//! pacing gap.
//!
//! The split mirrors the paper's architecture: a RemyCC "runs as part of an
//! existing TCP sender implementation" and "inherits the loss-recovery
//! behavior of whatever TCP sender [it is] added to" (§4.1). Loss detection,
//! retransmission, and RTO management are the transport's job; the
//! congestion-control object only decides *how much* and *how fast* to send.

use crate::packet::XcpHeader;
use crate::time::Ns;

/// Everything a congestion-control module may consult when an ACK arrives.
#[derive(Clone, Copy, Debug)]
pub struct AckInfo {
    /// Sender clock at ACK arrival.
    pub now: Ns,
    /// RTT sample for the acknowledged packet (arrival − echoed send time).
    pub rtt_sample: Ns,
    /// Minimum RTT observed on this connection so far (includes this sample).
    pub min_rtt: Ns,
    /// Smoothed RTT maintained by the transport (RFC 6298 style).
    pub srtt: Ns,
    /// The echoed sender timestamp of the packet that triggered this ACK.
    pub echo_ts: Ns,
    /// Sequence of the packet that triggered this ACK.
    pub seq: u64,
    /// How many previously-unacknowledged packets this ACK newly covers
    /// (0 for a duplicate ACK).
    pub newly_acked: u64,
    /// Packets currently in flight, after accounting for this ACK.
    pub in_flight: u64,
    /// True if the transport is in fast-recovery.
    pub in_recovery: bool,
    /// True if the delivered packet carried an ECN CE mark (DCTCP).
    pub ecn_echo: bool,
    /// XCP per-packet feedback echoed by the receiver, in packets.
    pub xcp_feedback: Option<f64>,
}

/// Why the transport believes a packet was lost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LossEvent {
    /// Three duplicate ACKs — fast retransmit. The network is still
    /// delivering packets; a moderate reduction is appropriate.
    FastRetransmit,
    /// Retransmission timeout — the ACK clock stalled entirely.
    Timeout,
}

/// A congestion-control algorithm driven by per-ACK events.
///
/// Implementations must be deterministic functions of the event stream they
/// observe; the simulator relies on this for reproducibility and Remy's
/// design procedure relies on it for common-random-number comparisons.
pub trait CongestionControl: Send {
    /// A new "on" period (connection) is starting. Reset any per-connection
    /// state. RemyCCs reset their memory to the all-zeroes initial state
    /// here (§4.1); TCP schemes return to slow start.
    fn on_flow_start(&mut self, now: Ns);

    /// An acknowledgment arrived.
    fn on_ack(&mut self, info: &AckInfo);

    /// The transport inferred a loss.
    fn on_loss(&mut self, now: Ns, event: LossEvent);

    /// A data packet was handed to the network (new or retransmitted).
    fn on_packet_sent(&mut self, _now: Ns, _seq: u64, _in_flight: u64) {}

    /// Current congestion window, in packets. May be fractional; the
    /// transport sends while `in_flight < floor-or-probe(cwnd)`.
    fn cwnd(&self) -> f64;

    /// Minimum spacing between consecutive transmissions (a rate pacer).
    /// `Ns::ZERO` disables pacing. RemyCC actions set this via their `r`
    /// component; most TCP baselines leave it at zero.
    fn pacing(&self) -> Ns {
        Ns::ZERO
    }

    /// For XCP senders: the congestion header to stamp on an outgoing
    /// packet. `None` for every other scheme.
    fn xcp_header(&self) -> Option<XcpHeader> {
        None
    }

    /// Whether outgoing packets should advertise ECN capability.
    fn ecn_capable(&self) -> bool {
        false
    }

    /// Human-readable scheme name for reports.
    fn name(&self) -> &str;

    /// Downcast hook for harnesses that need concrete access to a scheme
    /// after a run (Remy's evaluator drains whisker-usage statistics this
    /// way). Implementations wanting to be reachable return `Some(self)`.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

/// A trivial fixed-window scheme, useful for tests and for measuring the
/// raw capacity of a simulated path (it behaves like a window-clamped
/// greedy sender with no congestion response).
#[derive(Clone, Debug)]
pub struct FixedWindow {
    window: f64,
    pacing: Ns,
}

impl FixedWindow {
    /// A sender that keeps exactly `window` packets in flight.
    pub fn new(window: f64) -> FixedWindow {
        FixedWindow {
            window,
            pacing: Ns::ZERO,
        }
    }

    /// Add a fixed pacing gap between transmissions.
    pub fn with_pacing(mut self, gap: Ns) -> FixedWindow {
        self.pacing = gap;
        self
    }
}

impl CongestionControl for FixedWindow {
    fn on_flow_start(&mut self, _now: Ns) {}
    fn on_ack(&mut self, _info: &AckInfo) {}
    fn on_loss(&mut self, _now: Ns, _event: LossEvent) {}

    fn cwnd(&self) -> f64 {
        self.window
    }

    fn pacing(&self) -> Ns {
        self.pacing
    }

    fn name(&self) -> &str {
        "FixedWindow"
    }
}

/// Factory for congestion-control instances: one simulation needs one
/// instance per flow, and experiment harnesses need to construct many
/// simulations, so schemes are passed around as factories.
pub type CcFactory = Box<dyn Fn(FlowId) -> Box<dyn CongestionControl> + Send + Sync>;

use crate::packet::FlowId;

/// Convenience: build a [`CcFactory`] from a closure returning a concrete
/// scheme.
pub fn factory<C, F>(f: F) -> CcFactory
where
    C: CongestionControl + 'static,
    F: Fn(FlowId) -> C + Send + Sync + 'static,
{
    Box::new(move |id| Box::new(f(id)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_window_is_inert() {
        let mut cc = FixedWindow::new(10.0).with_pacing(Ns::from_millis(2));
        cc.on_flow_start(Ns::ZERO);
        cc.on_loss(Ns::ZERO, LossEvent::Timeout);
        assert_eq!(cc.cwnd(), 10.0);
        assert_eq!(cc.pacing(), Ns::from_millis(2));
        assert!(cc.xcp_header().is_none());
        assert!(!cc.ecn_capable());
    }

    #[test]
    fn factory_builds_boxed_instances() {
        let f = factory(|_id| FixedWindow::new(4.0));
        let cc = f(0);
        assert_eq!(cc.cwnd(), 4.0);
        assert_eq!(cc.name(), "FixedWindow");
    }
}
