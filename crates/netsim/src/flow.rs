//! The flow table: struct-of-arrays per-flow state with generational ids.
//!
//! This is the [`crate::packet::PacketArena`] pattern applied to flows.
//! Per-flow state is split across three parallel arrays indexed by slot:
//! a dense hot array ([`FlowHot`]: the fields the event loop touches on
//! every timer/forwarding decision), a cold side slab ([`FlowCold`]: the
//! boxed transport + congestion controller, traffic process, receiver,
//! metrics, and path vectors), and a generation array that validates
//! [`FlowId`] handles.
//!
//! Slot generations follow the arena convention — even = free, odd =
//! live; creating and tearing down a flow each bump the counter once — so
//! a handle kept past a flow's lifetime (a spurious retransmission still
//! in flight when the flow completes) fails the generation check instead
//! of aliasing whichever flow recycled the slot.
//!
//! Under flow churn the table is allocation-free in steady state:
//! [`FlowTable::respawn`] reuses a freed slot *in place*, keeping the
//! cold state's heap blocks (the CC box, scoreboard nodes, interval
//! vector) alive across flow lifetimes instead of reallocating them per
//! arrival.

use crate::metrics::FlowMetrics;
use crate::time::Ns;
use crate::traffic::TrafficProcess;
use crate::transport::Transport;
use std::collections::BTreeSet;

/// Generational handle to one flow in a [`FlowTable`].
///
/// 8 bytes: slot index plus the slot's generation at creation time.
/// Tearing a flow down bumps the slot's generation, so a stale handle can
/// never address the flow that later recycles the slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct FlowId {
    index: u32,
    generation: u32,
}

impl FlowId {
    /// The handle of slot `index`'s *first* lifetime (generation 1).
    ///
    /// Flows created at simulator construction (the scenario's persistent
    /// senders) are never torn down, so their handles are always
    /// first-lifetime; tests and packet constructors use this.
    pub fn first(index: usize) -> FlowId {
        FlowId {
            // lint:allow(p1-sim-unwrap): a scenario with 4 billion
            // persistent senders is beyond any machine this will run on.
            index: u32::try_from(index).expect("more than u32::MAX flows"),
            generation: 1,
        }
    }

    /// Slot index (diagnostics and dense-array addressing; identity
    /// requires the generation).
    pub fn index(self) -> u32 {
        self.index
    }

    /// Creation-time generation of the slot.
    pub fn generation(self) -> u32 {
        self.generation
    }
}

/// Receiver-side reassembly state for one flow.
#[derive(Clone, Debug, Default)]
pub struct Receiver {
    /// Next sequence number the receiver expects (cumulative frontier).
    pub expected: u64,
    out_of_order: BTreeSet<u64>,
}

impl Receiver {
    /// Process a delivery; returns `true` if the packet carried new data.
    pub fn on_packet(&mut self, seq: u64) -> bool {
        if seq < self.expected || self.out_of_order.contains(&seq) {
            return false;
        }
        if seq == self.expected {
            self.expected += 1;
            while self.out_of_order.remove(&self.expected) {
                self.expected += 1;
            }
        } else {
            self.out_of_order.insert(seq);
        }
        true
    }

    /// Reset for a new flow lifetime whose sequence space starts at
    /// `expected` (churn respawn: the slot's transport numbering
    /// continues across lifetimes).
    pub fn reset(&mut self, expected: u64) {
        self.expected = expected;
        self.out_of_order.clear();
    }
}

/// The dense hot row of one flow: everything the event loop reads on
/// timer, pacing, and forwarding decisions, plus mirrors of the
/// transport's hot fields refreshed at each engine sync point.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlowHot {
    /// Mirror of the congestion window, in packets.
    pub cwnd_pkts: f64,
    /// Mirror of the transport's pipe estimate.
    pub inflight_pkts: u64,
    /// Mirror of the next new sequence number.
    pub next_seq: u64,
    /// Mirror of the armed RTO deadline and its generation.
    pub rto_deadline: Option<(Ns, u64)>,
    /// Earliest pending RTO *event* for this flow (dedup guard for the
    /// lazy timer pooled through the timing wheel).
    pub rto_event_at: Option<Ns>,
    /// A pacer event is already scheduled at this time (dedup guard).
    pub pacer_scheduled: Option<Ns>,
    /// Final data hop → receiver propagation.
    pub fwd_delay: Ns,
    /// Receiver → sender propagation (after the final ACK hop, if any).
    pub back_delay: Ns,
    /// First hop of the forward path (`fwd_hops[0]`, cached).
    pub entry_hop: u32,
    /// Length of the forward path (`fwd_hops.len()`, cached).
    pub fwd_len: u32,
    /// Length of the ACK path (`ack_hops.len()`, cached; 0 = pure delay).
    pub ack_len: u32,
    /// When this flow lifetime began (churn: arrival time).
    pub spawned_at: Ns,
    /// True for dynamically arriving (churn) flows, which tear their slot
    /// down on completion; persistent senders keep their slot forever.
    pub churn: bool,
}

/// The cold side slab of one flow: boxed/pointered state only touched on
/// its own flow's events, kept out of the dense array so hot scans don't
/// drag it through cache.
pub struct FlowCold {
    /// Reliable sender (owns the boxed congestion controller).
    pub transport: Transport,
    /// The paper's on/off traffic process (or a churn one-shot).
    pub traffic: TrafficProcess,
    /// Receiver-side reassembly state.
    pub receiver: Receiver,
    /// Per-flow measurements.
    pub metrics: FlowMetrics,
    /// Hops this flow's data packets cross, in order.
    pub fwd_hops: Vec<usize>,
    /// Hops this flow's ACKs cross; empty = pure-delay return path.
    pub ack_hops: Vec<usize>,
}

struct TableSlot {
    /// Even = free, odd = live (see module docs).
    generation: u32,
}

/// Struct-of-arrays table of flows with generational handles.
///
/// `hot`, `cold`, and the generation array are parallel: slot `i` of each
/// describes the same flow. Free slots keep their cold state's heap
/// allocations for the next lifetime ([`FlowTable::respawn`]).
#[derive(Default)]
pub struct FlowTable {
    slots: Vec<TableSlot>,
    hot: Vec<FlowHot>,
    cold: Vec<FlowCold>,
    free: Vec<u32>,
    live: usize,
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> FlowTable {
        FlowTable::default()
    }

    /// An empty table with room for `capacity` flows before regrowing.
    pub fn with_capacity(capacity: usize) -> FlowTable {
        FlowTable {
            slots: Vec::with_capacity(capacity),
            hot: Vec::with_capacity(capacity),
            cold: Vec::with_capacity(capacity),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Create a flow in a brand-new slot (growth path — allocates).
    /// Steady-state churn goes through [`FlowTable::respawn`] instead.
    pub fn insert(&mut self, hot: FlowHot, cold: FlowCold) -> FlowId {
        // lint:allow(p1-sim-unwrap): slot count is bounded by concurrent
        // flows, not total arrivals; u32::MAX concurrent flows cannot fit.
        let index = u32::try_from(self.slots.len()).expect("more than u32::MAX flows");
        self.slots.push(TableSlot { generation: 1 });
        self.hot.push(hot);
        self.cold.push(cold);
        self.live += 1;
        FlowId {
            index,
            generation: 1,
        }
    }

    /// Revive the most recently freed slot *in place*: `reset` receives
    /// the slot's previous-lifetime state (heap allocations intact) and
    /// must re-initialize it for the new flow. Returns `None` when no
    /// freed slot exists — the caller falls back to [`FlowTable::insert`].
    ///
    /// This is the allocation-free steady-state churn path.
    pub fn respawn(&mut self, reset: impl FnOnce(&mut FlowHot, &mut FlowCold)) -> Option<FlowId> {
        let index = self.free.pop()?;
        let slot = &mut self.slots[index as usize];
        // Strict lane: a slot coming off the free list must be in a free
        // (even-generation) lifetime; odd here means the free list
        // aliased a live flow.
        #[cfg(feature = "strict-invariants")]
        assert_eq!(
            slot.generation % 2,
            0,
            "strict-invariants: free list handed out a live flow slot {index}"
        );
        slot.generation = slot.generation.wrapping_add(1);
        let generation = slot.generation;
        self.live += 1;
        let i = index as usize;
        reset(&mut self.hot[i], &mut self.cold[i]);
        Some(FlowId { index, generation })
    }

    /// Tear a flow down, releasing its slot for reuse. The cold state is
    /// *kept* (allocations and all) for the slot's next lifetime. Panics
    /// on a stale handle: a double teardown is always an engine bug.
    pub fn free(&mut self, id: FlowId) {
        // Strict lane: the handle must come from a live (odd-generation)
        // lifetime and the accounting identity must hold on entry.
        #[cfg(feature = "strict-invariants")]
        {
            assert_eq!(
                id.generation % 2,
                1,
                "strict-invariants: freeing a flow handle minted in a free lifetime"
            );
            assert_eq!(
                self.live + self.free.len(),
                self.slots.len(),
                "strict-invariants: flow table live/free accounting diverged"
            );
        }
        let slot = &mut self.slots[id.index as usize];
        assert_eq!(
            slot.generation, id.generation,
            "freeing a stale FlowId (double teardown?)"
        );
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(id.index);
        self.live -= 1;
    }

    /// True if the handle still addresses a live flow.
    pub fn contains(&self, id: FlowId) -> bool {
        self.slots
            .get(id.index as usize)
            .is_some_and(|s| s.generation == id.generation)
    }

    /// Resolve a handle to its slot index, or `None` if stale. This is
    /// the tolerance primitive for packets that outlive their flow: the
    /// engine drops them instead of touching the slot's new occupant.
    #[inline]
    pub fn index_of(&self, id: FlowId) -> Option<usize> {
        let i = id.index as usize;
        (self.slots.get(i).map(|s| s.generation) == Some(id.generation)).then_some(i)
    }

    /// The current handle of live slot `index`. Panics if the slot is
    /// free (even generation).
    pub fn id_at(&self, index: usize) -> FlowId {
        let generation = self.slots[index].generation;
        assert_eq!(generation % 2, 1, "slot {index} is not live");
        FlowId {
            index: index as u32,
            generation,
        }
    }

    /// Hot row of slot `i`.
    #[inline]
    pub fn hot(&self, i: usize) -> &FlowHot {
        &self.hot[i]
    }

    /// Mutable hot row of slot `i`.
    #[inline]
    pub fn hot_mut(&mut self, i: usize) -> &mut FlowHot {
        &mut self.hot[i]
    }

    /// Cold state of slot `i`.
    #[inline]
    pub fn cold(&self, i: usize) -> &FlowCold {
        &self.cold[i]
    }

    /// Mutable cold state of slot `i`.
    #[inline]
    pub fn cold_mut(&mut self, i: usize) -> &mut FlowCold {
        &mut self.cold[i]
    }

    /// Simultaneous mutable access to slot `i`'s hot row and cold state
    /// (they live in separate arrays, so the borrows split).
    #[inline]
    pub fn pair_mut(&mut self, i: usize) -> (&mut FlowHot, &mut FlowCold) {
        (&mut self.hot[i], &mut self.cold[i])
    }

    /// Indices of all currently live slots, in slot order.
    pub fn live_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.generation % 2 == 1)
            .map(|(i, _)| i)
    }

    /// Flows currently live.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever created (live + reusable). Under steady-state
    /// churn this tracks the peak *concurrent* population, not the total
    /// number of flows that ever existed — the zero-allocation audit.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Consume the table, returning the parallel cold array (slot order).
    /// Used by result finalization to summarize persistent senders and
    /// recover their congestion controllers.
    pub fn into_cold(self) -> Vec<FlowCold> {
        self.cold
    }

    /// Audit the accounting identity `live + free == slots` (cheap; the
    /// strict-invariants lane also checks it inside free/respawn).
    pub fn audit_accounting(&self) -> bool {
        self.live + self.free.len() == self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::FixedWindow;
    use crate::traffic::TrafficSpec;

    fn cold() -> FlowCold {
        FlowCold {
            transport: Transport::new(Box::new(FixedWindow::new(10.0))),
            traffic: TrafficProcess::new(
                TrafficSpec::saturating(),
                1500,
                crate::rng::SimRng::new(1),
            ),
            receiver: Receiver::default(),
            metrics: FlowMetrics::default(),
            fwd_hops: vec![0],
            ack_hops: Vec::new(),
        }
    }

    #[test]
    fn insert_free_respawn_reuses_slots_with_new_generations() {
        let mut t = FlowTable::new();
        let a = t.insert(FlowHot::default(), cold());
        let b = t.insert(FlowHot::default(), cold());
        assert_eq!(t.live(), 2);
        assert_eq!(a, FlowId::first(0));
        assert_eq!(b, FlowId::first(1));
        t.free(b);
        assert_eq!(t.live(), 1);
        assert!(!t.contains(b));
        assert_eq!(t.index_of(b), None);
        let c = t
            .respawn(|hot, _| hot.spawned_at = Ns::from_secs(9))
            .expect("freed slot available");
        assert_eq!(c.index(), b.index(), "LIFO slot reuse");
        assert_ne!(c.generation(), b.generation());
        assert!(t.contains(c) && !t.contains(b));
        assert_eq!(t.hot(c.index() as usize).spawned_at, Ns::from_secs(9));
        assert_eq!(t.capacity(), 2, "no growth on respawn");
        assert!(t.audit_accounting());
    }

    #[test]
    fn respawn_on_empty_free_list_returns_none() {
        let mut t = FlowTable::new();
        assert!(t.respawn(|_, _| ()).is_none());
        let _ = t.insert(FlowHot::default(), cold());
        assert!(t.respawn(|_, _| ()).is_none(), "live slots are not reused");
    }

    #[test]
    #[should_panic(expected = "stale FlowId")]
    fn free_rejects_stale_handles() {
        let mut t = FlowTable::new();
        let id = t.insert(FlowHot::default(), cold());
        t.free(id);
        t.free(id);
    }

    #[test]
    #[should_panic(expected = "not live")]
    fn id_at_rejects_free_slots() {
        let mut t = FlowTable::new();
        let id = t.insert(FlowHot::default(), cold());
        t.free(id);
        let _ = t.id_at(0);
    }

    #[test]
    fn generations_follow_the_parity_convention() {
        let mut t = FlowTable::new();
        let id = t.insert(FlowHot::default(), cold());
        assert_eq!(id.generation() % 2, 1, "live handles have odd generations");
        t.free(id);
        let next = t.respawn(|_, _| ()).expect("slot");
        assert_eq!(next.generation(), id.generation() + 2);
    }

    #[test]
    fn live_indices_skip_freed_slots() {
        let mut t = FlowTable::new();
        let ids: Vec<FlowId> = (0..4)
            .map(|_| t.insert(FlowHot::default(), cold()))
            .collect();
        t.free(ids[1]);
        t.free(ids[3]);
        let live: Vec<usize> = t.live_indices().collect();
        assert_eq!(live, vec![0, 2]);
        assert_eq!(t.id_at(2), ids[2]);
    }

    #[test]
    fn receiver_reset_continues_a_sequence_space() {
        let mut r = Receiver::default();
        assert!(r.on_packet(0));
        assert!(r.on_packet(2), "out of order buffered");
        assert_eq!(r.expected, 1);
        r.reset(7);
        assert_eq!(r.expected, 7);
        assert!(!r.on_packet(2), "pre-reset sequences are stale duplicates");
        assert!(r.on_packet(7), "new lifetime's first packet");
        assert_eq!(r.expected, 8);
    }

    /// LCG-driven create/teardown churn mirroring the packet arena's
    /// strict-invariants audit: generation parity, accounting identity,
    /// and no growth while the free list feeds respawns.
    #[test]
    fn table_strict_invariants_hold_under_churn() {
        let mut t = FlowTable::new();
        let mut live: Vec<FlowId> = Vec::new();
        let mut rng: u64 = 0x2545_f491_4f6c_dd1d;
        for round in 0..500u64 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if live.is_empty() || !rng.is_multiple_of(3) {
                let id = match t.respawn(|hot, _| hot.spawned_at = Ns(round)) {
                    Some(id) => id,
                    None => t.insert(FlowHot::default(), cold()),
                };
                assert_eq!(id.generation() % 2, 1, "live handles have odd generations");
                live.push(id);
            } else {
                let pick = (rng >> 33) as usize % live.len();
                let id = live.swap_remove(pick);
                assert!(t.contains(id));
                t.free(id);
                assert!(!t.contains(id));
            }
            assert_eq!(t.live(), live.len());
            assert!(t.audit_accounting());
            assert!(t.capacity() >= t.live());
        }
        for id in live.drain(..) {
            t.free(id);
        }
        assert_eq!(t.live(), 0);
        assert!(t.audit_accounting());
    }
}
