//! First-class network graphs: routers, links, and deterministic routing.
//!
//! The per-flow hop lists in [`crate::topology`] describe *paths*; this
//! module describes the *network* they are cut from. A [`NetworkBuilder`]
//! accumulates named routers and directed links (each carrying a
//! [`LinkSpec`], a [`QueueSpec`], a propagation delay, and a routing
//! weight), and [`NetworkBuilder::build`] freezes it into a [`Network`]
//! whose shortest-path routes are computed — not hand-listed — by
//! Dijkstra's algorithm with a stable `(cost, RouterId, LinkId)`
//! tie-break, so equal-cost choices never depend on iteration order.
//!
//! A built network derives a [`crate::topology::Topology`] for the
//! simulator: every link becomes one hop, and every flow's forward and
//! ACK [`FlowPath`]s are read out of the forwarding tables. The graph
//! itself rides along as a [`NetGraph`] inside the topology, which is
//! what lets the engine recompute routes when a [`LinkEvent`] takes a
//! link down (or brings it back) mid-run.
//!
//! Generators for the standard evaluation shapes — linear chains,
//! fat-tree *k*=4, and seeded Waxman random graphs — live here too, so
//! spec files can name a topology class instead of enumerating links.

use crate::json::{self, Value};
use crate::link::LinkSpec;
use crate::queue::QueueSpec;
use crate::rng::SimRng;
use crate::time::Ns;
use crate::topology::{FlowPath, HopSpec, Topology};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Handle to a router added to a [`NetworkBuilder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct RouterId(u32);

impl RouterId {
    /// Index of this router in the network's router list.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Handle to a directed link added to a [`NetworkBuilder`].
///
/// Link ids double as hop indices: link `i` of a built network is hop
/// `i` of the derived [`Topology`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LinkId(u32);

impl LinkId {
    /// Index of this link in the network's link list (== hop index).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Sentinel in a forwarding table: no route to the destination (or the
/// router *is* the destination).
pub const NO_ROUTE: u32 = u32::MAX;

/// One directed link under construction: endpoints, routing weight, and
/// the wire it materializes into.
#[derive(Clone, Debug)]
struct LinkDef {
    src: u32,
    dst: u32,
    weight: u64,
    link: LinkSpec,
    queue: QueueSpec,
    prop_delay: Ns,
}

/// Incrementally builds a routed network.
///
/// This is the one public construction path for graph topologies:
///
/// ```
/// use netsim::graph::NetworkBuilder;
/// use netsim::link::LinkSpec;
/// use netsim::queue::QueueSpec;
/// use netsim::time::Ns;
///
/// let mut b = NetworkBuilder::new();
/// let a = b.add_router("a");
/// let c = b.add_router("c");
/// b.add_duplex_link(
///     a,
///     c,
///     LinkSpec::constant(10.0),
///     QueueSpec::DropTail { capacity: 100 },
///     Ns::from_millis(5),
/// );
/// let net = b.build().expect("valid network");
/// assert_eq!(net.graph().route(a.index() as u32, c.index() as u32, &[]).unwrap(), vec![0]);
/// ```
#[derive(Default, Debug)]
pub struct NetworkBuilder {
    routers: Vec<String>,
    links: Vec<LinkDef>,
}

impl NetworkBuilder {
    /// An empty network.
    pub fn new() -> NetworkBuilder {
        NetworkBuilder::default()
    }

    /// Add a named router. Names must be unique (checked by
    /// [`NetworkBuilder::build`]).
    pub fn add_router(&mut self, name: &str) -> RouterId {
        self.routers.push(name.to_string());
        RouterId(self.routers.len() as u32 - 1)
    }

    /// Add a directed link `a → b` with routing weight 1.
    pub fn add_link(
        &mut self,
        a: RouterId,
        b: RouterId,
        link: LinkSpec,
        queue: QueueSpec,
        prop_delay: Ns,
    ) -> LinkId {
        self.add_weighted_link(a, b, link, queue, prop_delay, 1)
    }

    /// Add a directed link `a → b` with an explicit routing weight.
    pub fn add_weighted_link(
        &mut self,
        a: RouterId,
        b: RouterId,
        link: LinkSpec,
        queue: QueueSpec,
        prop_delay: Ns,
        weight: u64,
    ) -> LinkId {
        self.links.push(LinkDef {
            src: a.0,
            dst: b.0,
            weight,
            link,
            queue,
            prop_delay,
        });
        LinkId(self.links.len() as u32 - 1)
    }

    /// Add a pair of directed links `a → b` and `b → a` with routing
    /// weight 1, sharing one wire model.
    pub fn add_duplex_link(
        &mut self,
        a: RouterId,
        b: RouterId,
        link: LinkSpec,
        queue: QueueSpec,
        prop_delay: Ns,
    ) -> (LinkId, LinkId) {
        self.add_weighted_duplex_link(a, b, link, queue, prop_delay, 1)
    }

    /// Add a weighted duplex pair `a → b` / `b → a`.
    pub fn add_weighted_duplex_link(
        &mut self,
        a: RouterId,
        b: RouterId,
        link: LinkSpec,
        queue: QueueSpec,
        prop_delay: Ns,
        weight: u64,
    ) -> (LinkId, LinkId) {
        let fwd = self.add_weighted_link(a, b, link.clone(), queue.clone(), prop_delay, weight);
        let back = self.add_weighted_link(b, a, link, queue, prop_delay, weight);
        (fwd, back)
    }

    /// Linear chain of `n_links` duplex segments: routers `r0 … rN`
    /// joined by identical links.
    pub fn chain(
        n_links: usize,
        link: &LinkSpec,
        queue: &QueueSpec,
        prop_delay: Ns,
    ) -> NetworkBuilder {
        let mut b = NetworkBuilder::new();
        let ids: Vec<RouterId> = (0..=n_links)
            .map(|i| b.add_router(&format!("r{i}")))
            .collect();
        for w in ids.windows(2) {
            b.add_duplex_link(w[0], w[1], link.clone(), queue.clone(), prop_delay);
        }
        b
    }

    /// Three-tier fat-tree with *k*=4: 4 core routers, 4 pods of 2
    /// aggregation + 2 edge routers each (20 routers, 48 directed
    /// links). Routers are named `core{i}`, `pod{p}_agg{j}`, and
    /// `pod{p}_edge{j}`; all links have weight 1.
    pub fn fat_tree_k4(link: &LinkSpec, queue: &QueueSpec, prop_delay: Ns) -> NetworkBuilder {
        let mut b = NetworkBuilder::new();
        let cores: Vec<RouterId> = (0..4).map(|i| b.add_router(&format!("core{i}"))).collect();
        for p in 0..4 {
            let aggs: Vec<RouterId> = (0..2)
                .map(|j| b.add_router(&format!("pod{p}_agg{j}")))
                .collect();
            let edges: Vec<RouterId> = (0..2)
                .map(|j| b.add_router(&format!("pod{p}_edge{j}")))
                .collect();
            for &agg in &aggs {
                for &edge in &edges {
                    b.add_duplex_link(edge, agg, link.clone(), queue.clone(), prop_delay);
                }
            }
            for (&agg, pair) in aggs.iter().zip(cores.chunks(2)) {
                for &core in pair {
                    b.add_duplex_link(agg, core, link.clone(), queue.clone(), prop_delay);
                }
            }
        }
        b
    }

    /// Seeded Waxman random graph on `n` routers (`w0 … w{n-1}`) placed
    /// uniformly in the unit square; each unordered pair gets a duplex
    /// link with probability `alpha · exp(−d / (beta · √2))` where `d`
    /// is the pair's Euclidean distance. Draws are fully determined by
    /// `seed`; disconnected draws build fine and surface later as
    /// named no-route diagnostics.
    pub fn waxman(
        n: usize,
        alpha: f64,
        beta: f64,
        seed: u64,
        link: &LinkSpec,
        queue: &QueueSpec,
        prop_delay: Ns,
    ) -> NetworkBuilder {
        let mut b = NetworkBuilder::new();
        let mut rng = SimRng::new(seed);
        let ids: Vec<RouterId> = (0..n).map(|i| b.add_router(&format!("w{i}"))).collect();
        let pos: Vec<(f64, f64)> = (0..n).map(|_| (rng.f64(), rng.f64())).collect();
        let scale = beta * std::f64::consts::SQRT_2;
        for i in 0..n {
            for j in (i + 1)..n {
                let (dx, dy) = (pos[i].0 - pos[j].0, pos[i].1 - pos[j].1);
                let d = (dx * dx + dy * dy).sqrt();
                let p = alpha * (-d / scale).exp();
                if rng.chance(p.clamp(0.0, 1.0)) {
                    b.add_duplex_link(ids[i], ids[j], link.clone(), queue.clone(), prop_delay);
                }
            }
        }
        b
    }

    /// Freeze the builder into a routed [`Network`]. Fails on an empty
    /// router set, duplicate router names, or out-of-range endpoints.
    pub fn build(self) -> Result<Network, String> {
        if self.routers.is_empty() {
            return Err("network has no routers".to_string());
        }
        for (i, name) in self.routers.iter().enumerate() {
            if self.routers[..i].iter().any(|r| r == name) {
                return Err(format!("duplicate router name '{name}'"));
            }
        }
        let n = self.routers.len() as u32;
        for l in &self.links {
            if l.src >= n || l.dst >= n {
                return Err("link endpoint out of range".to_string());
            }
            if l.src == l.dst {
                return Err(format!(
                    "self-loop link on router '{}'",
                    self.routers[l.src as usize]
                ));
            }
        }
        let graph = NetGraph {
            routers: self.routers,
            links: self
                .links
                .iter()
                .map(|l| GraphLink {
                    src: l.src,
                    dst: l.dst,
                    weight: l.weight,
                })
                .collect(),
            flows: Vec::new(),
            events: Vec::new(),
            policy: FailoverPolicy::default(),
        };
        let hops = self
            .links
            .into_iter()
            .map(|l| HopSpec::new(l.link, l.queue).with_prop_delay(l.prop_delay))
            .collect();
        Ok(Network { graph, hops })
    }
}

/// A built, immutable network: the routing graph plus the wire model
/// (link, queue, propagation delay) behind each directed link.
#[derive(Clone, Debug)]
pub struct Network {
    graph: NetGraph,
    hops: Vec<HopSpec>,
}

impl Network {
    /// The routing graph (routers, links, weights).
    pub fn graph(&self) -> &NetGraph {
        &self.graph
    }

    /// The wire model of each link, indexed like the graph's links.
    pub fn hops(&self) -> &[HopSpec] {
        &self.hops
    }

    /// Look up a router by name.
    pub fn router(&self, name: &str) -> Option<RouterId> {
        self.graph.router_index(name).map(RouterId)
    }

    /// First link `a → b`, if one exists.
    pub fn link_between(&self, a: RouterId, b: RouterId) -> Option<LinkId> {
        self.graph
            .links
            .iter()
            .position(|l| l.src == a.0 && l.dst == b.0)
            .map(|i| LinkId(i as u32))
    }

    /// Derive the simulator topology for `flows` (per-flow source and
    /// destination routers, in sender order): each flow's forward path
    /// is the shortest route `src → dst`, its ACK path the shortest
    /// route `dst → src`, both read from the all-links-up forwarding
    /// tables. The graph — with `events` and the failover `policy` —
    /// rides along inside the topology so the engine can recompute
    /// routes when links fail.
    pub fn into_topology(
        mut self,
        flows: &[(RouterId, RouterId)],
        events: Vec<LinkEvent>,
        policy: FailoverPolicy,
    ) -> Result<Topology, String> {
        let down = vec![false; self.graph.links.len()];
        let tables = self.graph.forwarding(&down);
        let mut paths = Vec::with_capacity(flows.len());
        for &(s, d) in flows {
            if s == d {
                return Err(format!(
                    "flow source and destination are both router '{}'",
                    self.graph.routers[s.0 as usize]
                ));
            }
            let fwd = self.graph.route_via(&tables, s.0, d.0)?;
            let ack = self.graph.route_via(&tables, d.0, s.0)?;
            paths.push(FlowPath::through(fwd).with_ack_path(ack));
        }
        for ev in &events {
            if ev.link as usize >= self.graph.links.len() {
                return Err(format!("link event references unknown link {}", ev.link));
            }
        }
        // lint:allow(e1-global-write-in-handler): construction-time write —
        // `into_topology` consumes the builder before the event loop exists;
        // the graph is frozen (read-only) once any zone starts executing.
        self.graph.flows = flows.iter().map(|&(s, d)| (s.0, d.0)).collect();
        self.graph.events = events;
        self.graph.policy = policy;
        Ok(Topology {
            hops: self.hops,
            paths,
            graph: Some(self.graph),
        })
    }
}

/// One directed edge of a [`NetGraph`]: endpoints and routing weight.
/// Edge `i` corresponds to hop `i` of the owning topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphLink {
    /// Source router index.
    pub src: u32,
    /// Destination router index.
    pub dst: u32,
    /// Additive routing cost (≥ 1 in practice; 0 is allowed).
    pub weight: u64,
}

/// A scheduled link state change, applied through the event wheel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LinkEvent {
    /// Simulation time the change takes effect.
    pub at: Ns,
    /// Affected link (index into [`NetGraph::links`] == hop index).
    pub link: u32,
    /// `true` brings the link up, `false` takes it down.
    pub up: bool,
}

/// What happens to packets caught on a failed link's queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FailoverPolicy {
    /// Queued packets are dropped; senders recover via timeout.
    Drop,
    /// Queued packets re-enter the network along the recomputed route
    /// (dropped only if no route remains).
    #[default]
    Reroute,
}

impl FailoverPolicy {
    /// Stable wire name (`"drop"` / `"reroute"`).
    pub fn name(self) -> &'static str {
        match self {
            FailoverPolicy::Drop => "drop",
            FailoverPolicy::Reroute => "reroute",
        }
    }

    /// Parse a wire name written by [`FailoverPolicy::name`].
    pub fn from_name(s: &str) -> Result<FailoverPolicy, String> {
        match s {
            "drop" => Ok(FailoverPolicy::Drop),
            "reroute" => Ok(FailoverPolicy::Reroute),
            other => Err(format!("unknown failover policy '{other}'")),
        }
    }
}

/// The routing view of a built network, embedded in a
/// [`crate::topology::Topology`] so the engine can recompute routes at
/// runtime. Links are 1:1 with the topology's hops.
#[derive(Clone, Debug, PartialEq)]
pub struct NetGraph {
    /// Router names, indexed by router id.
    pub routers: Vec<String>,
    /// Directed links; index `i` is hop `i` of the owning topology.
    pub links: Vec<GraphLink>,
    /// Per-flow `(source, destination)` router indices, in sender order.
    pub flows: Vec<(u32, u32)>,
    /// Scheduled link failures/recoveries.
    pub events: Vec<LinkEvent>,
    /// Policy for packets caught on a failed link.
    pub policy: FailoverPolicy,
}

impl NetGraph {
    /// Router index for `name`, if present.
    pub fn router_index(&self, name: &str) -> Option<u32> {
        self.routers
            .iter()
            .position(|r| r == name)
            .map(|i| i as u32)
    }

    /// Shortest distance from every router *to* destination `d`,
    /// skipping links marked in `down` (an empty slice means all up).
    /// Unreachable routers get `u64::MAX`.
    fn dist_to(&self, d: usize, down: &[bool]) -> Vec<u64> {
        const INF: u64 = u64::MAX;
        let n = self.routers.len();
        let mut dist = vec![INF; n];
        dist[d] = 0;
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        heap.push(Reverse((0, d as u32)));
        while let Some(Reverse((du, u))) = heap.pop() {
            if du > dist[u as usize] {
                continue;
            }
            for (i, l) in self.links.iter().enumerate() {
                if l.dst != u || down.get(i).copied().unwrap_or(false) {
                    continue;
                }
                let nd = du.saturating_add(l.weight);
                if nd < dist[l.src as usize] {
                    dist[l.src as usize] = nd;
                    heap.push(Reverse((nd, l.src)));
                }
            }
        }
        dist
    }

    /// Compute full forwarding tables with the links in `down` removed:
    /// `tables[d][r]` is the link index router `r` forwards on toward
    /// destination `d`, or [`NO_ROUTE`]. Equal-cost choices are broken
    /// by the smallest `(cost, neighbor router, link id)` triple, so
    /// the result is independent of Dijkstra's visit order and — for
    /// links between distinct router pairs — of link insertion order.
    pub fn forwarding(&self, down: &[bool]) -> Vec<Vec<u32>> {
        const INF: u64 = u64::MAX;
        let n = self.routers.len();
        let mut tables = Vec::with_capacity(n);
        for d in 0..n {
            let dist = self.dist_to(d, down);
            let mut next = vec![NO_ROUTE; n];
            for (r, slot) in next.iter_mut().enumerate() {
                if r == d || dist[r] == INF {
                    continue;
                }
                let mut best: Option<(u64, u32, u32)> = None;
                for (i, l) in self.links.iter().enumerate() {
                    if l.src != r as u32 || down.get(i).copied().unwrap_or(false) {
                        continue;
                    }
                    let to = dist[l.dst as usize];
                    if to == INF {
                        continue;
                    }
                    let key = (l.weight.saturating_add(to), l.dst, i as u32);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
                if let Some((_, _, link)) = best {
                    *slot = link;
                }
            }
            tables.push(next);
        }
        tables
    }

    /// Read the route `src → dst` (a hop-index list) out of forwarding
    /// tables produced by [`NetGraph::forwarding`]. Fails with a
    /// named-router diagnostic if `dst` is unreachable.
    pub fn route_via(&self, tables: &[Vec<u32>], src: u32, dst: u32) -> Result<Vec<usize>, String> {
        let mut hops = Vec::new();
        let mut at = src;
        while at != dst {
            let link = tables[dst as usize][at as usize];
            if link == NO_ROUTE || hops.len() >= self.routers.len() {
                return Err(format!(
                    "no route from router '{}' to router '{}'",
                    self.routers[src as usize], self.routers[dst as usize]
                ));
            }
            hops.push(link as usize);
            at = self.links[link as usize].dst;
        }
        Ok(hops)
    }

    /// Convenience: compute tables and read one route.
    pub fn route(&self, src: u32, dst: u32, down: &[bool]) -> Result<Vec<usize>, String> {
        self.route_via(&self.forwarding(down), src, dst)
    }

    /// Serialize to a JSON value.
    pub fn to_json_value(&self) -> Value {
        let mut fields = vec![
            (
                "routers",
                Value::Arr(self.routers.iter().map(Value::str).collect()),
            ),
            (
                "links",
                Value::Arr(
                    self.links
                        .iter()
                        .map(|l| {
                            Value::obj(vec![
                                ("src", json::u64_value(l.src as u64)),
                                ("dst", json::u64_value(l.dst as u64)),
                                ("weight", json::u64_value(l.weight)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "flows",
                Value::Arr(
                    self.flows
                        .iter()
                        .map(|&(s, d)| {
                            Value::Arr(vec![json::u64_value(s as u64), json::u64_value(d as u64)])
                        })
                        .collect(),
                ),
            ),
        ];
        if !self.events.is_empty() {
            fields.push((
                "events",
                Value::Arr(
                    self.events
                        .iter()
                        .map(|e| {
                            Value::obj(vec![
                                ("at_ns", json::ns_value(e.at)),
                                ("link", json::u64_value(e.link as u64)),
                                ("up", Value::Bool(e.up)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        fields.push(("policy", Value::str(self.policy.name())));
        Value::obj(fields)
    }

    /// Deserialize a value written by [`NetGraph::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<NetGraph, String> {
        let routers = v
            .field("routers")?
            .as_arr()?
            .iter()
            .map(|r| r.as_str().map(str::to_string))
            .collect::<Result<Vec<String>, String>>()?;
        let links = v
            .field("links")?
            .as_arr()?
            .iter()
            .map(|l| {
                Ok(GraphLink {
                    src: l.field("src")?.as_u64()? as u32,
                    dst: l.field("dst")?.as_u64()? as u32,
                    weight: l.field("weight")?.as_u64()?,
                })
            })
            .collect::<Result<Vec<GraphLink>, String>>()?;
        let flows = v
            .field("flows")?
            .as_arr()?
            .iter()
            .map(|f| {
                let pair = f.as_arr()?;
                if pair.len() != 2 {
                    return Err("flow endpoints must be a [src, dst] pair".to_string());
                }
                Ok((pair[0].as_u64()? as u32, pair[1].as_u64()? as u32))
            })
            .collect::<Result<Vec<(u32, u32)>, String>>()?;
        let events = match v.get("events") {
            None | Some(Value::Null) => Vec::new(),
            Some(e) => e
                .as_arr()?
                .iter()
                .map(|e| {
                    Ok(LinkEvent {
                        at: json::ns_from(e.field("at_ns")?)?,
                        link: e.field("link")?.as_u64()? as u32,
                        up: e.field("up")?.as_bool()?,
                    })
                })
                .collect::<Result<Vec<LinkEvent>, String>>()?,
        };
        let policy = FailoverPolicy::from_name(v.field("policy")?.as_str()?)?;
        let n = routers.len() as u32;
        for l in &links {
            if l.src >= n || l.dst >= n {
                return Err("graph link endpoint out of range".to_string());
            }
        }
        for &(s, d) in &flows {
            if s >= n || d >= n {
                return Err("graph flow endpoint out of range".to_string());
            }
        }
        for e in &events {
            if e.link as usize >= links.len() {
                return Err(format!("link event references unknown link {}", e.link));
            }
        }
        Ok(NetGraph {
            routers,
            links,
            flows,
            events,
            policy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire() -> (LinkSpec, QueueSpec) {
        (
            LinkSpec::constant(10.0),
            QueueSpec::DropTail { capacity: 100 },
        )
    }

    /// The failover testbed: a 3-hop chain a-b-c-d plus a heavier
    /// backup path a-e-d.
    fn chain_with_backup() -> Network {
        let (l, q) = wire();
        let mut b = NetworkBuilder::new();
        let a = b.add_router("a");
        let bb = b.add_router("b");
        let c = b.add_router("c");
        let d = b.add_router("d");
        let e = b.add_router("e");
        b.add_duplex_link(a, bb, l.clone(), q.clone(), Ns::from_millis(5));
        b.add_duplex_link(bb, c, l.clone(), q.clone(), Ns::from_millis(5));
        b.add_duplex_link(c, d, l.clone(), q.clone(), Ns::from_millis(5));
        b.add_weighted_duplex_link(a, e, l.clone(), q.clone(), Ns::from_millis(20), 2);
        b.add_weighted_duplex_link(e, d, l, q, Ns::from_millis(20), 2);
        b.build().expect("valid network")
    }

    #[test]
    fn shortest_paths_prefer_the_light_chain() {
        let net = chain_with_backup();
        let g = net.graph();
        // a→d rides the chain (links 0, 2, 4: a→b, b→c, c→d).
        assert_eq!(g.route(0, 3, &[]).unwrap(), vec![0, 2, 4]);
        // d→a rides it backwards (links 5, 3, 1).
        assert_eq!(g.route(3, 0, &[]).unwrap(), vec![5, 3, 1]);
    }

    #[test]
    fn failed_links_shift_routes_to_the_backup_path() {
        let net = chain_with_backup();
        let g = net.graph();
        let mut down = vec![false; g.links.len()];
        down[2] = true; // b→c
        down[3] = true; // c→b
                        // a→d now rides a→e→d (links 6, 8).
        assert_eq!(g.route(0, 3, &down).unwrap(), vec![6, 8]);
        // …and recovery restores the original tables exactly.
        let up = vec![false; g.links.len()];
        assert_eq!(
            g.forwarding(&up),
            chain_with_backup().graph().forwarding(&[])
        );
    }

    #[test]
    fn equal_cost_ties_break_on_router_id_not_insertion_order() {
        // Diamond: s reaches t through m1 or m2 at equal cost; the
        // route must pick the smaller router id however links were
        // inserted.
        let (l, q) = wire();
        let routes: Vec<Vec<(u32, u32)>> = [false, true]
            .iter()
            .map(|&flip| {
                let mut b = NetworkBuilder::new();
                let s = b.add_router("s");
                let m1 = b.add_router("m1");
                let m2 = b.add_router("m2");
                let t = b.add_router("t");
                let legs: Vec<(RouterId, RouterId)> = if flip {
                    vec![(s, m2), (m2, t), (s, m1), (m1, t)]
                } else {
                    vec![(s, m1), (m1, t), (s, m2), (m2, t)]
                };
                for (x, y) in legs {
                    b.add_duplex_link(x, y, l.clone(), q.clone(), Ns::from_millis(1));
                }
                let net = b.build().expect("valid network");
                let g = net.graph();
                g.route(s.0, t.0, &[])
                    .unwrap()
                    .iter()
                    .map(|&h| (g.links[h].src, g.links[h].dst))
                    .collect()
            })
            .collect();
        assert_eq!(routes[0], routes[1]);
        // Both traverse m1 (router id 1).
        assert_eq!(routes[0][0], (0, 1));
    }

    #[test]
    fn unreachable_pairs_name_both_routers() {
        let (l, q) = wire();
        let mut b = NetworkBuilder::new();
        let x = b.add_router("left");
        let y = b.add_router("right");
        let z = b.add_router("island");
        b.add_duplex_link(x, y, l, q, Ns::from_millis(1));
        let net = b.build().expect("valid network");
        let err = net.graph().route(x.0, z.0, &[]).unwrap_err();
        assert!(
            err.contains("'left'") && err.contains("'island'"),
            "diagnostic names both endpoints: {err}"
        );
    }

    #[test]
    fn builder_rejects_duplicates_and_self_loops() {
        let (l, q) = wire();
        let mut b = NetworkBuilder::new();
        b.add_router("a");
        b.add_router("a");
        assert!(b.build().unwrap_err().contains("duplicate router name 'a'"));
        let mut b = NetworkBuilder::new();
        let a = b.add_router("a");
        b.add_link(a, a, l, q, Ns::ZERO);
        assert!(b.build().unwrap_err().contains("self-loop"));
        assert!(NetworkBuilder::new().build().is_err());
    }

    #[test]
    fn fat_tree_k4_has_the_canonical_shape() {
        let (l, q) = wire();
        let net = NetworkBuilder::fat_tree_k4(&l, &q, Ns::from_micros(100))
            .build()
            .expect("valid network");
        let g = net.graph();
        assert_eq!(g.routers.len(), 20);
        // 16 edge–agg + 16 agg–core duplex pairs = 64 directed links.
        assert_eq!(g.links.len(), 64);
        // Every edge router reaches every other edge router.
        let tables = g.forwarding(&vec![false; g.links.len()]);
        let edges: Vec<u32> = (0..20)
            .filter(|&i| g.routers[i as usize].contains("edge"))
            .collect();
        assert_eq!(edges.len(), 8);
        for &a in &edges {
            for &b in &edges {
                if a != b {
                    let r = g.route_via(&tables, a, b).expect("reachable");
                    // Intra-pod: 2 hops via the pod agg; cross-pod: 4
                    // hops via a core.
                    assert!(r.len() == 2 || r.len() == 4, "route {a}->{b}: {r:?}");
                }
            }
        }
    }

    #[test]
    fn chain_builder_matches_hand_wiring() {
        let (l, q) = wire();
        let net = NetworkBuilder::chain(3, &l, &q, Ns::from_millis(2))
            .build()
            .expect("valid network");
        let g = net.graph();
        assert_eq!(g.routers, vec!["r0", "r1", "r2", "r3"]);
        assert_eq!(g.links.len(), 6);
        assert_eq!(g.route(0, 3, &[]).unwrap(), vec![0, 2, 4]);
    }

    #[test]
    fn waxman_draws_are_seed_deterministic() {
        let (l, q) = wire();
        let a = NetworkBuilder::waxman(12, 0.9, 0.5, 42, &l, &q, Ns::from_millis(1))
            .build()
            .expect("valid network");
        let b = NetworkBuilder::waxman(12, 0.9, 0.5, 42, &l, &q, Ns::from_millis(1))
            .build()
            .expect("valid network");
        assert_eq!(a.graph(), b.graph());
        let c = NetworkBuilder::waxman(12, 0.9, 0.5, 43, &l, &q, Ns::from_millis(1))
            .build()
            .expect("valid network");
        assert!(
            a.graph() != c.graph(),
            "different seeds draw different graphs"
        );
    }

    #[test]
    fn disconnected_waxman_surfaces_a_named_diagnostic() {
        let (l, q) = wire();
        // alpha == 0 draws no links at all: every pair is unreachable.
        let net = NetworkBuilder::waxman(4, 0.0, 0.5, 7, &l, &q, Ns::from_millis(1))
            .build()
            .expect("builds even when disconnected");
        let err = net
            .into_topology(
                &[(RouterId(0), RouterId(3))],
                Vec::new(),
                FailoverPolicy::Reroute,
            )
            .unwrap_err();
        assert!(err.contains("'w0'") && err.contains("'w3'"), "{err}");
    }

    #[test]
    fn into_topology_derives_paths_and_embeds_the_graph() {
        let net = chain_with_backup();
        let flows = vec![(RouterId(0), RouterId(3)), (RouterId(0), RouterId(3))];
        let events = vec![
            LinkEvent {
                at: Ns::from_secs(5),
                link: 2,
                up: false,
            },
            LinkEvent {
                at: Ns::from_secs(5),
                link: 3,
                up: false,
            },
        ];
        let topo = net
            .into_topology(&flows, events.clone(), FailoverPolicy::Reroute)
            .expect("routable");
        assert_eq!(topo.hops.len(), 10);
        assert_eq!(topo.paths[0].fwd, vec![0, 2, 4]);
        assert_eq!(topo.paths[0].ack, vec![5, 3, 1]);
        let g = topo.graph.as_ref().expect("graph embedded");
        assert_eq!(g.flows, vec![(0, 3), (0, 3)]);
        assert_eq!(g.events, events);
        topo.validate(2).expect("valid topology");
    }

    #[test]
    fn netgraph_round_trips_through_json() {
        let topo = chain_with_backup()
            .into_topology(
                &[(RouterId(0), RouterId(3))],
                vec![LinkEvent {
                    at: Ns::from_secs(3),
                    link: 2,
                    up: false,
                }],
                FailoverPolicy::Drop,
            )
            .expect("routable");
        let g = topo.graph.expect("graph embedded");
        let text = g.to_json_value().pretty();
        let back = NetGraph::from_json_value(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(g, back);
        // Corrupt documents are rejected, not mis-parsed.
        assert!(NetGraph::from_json_value(
            &crate::json::parse(&text.replace("reroute", "drop")).unwrap()
        )
        .is_ok());
        assert!(NetGraph::from_json_value(
            &crate::json::parse(&text.replace("\"drop\"", "\"nonsense\"")).unwrap()
        )
        .is_err());
        assert!(NetGraph::from_json_value(
            &crate::json::parse(&text.replace("\"link\": 2", "\"link\": 99")).unwrap()
        )
        .is_err());
    }
}
