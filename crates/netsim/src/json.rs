//! A small self-contained JSON value tree, parser, and pretty-printer.
//!
//! The rule-table asset format (`remy::whisker::WhiskerTree::to_json`)
//! originally rode on `serde_json`; the build environment for this
//! reproduction has no registry access, so the handful of JSON features
//! the format needs live here instead. Numbers are formatted with Rust's
//! shortest-round-trip `Display`, so `f64` values survive a round trip
//! bit-for-bit.
//!
//! The module also serves the declarative experiment layer: scenarios
//! ([`crate::scenario::Scenario`]) and experiment specifications
//! (`remy_sim::spec::ExperimentSpec`) serialize through the same value
//! tree, using the [`u64_value`]/[`ns_value`] helpers for fields — seeds,
//! nanosecond clocks — whose full integer range a JSON `f64` cannot carry.

use crate::time::Ns;
use std::fmt::Write as _;

/// One JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as f64; the format never needs full u64 range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Key order is preserved (deterministic output).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object field, with a path-flavored error.
    pub fn field(&self, key: &str) -> Result<&Value, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field '{key}'"))
    }

    /// This value as f64.
    pub fn as_f64(&self) -> Result<f64, String> {
        match self {
            Value::Num(n) => Ok(*n),
            other => Err(format!("expected number, found {}", other.kind())),
        }
    }

    /// This value as u64. Accepts an integer-valued number small enough
    /// (≤ 2^53) for an `f64` to represent it exactly, or a decimal string
    /// (how [`u64_value`] encodes the values that are not).
    pub fn as_u64(&self) -> Result<u64, String> {
        if let Value::Str(s) = self {
            return s
                .parse::<u64>()
                .map_err(|_| format!("expected unsigned integer, found '{s}'"));
        }
        let n = self.as_f64()?;
        if n < 0.0 || n.fract() != 0.0 || n > MAX_EXACT_F64_INT {
            return Err(format!("expected exact unsigned integer, found {n}"));
        }
        Ok(n as u64)
    }

    /// This value as bool.
    pub fn as_bool(&self) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, found {}", other.kind())),
        }
    }

    /// This value as usize.
    pub fn as_usize(&self) -> Result<usize, String> {
        Ok(self.as_u64()? as usize)
    }

    /// This value as &str.
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(format!("expected string, found {}", other.kind())),
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Result<&[Value], String> {
        match self {
            Value::Arr(v) => Ok(v),
            other => Err(format!("expected array, found {}", other.kind())),
        }
    }

    /// Shorthand object constructor, preserving field order.
    pub fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Shorthand string constructor.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Shorthand number constructor.
    pub fn num(n: f64) -> Value {
        Value::Num(n)
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// Render with two-space indentation (the shipped-asset format).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_string(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        // Rust's Display prints the shortest decimal that round-trips.
        let _ = write!(out, "{n}");
    } else {
        // JSON has no Inf/NaN; the format never produces them, but never
        // emit invalid JSON either.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Largest integer an `f64` represents exactly (2^53). Above this, JSON
/// numbers silently lose low bits, so [`u64_value`] switches to strings.
const MAX_EXACT_F64_INT: f64 = 9_007_199_254_740_992.0;

/// Encode a `u64` losslessly: a JSON number when an `f64` holds it
/// exactly, a decimal string otherwise (full-range seeds). [`Value::as_u64`]
/// decodes both forms.
pub fn u64_value(x: u64) -> Value {
    if (x as f64) <= MAX_EXACT_F64_INT && x as f64 as u64 == x {
        Value::Num(x as f64)
    } else {
        Value::Str(x.to_string())
    }
}

/// Encode a nanosecond clock losslessly. [`Ns::MAX`] — the simulator's
/// "infinitely far" sentinel — becomes `null`.
pub fn ns_value(t: Ns) -> Value {
    if t == Ns::MAX {
        Value::Null
    } else {
        u64_value(t.0)
    }
}

/// Decode a nanosecond clock written by [`ns_value`].
pub fn ns_from(v: &Value) -> Result<Ns, String> {
    match v {
        Value::Null => Ok(Ns::MAX),
        other => Ok(Ns(other.as_u64()?)),
    }
}

/// Maximum container nesting the parser accepts (matches serde_json's
/// default recursion limit; the parser is recursive-descent, so this keeps
/// corrupt or crafted input from overflowing the stack).
const MAX_DEPTH: usize = 128;

/// Parse a JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let end = self.pos + 4;
                            if end > self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..end])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this format;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8 character: decode just its bytes
                    // (input is &str, so validity is already guaranteed).
                    let start = self.pos - 1;
                    let end = (start + 4).min(self.bytes.len());
                    let s = char_at(&self.bytes[start..end])?;
                    out.push(s);
                    self.pos = start + s.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(format!("expected value at byte {start}"));
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("non-ascii number at byte {start}"))?;
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{s}' at byte {start}"))
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Value, String> {
        self.enter()?;
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.enter()?;
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Decode the first UTF-8 character from `bytes` (guaranteed valid by the
/// `&str` input; the slice is bounded to at most 4 bytes).
fn char_at(bytes: &[u8]) -> Result<char, String> {
    let s = match std::str::from_utf8(bytes) {
        Ok(s) => s,
        // The 4-byte window may cut the *next* character; validity holds up
        // to the error offset, which covers the first character.
        Err(e) if e.valid_up_to() > 0 => match std::str::from_utf8(&bytes[..e.valid_up_to()]) {
            Ok(s) => s,
            Err(_) => return Err("invalid UTF-8 in string".to_string()),
        },
        Err(_) => return Err("invalid UTF-8 in string".to_string()),
    };
    s.chars()
        .next()
        .ok_or_else(|| "empty string slice".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "-1.5", "16385", "1e-9"] {
            let v = parse(text).expect("parse");
            let back = parse(&v.pretty()).expect("reparse");
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn f64_display_round_trips_exactly() {
        for x in [0.1, 1.0 / 3.0, 16385.0, 1e-300, f64::MAX, 5e-324] {
            let mut s = String::new();
            write_number(&mut s, x);
            let v = parse(&s).expect("parse");
            assert_eq!(v.as_f64().unwrap().to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn nested_structures() {
        let text = r#"{"a": [1, 2, {"b": "x\n\"y\""}], "c": {}}"#;
        let v = parse(text).expect("parse");
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        let back = parse(&v.pretty()).expect("reparse");
        assert_eq!(v, back);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("1 2").is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let bomb = "[".repeat(100_000);
        let err = parse(&bomb).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // At the limit itself, parsing still works.
        let ok = format!("{}1{}", "[".repeat(128), "]".repeat(128));
        assert!(parse(&ok).is_ok());
        let over = format!("{}1{}", "[".repeat(129), "]".repeat(129));
        assert!(parse(&over).is_err());
    }

    #[test]
    fn depth_is_per_branch_not_cumulative() {
        // Many sibling containers must not trip the depth limit.
        let many = format!("[{}]", vec!["[]"; 1000].join(","));
        assert!(parse(&many).is_ok());
    }

    #[test]
    fn multibyte_strings_round_trip() {
        let v = parse("\"δ=0.1 → π≈3.14159 ✓\"").expect("parse");
        assert_eq!(v.as_str().unwrap(), "δ=0.1 → π≈3.14159 ✓");
        let back = parse(&v.pretty()).expect("reparse");
        assert_eq!(v, back);
    }

    #[test]
    fn u64_round_trips_full_range() {
        for x in [0u64, 1, 16_384, 1u64 << 53, (1u64 << 53) + 1, u64::MAX] {
            let v = u64_value(x);
            let back = parse(&v.pretty()).expect("parse");
            assert_eq!(back.as_u64().unwrap(), x, "{x}");
        }
        // Values beyond 2^53 must not silently ride a lossy f64.
        assert!(matches!(u64_value(u64::MAX), Value::Str(_)));
        assert!(Value::Num(9.1e15).as_u64().is_err());
    }

    #[test]
    fn ns_round_trips_including_max_sentinel() {
        for t in [Ns::ZERO, Ns::from_millis(150), Ns::from_secs(100), Ns::MAX] {
            let v = ns_value(t);
            assert_eq!(ns_from(&parse(&v.pretty()).unwrap()).unwrap(), t);
        }
        assert_eq!(ns_value(Ns::MAX), Value::Null);
    }

    #[test]
    fn bool_and_builders() {
        let v = Value::obj(vec![
            ("on", Value::Bool(true)),
            ("name", Value::str("x")),
            ("n", Value::num(3.0)),
        ]);
        assert!(v.field("on").unwrap().as_bool().unwrap());
        assert!(v.field("name").unwrap().as_bool().is_err());
        assert_eq!(v.field("name").unwrap().as_str().unwrap(), "x");
        assert_eq!(v.field("n").unwrap().as_f64().unwrap(), 3.0);
    }

    #[test]
    fn field_access_helpers() {
        let v = parse(r#"{"n": 3, "s": "hi"}"#).unwrap();
        assert_eq!(v.field("n").unwrap().as_usize().unwrap(), 3);
        assert_eq!(v.field("s").unwrap().as_str().unwrap(), "hi");
        assert!(v.field("missing").is_err());
        assert!(v.field("s").unwrap().as_u64().is_err());
        assert!(parse("1.5").unwrap().as_u64().is_err());
    }
}
