//! # netsim — a deterministic dumbbell network simulator
//!
//! This crate is the substrate for the Rust reproduction of *TCP ex
//! Machina: Computer-Generated Congestion Control* (Winstein &
//! Balakrishnan, SIGCOMM 2013). The paper evaluates congestion-control
//! schemes in ns-2 on dumbbell topologies (Fig. 2): `n` senders share one
//! bottleneck queue and link, with per-flow propagation delays and an
//! uncongested ACK return path. `netsim` implements exactly that world as
//! a deterministic discrete-event simulation:
//!
//! * [`sim::Simulator`] — the event loop;
//! * [`queue`] — DropTail, DCTCP-style ECN marking, CoDel, and sfqCoDel;
//! * [`link`] — fixed-rate and trace-driven (cellular) bottleneck links;
//! * [`traffic`] — the paper's on/off workload models (by time, by bytes,
//!   and the empirical Fig. 3 heavy-tailed flow lengths);
//! * [`transport`] — a reliable sender (dup-ACK fast retransmit, NewReno
//!   partial-ACK handling, RTO with go-back-N) that hosts any
//!   [`cc::CongestionControl`] implementation;
//! * [`metrics`] / [`stats`] — the paper's measurement definitions
//!   (throughput `Σsᵢ/Σtᵢ`, queueing delay, medians and 1-σ ellipses);
//! * [`topology`] — multi-hop topologies (parking-lot chains, incast
//!   fan-in, congested ACK paths) routed through the same event loop;
//! * [`graph`] — first-class network graphs: named routers, weighted
//!   links, deterministic shortest-path routing, link-failure events,
//!   and generated shapes (chain, fat-tree k=4, Waxman);
//! * [`router`] — the hook XCP uses to run code at the bottleneck;
//! * [`rng`] — deterministic, forkable randomness (common random numbers
//!   are load-bearing for Remy's optimizer).
//!
//! ## Quick example
//!
//! ```
//! use netsim::prelude::*;
//!
//! // Two fixed-window senders share a 10 Mbps, 100 ms dumbbell.
//! let scenario = Scenario::dumbbell(
//!     LinkSpec::constant(10.0),
//!     QueueSpec::DropTail { capacity: 1000 },
//!     2,
//!     Ns::from_millis(100),
//!     TrafficSpec::saturating(),
//!     Ns::from_secs(10),
//!     7,
//! );
//! let results = run_scenario(&scenario, &|_| Box::new(FixedWindow::new(50.0)));
//! assert!(results.utilization(10.0) > 0.9);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod cc;
pub mod flow;
pub mod graph;
pub mod json;
pub mod link;
pub mod metrics;
pub mod packet;
pub mod queue;
pub mod rng;
pub mod router;
pub mod scenario;
pub mod sched;
pub mod sim;
pub mod stats;
pub mod time;
pub mod topology;
pub mod traffic;
pub mod transport;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::cc::{factory, AckInfo, CcFactory, CongestionControl, FixedWindow, LossEvent};
    pub use crate::flow::{FlowCold, FlowHot, FlowId, FlowTable};
    pub use crate::graph::{
        FailoverPolicy, LinkEvent, LinkId, NetGraph, Network, NetworkBuilder, RouterId,
    };
    pub use crate::link::{DeliverySchedule, LinkSpec};
    pub use crate::metrics::{FlowSummary, PopulationSummary, SimResults};
    pub use crate::packet::{Ack, Packet, PacketArena, PacketId};
    pub use crate::queue::QueueSpec;
    pub use crate::rng::SimRng;
    pub use crate::router::{NoopRouter, RouterHook};
    pub use crate::scenario::{ChurnSpec, Scenario, SenderConfig};
    pub use crate::sched::SchedulerKind;
    pub use crate::sim::{run_scenario, Simulator};
    pub use crate::time::Ns;
    pub use crate::topology::{FlowPath, HopSpec, Topology};
    pub use crate::traffic::{OnSpec, TrafficSpec};
    pub use crate::transport::Transport;
}
