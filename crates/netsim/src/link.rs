//! Bottleneck link models.
//!
//! Two service models cover every experiment in the paper:
//!
//! * [`LinkSpec::Constant`] — a fixed-rate link: each packet occupies the
//!   link for `size * 8 / rate` seconds (the dumbbell and datacenter
//!   experiments).
//! * [`LinkSpec::Trace`] — a trace-driven link: the link may release one
//!   packet at each instant recorded in a delivery schedule, exactly the
//!   paper's cellular methodology ("queueing packets until they are
//!   released to the receiver at the same time they were released in the
//!   trace", §5.1). The schedule loops when the simulation outlasts it.

use crate::json::Value;
use crate::time::{service_time, Ns};
use std::sync::Arc;

/// Declarative link configuration.
#[derive(Clone, Debug)]
pub enum LinkSpec {
    /// Fixed-rate link.
    Constant {
        /// Rate in megabits per second.
        rate_mbps: f64,
    },
    /// Trace-driven link: one delivery opportunity per instant in
    /// `schedule` (strictly increasing). When the simulation runs past the
    /// end, the schedule repeats with period `schedule.last() + tail_gap`.
    Trace {
        /// The delivery-opportunity schedule.
        schedule: Arc<DeliverySchedule>,
        /// Descriptive name for reports (e.g. "verizon-lte-down").
        name: String,
    },
}

impl LinkSpec {
    /// A fixed-rate link.
    pub fn constant(rate_mbps: f64) -> LinkSpec {
        assert!(rate_mbps > 0.0, "link rate must be positive");
        LinkSpec::Constant { rate_mbps }
    }

    /// A trace-driven link from a delivery schedule.
    pub fn trace(name: impl Into<String>, schedule: DeliverySchedule) -> LinkSpec {
        LinkSpec::Trace {
            schedule: Arc::new(schedule),
            name: name.into(),
        }
    }

    /// The long-term average rate in Mbps, assuming `mss`-byte packets.
    /// For constant links this is exact; for traces it is the mean delivery
    /// rate over one full period. XCP is configured with this value (the
    /// paper supplies XCP "the long-term average link speed" on traces).
    pub fn average_rate_mbps(&self, mss: u32) -> f64 {
        match self {
            LinkSpec::Constant { rate_mbps } => *rate_mbps,
            LinkSpec::Trace { schedule, .. } => {
                let n = schedule.instants.len() as f64;
                let period = schedule.period().as_secs_f64();
                if period <= 0.0 {
                    0.0
                } else {
                    n * mss as f64 * 8.0 / period / 1e6
                }
            }
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            LinkSpec::Constant { rate_mbps } => format!("{rate_mbps} Mbps"),
            LinkSpec::Trace { name, .. } => name.clone(),
        }
    }

    /// Serialize to a JSON value. Trace links carry their full delivery
    /// schedule inline, so a serialized scenario pins the experiment
    /// byte-for-byte with no external trace files.
    pub fn to_json_value(&self) -> Value {
        match self {
            LinkSpec::Constant { rate_mbps } => Value::obj(vec![
                ("kind", Value::str("constant")),
                ("rate_mbps", Value::num(*rate_mbps)),
            ]),
            LinkSpec::Trace { schedule, name } => Value::obj(vec![
                ("kind", Value::str("trace")),
                ("name", Value::str(name.clone())),
                (
                    "instants_ns",
                    Value::Arr(
                        schedule
                            .instants()
                            .iter()
                            .map(|t| crate::json::ns_value(*t))
                            .collect(),
                    ),
                ),
                ("tail_gap_ns", crate::json::ns_value(schedule.tail_gap())),
            ]),
        }
    }

    /// Deserialize a value written by [`LinkSpec::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<LinkSpec, String> {
        match v.field("kind")?.as_str()? {
            "constant" => {
                let rate = v.field("rate_mbps")?.as_f64()?;
                if !rate.is_finite() || rate <= 0.0 {
                    return Err(format!("link rate must be positive, got {rate}"));
                }
                Ok(LinkSpec::Constant { rate_mbps: rate })
            }
            "trace" => {
                let name = v.field("name")?.as_str()?.to_string();
                let instants = v
                    .field("instants_ns")?
                    .as_arr()?
                    .iter()
                    .map(crate::json::ns_from)
                    .collect::<Result<Vec<Ns>, String>>()?;
                let tail_gap = crate::json::ns_from(v.field("tail_gap_ns")?)?;
                if instants.is_empty() {
                    return Err("trace link needs at least one instant".to_string());
                }
                for w in instants.windows(2) {
                    if w[0] >= w[1] {
                        return Err("trace instants must strictly increase".to_string());
                    }
                }
                Ok(LinkSpec::Trace {
                    schedule: Arc::new(DeliverySchedule::new(instants, tail_gap)),
                    name,
                })
            }
            other => Err(format!("unknown link kind '{other}'")),
        }
    }
}

/// A strictly-increasing list of packet-delivery instants.
#[derive(Clone, Debug, Default)]
pub struct DeliverySchedule {
    instants: Vec<Ns>,
    /// Gap appended after the final instant before the schedule repeats.
    tail_gap: Ns,
}

impl DeliverySchedule {
    /// Build a schedule from delivery instants. The list must be
    /// non-empty and strictly increasing. `tail_gap` is the idle time
    /// between the last instant and the start of the next repetition; a
    /// reasonable choice is the mean inter-delivery gap.
    pub fn new(instants: Vec<Ns>, tail_gap: Ns) -> DeliverySchedule {
        assert!(!instants.is_empty(), "empty delivery schedule");
        for w in instants.windows(2) {
            assert!(w[0] < w[1], "delivery instants must strictly increase");
        }
        DeliverySchedule { instants, tail_gap }
    }

    /// The repetition period.
    pub fn period(&self) -> Ns {
        *self.instants.last().expect("non-empty") + self.tail_gap
    }

    /// The delivery instants of one period.
    pub fn instants(&self) -> &[Ns] {
        &self.instants
    }

    /// The idle gap appended after the final instant.
    pub fn tail_gap(&self) -> Ns {
        self.tail_gap
    }

    /// Number of delivery opportunities per period.
    pub fn len(&self) -> usize {
        self.instants.len()
    }

    /// True if the schedule holds no instants (never constructed this way).
    pub fn is_empty(&self) -> bool {
        self.instants.is_empty()
    }

    /// The first delivery opportunity strictly after `now`, unrolling the
    /// schedule periodically.
    pub fn next_after(&self, now: Ns) -> Ns {
        let period = self.period();
        debug_assert!(period.0 > 0);
        let cycle = now.0 / period.0;
        let offset = Ns(now.0 % period.0);
        let base = Ns(cycle * period.0);
        // Find the first instant strictly greater than `offset`.
        match self.instants.binary_search_by(|t| {
            if *t <= offset {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        }) {
            Ok(_) => unreachable!("comparator never returns Equal"),
            Err(idx) => {
                if idx < self.instants.len() {
                    base + self.instants[idx]
                } else {
                    // Wrap into the next cycle.
                    Ns(base.0 + period.0) + self.instants[0]
                }
            }
        }
    }
}

/// Runtime state of the bottleneck link inside the simulator.
pub enum LinkState {
    /// Fixed-rate service.
    Constant {
        /// Rate in megabits per second.
        rate_mbps: f64,
    },
    /// Trace-driven delivery.
    Trace {
        /// The delivery-opportunity schedule.
        schedule: Arc<DeliverySchedule>,
    },
}

impl LinkState {
    /// Instantiate runtime state from a spec.
    pub fn from_spec(spec: &LinkSpec) -> LinkState {
        match spec {
            LinkSpec::Constant { rate_mbps } => LinkState::Constant {
                rate_mbps: *rate_mbps,
            },
            LinkSpec::Trace { schedule, .. } => LinkState::Trace {
                schedule: Arc::clone(schedule),
            },
        }
    }

    /// Service time for a packet of `bytes` bytes on a constant link;
    /// trace links have no per-packet service time (delivery is pinned to
    /// trace instants).
    pub fn service_time(&self, bytes: u32) -> Option<Ns> {
        match self {
            LinkState::Constant { rate_mbps } => Some(service_time(bytes, *rate_mbps)),
            LinkState::Trace { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_link_average_rate() {
        let l = LinkSpec::constant(15.0);
        assert_eq!(l.average_rate_mbps(1500), 15.0);
        assert_eq!(l.label(), "15 Mbps");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn constant_link_rejects_zero_rate() {
        let _ = LinkSpec::constant(0.0);
    }

    #[test]
    fn schedule_next_after_basic() {
        let s = DeliverySchedule::new(
            vec![Ns(10), Ns(20), Ns(35)],
            Ns(5), // period = 40
        );
        assert_eq!(s.period(), Ns(40));
        assert_eq!(s.next_after(Ns(0)), Ns(10));
        assert_eq!(s.next_after(Ns(10)), Ns(20)); // strictly after
        assert_eq!(s.next_after(Ns(21)), Ns(35));
        // Wraps to next cycle: 40 + 10.
        assert_eq!(s.next_after(Ns(35)), Ns(50));
        assert_eq!(s.next_after(Ns(36)), Ns(50));
    }

    #[test]
    fn schedule_unrolls_many_cycles() {
        let s = DeliverySchedule::new(vec![Ns(1), Ns(3)], Ns(1)); // period 4
                                                                  // Cycle k delivers at 4k+1, 4k+3.
        assert_eq!(s.next_after(Ns(100)), Ns(101));
        assert_eq!(s.next_after(Ns(101)), Ns(103));
        assert_eq!(s.next_after(Ns(103)), Ns(105));
    }

    #[test]
    fn schedule_is_strictly_monotonic_generator() {
        let s = DeliverySchedule::new(vec![Ns(5), Ns(9), Ns(14)], Ns(2));
        let mut t = Ns::ZERO;
        let mut prev = Ns::ZERO;
        for _ in 0..100 {
            t = s.next_after(t);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn schedule_rejects_unsorted() {
        let _ = DeliverySchedule::new(vec![Ns(5), Ns(5)], Ns(1));
    }

    #[test]
    fn trace_average_rate() {
        // 4 deliveries of 1500 B over a 2 ms period = 4*12000 bits / 2 ms
        // = 24 Mbps.
        let s = DeliverySchedule::new(
            vec![
                Ns::from_micros(400),
                Ns::from_micros(900),
                Ns::from_micros(1400),
                Ns::from_micros(1900),
            ],
            Ns::from_micros(100),
        );
        let l = LinkSpec::trace("test", s);
        assert!((l.average_rate_mbps(1500) - 24.0).abs() < 1e-9);
    }

    #[test]
    fn link_state_service_time() {
        let c = LinkState::from_spec(&LinkSpec::constant(12.0));
        assert_eq!(c.service_time(1500), Some(Ns::from_millis(1)));
        let t = LinkState::from_spec(&LinkSpec::trace(
            "t",
            DeliverySchedule::new(vec![Ns(1)], Ns(1)),
        ));
        assert_eq!(t.service_time(1500), None);
    }
}
