//! Bottleneck link models.
//!
//! Two service models cover every experiment in the paper:
//!
//! * [`LinkSpec::Constant`] — a fixed-rate link: each packet occupies the
//!   link for `size * 8 / rate` seconds (the dumbbell and datacenter
//!   experiments).
//! * [`LinkSpec::Trace`] — a trace-driven link: the link may release one
//!   packet at each instant recorded in a delivery schedule, exactly the
//!   paper's cellular methodology ("queueing packets until they are
//!   released to the receiver at the same time they were released in the
//!   trace", §5.1). The schedule loops when the simulation outlasts it.

use crate::json::Value;
use crate::time::{service_time, Ns};
use std::sync::Arc;

/// Declarative link configuration.
#[derive(Clone, Debug)]
pub enum LinkSpec {
    /// Fixed-rate link.
    Constant {
        /// Rate in megabits per second.
        rate_mbps: f64,
    },
    /// Trace-driven link: one delivery opportunity per instant in
    /// `schedule` (strictly increasing). When the simulation runs past the
    /// end, the schedule repeats with period `schedule.last() + tail_gap`.
    Trace {
        /// The delivery-opportunity schedule.
        schedule: Arc<DeliverySchedule>,
        /// Descriptive name for reports (e.g. "verizon-lte-down").
        name: String,
    },
}

impl LinkSpec {
    /// A fixed-rate link.
    pub fn constant(rate_mbps: f64) -> LinkSpec {
        assert!(rate_mbps > 0.0, "link rate must be positive");
        LinkSpec::Constant { rate_mbps }
    }

    /// A trace-driven link from a delivery schedule.
    pub fn trace(name: impl Into<String>, schedule: DeliverySchedule) -> LinkSpec {
        LinkSpec::Trace {
            schedule: Arc::new(schedule),
            name: name.into(),
        }
    }

    /// The long-term average rate in Mbps, assuming `mss`-byte packets.
    /// For constant links this is exact; for traces it is the mean delivery
    /// rate over one full period. XCP is configured with this value (the
    /// paper supplies XCP "the long-term average link speed" on traces).
    pub fn average_rate_mbps(&self, mss: u32) -> f64 {
        match self {
            LinkSpec::Constant { rate_mbps } => *rate_mbps,
            LinkSpec::Trace { schedule, .. } => {
                let n = schedule.instants.len() as f64;
                let period = schedule.period().as_secs_f64();
                if period <= 0.0 {
                    0.0
                } else {
                    n * mss as f64 * 8.0 / period / 1e6
                }
            }
        }
    }

    /// Capacity this link actually offers over `(0, window]`, in bits,
    /// assuming `mss`-byte packets. For a constant link this is
    /// `rate × window`; for a trace it is the number of delivery
    /// opportunities the schedule presents in that window times the packet
    /// size — the correct utilization denominator for trace-driven links,
    /// whose instantaneous rate bears little relation to the long-term
    /// average.
    pub fn delivered_capacity_bits(&self, mss: u32, window: Ns) -> f64 {
        match self {
            LinkSpec::Constant { rate_mbps } => rate_mbps * 1e6 * window.as_secs_f64(),
            LinkSpec::Trace { schedule, .. } => {
                schedule.opportunities_through(window) as f64 * mss as f64 * 8.0
            }
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            LinkSpec::Constant { rate_mbps } => format!("{rate_mbps} Mbps"),
            LinkSpec::Trace { name, .. } => name.clone(),
        }
    }

    /// Serialize to a JSON value. Trace links carry their full delivery
    /// schedule inline, so a serialized scenario pins the experiment
    /// byte-for-byte with no external trace files.
    pub fn to_json_value(&self) -> Value {
        match self {
            LinkSpec::Constant { rate_mbps } => Value::obj(vec![
                ("kind", Value::str("constant")),
                ("rate_mbps", Value::num(*rate_mbps)),
            ]),
            LinkSpec::Trace { schedule, name } => Value::obj(vec![
                ("kind", Value::str("trace")),
                ("name", Value::str(name.clone())),
                (
                    "instants_ns",
                    Value::Arr(
                        schedule
                            .instants()
                            .iter()
                            .map(|t| crate::json::ns_value(*t))
                            .collect(),
                    ),
                ),
                ("tail_gap_ns", crate::json::ns_value(schedule.tail_gap())),
            ]),
        }
    }

    /// Deserialize a value written by [`LinkSpec::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<LinkSpec, String> {
        match v.field("kind")?.as_str()? {
            "constant" => {
                let rate = v.field("rate_mbps")?.as_f64()?;
                if !rate.is_finite() || rate <= 0.0 {
                    return Err(format!("link rate must be positive, got {rate}"));
                }
                Ok(LinkSpec::Constant { rate_mbps: rate })
            }
            "trace" => {
                let name = v.field("name")?.as_str()?.to_string();
                let instants = v
                    .field("instants_ns")?
                    .as_arr()?
                    .iter()
                    .map(crate::json::ns_from)
                    .collect::<Result<Vec<Ns>, String>>()?;
                let tail_gap = crate::json::ns_from(v.field("tail_gap_ns")?)?;
                if instants.is_empty() {
                    return Err("trace link needs at least one instant".to_string());
                }
                if instants[0] == Ns::ZERO {
                    return Err("trace instants must be strictly positive".to_string());
                }
                for w in instants.windows(2) {
                    if w[0] >= w[1] {
                        return Err("trace instants must strictly increase".to_string());
                    }
                }
                Ok(LinkSpec::Trace {
                    schedule: Arc::new(DeliverySchedule::new(instants, tail_gap)),
                    name,
                })
            }
            other => Err(format!("unknown link kind '{other}'")),
        }
    }
}

/// A strictly-increasing list of packet-delivery instants.
#[derive(Clone, Debug, Default)]
pub struct DeliverySchedule {
    instants: Vec<Ns>,
    /// Gap appended after the final instant before the schedule repeats.
    tail_gap: Ns,
}

impl DeliverySchedule {
    /// Build a schedule from delivery instants. The list must be
    /// non-empty and strictly increasing. `tail_gap` is the idle time
    /// between the last instant and the start of the next repetition; a
    /// reasonable choice is the mean inter-delivery gap.
    pub fn new(instants: Vec<Ns>, tail_gap: Ns) -> DeliverySchedule {
        assert!(!instants.is_empty(), "empty delivery schedule");
        // A t=0 instant would be unreachable (the engine takes the first
        // slot strictly after time 0) and would break the opportunity
        // count and the cached cursor's periodic unrolling.
        assert!(
            instants[0] > Ns::ZERO,
            "delivery instants must be strictly positive"
        );
        for w in instants.windows(2) {
            assert!(w[0] < w[1], "delivery instants must strictly increase");
        }
        DeliverySchedule { instants, tail_gap }
    }

    /// The repetition period.
    pub fn period(&self) -> Ns {
        // lint:allow(p1-sim-unwrap): the constructor asserts a non-empty
        // instants list, and the schedule is immutable after that.
        *self.instants.last().expect("non-empty") + self.tail_gap
    }

    /// The delivery instants of one period.
    pub fn instants(&self) -> &[Ns] {
        &self.instants
    }

    /// The idle gap appended after the final instant.
    pub fn tail_gap(&self) -> Ns {
        self.tail_gap
    }

    /// Number of delivery opportunities per period.
    pub fn len(&self) -> usize {
        self.instants.len()
    }

    /// True if the schedule holds no instants (never constructed this way).
    pub fn is_empty(&self) -> bool {
        self.instants.is_empty()
    }

    /// Number of delivery opportunities in `(0, window]`, unrolling the
    /// schedule periodically — exactly the opportunities a simulation of
    /// duration `window` presents to the queue (the engine processes trace
    /// slots up to and including the horizon). This is the denominator of
    /// trace-link utilization: the capacity the schedule actually
    /// delivered over the measured window, as opposed to a nominal
    /// constant rate.
    pub fn opportunities_through(&self, window: Ns) -> u64 {
        let period = self.period().0;
        debug_assert!(period > 0);
        let full_cycles = window.0 / period;
        let rem = Ns(window.0 % period);
        // Instants are strictly positive within a cycle, so a full cycle
        // contributes every instant; the partial tail contributes those
        // at or before the remainder offset.
        let in_tail = self.instants.partition_point(|t| *t <= rem) as u64;
        full_cycles * self.instants.len() as u64 + in_tail
    }

    /// The first delivery opportunity strictly after `now`, unrolling the
    /// schedule periodically.
    pub fn next_after(&self, now: Ns) -> Ns {
        let (cycle, idx) = self.locate_after(now);
        self.at(cycle, idx)
    }

    /// Like [`DeliverySchedule::next_after`], but O(1) when the queries
    /// are sequential — the common case in the simulator, where each trace
    /// slot asks for the opportunity after itself. The cursor caches the
    /// last answer; any non-sequential query falls back to the binary
    /// search and re-syncs, so results are identical by construction.
    pub fn next_after_cached(&self, cursor: &mut TraceCursor, now: Ns) -> Ns {
        if cursor.valid && cursor.last == now {
            let (cycle, idx) = if cursor.idx + 1 < self.instants.len() {
                (cursor.cycle, cursor.idx + 1)
            } else {
                (cursor.cycle + 1, 0)
            };
            let at = self.at(cycle, idx);
            *cursor = TraceCursor {
                last: at,
                cycle,
                idx,
                valid: true,
            };
            return at;
        }
        let (cycle, idx) = self.locate_after(now);
        let at = self.at(cycle, idx);
        *cursor = TraceCursor {
            last: at,
            cycle,
            idx,
            valid: true,
        };
        at
    }

    /// Absolute time of instant `idx` in repetition `cycle`.
    #[inline]
    fn at(&self, cycle: u64, idx: usize) -> Ns {
        Ns(cycle * self.period().0 + self.instants[idx].0)
    }

    /// (cycle, index) of the first opportunity strictly after `now`.
    fn locate_after(&self, now: Ns) -> (u64, usize) {
        let period = self.period();
        debug_assert!(period.0 > 0);
        let cycle = now.0 / period.0;
        let offset = Ns(now.0 % period.0);
        // Find the first instant strictly greater than `offset`.
        match self.instants.binary_search_by(|t| {
            if *t <= offset {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        }) {
            // lint:allow(p2-sim-panic): the comparator above returns only
            // Less or Greater, so binary_search can never yield Ok.
            Ok(_) => unreachable!("comparator never returns Equal"),
            Err(idx) => {
                if idx < self.instants.len() {
                    (cycle, idx)
                } else {
                    // Wrap into the next cycle.
                    (cycle + 1, 0)
                }
            }
        }
    }
}

/// Sequential-query cache for [`DeliverySchedule::next_after_cached`]:
/// remembers the (cycle, index) of the last answer so the chained
/// slot-after-slot queries of the event loop cost O(1) instead of a
/// binary search over the whole trace.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraceCursor {
    last: Ns,
    cycle: u64,
    idx: usize,
    valid: bool,
}

/// Runtime state of the bottleneck link inside the simulator.
pub enum LinkState {
    /// Fixed-rate service.
    Constant {
        /// Rate in megabits per second.
        rate_mbps: f64,
    },
    /// Trace-driven delivery.
    Trace {
        /// The delivery-opportunity schedule.
        schedule: Arc<DeliverySchedule>,
    },
}

impl LinkState {
    /// Instantiate runtime state from a spec.
    pub fn from_spec(spec: &LinkSpec) -> LinkState {
        match spec {
            LinkSpec::Constant { rate_mbps } => LinkState::Constant {
                rate_mbps: *rate_mbps,
            },
            LinkSpec::Trace { schedule, .. } => LinkState::Trace {
                schedule: Arc::clone(schedule),
            },
        }
    }

    /// Service time for a packet of `bytes` bytes on a constant link;
    /// trace links have no per-packet service time (delivery is pinned to
    /// trace instants).
    pub fn service_time(&self, bytes: u32) -> Option<Ns> {
        match self {
            LinkState::Constant { rate_mbps } => Some(service_time(bytes, *rate_mbps)),
            LinkState::Trace { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_link_average_rate() {
        let l = LinkSpec::constant(15.0);
        assert_eq!(l.average_rate_mbps(1500), 15.0);
        assert_eq!(l.label(), "15 Mbps");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn constant_link_rejects_zero_rate() {
        let _ = LinkSpec::constant(0.0);
    }

    #[test]
    fn schedule_next_after_basic() {
        let s = DeliverySchedule::new(
            vec![Ns(10), Ns(20), Ns(35)],
            Ns(5), // period = 40
        );
        assert_eq!(s.period(), Ns(40));
        assert_eq!(s.next_after(Ns(0)), Ns(10));
        assert_eq!(s.next_after(Ns(10)), Ns(20)); // strictly after
        assert_eq!(s.next_after(Ns(21)), Ns(35));
        // Wraps to next cycle: 40 + 10.
        assert_eq!(s.next_after(Ns(35)), Ns(50));
        assert_eq!(s.next_after(Ns(36)), Ns(50));
    }

    #[test]
    fn schedule_unrolls_many_cycles() {
        let s = DeliverySchedule::new(vec![Ns(1), Ns(3)], Ns(1)); // period 4
                                                                  // Cycle k delivers at 4k+1, 4k+3.
        assert_eq!(s.next_after(Ns(100)), Ns(101));
        assert_eq!(s.next_after(Ns(101)), Ns(103));
        assert_eq!(s.next_after(Ns(103)), Ns(105));
    }

    #[test]
    fn schedule_is_strictly_monotonic_generator() {
        let s = DeliverySchedule::new(vec![Ns(5), Ns(9), Ns(14)], Ns(2));
        let mut t = Ns::ZERO;
        let mut prev = Ns::ZERO;
        for _ in 0..100 {
            t = s.next_after(t);
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn schedule_rejects_unsorted() {
        let _ = DeliverySchedule::new(vec![Ns(5), Ns(5)], Ns(1));
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn schedule_rejects_a_zero_first_instant() {
        // A t=0 slot is unreachable (next_after is strictly-after) and
        // would make opportunities_through over-count by one per cycle.
        let _ = DeliverySchedule::new(vec![Ns(0), Ns(10)], Ns(5));
    }

    #[test]
    fn opportunities_count_unrolls_periodically() {
        let s = DeliverySchedule::new(vec![Ns(10), Ns(20), Ns(35)], Ns(5)); // period 40
        assert_eq!(s.opportunities_through(Ns(0)), 0);
        assert_eq!(s.opportunities_through(Ns(9)), 0);
        assert_eq!(s.opportunities_through(Ns(10)), 1, "boundary inclusive");
        assert_eq!(s.opportunities_through(Ns(35)), 3);
        assert_eq!(s.opportunities_through(Ns(39)), 3);
        assert_eq!(
            s.opportunities_through(Ns(40)),
            3,
            "tail gap holds no slots"
        );
        assert_eq!(s.opportunities_through(Ns(50)), 4);
        assert_eq!(s.opportunities_through(Ns(400)), 30, "10 full periods");
    }

    #[test]
    fn delivered_capacity_constant_vs_trace() {
        let c = LinkSpec::constant(12.0);
        // 12 Mbps × 1 s = 12 Mbit.
        assert!((c.delivered_capacity_bits(1500, Ns::SECOND) - 12e6).abs() < 1.0);
        // 3 opportunities per 40 ns period → over 400 ns: 30 × 1500 B.
        let t = LinkSpec::trace(
            "t",
            DeliverySchedule::new(vec![Ns(10), Ns(20), Ns(35)], Ns(5)),
        );
        assert_eq!(
            t.delivered_capacity_bits(1500, Ns(400)),
            30.0 * 1500.0 * 8.0
        );
    }

    #[test]
    fn cached_next_after_matches_binary_search() {
        let s = DeliverySchedule::new(vec![Ns(7), Ns(19), Ns(23)], Ns(4)); // period 27
        let mut cursor = TraceCursor::default();
        // Sequential chain (the simulator's access pattern).
        let mut t = Ns::ZERO;
        for _ in 0..200 {
            let expect = s.next_after(t);
            assert_eq!(s.next_after_cached(&mut cursor, t), expect);
            t = expect;
        }
        // Non-sequential queries resync through the slow path.
        for probe in [Ns(0), Ns(100), Ns(26), Ns(1_000_003), Ns(12)] {
            assert_eq!(s.next_after_cached(&mut cursor, probe), s.next_after(probe));
        }
    }

    #[test]
    fn trace_average_rate() {
        // 4 deliveries of 1500 B over a 2 ms period = 4*12000 bits / 2 ms
        // = 24 Mbps.
        let s = DeliverySchedule::new(
            vec![
                Ns::from_micros(400),
                Ns::from_micros(900),
                Ns::from_micros(1400),
                Ns::from_micros(1900),
            ],
            Ns::from_micros(100),
        );
        let l = LinkSpec::trace("test", s);
        assert!((l.average_rate_mbps(1500) - 24.0).abs() < 1e-9);
    }

    #[test]
    fn link_state_service_time() {
        let c = LinkState::from_spec(&LinkSpec::constant(12.0));
        assert_eq!(c.service_time(1500), Some(Ns::from_millis(1)));
        let t = LinkState::from_spec(&LinkSpec::trace(
            "t",
            DeliverySchedule::new(vec![Ns(1)], Ns(1)),
        ));
        assert_eq!(t.service_time(1500), None);
    }
}
