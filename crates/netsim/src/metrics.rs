//! Per-flow measurement, following the paper's definitions (§5.1).
//!
//! Throughput of a sender that is active during on-intervals `t1, t2, …`
//! receiving `s1, s2, …` bytes is `Σ si / Σ ti`. Queueing delay is the
//! average per-packet delay in excess of the minimum (time spent waiting
//! in the bottleneck queue). We also track the average RTT, which the
//! objective function's delay term uses.

use crate::time::Ns;

/// One "on" period of a flow.
#[derive(Clone, Copy, Debug)]
pub struct OnInterval {
    /// When the sender switched on.
    pub start: Ns,
    /// When it switched off (or the simulation ended).
    pub end: Option<Ns>,
    /// New (not previously delivered) bytes the receiver got that are
    /// attributed to this interval.
    pub bytes: u64,
}

impl OnInterval {
    fn duration_capped(&self, sim_end: Ns) -> Ns {
        let end = self.end.unwrap_or(sim_end).min(sim_end);
        end.saturating_sub(self.start)
    }
}

/// Running measurements for a single flow.
#[derive(Clone, Debug, Default)]
pub struct FlowMetrics {
    intervals: Vec<OnInterval>,
    /// Packets delivered to the receiver (new data only).
    pub packets_delivered: u64,
    /// Duplicate deliveries (spurious retransmissions observed).
    pub duplicate_deliveries: u64,
    queue_delay_sum_s: f64,
    queue_delay_count: u64,
    rtt_sum_s: f64,
    rtt_count: u64,
}

impl FlowMetrics {
    /// A new on-interval began.
    pub fn start_interval(&mut self, now: Ns) {
        debug_assert!(self
            .intervals
            .last()
            .map(|i| i.end.is_some())
            .unwrap_or(true));
        self.intervals.push(OnInterval {
            start: now,
            end: None,
            bytes: 0,
        });
    }

    /// The current on-interval ended.
    pub fn end_interval(&mut self, now: Ns) {
        if let Some(i) = self.intervals.last_mut() {
            if i.end.is_none() {
                i.end = Some(now);
            }
        }
    }

    /// Credit delivered bytes: to the open interval if one exists,
    /// otherwise to the most recent one (late deliveries while draining).
    ///
    /// The sender only transmits while on, so at least one interval must
    /// exist by the time anything is delivered; crediting into the void
    /// would silently discard the bytes from throughput accounting.
    pub fn credit_bytes(&mut self, bytes: u64) {
        debug_assert!(
            !self.intervals.is_empty(),
            "bytes delivered before the first on-interval"
        );
        if let Some(i) = self.intervals.last_mut() {
            i.bytes += bytes;
        }
    }

    /// Reset for a new flow lifetime in the same slot (churn respawn),
    /// keeping the interval vector's allocation.
    pub fn reset(&mut self) {
        self.intervals.clear();
        self.packets_delivered = 0;
        self.duplicate_deliveries = 0;
        self.queue_delay_sum_s = 0.0;
        self.queue_delay_count = 0;
        self.rtt_sum_s = 0.0;
        self.rtt_count = 0;
    }

    /// Record one packet's bottleneck queueing delay.
    pub fn record_queue_delay(&mut self, d: Ns) {
        self.queue_delay_sum_s += d.as_secs_f64();
        self.queue_delay_count += 1;
    }

    /// Record one RTT sample observed at the sender.
    pub fn record_rtt(&mut self, rtt: Ns) {
        self.rtt_sum_s += rtt.as_secs_f64();
        self.rtt_count += 1;
    }

    /// Total on-time, capping the final (possibly open) interval at the
    /// simulation end.
    pub fn on_time(&self, sim_end: Ns) -> Ns {
        Ns(self
            .intervals
            .iter()
            .map(|i| i.duration_capped(sim_end).0)
            .sum())
    }

    /// Total new bytes delivered.
    pub fn bytes(&self) -> u64 {
        self.intervals.iter().map(|i| i.bytes).sum()
    }

    /// All recorded intervals.
    pub fn intervals(&self) -> &[OnInterval] {
        &self.intervals
    }

    /// Summarize at simulation end.
    pub fn summarize(&self, sim_end: Ns) -> FlowSummary {
        let on = self.on_time(sim_end).as_secs_f64();
        let bytes = self.bytes();
        FlowSummary {
            throughput_mbps: if on > 0.0 {
                bytes as f64 * 8.0 / on / 1e6
            } else {
                0.0
            },
            on_secs: on,
            bytes,
            packets_delivered: self.packets_delivered,
            duplicate_deliveries: self.duplicate_deliveries,
            mean_queue_delay_ms: if self.queue_delay_count > 0 {
                self.queue_delay_sum_s / self.queue_delay_count as f64 * 1e3
            } else {
                0.0
            },
            mean_rtt_ms: if self.rtt_count > 0 {
                self.rtt_sum_s / self.rtt_count as f64 * 1e3
            } else {
                0.0
            },
            rtt_samples: self.rtt_count,
            n_intervals: self.intervals.len(),
        }
    }
}

/// Final per-flow results of one simulation run.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlowSummary {
    /// `Σ si / Σ ti`, in Mbps.
    pub throughput_mbps: f64,
    /// Total on-time in seconds.
    pub on_secs: f64,
    /// Total new bytes delivered.
    pub bytes: u64,
    /// New packets delivered.
    pub packets_delivered: u64,
    /// Duplicate deliveries seen at the receiver.
    pub duplicate_deliveries: u64,
    /// Mean per-packet queueing delay, milliseconds: each data packet's
    /// waits are summed over every queue on its forward path (the single
    /// bottleneck queue on the legacy dumbbell) and recorded once, at its
    /// final hop. ACK queueing on a congested return path is not included
    /// here — it shows up in `mean_rtt_ms`.
    pub mean_queue_delay_ms: f64,
    /// Mean sender-observed RTT, milliseconds.
    pub mean_rtt_ms: f64,
    /// Number of RTT samples behind `mean_rtt_ms`. Lets harnesses
    /// difference two runs' RTT sums (e.g. a failure-time prefix run
    /// against the full run) to isolate a post-event window.
    pub rtt_samples: u64,
    /// Number of on-intervals (flows) this sender ran.
    pub n_intervals: usize,
}

impl FlowSummary {
    /// True if this sender was ever active (summaries of never-on senders
    /// are excluded from medians, as in the paper's per-sender statistics).
    pub fn was_active(&self) -> bool {
        self.on_secs > 0.0
    }
}

/// One delivery record for sequence plots (Fig. 6).
#[derive(Clone, Copy, Debug)]
pub struct DeliveryRecord {
    /// Receiver clock at delivery.
    pub at: Ns,
    /// Flow the packet belonged to.
    pub flow: usize,
    /// Delivered sequence number.
    pub seq: u64,
}

/// Population-level statistics for dynamically arriving (churn) flows.
///
/// Individual churn flows do not get a [`FlowSummary`] each — at 100k
/// flows per run that would be the dominant allocation — they stream into
/// fixed-size aggregates ([`crate::stats::P2Quantile`] markers inside
/// [`crate::stats::StreamingSummary`], plus one bounded reservoir of
/// flow-completion times for exact-quantile reporting).
#[derive(Clone, Debug)]
pub struct PopulationSummary {
    /// Flows that arrived during the run.
    pub spawned: u64,
    /// Flows that delivered every byte and tore down.
    pub completed: u64,
    /// Churn flows still live when the horizon hit.
    pub live_at_end: u64,
    /// Flow-completion times of completed flows, seconds.
    pub fct_secs: crate::stats::StreamingSummary,
    /// Delivered bytes per completed flow.
    pub flow_bytes: crate::stats::StreamingSummary,
    /// Uniform subsample of completion times (seconds) for exact
    /// quantiles and distribution plots.
    pub fct_sample_secs: Vec<f64>,
}

/// Complete results of one simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimResults {
    /// Per-sender summaries, indexed by flow id.
    pub flows: Vec<FlowSummary>,
    /// Packets dropped by queues, summed across every hop. On a topology
    /// with queued ACK paths this includes dropped ACK packets (queues do
    /// not distinguish them); the legacy dumbbell has one hop and
    /// delay-only ACKs, so there it is exactly data lost at the
    /// bottleneck.
    pub queue_drops: u64,
    /// Data packets that cleared the last queue of their forward path —
    /// i.e. were forwarded toward a receiver. Intermediate-hop traversals
    /// and ACK packets are not counted, so
    /// `packets_forwarded − Σ delivered` still bounds in-flight + lost
    /// data on any topology.
    pub packets_forwarded: u64,
    /// Simulated duration.
    pub duration: Ns,
    /// Optional per-delivery log (enabled via
    /// [`crate::scenario::Scenario::record_deliveries`]). Capped by the
    /// engine; see `deliveries_dropped`.
    pub deliveries: Vec<DeliveryRecord>,
    /// Deliveries *not* logged because the log hit its cap. Zero unless
    /// `record_deliveries` was on and the run outgrew the limit.
    pub deliveries_dropped: u64,
    /// Aggregate statistics over dynamically arriving flows; `None` for
    /// scenarios without churn.
    pub population: Option<PopulationSummary>,
    /// Link up/down events applied during the run (graph topologies
    /// with scheduled failures; 0 everywhere else).
    pub link_events: u64,
    /// Packets discarded because of a link failure: queued packets
    /// dropped under [`crate::graph::FailoverPolicy::Drop`], plus
    /// packets with no remaining route under either policy. Counted
    /// separately from `queue_drops`.
    pub failover_drops: u64,
    /// Persistent flows whose forward or ACK path changed at a link
    /// event (each flow counted once per event that moved it).
    pub reroutes: u64,
}

impl SimResults {
    /// Aggregate link utilization: delivered payload bits / (rate × time).
    /// Only meaningful for constant-rate links — a trace link's nominal
    /// average rate says little about what the schedule offered during
    /// this particular window; use [`SimResults::utilization_of`] there.
    pub fn utilization(&self, rate_mbps: f64) -> f64 {
        let bits: f64 = self.flows.iter().map(|f| f.bytes as f64 * 8.0).sum();
        bits / (rate_mbps * 1e6 * self.duration.as_secs_f64())
    }

    /// Aggregate utilization against the capacity `link` actually offered
    /// over this run's duration: for constant links identical to
    /// [`SimResults::utilization`], for trace-driven links the delivered
    /// bits divided by (delivery opportunities in the window × `mss`).
    /// Returns 0 when the link offered no capacity.
    pub fn utilization_of(&self, link: &crate::link::LinkSpec, mss: u32) -> f64 {
        let capacity = link.delivered_capacity_bits(mss, self.duration);
        if capacity <= 0.0 {
            return 0.0;
        }
        let bits: f64 = self.flows.iter().map(|f| f.bytes as f64 * 8.0).sum();
        bits / capacity
    }

    /// Summaries of senders that were active at least once.
    pub fn active_flows(&self) -> impl Iterator<Item = &FlowSummary> {
        self.flows.iter().filter(|f| f.was_active())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_bytes_over_on_time() {
        let mut m = FlowMetrics::default();
        m.start_interval(Ns::from_secs(1));
        m.credit_bytes(1_250_000); // 10 Mbit
        m.end_interval(Ns::from_secs(2));
        let s = m.summarize(Ns::from_secs(10));
        assert!((s.throughput_mbps - 10.0).abs() < 1e-9);
        assert_eq!(s.on_secs, 1.0);
        assert_eq!(s.n_intervals, 1);
    }

    #[test]
    fn multiple_intervals_pool_bytes_and_time() {
        let mut m = FlowMetrics::default();
        m.start_interval(Ns::ZERO);
        m.credit_bytes(500_000);
        m.end_interval(Ns::from_secs(1));
        m.start_interval(Ns::from_secs(5));
        m.credit_bytes(750_000);
        m.end_interval(Ns::from_secs(6));
        let s = m.summarize(Ns::from_secs(10));
        // 1.25 MB over 2 s = 5 Mbps.
        assert!((s.throughput_mbps - 5.0).abs() < 1e-9);
    }

    #[test]
    fn open_interval_capped_at_sim_end() {
        let mut m = FlowMetrics::default();
        m.start_interval(Ns::from_secs(8));
        m.credit_bytes(250_000);
        let s = m.summarize(Ns::from_secs(10));
        assert_eq!(s.on_secs, 2.0);
        assert!((s.throughput_mbps - 1.0).abs() < 1e-9);
    }

    #[test]
    fn late_bytes_credit_last_interval() {
        let mut m = FlowMetrics::default();
        m.start_interval(Ns::ZERO);
        m.end_interval(Ns::from_secs(1));
        m.credit_bytes(1000); // drain delivery after off
        assert_eq!(m.bytes(), 1000);
    }

    /// Regression: a one-shot flow whose last packets land *after* its
    /// interval closed (late deliveries while draining) must still have
    /// every byte attributed to the closed interval, not dropped.
    #[test]
    fn draining_deliveries_after_close_are_not_discarded() {
        let mut m = FlowMetrics::default();
        m.start_interval(Ns::ZERO);
        m.credit_bytes(3000);
        m.end_interval(Ns::from_secs(1));
        m.credit_bytes(1500);
        m.credit_bytes(1500);
        let s = m.summarize(Ns::from_secs(10));
        assert_eq!(s.bytes, 6000, "late drain bytes kept");
        assert_eq!(s.n_intervals, 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "before the first on-interval")]
    fn crediting_with_no_interval_is_a_bug() {
        let mut m = FlowMetrics::default();
        m.credit_bytes(1000);
    }

    #[test]
    fn reset_clears_everything_for_slot_reuse() {
        let mut m = FlowMetrics::default();
        m.start_interval(Ns::ZERO);
        m.credit_bytes(5000);
        m.packets_delivered = 4;
        m.duplicate_deliveries = 1;
        m.record_queue_delay(Ns::from_millis(3));
        m.record_rtt(Ns::from_millis(80));
        m.end_interval(Ns::SECOND);
        m.reset();
        let s = m.summarize(Ns::from_secs(10));
        assert!(!s.was_active());
        assert_eq!(
            (s.bytes, s.packets_delivered, s.duplicate_deliveries),
            (0, 0, 0)
        );
        assert_eq!((s.mean_queue_delay_ms, s.mean_rtt_ms), (0.0, 0.0));
        assert_eq!(m.intervals().len(), 0);
    }

    #[test]
    fn delay_averages() {
        let mut m = FlowMetrics::default();
        m.record_queue_delay(Ns::from_millis(4));
        m.record_queue_delay(Ns::from_millis(8));
        m.record_rtt(Ns::from_millis(150));
        m.record_rtt(Ns::from_millis(250));
        let s = m.summarize(Ns::from_secs(1));
        assert!((s.mean_queue_delay_ms - 6.0).abs() < 1e-9);
        assert!((s.mean_rtt_ms - 200.0).abs() < 1e-9);
    }

    #[test]
    fn never_active_flow() {
        let m = FlowMetrics::default();
        let s = m.summarize(Ns::from_secs(10));
        assert!(!s.was_active());
        assert_eq!(s.throughput_mbps, 0.0);
    }

    #[test]
    fn trace_utilization_uses_delivered_capacity() {
        use crate::link::{DeliverySchedule, LinkSpec};
        // A bursty trace: 100 opportunities in the first half of a 10 s
        // period, none after. Nominal average rate would say the link
        // offered 1.2 Mbit over 10 s; the schedule actually offered
        // 100 × 1500 B = 1.2 Mbit too — but measure over 5 s and the
        // nominal rate is off by 2x while the delivered capacity is not.
        let instants: Vec<Ns> = (1..=100).map(|i| Ns::from_millis(i * 50)).collect();
        let schedule = DeliverySchedule::new(instants, Ns::from_secs(5));
        let link = LinkSpec::trace("bursty", schedule);
        let mut m = FlowMetrics::default();
        m.start_interval(Ns::ZERO);
        m.credit_bytes(75_000); // half the offered 150 000 B delivered
        let r = SimResults {
            flows: vec![m.summarize(Ns::from_secs(5))],
            duration: Ns::from_secs(5),
            ..SimResults::default()
        };
        let util = r.utilization_of(&link, 1500);
        assert!((util - 0.5).abs() < 1e-9, "got {util}");
        // Constant links: identical to the nominal-rate utilization.
        let c = LinkSpec::constant(15.0);
        assert!((r.utilization_of(&c, 1500) - r.utilization(15.0)).abs() < 1e-12);
    }

    #[test]
    fn utilization_math() {
        let mut m = FlowMetrics::default();
        m.start_interval(Ns::ZERO);
        m.credit_bytes(12_500_000); // 100 Mbit
        let r = SimResults {
            flows: vec![m.summarize(Ns::from_secs(10))],
            duration: Ns::from_secs(10),
            ..SimResults::default()
        };
        // 100 Mbit over 10 s on a 15 Mbps link = 2/3 utilization.
        assert!((r.utilization(15.0) - 0.6667).abs() < 1e-3);
    }
}
