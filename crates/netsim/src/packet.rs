//! Packets, acknowledgments, and the packet arena.
//!
//! Every data segment in the simulator is one [`Packet`] of `mss` bytes
//! (1500 by default, matching the paper's ns-2 setup). Receivers acknowledge
//! every delivered packet with an [`Ack`] carrying a cumulative
//! acknowledgment, the echoed sender timestamp (the signal behind a
//! RemyCC's `send_ewma`), an ECN echo for DCTCP, and the XCP feedback field
//! for XCP senders.
//!
//! In-flight packets live in a [`PacketArena`]: a slab of reusable slots
//! addressed by generational [`PacketId`] handles. The hot path (queues,
//! the event loop) moves 8-byte ids instead of ~140-byte packet structs,
//! and a freed slot's generation counter is bumped so a stale handle can
//! never silently alias the packet that later reuses the slot.

use crate::time::Ns;

pub use crate::flow::FlowId;

/// The fields an XCP-capable sender stamps into each packet and an XCP
/// router rewrites in flight (§2, Katabi et al. 2002).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct XcpHeader {
    /// Sender's current congestion window, in packets.
    pub cwnd_pkts: f64,
    /// Sender's current RTT estimate.
    pub rtt: Ns,
    /// Router-computed per-packet window feedback, in packets (signed).
    /// Initialized by the sender to its desired increase ("demand").
    pub feedback: f64,
}

/// One data segment traversing the dumbbell.
///
/// Laid out `repr(C)` with the queue-hot fields (`flow`, `seq`, `size`,
/// timestamps) first, so the enqueue/dequeue path of an arena slot touches
/// one cache line; the cold tail (`xcp`, `ack`) is only read at routers
/// and endpoints.
#[derive(Clone, Debug)]
#[repr(C)]
pub struct Packet {
    /// Owning flow.
    pub flow: FlowId,
    /// Sequence number, counted in whole packets (not bytes).
    pub seq: u64,
    /// Sender clock when this copy of the segment was transmitted. Echoed
    /// back by the receiver; drives RTT samples and `send_ewma`.
    pub sent_at: Ns,
    /// Stamped by the bottleneck queue on arrival; used to measure
    /// per-packet queueing delay.
    pub enqueued_at: Ns,
    /// Total time this packet has waited in queues so far, accumulated
    /// hop by hop; the flow's queueing-delay metric records the sum once,
    /// at the final data hop (end-to-end queueing, not a per-hop average).
    pub queue_wait: Ns,
    /// Position along the owning flow's path (index into
    /// [`crate::topology::FlowPath::fwd`], or `ack` for ACK packets).
    /// Maintained by the engine; always 0 on the legacy dumbbell.
    pub path_pos: usize,
    /// Routing epoch this packet was last routed under (graph
    /// topologies only; the engine bumps its epoch on every link
    /// event). A packet whose epoch lags the engine's is re-resolved at
    /// the router it currently occupies instead of following its stale
    /// path. Always 0 outside graph topologies.
    pub route_epoch: u32,
    /// The hop this packet is currently traveling toward, stamped when
    /// the packet leaves the previous hop. Read on hop arrival so that
    /// a mid-flight path rewrite cannot retarget an already-launched
    /// packet. Meaningless until first forwarded.
    pub next_hop: u32,
    /// Size on the wire, in bytes.
    pub size: u32,
    /// True if this is a retransmission (excluded from goodput accounting
    /// only when the receiver has already seen the data).
    pub retransmit: bool,
    /// True if the sender is ECN-capable (DCTCP).
    pub ecn_capable: bool,
    /// Set by an ECN-marking queue instead of dropping.
    pub ecn_marked: bool,
    /// XCP congestion header, when the sender runs XCP.
    pub xcp: Option<XcpHeader>,
    /// When `Some`, this packet is an acknowledgment in flight on a queued
    /// ACK path (multi-hop topologies only; see [`crate::topology`]). Like
    /// any packet it can be queued, delayed, or dropped — ACK loss is
    /// recovered by later cumulative ACKs or the RTO.
    pub ack: Option<Ack>,
}

/// Wire size of an acknowledgment, bytes (TCP/IP header without payload).
pub const ACK_BYTES: u32 = 40;

impl Packet {
    /// A fresh data segment with no router state attached.
    pub fn data(flow: FlowId, seq: u64, size: u32, sent_at: Ns) -> Packet {
        Packet {
            flow,
            seq,
            size,
            sent_at,
            retransmit: false,
            ecn_capable: false,
            ecn_marked: false,
            xcp: None,
            enqueued_at: Ns::ZERO,
            ack: None,
            path_pos: 0,
            route_epoch: 0,
            next_hop: 0,
            queue_wait: Ns::ZERO,
        }
    }

    /// An acknowledgment wrapped as a queueable packet for topologies with
    /// a congested ACK return path.
    pub fn carrying_ack(ack: Ack, sent_at: Ns) -> Packet {
        Packet {
            flow: ack.flow,
            seq: ack.seq,
            size: ACK_BYTES,
            sent_at,
            retransmit: false,
            ecn_capable: false,
            ecn_marked: false,
            xcp: None,
            enqueued_at: Ns::ZERO,
            ack: Some(ack),
            path_pos: 0,
            route_epoch: 0,
            next_hop: 0,
            queue_wait: Ns::ZERO,
        }
    }
}

/// An acknowledgment traveling back to the sender.
///
/// The simulator models a pure ACK path: acknowledgments are never dropped
/// or queued (the paper's dumbbell has an uncongested reverse path), they
/// are only delayed by the flow's return propagation time.
#[derive(Clone, Debug)]
pub struct Ack {
    /// Owning flow.
    pub flow: FlowId,
    /// Cumulative acknowledgment: the next sequence number the receiver
    /// expects (all packets below this have been delivered).
    pub cum_ack: u64,
    /// Sequence number of the specific packet that triggered this ACK.
    pub seq: u64,
    /// The `sent_at` timestamp of that packet, echoed back.
    pub echo_ts: Ns,
    /// Receiver clock when the packet arrived (one-way delay accounting).
    pub received_at: Ns,
    /// True if the delivered packet carried an ECN CE mark.
    pub ecn_echo: bool,
    /// XCP feedback copied from the delivered packet's congestion header.
    pub xcp_feedback: Option<f64>,
    /// True if the packet carried data the receiver had not seen before.
    pub new_data: bool,
}

/// Generational handle to a packet stored in a [`PacketArena`].
///
/// An id is 8 bytes: the slot index plus the slot's generation at
/// allocation time. Freeing a slot bumps its generation, so any handle
/// kept past the packet's lifetime fails the generation check instead of
/// reading whichever packet recycled the slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PacketId {
    index: u32,
    generation: u32,
}

impl PacketId {
    /// Slot index (diagnostics only; identity requires the generation).
    pub fn index(self) -> u32 {
        self.index
    }

    /// Allocation-time generation of the slot.
    pub fn generation(self) -> u32 {
        self.generation
    }
}

#[repr(C)]
struct Slot {
    /// Current generation. Even = free, odd = live: allocation and free
    /// each bump the counter once, so a live handle's generation is odd
    /// and can never equal the generation of any other lifetime of the
    /// same slot. First in the slot so the generation check and the
    /// packet's hot fields share a cache line.
    generation: u32,
    packet: Packet,
}

/// A slab arena of in-flight packets.
///
/// Allocation reuses the most recently freed slot (LIFO free list) so the
/// working set stays compact and cache-warm under steady-state traffic.
/// All access is checked against the handle's generation; see [`PacketId`].
#[derive(Default)]
pub struct PacketArena {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
}

impl PacketArena {
    /// An empty arena.
    pub fn new() -> PacketArena {
        PacketArena::default()
    }

    /// An empty arena with room for `capacity` packets before regrowing.
    pub fn with_capacity(capacity: usize) -> PacketArena {
        PacketArena {
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            live: 0,
        }
    }

    /// Store a packet, returning its handle.
    #[inline]
    pub fn alloc(&mut self, packet: Packet) -> PacketId {
        self.live += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            // Strict lane: a slot coming off the free list must be in a
            // free (even-generation) lifetime; an odd generation here
            // means the free list aliased a live packet.
            #[cfg(feature = "strict-invariants")]
            assert_eq!(
                slot.generation % 2,
                0,
                "strict-invariants: free list handed out a live slot {index}"
            );
            slot.generation = slot.generation.wrapping_add(1);
            slot.packet = packet;
            PacketId {
                index,
                generation: slot.generation,
            }
        } else {
            // lint:allow(p1-sim-unwrap): arena slots track packets in
            // flight, bounded by queue capacities — far below u32::MAX.
            let index = u32::try_from(self.slots.len()).expect("more than u32::MAX live packets");
            self.slots.push(Slot {
                generation: 1,
                packet,
            });
            PacketId {
                index,
                generation: 1,
            }
        }
    }

    /// Release a handle's slot for reuse. Panics on a stale handle (the
    /// slot was already freed): a double free is always an engine bug.
    #[inline]
    pub fn free(&mut self, id: PacketId) {
        // Strict lane: a handle being freed must come from a live
        // (odd-generation) lifetime, and the bookkeeping identity
        // `live + free == slots` must hold on entry.
        #[cfg(feature = "strict-invariants")]
        {
            assert_eq!(
                id.generation % 2,
                1,
                "strict-invariants: freeing a handle minted in a free lifetime"
            );
            assert_eq!(
                self.live + self.free.len(),
                self.slots.len(),
                "strict-invariants: arena live/free accounting diverged"
            );
        }
        let slot = &mut self.slots[id.index as usize];
        assert_eq!(
            slot.generation, id.generation,
            "freeing a stale PacketId (double free?)"
        );
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(id.index);
        self.live -= 1;
    }

    /// True if the handle still addresses a live packet.
    #[inline]
    pub fn contains(&self, id: PacketId) -> bool {
        self.slots
            .get(id.index as usize)
            .is_some_and(|s| s.generation == id.generation)
    }

    /// Packets currently live.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Total slots ever allocated (live + reusable).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

impl std::ops::Index<PacketId> for PacketArena {
    type Output = Packet;
    #[inline]
    fn index(&self, id: PacketId) -> &Packet {
        let slot = &self.slots[id.index as usize];
        assert_eq!(slot.generation, id.generation, "stale PacketId");
        &slot.packet
    }
}

impl std::ops::IndexMut<PacketId> for PacketArena {
    #[inline]
    fn index_mut(&mut self, id: PacketId) -> &mut Packet {
        let slot = &mut self.slots[id.index as usize];
        assert_eq!(slot.generation, id.generation, "stale PacketId");
        &mut slot.packet
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_constructor_defaults() {
        let p = Packet::data(FlowId::first(3), 17, 1500, Ns::from_millis(5));
        assert_eq!(p.flow, FlowId::first(3));
        assert_eq!(p.seq, 17);
        assert_eq!(p.size, 1500);
        assert_eq!(p.sent_at, Ns::from_millis(5));
        assert!(!p.retransmit);
        assert!(!p.ecn_capable && !p.ecn_marked);
        assert!(p.xcp.is_none());
        assert!(p.ack.is_none());
        assert_eq!(p.path_pos, 0);
    }

    #[test]
    fn ack_packet_wraps_the_acknowledgment() {
        let ack = Ack {
            flow: FlowId::first(2),
            cum_ack: 9,
            seq: 8,
            echo_ts: Ns::from_millis(1),
            received_at: Ns::from_millis(3),
            ecn_echo: false,
            xcp_feedback: None,
            new_data: true,
        };
        let p = Packet::carrying_ack(ack, Ns::from_millis(3));
        assert_eq!(p.flow, FlowId::first(2));
        assert_eq!(p.seq, 8);
        assert_eq!(p.size, ACK_BYTES);
        assert_eq!(p.ack.as_ref().map(|a| a.cum_ack), Some(9));
    }

    #[test]
    fn arena_alloc_free_reuses_slots_with_new_generations() {
        let mut a = PacketArena::new();
        let id0 = a.alloc(Packet::data(FlowId::first(0), 0, 1500, Ns::ZERO));
        let id1 = a.alloc(Packet::data(FlowId::first(1), 1, 1500, Ns::ZERO));
        assert_eq!(a.live(), 2);
        assert_eq!(a[id0].seq, 0);
        assert_eq!(a[id1].flow, FlowId::first(1));
        a.free(id1);
        assert_eq!(a.live(), 1);
        assert!(!a.contains(id1));
        // The freed slot is reused, but under a fresh generation: the old
        // handle stays dead.
        let id2 = a.alloc(Packet::data(FlowId::first(2), 7, 1500, Ns::ZERO));
        assert_eq!(id2.index(), id1.index(), "LIFO slot reuse");
        assert_ne!(id2.generation(), id1.generation());
        assert!(a.contains(id2) && !a.contains(id1));
        assert_eq!(a[id2].seq, 7);
        assert_eq!(a.capacity(), 2);
    }

    #[test]
    #[should_panic(expected = "stale PacketId")]
    fn arena_rejects_stale_reads() {
        let mut a = PacketArena::new();
        let id = a.alloc(Packet::data(FlowId::first(0), 0, 1500, Ns::ZERO));
        a.free(id);
        let _ = a.alloc(Packet::data(FlowId::first(1), 1, 1500, Ns::ZERO));
        let _ = &a[id]; // the recycled slot must not alias through the old id
    }

    /// LCG-driven alloc/free churn. With `--features strict-invariants`
    /// every alloc and free along the way is audited for generation
    /// parity and live/free accounting; in the default lane the test
    /// still exercises the same interleavings and checks the external
    /// counters, so both CI lanes compile and run it.
    #[test]
    fn arena_strict_invariants_hold_under_churn() {
        let mut a = PacketArena::new();
        let mut live: Vec<PacketId> = Vec::new();
        let mut rng: u64 = 0x2545_f491_4f6c_dd1d;
        for round in 0..500u64 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if live.is_empty() || !rng.is_multiple_of(3) {
                let id = a.alloc(Packet::data(FlowId::first(0), round, 1500, Ns::ZERO));
                assert_eq!(id.generation() % 2, 1, "live handles have odd generations");
                live.push(id);
            } else {
                let pick = (rng >> 33) as usize % live.len();
                let id = live.swap_remove(pick);
                assert!(a.contains(id));
                a.free(id);
                assert!(!a.contains(id));
            }
            assert_eq!(a.live(), live.len());
            assert!(a.capacity() >= a.live());
        }
        for id in live.drain(..) {
            a.free(id);
        }
        assert_eq!(a.live(), 0);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn arena_rejects_double_free() {
        let mut a = PacketArena::new();
        let id = a.alloc(Packet::data(FlowId::first(0), 0, 1500, Ns::ZERO));
        a.free(id);
        a.free(id);
    }
}
