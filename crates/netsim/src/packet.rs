//! Packets and acknowledgments.
//!
//! Every data segment in the simulator is one [`Packet`] of `mss` bytes
//! (1500 by default, matching the paper's ns-2 setup). Receivers acknowledge
//! every delivered packet with an [`Ack`] carrying a cumulative
//! acknowledgment, the echoed sender timestamp (the signal behind a
//! RemyCC's `send_ewma`), an ECN echo for DCTCP, and the XCP feedback field
//! for XCP senders.

use crate::time::Ns;

/// Identifies one sender/receiver pair within a simulation.
pub type FlowId = usize;

/// The fields an XCP-capable sender stamps into each packet and an XCP
/// router rewrites in flight (§2, Katabi et al. 2002).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct XcpHeader {
    /// Sender's current congestion window, in packets.
    pub cwnd_pkts: f64,
    /// Sender's current RTT estimate.
    pub rtt: Ns,
    /// Router-computed per-packet window feedback, in packets (signed).
    /// Initialized by the sender to its desired increase ("demand").
    pub feedback: f64,
}

/// One data segment traversing the dumbbell.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Owning flow.
    pub flow: FlowId,
    /// Sequence number, counted in whole packets (not bytes).
    pub seq: u64,
    /// Size on the wire, in bytes.
    pub size: u32,
    /// Sender clock when this copy of the segment was transmitted. Echoed
    /// back by the receiver; drives RTT samples and `send_ewma`.
    pub sent_at: Ns,
    /// True if this is a retransmission (excluded from goodput accounting
    /// only when the receiver has already seen the data).
    pub retransmit: bool,
    /// True if the sender is ECN-capable (DCTCP).
    pub ecn_capable: bool,
    /// Set by an ECN-marking queue instead of dropping.
    pub ecn_marked: bool,
    /// XCP congestion header, when the sender runs XCP.
    pub xcp: Option<XcpHeader>,
    /// Stamped by the bottleneck queue on arrival; used to measure
    /// per-packet queueing delay.
    pub enqueued_at: Ns,
}

impl Packet {
    /// A fresh data segment with no router state attached.
    pub fn data(flow: FlowId, seq: u64, size: u32, sent_at: Ns) -> Packet {
        Packet {
            flow,
            seq,
            size,
            sent_at,
            retransmit: false,
            ecn_capable: false,
            ecn_marked: false,
            xcp: None,
            enqueued_at: Ns::ZERO,
        }
    }
}

/// An acknowledgment traveling back to the sender.
///
/// The simulator models a pure ACK path: acknowledgments are never dropped
/// or queued (the paper's dumbbell has an uncongested reverse path), they
/// are only delayed by the flow's return propagation time.
#[derive(Clone, Debug)]
pub struct Ack {
    /// Owning flow.
    pub flow: FlowId,
    /// Cumulative acknowledgment: the next sequence number the receiver
    /// expects (all packets below this have been delivered).
    pub cum_ack: u64,
    /// Sequence number of the specific packet that triggered this ACK.
    pub seq: u64,
    /// The `sent_at` timestamp of that packet, echoed back.
    pub echo_ts: Ns,
    /// Receiver clock when the packet arrived (one-way delay accounting).
    pub received_at: Ns,
    /// True if the delivered packet carried an ECN CE mark.
    pub ecn_echo: bool,
    /// XCP feedback copied from the delivered packet's congestion header.
    pub xcp_feedback: Option<f64>,
    /// True if the packet carried data the receiver had not seen before.
    pub new_data: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_constructor_defaults() {
        let p = Packet::data(3, 17, 1500, Ns::from_millis(5));
        assert_eq!(p.flow, 3);
        assert_eq!(p.seq, 17);
        assert_eq!(p.size, 1500);
        assert_eq!(p.sent_at, Ns::from_millis(5));
        assert!(!p.retransmit);
        assert!(!p.ecn_capable && !p.ecn_marked);
        assert!(p.xcp.is_none());
    }
}
