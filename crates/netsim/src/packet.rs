//! Packets and acknowledgments.
//!
//! Every data segment in the simulator is one [`Packet`] of `mss` bytes
//! (1500 by default, matching the paper's ns-2 setup). Receivers acknowledge
//! every delivered packet with an [`Ack`] carrying a cumulative
//! acknowledgment, the echoed sender timestamp (the signal behind a
//! RemyCC's `send_ewma`), an ECN echo for DCTCP, and the XCP feedback field
//! for XCP senders.

use crate::time::Ns;

/// Identifies one sender/receiver pair within a simulation.
pub type FlowId = usize;

/// The fields an XCP-capable sender stamps into each packet and an XCP
/// router rewrites in flight (§2, Katabi et al. 2002).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct XcpHeader {
    /// Sender's current congestion window, in packets.
    pub cwnd_pkts: f64,
    /// Sender's current RTT estimate.
    pub rtt: Ns,
    /// Router-computed per-packet window feedback, in packets (signed).
    /// Initialized by the sender to its desired increase ("demand").
    pub feedback: f64,
}

/// One data segment traversing the dumbbell.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Owning flow.
    pub flow: FlowId,
    /// Sequence number, counted in whole packets (not bytes).
    pub seq: u64,
    /// Size on the wire, in bytes.
    pub size: u32,
    /// Sender clock when this copy of the segment was transmitted. Echoed
    /// back by the receiver; drives RTT samples and `send_ewma`.
    pub sent_at: Ns,
    /// True if this is a retransmission (excluded from goodput accounting
    /// only when the receiver has already seen the data).
    pub retransmit: bool,
    /// True if the sender is ECN-capable (DCTCP).
    pub ecn_capable: bool,
    /// Set by an ECN-marking queue instead of dropping.
    pub ecn_marked: bool,
    /// XCP congestion header, when the sender runs XCP.
    pub xcp: Option<XcpHeader>,
    /// Stamped by the bottleneck queue on arrival; used to measure
    /// per-packet queueing delay.
    pub enqueued_at: Ns,
    /// When `Some`, this packet is an acknowledgment in flight on a queued
    /// ACK path (multi-hop topologies only; see [`crate::topology`]). Like
    /// any packet it can be queued, delayed, or dropped — ACK loss is
    /// recovered by later cumulative ACKs or the RTO.
    pub ack: Option<Ack>,
    /// Position along the owning flow's path (index into
    /// [`crate::topology::FlowPath::fwd`], or `ack` for ACK packets).
    /// Maintained by the engine; always 0 on the legacy dumbbell.
    pub path_pos: usize,
    /// Total time this packet has waited in queues so far, accumulated
    /// hop by hop; the flow's queueing-delay metric records the sum once,
    /// at the final data hop (end-to-end queueing, not a per-hop average).
    pub queue_wait: Ns,
}

/// Wire size of an acknowledgment, bytes (TCP/IP header without payload).
pub const ACK_BYTES: u32 = 40;

impl Packet {
    /// A fresh data segment with no router state attached.
    pub fn data(flow: FlowId, seq: u64, size: u32, sent_at: Ns) -> Packet {
        Packet {
            flow,
            seq,
            size,
            sent_at,
            retransmit: false,
            ecn_capable: false,
            ecn_marked: false,
            xcp: None,
            enqueued_at: Ns::ZERO,
            ack: None,
            path_pos: 0,
            queue_wait: Ns::ZERO,
        }
    }

    /// An acknowledgment wrapped as a queueable packet for topologies with
    /// a congested ACK return path.
    pub fn carrying_ack(ack: Ack, sent_at: Ns) -> Packet {
        Packet {
            flow: ack.flow,
            seq: ack.seq,
            size: ACK_BYTES,
            sent_at,
            retransmit: false,
            ecn_capable: false,
            ecn_marked: false,
            xcp: None,
            enqueued_at: Ns::ZERO,
            ack: Some(ack),
            path_pos: 0,
            queue_wait: Ns::ZERO,
        }
    }
}

/// An acknowledgment traveling back to the sender.
///
/// The simulator models a pure ACK path: acknowledgments are never dropped
/// or queued (the paper's dumbbell has an uncongested reverse path), they
/// are only delayed by the flow's return propagation time.
#[derive(Clone, Debug)]
pub struct Ack {
    /// Owning flow.
    pub flow: FlowId,
    /// Cumulative acknowledgment: the next sequence number the receiver
    /// expects (all packets below this have been delivered).
    pub cum_ack: u64,
    /// Sequence number of the specific packet that triggered this ACK.
    pub seq: u64,
    /// The `sent_at` timestamp of that packet, echoed back.
    pub echo_ts: Ns,
    /// Receiver clock when the packet arrived (one-way delay accounting).
    pub received_at: Ns,
    /// True if the delivered packet carried an ECN CE mark.
    pub ecn_echo: bool,
    /// XCP feedback copied from the delivered packet's congestion header.
    pub xcp_feedback: Option<f64>,
    /// True if the packet carried data the receiver had not seen before.
    pub new_data: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_constructor_defaults() {
        let p = Packet::data(3, 17, 1500, Ns::from_millis(5));
        assert_eq!(p.flow, 3);
        assert_eq!(p.seq, 17);
        assert_eq!(p.size, 1500);
        assert_eq!(p.sent_at, Ns::from_millis(5));
        assert!(!p.retransmit);
        assert!(!p.ecn_capable && !p.ecn_marked);
        assert!(p.xcp.is_none());
        assert!(p.ack.is_none());
        assert_eq!(p.path_pos, 0);
    }

    #[test]
    fn ack_packet_wraps_the_acknowledgment() {
        let ack = Ack {
            flow: 2,
            cum_ack: 9,
            seq: 8,
            echo_ts: Ns::from_millis(1),
            received_at: Ns::from_millis(3),
            ecn_echo: false,
            xcp_feedback: None,
            new_data: true,
        };
        let p = Packet::carrying_ack(ack, Ns::from_millis(3));
        assert_eq!(p.flow, 2);
        assert_eq!(p.seq, 8);
        assert_eq!(p.size, ACK_BYTES);
        assert_eq!(p.ack.as_ref().map(|a| a.cum_ack), Some(9));
    }
}
