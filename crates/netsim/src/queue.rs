//! Bottleneck queue disciplines.
//!
//! The paper's evaluation uses four router configurations, all implemented
//! here:
//!
//! * **DropTail** — a FIFO with a fixed packet capacity (1000 packets in
//!   most experiments; "unlimited" during Remy's design phase).
//! * **ECN threshold** — DropTail plus DCTCP-style marking: packets are
//!   CE-marked when the instantaneous queue occupancy at enqueue meets a
//!   threshold `K` (the paper's "modified RED" gateway for DCTCP).
//! * **CoDel** — Nichols & Jacobson's controlled-delay AQM: drops at
//!   dequeue when the per-packet sojourn time stays above `target` (5 ms)
//!   for longer than `interval` (100 ms), with the drop rate growing as the
//!   square root of the drop count.
//! * **sfqCoDel** — stochastic fair queueing (flows hashed into buckets,
//!   round-robin service) with an independent CoDel instance per bucket;
//!   this is the strongest router-assisted baseline in the paper.
//!
//! Queues hold [`PacketId`] handles, not packets: the packets themselves
//! live in the simulation's [`PacketArena`], which every `enqueue`/
//! `dequeue` receives. A discipline that drops a packet — at the tail, by
//! the CoDel law, by RED, or by the stochastic-loss wrapper — frees its
//! slot back to the arena; a handle returned by `dequeue` transfers
//! ownership to the caller.

use crate::json::Value;
use crate::packet::{PacketArena, PacketId};
use crate::time::Ns;
use std::collections::VecDeque;

/// Outcome of offering a packet to a queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Enqueue {
    /// Accepted (possibly ECN-marked; inspect the packet on delivery).
    Queued,
    /// Dropped at the tail — the handle was freed back to the arena, and
    /// the sender will discover the loss via dup-ACKs or a timeout.
    Dropped,
}

/// A bottleneck queue discipline.
///
/// Disciplines own their packet handles between `enqueue` and `dequeue`
/// and are free to drop (freeing the arena slot) or mark. `dequeue` is
/// called when the outgoing link is ready to serve the next packet.
pub trait Queue: Send {
    /// Offer the packet behind `id` at time `now`. On [`Enqueue::Dropped`]
    /// the id has been freed and must not be used again.
    fn enqueue(&mut self, now: Ns, id: PacketId, arena: &mut PacketArena) -> Enqueue;

    /// Pull the next packet to transmit at time `now` (AQMs may drop
    /// packets internally while selecting it). Ownership of the returned
    /// handle passes to the caller.
    fn dequeue(&mut self, now: Ns, arena: &mut PacketArena) -> Option<PacketId>;

    /// Packets currently held.
    fn len(&self) -> usize;

    /// Bytes currently held.
    fn bytes(&self) -> u64;

    /// True if no packet is available.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Packets dropped so far (tail drops plus AQM drops).
    fn drops(&self) -> u64;
}

// ---------------------------------------------------------------------------
// Queue entries
// ---------------------------------------------------------------------------

/// What a discipline keeps per queued packet: the handle plus the two
/// fields every dequeue decision needs (`size` for byte accounting, the
/// arrival time for sojourn). Caching them here means the dequeue/drop
/// paths never touch the (usually cache-cold) arena slot; the arrival
/// time is stamped into the packet only when it is actually yielded to
/// the caller (`yield_entry`), which reads identically to stamping on
/// enqueue — the field is unobservable in between.
#[derive(Clone, Copy)]
struct QEntry {
    id: PacketId,
    size: u32,
    enqueued_at: Ns,
}

impl QEntry {
    /// Capture a packet entering a queue at `now` (the arena slot is hot
    /// here: the packet was just written by the sender or previous hop).
    #[inline]
    fn capture(now: Ns, id: PacketId, arena: &PacketArena) -> QEntry {
        QEntry {
            id,
            size: arena[id].size,
            enqueued_at: now,
        }
    }

    /// Hand the packet to the caller: stamp its arrival time (the caller
    /// reads it right after, so the write warms the slot) and return the
    /// handle.
    #[inline]
    fn yield_entry(self, arena: &mut PacketArena) -> PacketId {
        arena[self.id].enqueued_at = self.enqueued_at;
        self.id
    }
}

// ---------------------------------------------------------------------------
// DropTail
// ---------------------------------------------------------------------------

/// A plain FIFO with a packet-count capacity.
pub struct DropTail {
    q: VecDeque<QEntry>,
    capacity: usize,
    bytes: u64,
    drops: u64,
}

impl DropTail {
    /// A FIFO holding at most `capacity` packets.
    pub fn new(capacity: usize) -> DropTail {
        DropTail {
            q: VecDeque::new(),
            capacity,
            bytes: 0,
            drops: 0,
        }
    }

    /// An effectively infinite queue — the paper's design-phase
    /// configuration ("queue capacity: unlimited").
    pub fn unlimited() -> DropTail {
        DropTail::new(usize::MAX)
    }
}

impl Queue for DropTail {
    #[inline]
    fn enqueue(&mut self, now: Ns, id: PacketId, arena: &mut PacketArena) -> Enqueue {
        if self.q.len() >= self.capacity {
            self.drops += 1;
            arena.free(id);
            return Enqueue::Dropped;
        }
        let e = QEntry::capture(now, id, arena);
        self.bytes += e.size as u64;
        self.q.push_back(e);
        Enqueue::Queued
    }

    #[inline]
    fn dequeue(&mut self, _now: Ns, arena: &mut PacketArena) -> Option<PacketId> {
        let e = self.q.pop_front()?;
        self.bytes -= e.size as u64;
        Some(e.yield_entry(arena))
    }

    #[inline]
    fn len(&self) -> usize {
        self.q.len()
    }

    #[inline]
    fn bytes(&self) -> u64 {
        self.bytes
    }

    #[inline]
    fn drops(&self) -> u64 {
        self.drops
    }
}

// ---------------------------------------------------------------------------
// ECN threshold (DCTCP gateway)
// ---------------------------------------------------------------------------

/// DropTail plus instantaneous-queue ECN marking at threshold `K`.
///
/// DCTCP's gateway marks a packet's CE codepoint when the queue occupancy
/// it sees on arrival is at least `K` packets (Alizadeh et al. 2010 use a
/// single-threshold "modified RED"). Non-ECN-capable packets pass through
/// unmarked and are dropped only on overflow.
pub struct EcnThreshold {
    inner: DropTail,
    mark_threshold: usize,
    marks: u64,
}

impl EcnThreshold {
    /// Capacity `capacity` packets, marking at `mark_threshold` packets.
    pub fn new(capacity: usize, mark_threshold: usize) -> EcnThreshold {
        EcnThreshold {
            inner: DropTail::new(capacity),
            mark_threshold,
            marks: 0,
        }
    }

    /// CE marks applied so far.
    pub fn marks(&self) -> u64 {
        self.marks
    }
}

impl Queue for EcnThreshold {
    #[inline]
    fn enqueue(&mut self, now: Ns, id: PacketId, arena: &mut PacketArena) -> Enqueue {
        let p = &mut arena[id];
        if p.ecn_capable && self.inner.len() >= self.mark_threshold {
            p.ecn_marked = true;
            self.marks += 1;
        }
        self.inner.enqueue(now, id, arena)
    }

    #[inline]
    fn dequeue(&mut self, now: Ns, arena: &mut PacketArena) -> Option<PacketId> {
        self.inner.dequeue(now, arena)
    }

    #[inline]
    fn len(&self) -> usize {
        self.inner.len()
    }

    #[inline]
    fn bytes(&self) -> u64 {
        self.inner.bytes()
    }

    #[inline]
    fn drops(&self) -> u64 {
        self.inner.drops()
    }
}

// ---------------------------------------------------------------------------
// CoDel
// ---------------------------------------------------------------------------

/// CoDel control-law state, shared by [`Codel`] and each sfqCoDel bucket.
///
/// Implements the dequeue-side algorithm from Nichols & Jacobson,
/// "Controlling Queue Delay" (ACM Queue 2012): track how long the sojourn
/// time has continuously exceeded `target`; once it has for a full
/// `interval`, enter a dropping state where packets are dropped at
/// `interval / sqrt(count)` spacing until the sojourn falls below target.
#[derive(Clone, Debug)]
struct CodelLaw {
    target: Ns,
    interval: Ns,
    first_above_time: Ns,
    drop_next: Ns,
    count: u64,
    last_count: u64,
    dropping: bool,
}

impl CodelLaw {
    fn new(target: Ns, interval: Ns) -> CodelLaw {
        CodelLaw {
            target,
            interval,
            first_above_time: Ns::ZERO,
            drop_next: Ns::ZERO,
            count: 0,
            last_count: 0,
            dropping: false,
        }
    }

    fn control_interval(&self, count: u64) -> Ns {
        // interval / sqrt(count)
        Ns::from_secs_f64(self.interval.as_secs_f64() / (count.max(1) as f64).sqrt())
    }

    /// Decide whether the packet dequeued at `now` with the given sojourn
    /// time should be dropped, per the "ok to drop" half of the algorithm.
    fn should_drop(&mut self, now: Ns, sojourn: Ns, queue_bytes: u64, mss: u64) -> bool {
        if sojourn < self.target || queue_bytes <= mss {
            // Went below target: reset the above-target clock.
            self.first_above_time = Ns::ZERO;
            return false;
        }
        if self.first_above_time.is_zero() {
            self.first_above_time = now + self.interval;
            false
        } else {
            now >= self.first_above_time
        }
    }

    /// Run the dequeue-side state machine. Returns `true` if the packet
    /// with the given sojourn time must be dropped (the caller then
    /// re-invokes with the next packet).
    fn on_dequeue(&mut self, now: Ns, sojourn: Ns, queue_bytes: u64, mss: u64) -> bool {
        let ok_to_drop = self.should_drop(now, sojourn, queue_bytes, mss);
        if self.dropping {
            if !ok_to_drop {
                self.dropping = false;
                return false;
            }
            if now >= self.drop_next {
                self.count += 1;
                self.drop_next += self.control_interval(self.count);
                return true;
            }
            false
        } else if ok_to_drop {
            self.dropping = true;
            // If we dropped recently, resume from a higher count so the
            // drop rate re-converges quickly (the "count - 2" heuristic).
            self.count = if self.count > 2 && now.saturating_sub(self.drop_next) < self.interval {
                self.count - 2
            } else {
                1
            };
            self.last_count = self.count;
            self.drop_next = now + self.control_interval(self.count);
            true
        } else {
            false
        }
    }
}

/// Default CoDel target sojourn time (5 ms).
pub const CODEL_TARGET: Ns = Ns(5_000_000);
/// Default CoDel interval (100 ms).
pub const CODEL_INTERVAL: Ns = Ns(100_000_000);

/// A single-queue CoDel AQM over a FIFO with packet-count capacity.
pub struct Codel {
    q: VecDeque<QEntry>,
    capacity: usize,
    bytes: u64,
    drops: u64,
    law: CodelLaw,
    mss: u64,
}

impl Codel {
    /// CoDel with the standard 5 ms / 100 ms parameters.
    pub fn new(capacity: usize) -> Codel {
        Codel::with_params(capacity, CODEL_TARGET, CODEL_INTERVAL)
    }

    /// CoDel with explicit target/interval (exposed for tests and
    /// sensitivity studies).
    pub fn with_params(capacity: usize, target: Ns, interval: Ns) -> Codel {
        Codel {
            q: VecDeque::new(),
            capacity,
            bytes: 0,
            drops: 0,
            law: CodelLaw::new(target, interval),
            mss: 1500,
        }
    }
}

impl Queue for Codel {
    #[inline]
    fn enqueue(&mut self, now: Ns, id: PacketId, arena: &mut PacketArena) -> Enqueue {
        if self.q.len() >= self.capacity {
            self.drops += 1;
            arena.free(id);
            return Enqueue::Dropped;
        }
        let e = QEntry::capture(now, id, arena);
        self.bytes += e.size as u64;
        self.q.push_back(e);
        Enqueue::Queued
    }

    #[inline]
    fn dequeue(&mut self, now: Ns, arena: &mut PacketArena) -> Option<PacketId> {
        loop {
            let e = self.q.pop_front()?;
            self.bytes -= e.size as u64;
            let sojourn = now.saturating_sub(e.enqueued_at);
            if self.law.on_dequeue(now, sojourn, self.bytes, self.mss) {
                self.drops += 1;
                arena.free(e.id);
                continue;
            }
            return Some(e.yield_entry(arena));
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.q.len()
    }

    #[inline]
    fn bytes(&self) -> u64 {
        self.bytes
    }

    #[inline]
    fn drops(&self) -> u64 {
        self.drops
    }
}

// ---------------------------------------------------------------------------
// sfqCoDel
// ---------------------------------------------------------------------------

/// Stochastic fair queueing with per-bucket CoDel.
///
/// Flows are hashed into `n_buckets` FIFOs; service visits non-empty
/// buckets round-robin (all simulated packets are MSS-sized, so
/// packet-granularity round-robin equals byte-granularity DRR). Each bucket
/// runs its own CoDel law. On overflow the packet at the head of the
/// longest bucket is dropped to make room, as in Nichols's published
/// `sfqcodel` implementation. An occupancy bitmap makes the round-robin
/// scan skip empty buckets in O(1) instead of probing each in turn.
pub struct SfqCodel {
    buckets: Vec<VecDeque<QEntry>>,
    laws: Vec<CodelLaw>,
    /// Bytes held per bucket, maintained incrementally on enqueue /
    /// dequeue / drop (the CoDel law consults its bucket's backlog on
    /// every dequeue; recomputing it by summation made each dequeue
    /// O(bucket length)).
    bucket_bytes: Vec<u64>,
    /// Packets held per bucket, kept in one compact array so the
    /// overflow shed's longest-bucket scan reads a few cache lines
    /// instead of probing every `VecDeque` header.
    bucket_lens: Vec<u32>,
    /// One bit per non-empty bucket, in 64-bucket words.
    occupied: Vec<u64>,
    /// Round-robin cursor: index of the next bucket to consider.
    cursor: usize,
    capacity: usize,
    len: usize,
    bytes: u64,
    drops: u64,
    mss: u64,
}

impl SfqCodel {
    /// `capacity` total packets shared across `n_buckets` buckets, standard
    /// CoDel parameters.
    pub fn new(capacity: usize, n_buckets: usize) -> SfqCodel {
        assert!(n_buckets > 0, "need at least one bucket");
        SfqCodel {
            buckets: (0..n_buckets).map(|_| VecDeque::new()).collect(),
            laws: (0..n_buckets)
                .map(|_| CodelLaw::new(CODEL_TARGET, CODEL_INTERVAL))
                .collect(),
            bucket_bytes: vec![0; n_buckets],
            bucket_lens: vec![0; n_buckets],
            occupied: vec![0; n_buckets.div_ceil(64)],
            cursor: 0,
            capacity,
            len: 0,
            bytes: 0,
            drops: 0,
            mss: 1500,
        }
    }

    /// Fibonacci hashing so adjacent flow ids land in scattered buckets.
    /// For power-of-two bucket counts (the standard 64) the modulo
    /// strength-reduces to a mask — same value, no hardware divide on the
    /// per-packet path.
    #[inline]
    fn bucket_index(&self, flow: usize) -> usize {
        let h = (flow as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let n = self.buckets.len();
        if n.is_power_of_two() {
            (h >> 32) as usize & (n - 1)
        } else {
            (h >> 32) as usize % n
        }
    }

    fn mark_occupied(&mut self, idx: usize) {
        let w = idx / 64;
        self.occupied[w] |= 1u64 << (idx % 64);
    }

    fn mark_if_empty(&mut self, idx: usize) {
        if self.buckets[idx].is_empty() {
            let w = idx / 64;
            self.occupied[w] &= !(1u64 << (idx % 64));
        }
    }

    /// First occupied bucket index in `[from, to)`, if any.
    fn scan_occupied(&self, from: usize, to: usize) -> Option<usize> {
        if from >= to {
            return None;
        }
        let last_w = (to - 1) / 64;
        let mut w = from / 64;
        let mut word = self.occupied[w] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                let idx = w * 64 + word.trailing_zeros() as usize;
                return (idx < to).then_some(idx);
            }
            if w == last_w {
                return None;
            }
            w += 1;
            word = self.occupied[w];
        }
    }

    /// First occupied bucket in cyclic order starting at `start`.
    fn next_occupied(&self, start: usize) -> Option<usize> {
        self.scan_occupied(start, self.buckets.len())
            .or_else(|| self.scan_occupied(0, start))
    }

    fn drop_from_longest(&mut self, arena: &mut PacketArena) {
        // Last-max semantics match the previous `max_by_key` over the
        // bucket deques (ties pick the highest index). Two passes over
        // the compact length array keep both loops free of sequential
        // dependencies, so they vectorize.
        let Some(&max) = self.bucket_lens.iter().max() else {
            debug_assert!(false, "drop_from_longest on an empty bucket set");
            return;
        };
        let Some(idx) = self.bucket_lens.iter().rposition(|&l| l == max) else {
            debug_assert!(false, "max has no position");
            return;
        };
        if let Some(victim) = self.buckets[idx].pop_front() {
            arena.free(victim.id);
            self.len -= 1;
            self.bytes -= victim.size as u64;
            self.bucket_bytes[idx] -= victim.size as u64;
            self.bucket_lens[idx] -= 1;
            self.drops += 1;
            self.mark_if_empty(idx);
        }
    }
}

impl Queue for SfqCodel {
    #[inline]
    fn enqueue(&mut self, now: Ns, id: PacketId, arena: &mut PacketArena) -> Enqueue {
        let idx = self.bucket_index(arena[id].flow.index() as usize);
        if self.len >= self.capacity {
            // Make room by shedding from the most backlogged flow; the
            // arriving packet is then admitted. If the longest bucket is
            // the arriving flow's own, this is equivalent to head drop.
            self.drop_from_longest(arena);
        }
        let e = QEntry::capture(now, id, arena);
        let size = e.size as u64;
        self.len += 1;
        self.bytes += size;
        self.bucket_bytes[idx] += size;
        self.bucket_lens[idx] += 1;
        self.buckets[idx].push_back(e);
        self.mark_occupied(idx);
        Enqueue::Queued
    }

    #[inline]
    fn dequeue(&mut self, now: Ns, arena: &mut PacketArena) -> Option<PacketId> {
        if self.len == 0 {
            return None;
        }
        let n = self.buckets.len();
        debug_assert!(self.cursor < n);
        // Wrap-around successor without the hardware divide a `% n` with
        // a runtime modulus costs on every dequeue.
        let next = |i: usize| if i + 1 == n { 0 } else { i + 1 };
        // Visit non-empty buckets round-robin; within a bucket, run CoDel
        // until it yields a packet or empties.
        let mut idx = self.next_occupied(self.cursor)?;
        loop {
            while let Some(e) = self.buckets[idx].pop_front() {
                self.len -= 1;
                self.bytes -= e.size as u64;
                self.bucket_bytes[idx] -= e.size as u64;
                self.bucket_lens[idx] -= 1;
                self.mark_if_empty(idx);
                let sojourn = now.saturating_sub(e.enqueued_at);
                if self.laws[idx].on_dequeue(now, sojourn, self.bucket_bytes[idx], self.mss) {
                    self.drops += 1;
                    arena.free(e.id);
                    continue;
                }
                self.cursor = next(idx);
                return Some(e.yield_entry(arena));
            }
            // Bucket drained by CoDel drops: move to the next non-empty
            // one. Buckets only shrink here, so this terminates.
            idx = self.next_occupied(next(idx))?;
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn bytes(&self) -> u64 {
        self.bytes
    }

    #[inline]
    fn drops(&self) -> u64 {
        self.drops
    }
}

// ---------------------------------------------------------------------------
// RED — Random Early Detection
// ---------------------------------------------------------------------------

/// RED gateway (Floyd & Jacobson 1993), in drop or ECN-mark mode.
///
/// Maintains an EWMA of the queue length; between `min_th` and `max_th`
/// packets it drops/marks arrivals with probability rising linearly to
/// `max_p` (with the standard `count` correction that spreads early drops
/// uniformly), and above `max_th` it drops/marks everything. DCTCP's
/// gateway is the degenerate "modified RED" with `min_th == max_th` and
/// instantaneous averaging — provided directly by [`EcnThreshold`]; this
/// full implementation covers classic AQM configurations.
pub struct Red {
    q: VecDeque<QEntry>,
    capacity: usize,
    bytes: u64,
    drops: u64,
    marks: u64,
    /// EWMA weight for the average queue size.
    w_q: f64,
    avg: f64,
    min_th: f64,
    max_th: f64,
    max_p: f64,
    /// Packets since the last early drop/mark (the uniformization count).
    count: i64,
    /// Mark instead of dropping (for ECN-capable packets).
    ecn_mode: bool,
    rng: crate::rng::SimRng,
}

impl Red {
    /// Classic RED in drop mode.
    pub fn new(capacity: usize, min_th: usize, max_th: usize) -> Red {
        Red::with_mode(capacity, min_th, max_th, false)
    }

    /// RED that CE-marks ECN-capable packets instead of dropping them.
    pub fn ecn(capacity: usize, min_th: usize, max_th: usize) -> Red {
        Red::with_mode(capacity, min_th, max_th, true)
    }

    fn with_mode(capacity: usize, min_th: usize, max_th: usize, ecn_mode: bool) -> Red {
        assert!(min_th < max_th, "RED needs min_th < max_th");
        Red {
            q: VecDeque::new(),
            capacity,
            bytes: 0,
            drops: 0,
            marks: 0,
            w_q: 0.002,
            avg: 0.0,
            min_th: min_th as f64,
            max_th: max_th as f64,
            max_p: 0.1,
            count: -1,
            ecn_mode,
            // lint:allow(r2-rng-underived-seed): RED's fixed marking stream
            // predates the stream registry; changing it re-randomizes every
            // published drop sequence. Frozen for bit-exact goldens.
            rng: crate::rng::SimRng::new(0x12ED_D00D),
        }
    }

    /// CE marks applied so far (ECN mode).
    pub fn marks(&self) -> u64 {
        self.marks
    }

    /// Current average queue estimate (tests).
    pub fn avg(&self) -> f64 {
        self.avg
    }

    /// Whether the arriving packet should be dropped/marked early.
    fn early_action(&mut self) -> bool {
        if self.avg < self.min_th {
            self.count = -1;
            return false;
        }
        if self.avg >= self.max_th {
            self.count = 0;
            return true;
        }
        self.count += 1;
        let p_b = self.max_p * (self.avg - self.min_th) / (self.max_th - self.min_th);
        // Uniformize inter-drop gaps: p_a = p_b / (1 − count·p_b). Once
        // count·p_b ≥ 1 the uniformized law says the packet is dropped
        // with certainty — the raw quotient goes negative there, and
        // clamping it to 0 would make RED stop dropping entirely on long
        // runs without a drop.
        let denom = 1.0 - self.count as f64 * p_b;
        let p_a = if denom <= 0.0 {
            1.0
        } else {
            (p_b / denom).min(1.0)
        };
        if p_b > 0.0 && self.rng.chance(p_a) {
            self.count = 0;
            true
        } else {
            false
        }
    }
}

impl Queue for Red {
    #[inline]
    fn enqueue(&mut self, now: Ns, id: PacketId, arena: &mut PacketArena) -> Enqueue {
        // Update the average on every arrival (idle-time correction
        // omitted: the simulator's bottleneck rarely idles under load,
        // and the EWMA recovers in a few arrivals).
        self.avg = (1.0 - self.w_q) * self.avg + self.w_q * self.q.len() as f64;
        if self.q.len() >= self.capacity {
            self.drops += 1;
            arena.free(id);
            return Enqueue::Dropped;
        }
        if self.early_action() {
            let p = &mut arena[id];
            if self.ecn_mode && p.ecn_capable {
                p.ecn_marked = true;
                self.marks += 1;
            } else {
                self.drops += 1;
                arena.free(id);
                return Enqueue::Dropped;
            }
        }
        let e = QEntry::capture(now, id, arena);
        self.bytes += e.size as u64;
        self.q.push_back(e);
        Enqueue::Queued
    }

    #[inline]
    fn dequeue(&mut self, _now: Ns, arena: &mut PacketArena) -> Option<PacketId> {
        let e = self.q.pop_front()?;
        self.bytes -= e.size as u64;
        Some(e.yield_entry(arena))
    }

    #[inline]
    fn len(&self) -> usize {
        self.q.len()
    }

    #[inline]
    fn bytes(&self) -> u64 {
        self.bytes
    }

    #[inline]
    fn drops(&self) -> u64 {
        self.drops
    }
}

// ---------------------------------------------------------------------------
// Stochastic (non-congestive) loss injection
// ---------------------------------------------------------------------------

/// Wraps any discipline with random, non-congestive packet loss.
///
/// §4.1 of the paper argues that because RemyCCs do not use loss as a
/// congestion signal, they "robustly handle stochastic (non-congestive)
/// packet losses without adversely reducing performance" — unlike
/// loss-based TCP. This wrapper injects exactly that impairment: each
/// arriving packet is dropped with probability `p`, independent of queue
/// state, from a deterministic per-queue random stream.
pub struct Lossy<Q> {
    inner: Q,
    drop_probability: f64,
    rng: crate::rng::SimRng,
    stochastic_drops: u64,
}

impl<Q: Queue> Lossy<Q> {
    /// Drop arrivals with probability `p ∈ [0, 1]`, deterministic in `seed`.
    pub fn new(inner: Q, p: f64, seed: u64) -> Lossy<Q> {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        Lossy {
            inner,
            drop_probability: p,
            // lint:allow(r2-rng-underived-seed): the xor constant decouples
            // the loss stream from the caller's seed space; changing the
            // derivation re-randomizes every published lossy-link result.
            rng: crate::rng::SimRng::new(seed ^ 0x1055_1055),
            stochastic_drops: 0,
        }
    }

    /// Random (non-congestive) drops so far.
    pub fn stochastic_drops(&self) -> u64 {
        self.stochastic_drops
    }
}

impl<Q: Queue> Queue for Lossy<Q> {
    #[inline]
    fn enqueue(&mut self, now: Ns, id: PacketId, arena: &mut PacketArena) -> Enqueue {
        if self.drop_probability > 0.0 && self.rng.chance(self.drop_probability) {
            self.stochastic_drops += 1;
            arena.free(id);
            return Enqueue::Dropped;
        }
        self.inner.enqueue(now, id, arena)
    }

    #[inline]
    fn dequeue(&mut self, now: Ns, arena: &mut PacketArena) -> Option<PacketId> {
        self.inner.dequeue(now, arena)
    }

    #[inline]
    fn len(&self) -> usize {
        self.inner.len()
    }

    #[inline]
    fn bytes(&self) -> u64 {
        self.inner.bytes()
    }

    #[inline]
    fn drops(&self) -> u64 {
        self.inner.drops() + self.stochastic_drops
    }
}

// ---------------------------------------------------------------------------
// Configuration enum used by scenarios
// ---------------------------------------------------------------------------

/// Declarative queue configuration, used by scenario descriptions so that
/// experiment configs remain plain data.
#[derive(Clone, Debug, PartialEq)]
pub enum QueueSpec {
    /// FIFO, tail drop, given packet capacity.
    DropTail {
        /// Capacity in packets.
        capacity: usize,
    },
    /// FIFO with no practical capacity limit (design-phase model).
    Unlimited,
    /// DropTail with DCTCP ECN marking at `mark_threshold` packets.
    Ecn {
        /// Capacity in packets.
        capacity: usize,
        /// Instantaneous-queue CE-marking threshold, packets.
        mark_threshold: usize,
    },
    /// Single-queue CoDel.
    Codel {
        /// Capacity in packets.
        capacity: usize,
    },
    /// Stochastic fair queueing + CoDel.
    SfqCodel {
        /// Total capacity in packets.
        capacity: usize,
        /// Number of hash buckets.
        buckets: usize,
    },
    /// Classic RED (drop mode).
    Red {
        /// Capacity in packets.
        capacity: usize,
        /// Lower average-queue threshold, packets.
        min_th: usize,
        /// Upper average-queue threshold, packets.
        max_th: usize,
    },
    /// RED that CE-marks ECN-capable packets instead of dropping.
    RedEcn {
        /// Capacity in packets.
        capacity: usize,
        /// Lower average-queue threshold, packets.
        min_th: usize,
        /// Upper average-queue threshold, packets.
        max_th: usize,
    },
    /// Any other discipline plus random non-congestive loss (see
    /// [`Lossy`]).
    LossyDropTail {
        /// Capacity in packets.
        capacity: usize,
        /// Per-packet drop probability.
        drop_probability: f64,
        /// Seed for the loss stream.
        seed: u64,
    },
}

impl QueueSpec {
    /// The same discipline with a different packet capacity. Multi-hop
    /// topologies use this to apply one contender's queue discipline to
    /// hops of differing depth ([`Unlimited`](QueueSpec::Unlimited) has no
    /// capacity and is returned unchanged).
    pub fn with_capacity(self, capacity: usize) -> QueueSpec {
        match self {
            QueueSpec::DropTail { .. } => QueueSpec::DropTail { capacity },
            QueueSpec::Unlimited => QueueSpec::Unlimited,
            QueueSpec::Ecn { mark_threshold, .. } => QueueSpec::Ecn {
                capacity,
                mark_threshold,
            },
            QueueSpec::Codel { .. } => QueueSpec::Codel { capacity },
            QueueSpec::SfqCodel { buckets, .. } => QueueSpec::SfqCodel { capacity, buckets },
            QueueSpec::Red { min_th, max_th, .. } => QueueSpec::Red {
                capacity,
                min_th,
                max_th,
            },
            QueueSpec::RedEcn { min_th, max_th, .. } => QueueSpec::RedEcn {
                capacity,
                min_th,
                max_th,
            },
            QueueSpec::LossyDropTail {
                drop_probability,
                seed,
                ..
            } => QueueSpec::LossyDropTail {
                capacity,
                drop_probability,
                seed,
            },
        }
    }

    /// Serialize to a JSON value (kind tag plus the variant's fields).
    pub fn to_json_value(&self) -> Value {
        use crate::json::u64_value;
        let cap = |c: usize| u64_value(c as u64);
        match *self {
            QueueSpec::DropTail { capacity } => Value::obj(vec![
                ("kind", Value::str("drop_tail")),
                ("capacity", cap(capacity)),
            ]),
            QueueSpec::Unlimited => Value::obj(vec![("kind", Value::str("unlimited"))]),
            QueueSpec::Ecn {
                capacity,
                mark_threshold,
            } => Value::obj(vec![
                ("kind", Value::str("ecn")),
                ("capacity", cap(capacity)),
                ("mark_threshold", cap(mark_threshold)),
            ]),
            QueueSpec::Codel { capacity } => Value::obj(vec![
                ("kind", Value::str("codel")),
                ("capacity", cap(capacity)),
            ]),
            QueueSpec::SfqCodel { capacity, buckets } => Value::obj(vec![
                ("kind", Value::str("sfq_codel")),
                ("capacity", cap(capacity)),
                ("buckets", cap(buckets)),
            ]),
            QueueSpec::Red {
                capacity,
                min_th,
                max_th,
            } => Value::obj(vec![
                ("kind", Value::str("red")),
                ("capacity", cap(capacity)),
                ("min_th", cap(min_th)),
                ("max_th", cap(max_th)),
            ]),
            QueueSpec::RedEcn {
                capacity,
                min_th,
                max_th,
            } => Value::obj(vec![
                ("kind", Value::str("red_ecn")),
                ("capacity", cap(capacity)),
                ("min_th", cap(min_th)),
                ("max_th", cap(max_th)),
            ]),
            QueueSpec::LossyDropTail {
                capacity,
                drop_probability,
                seed,
            } => Value::obj(vec![
                ("kind", Value::str("lossy_drop_tail")),
                ("capacity", cap(capacity)),
                ("drop_probability", Value::num(drop_probability)),
                ("seed", u64_value(seed)),
            ]),
        }
    }

    /// Deserialize a value written by [`QueueSpec::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<QueueSpec, String> {
        let cap = || v.field("capacity")?.as_usize();
        match v.field("kind")?.as_str()? {
            "drop_tail" => Ok(QueueSpec::DropTail { capacity: cap()? }),
            "unlimited" => Ok(QueueSpec::Unlimited),
            "ecn" => Ok(QueueSpec::Ecn {
                capacity: cap()?,
                mark_threshold: v.field("mark_threshold")?.as_usize()?,
            }),
            "codel" => Ok(QueueSpec::Codel { capacity: cap()? }),
            "sfq_codel" => Ok(QueueSpec::SfqCodel {
                capacity: cap()?,
                buckets: v.field("buckets")?.as_usize()?,
            }),
            "red" => Ok(QueueSpec::Red {
                capacity: cap()?,
                min_th: v.field("min_th")?.as_usize()?,
                max_th: v.field("max_th")?.as_usize()?,
            }),
            "red_ecn" => Ok(QueueSpec::RedEcn {
                capacity: cap()?,
                min_th: v.field("min_th")?.as_usize()?,
                max_th: v.field("max_th")?.as_usize()?,
            }),
            "lossy_drop_tail" => Ok(QueueSpec::LossyDropTail {
                capacity: cap()?,
                drop_probability: v.field("drop_probability")?.as_f64()?,
                seed: v.field("seed")?.as_u64()?,
            }),
            other => Err(format!("unknown queue kind '{other}'")),
        }
    }

    /// Instantiate the discipline.
    pub fn build(&self) -> Box<dyn Queue> {
        match *self {
            QueueSpec::DropTail { capacity } => Box::new(DropTail::new(capacity)),
            QueueSpec::Unlimited => Box::new(DropTail::unlimited()),
            QueueSpec::Ecn {
                capacity,
                mark_threshold,
            } => Box::new(EcnThreshold::new(capacity, mark_threshold)),
            QueueSpec::Codel { capacity } => Box::new(Codel::new(capacity)),
            QueueSpec::SfqCodel { capacity, buckets } => Box::new(SfqCodel::new(capacity, buckets)),
            QueueSpec::Red {
                capacity,
                min_th,
                max_th,
            } => Box::new(Red::new(capacity, min_th, max_th)),
            QueueSpec::RedEcn {
                capacity,
                min_th,
                max_th,
            } => Box::new(Red::ecn(capacity, min_th, max_th)),
            QueueSpec::LossyDropTail {
                capacity,
                drop_probability,
                seed,
            } => Box::new(Lossy::new(DropTail::new(capacity), drop_probability, seed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, Packet};

    fn pkt(flow: usize, seq: u64) -> Packet {
        Packet::data(FlowId::first(flow), seq, 1500, Ns::ZERO)
    }

    /// Alloc-and-enqueue helper for the arena-handle API.
    fn push(q: &mut dyn Queue, a: &mut PacketArena, now: Ns, p: Packet) -> Enqueue {
        let id = a.alloc(p);
        q.enqueue(now, id, a)
    }

    /// Dequeue, returning a copy of the packet (slot freed).
    fn pull(q: &mut dyn Queue, a: &mut PacketArena, now: Ns) -> Option<Packet> {
        let id = q.dequeue(now, a)?;
        let p = a[id].clone();
        a.free(id);
        Some(p)
    }

    #[test]
    fn droptail_fifo_order() {
        let mut a = PacketArena::new();
        let mut q = DropTail::new(10);
        for i in 0..5 {
            assert_eq!(push(&mut q, &mut a, Ns(i), pkt(0, i)), Enqueue::Queued);
        }
        for i in 0..5 {
            assert_eq!(pull(&mut q, &mut a, Ns(100)).unwrap().seq, i);
        }
        assert!(pull(&mut q, &mut a, Ns(100)).is_none());
        assert_eq!(a.live(), 0, "every slot back in the arena");
    }

    #[test]
    fn droptail_drops_at_capacity() {
        let mut a = PacketArena::new();
        let mut q = DropTail::new(2);
        assert_eq!(push(&mut q, &mut a, Ns::ZERO, pkt(0, 0)), Enqueue::Queued);
        assert_eq!(push(&mut q, &mut a, Ns::ZERO, pkt(0, 1)), Enqueue::Queued);
        assert_eq!(push(&mut q, &mut a, Ns::ZERO, pkt(0, 2)), Enqueue::Dropped);
        assert_eq!(q.drops(), 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.bytes(), 3000);
        assert_eq!(a.live(), 2, "the dropped packet's slot was freed");
    }

    #[test]
    fn droptail_stamps_enqueue_time() {
        let mut a = PacketArena::new();
        let mut q = DropTail::new(10);
        push(&mut q, &mut a, Ns::from_millis(7), pkt(0, 0));
        assert_eq!(
            pull(&mut q, &mut a, Ns::from_millis(9))
                .unwrap()
                .enqueued_at,
            Ns::from_millis(7)
        );
    }

    #[test]
    fn ecn_marks_above_threshold_only_capable_packets() {
        let mut a = PacketArena::new();
        let mut q = EcnThreshold::new(100, 2);
        let mut capable = pkt(0, 0);
        capable.ecn_capable = true;
        // Queue below threshold: no mark.
        push(&mut q, &mut a, Ns::ZERO, capable.clone());
        push(&mut q, &mut a, Ns::ZERO, capable.clone());
        // Now occupancy == 2 == K: mark.
        push(&mut q, &mut a, Ns::ZERO, capable.clone());
        // Non-capable packet at same occupancy: not marked.
        push(&mut q, &mut a, Ns::ZERO, pkt(0, 3));
        let a_ = pull(&mut q, &mut a, Ns::ZERO).unwrap();
        let b = pull(&mut q, &mut a, Ns::ZERO).unwrap();
        let c = pull(&mut q, &mut a, Ns::ZERO).unwrap();
        let d = pull(&mut q, &mut a, Ns::ZERO).unwrap();
        assert!(!a_.ecn_marked && !b.ecn_marked);
        assert!(c.ecn_marked);
        assert!(!d.ecn_marked);
        assert_eq!(q.marks(), 1);
    }

    #[test]
    fn codel_passes_short_sojourns() {
        let mut a = PacketArena::new();
        let mut q = Codel::new(100);
        for i in 0..10 {
            push(&mut q, &mut a, Ns::from_millis(i), pkt(0, i));
        }
        // Dequeue immediately: sojourn ~ 0, nothing dropped.
        for _ in 0..10 {
            assert!(pull(&mut q, &mut a, Ns::from_millis(10)).is_some());
        }
        assert_eq!(q.drops(), 0);
    }

    #[test]
    fn codel_drops_under_persistent_delay() {
        let mut a = PacketArena::new();
        let mut q = Codel::new(10_000);
        // Build a standing queue: packets enqueued at t=0, dequeued much
        // later, so every sojourn is far above the 5 ms target.
        for i in 0..2_000 {
            push(&mut q, &mut a, Ns::ZERO, pkt(0, i));
        }
        let mut delivered = 0;
        let mut t = Ns::from_millis(50);
        for _ in 0..1_500 {
            if pull(&mut q, &mut a, t).is_some() {
                delivered += 1;
            }
            t += Ns::from_millis(1);
        }
        assert!(q.drops() > 0, "CoDel should drop under persistent queue");
        assert!(delivered > 0, "CoDel must still deliver packets");
        assert_eq!(
            a.live() as u64,
            2_000 - delivered - q.drops(),
            "only queued packets keep arena slots"
        );
    }

    #[test]
    fn codel_drop_rate_increases() {
        // With a persistent standing queue, inter-drop gaps shrink like
        // interval/sqrt(count): verify drops accelerate over time.
        let mut a = PacketArena::new();
        let mut q = Codel::new(100_000);
        for i in 0..50_000 {
            push(&mut q, &mut a, Ns::ZERO, pkt(0, i));
        }
        let mut drops_at = Vec::new();
        let mut t = Ns::from_millis(200);
        let mut last_drops = 0;
        for step in 0..3_000 {
            pull(&mut q, &mut a, t);
            if q.drops() > last_drops {
                last_drops = q.drops();
                drops_at.push(step);
            }
            t += Ns::from_millis(1);
        }
        assert!(
            drops_at.len() >= 4,
            "expected several drops, got {drops_at:?}"
        );
        let first_gap = drops_at[1] - drops_at[0];
        let last_gap = drops_at[drops_at.len() - 1] - drops_at[drops_at.len() - 2];
        assert!(
            last_gap <= first_gap,
            "drop spacing should shrink: first {first_gap}, last {last_gap}"
        );
    }

    #[test]
    fn sfq_isolates_flows_round_robin() {
        let mut a = PacketArena::new();
        let mut q = SfqCodel::new(1000, 64);
        // Flow 0 floods; flow 1 sends a little.
        for i in 0..100 {
            push(&mut q, &mut a, Ns::ZERO, pkt(0, i));
        }
        for i in 0..3 {
            push(&mut q, &mut a, Ns::ZERO, pkt(1, i));
        }
        // In the first 6 dequeues, flow 1's packets must appear
        // interleaved, not starved behind flow 0's backlog.
        let mut flow1_seen = 0;
        for _ in 0..6 {
            let p = pull(&mut q, &mut a, Ns::from_micros(10)).unwrap();
            if p.flow.index() == 1 {
                flow1_seen += 1;
            }
        }
        assert_eq!(flow1_seen, 3, "flow 1 should be served round-robin");
    }

    #[test]
    fn sfq_overflow_sheds_from_longest_flow() {
        let mut a = PacketArena::new();
        let mut q = SfqCodel::new(10, 64);
        for i in 0..10 {
            push(&mut q, &mut a, Ns::ZERO, pkt(0, i));
        }
        // Queue full; a packet from flow 1 should displace one of flow 0's.
        assert_eq!(push(&mut q, &mut a, Ns::ZERO, pkt(1, 0)), Enqueue::Queued);
        assert_eq!(q.len(), 10);
        assert_eq!(q.drops(), 1);
        let mut flows: Vec<usize> = Vec::new();
        while let Some(p) = pull(&mut q, &mut a, Ns::from_micros(1)) {
            flows.push(p.flow.index() as usize);
        }
        assert!(flows.contains(&1), "new flow's packet survived");
        assert_eq!(flows.iter().filter(|&&f| f == 0).count(), 9);
    }

    #[test]
    fn sfq_conserves_packets_without_pressure() {
        let mut a = PacketArena::new();
        let mut q = SfqCodel::new(1000, 16);
        for f in 0..5 {
            for i in 0..7 {
                push(&mut q, &mut a, Ns::ZERO, pkt(f, i));
            }
        }
        let mut out = 0;
        while pull(&mut q, &mut a, Ns::from_micros(5)).is_some() {
            out += 1;
        }
        assert_eq!(out, 35);
        assert_eq!(q.drops(), 0);
        assert_eq!(q.bytes(), 0);
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn queue_spec_builds_each_discipline() {
        let specs = [
            QueueSpec::DropTail { capacity: 10 },
            QueueSpec::Unlimited,
            QueueSpec::Ecn {
                capacity: 10,
                mark_threshold: 3,
            },
            QueueSpec::Codel { capacity: 10 },
            QueueSpec::SfqCodel {
                capacity: 10,
                buckets: 4,
            },
        ];
        for spec in &specs {
            let mut a = PacketArena::new();
            let mut q = spec.build();
            assert_eq!(push(&mut *q, &mut a, Ns::ZERO, pkt(0, 0)), Enqueue::Queued);
            assert_eq!(q.len(), 1);
            assert!(pull(&mut *q, &mut a, Ns(1)).is_some());
            assert!(q.is_empty());
        }
    }

    #[test]
    fn red_passes_everything_below_min_th() {
        let mut a = PacketArena::new();
        let mut q = Red::new(1000, 50, 150);
        // Light load: queue never builds, avg stays ~0.
        for i in 0..500 {
            assert_eq!(push(&mut q, &mut a, Ns(i), pkt(0, i)), Enqueue::Queued);
            assert!(pull(&mut q, &mut a, Ns(i + 1)).is_some());
        }
        assert_eq!(q.drops(), 0);
    }

    #[test]
    fn red_drops_probabilistically_between_thresholds() {
        let mut a = PacketArena::new();
        let mut q = Red::new(10_000, 20, 100);
        // Build a standing queue of ~60 so avg converges between the
        // thresholds, then offer many more arrivals.
        for i in 0..60 {
            push(&mut q, &mut a, Ns(i), pkt(0, i));
        }
        let mut early_drops = 0;
        for i in 0..5_000 {
            // Keep occupancy steady: one out, one (maybe) in.
            pull(&mut q, &mut a, Ns(1000 + i));
            if push(&mut q, &mut a, Ns(1000 + i), pkt(0, 100 + i)) == Enqueue::Dropped {
                early_drops += 1;
            }
        }
        assert!(early_drops > 20, "expected early drops, got {early_drops}");
        assert!(
            (early_drops as f64) < 2_000.0,
            "drop rate should be moderate, got {early_drops}/5000"
        );
    }

    #[test]
    fn red_uniformized_law_saturates_at_certain_drop() {
        // Regression: when count·p_b ≥ 1 the uniformized probability
        // p_b/(1 − count·p_b) goes negative; it used to be clamped to 0,
        // so a long run without a drop made RED stop dropping entirely.
        // The law says such a packet is dropped with probability 1.
        let mut q = Red::new(10_000, 20, 100);
        q.avg = 60.0; // p_b = 0.1·(60−20)/80 = 0.05
        q.count = 25; // next arrival sees count = 26, count·p_b = 1.3 > 1
        assert!(
            q.early_action(),
            "count·p_b ≥ 1 must drop with certainty, not probability 0"
        );
        assert_eq!(q.count, 0, "a forced drop restarts the inter-drop count");
        // Exactly at the boundary (denominator 0) the same holds.
        let mut q = Red::new(10_000, 20, 100);
        q.avg = 60.0;
        q.count = 19; // next arrival: count = 20, count·p_b = 1.0
        assert!(q.early_action(), "denominator 0 is a certain drop");
    }

    #[test]
    fn red_keeps_dropping_over_long_runs() {
        // End-to-end version of the regression: hold the average between
        // the thresholds for far longer than 1/p_b arrivals; a correct
        // uniformized RED can never go quiet for a full 1/p_b + slack run.
        let mut a = PacketArena::new();
        let mut q = Red::new(10_000, 20, 100);
        for i in 0..60 {
            push(&mut q, &mut a, Ns(i), pkt(0, i));
        }
        let mut arrivals_since_drop = 0u64;
        let mut max_gap = 0u64;
        for i in 0..50_000u64 {
            // Serve only above 60 packets so the standing queue (and the
            // average) holds near 60 however many arrivals get dropped.
            if q.len() > 60 {
                pull(&mut q, &mut a, Ns(1000 + i));
            }
            if push(&mut q, &mut a, Ns(1000 + i), pkt(0, 100 + i)) == Enqueue::Dropped {
                max_gap = max_gap.max(arrivals_since_drop);
                arrivals_since_drop = 0;
            } else {
                arrivals_since_drop += 1;
            }
        }
        max_gap = max_gap.max(arrivals_since_drop);
        assert!(q.drops() > 100, "steady overload must keep dropping");
        // With avg ≈ 40–60 between th 20/100, p_b ≥ ~0.02: the uniformized
        // law guarantees a drop within 1/p_b ≈ 50 arrivals. Allow slack
        // for the EWMA settling from below min_th.
        assert!(
            max_gap < 2_000,
            "RED went quiet for {max_gap} arrivals — drop law collapsed"
        );
    }

    #[test]
    fn red_force_drops_above_max_th() {
        let mut a = PacketArena::new();
        let mut q = Red::new(10_000, 5, 20);
        // Slam 2000 arrivals with no departures: avg climbs past max_th
        // and RED begins dropping every arrival.
        let mut admitted = 0;
        for i in 0..2_000 {
            if push(&mut q, &mut a, Ns(i), pkt(0, i)) == Enqueue::Queued {
                admitted += 1;
            }
        }
        assert!(admitted < 2_000, "forced region must drop");
        assert!(q.avg() > 20.0, "avg {} should exceed max_th", q.avg());
        assert_eq!(a.live(), admitted, "dropped arrivals were freed");
    }

    #[test]
    fn red_ecn_marks_instead_of_dropping() {
        let mut a = PacketArena::new();
        let mut q = Red::ecn(10_000, 5, 50);
        for i in 0..200 {
            let mut p = pkt(0, i);
            p.ecn_capable = true;
            push(&mut q, &mut a, Ns(i), p);
        }
        // Standing queue of 200 → marking regime on further arrivals.
        let mut marked = 0;
        for i in 0..500 {
            pull(&mut q, &mut a, Ns(1000 + i));
            let mut p = pkt(0, 1000 + i);
            p.ecn_capable = true;
            if push(&mut q, &mut a, Ns(1000 + i), p) == Enqueue::Queued {
                // fine either way; marks counted below
            }
        }
        marked += q.marks();
        assert!(marked > 50, "ECN mode should mark heavily, got {marked}");
        assert_eq!(q.drops(), 0, "ECN-capable packets are marked, not dropped");
    }

    #[test]
    fn red_specs_build() {
        for spec in [
            QueueSpec::Red {
                capacity: 100,
                min_th: 10,
                max_th: 50,
            },
            QueueSpec::RedEcn {
                capacity: 100,
                min_th: 10,
                max_th: 50,
            },
        ] {
            let mut a = PacketArena::new();
            let mut q = spec.build();
            assert_eq!(push(&mut *q, &mut a, Ns::ZERO, pkt(0, 0)), Enqueue::Queued);
            assert!(pull(&mut *q, &mut a, Ns(1)).is_some());
        }
    }

    #[test]
    fn lossy_wrapper_drops_at_configured_rate() {
        let mut a = PacketArena::new();
        let mut q = Lossy::new(DropTail::new(usize::MAX), 0.3, 7);
        let n = 20_000;
        for i in 0..n {
            push(&mut q, &mut a, Ns::ZERO, pkt(0, i));
        }
        let rate = q.stochastic_drops() as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "loss rate {rate}");
        assert_eq!(q.drops(), q.stochastic_drops());
        // Survivors dequeue in order.
        let mut prev = None;
        while let Some(p) = pull(&mut q, &mut a, Ns(1)) {
            if let Some(prev) = prev {
                assert!(p.seq > prev);
            }
            prev = Some(p.seq);
        }
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn lossy_wrapper_with_zero_probability_is_transparent() {
        let mut a = PacketArena::new();
        let mut q = Lossy::new(DropTail::new(10), 0.0, 1);
        for i in 0..10 {
            assert_eq!(push(&mut q, &mut a, Ns::ZERO, pkt(0, i)), Enqueue::Queued);
        }
        assert_eq!(q.stochastic_drops(), 0);
        assert_eq!(q.len(), 10);
        // Inner tail-drop still applies.
        assert_eq!(push(&mut q, &mut a, Ns::ZERO, pkt(0, 10)), Enqueue::Dropped);
        assert_eq!(q.drops(), 1);
    }

    #[test]
    fn lossy_spec_builds() {
        let mut a = PacketArena::new();
        let mut q = QueueSpec::LossyDropTail {
            capacity: 100_000,
            drop_probability: 0.5,
            seed: 3,
        }
        .build();
        let mut admitted = 0;
        for i in 0..1000 {
            if push(&mut *q, &mut a, Ns::ZERO, pkt(0, i)) == Enqueue::Queued {
                admitted += 1;
            }
        }
        assert!(admitted > 300 && admitted < 700, "admitted {admitted}");
    }

    #[test]
    fn sfq_bucket_byte_counters_stay_exact() {
        // The incremental per-bucket byte counters (and the occupancy
        // bitmap) must always agree with a from-scratch scan, through
        // enqueues, CoDel drops, overflow shedding, and dequeues.
        let mut a = PacketArena::new();
        let mut q = SfqCodel::new(50, 8);
        let check = |q: &SfqCodel, _a: &PacketArena| {
            let mut total = 0u64;
            for (i, b) in q.buckets.iter().enumerate() {
                let sum: u64 = b.iter().map(|e| e.size as u64).sum();
                assert_eq!(q.bucket_bytes[i], sum, "bucket {i} counter drifted");
                assert_eq!(q.bucket_lens[i] as usize, b.len(), "bucket {i} len drifted");
                let bit = q.occupied[i / 64] >> (i % 64) & 1 == 1;
                assert_eq!(bit, !b.is_empty(), "bucket {i} occupancy bit drifted");
                total += sum;
            }
            assert_eq!(q.bytes(), total);
        };
        for i in 0..200 {
            push(&mut q, &mut a, Ns(i), pkt(i as usize % 11, i));
            check(&q, &a);
        }
        // Dequeue with large sojourns so per-bucket CoDel drops fire too.
        let mut t = Ns::from_millis(300);
        while pull(&mut q, &mut a, t).is_some() {
            check(&q, &a);
            t += Ns::from_millis(2);
        }
        check(&q, &a);
        assert_eq!(q.bytes(), 0);
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn bucket_hash_stays_in_range() {
        let q = SfqCodel::new(10, 7);
        for f in 0..1000 {
            assert!(q.bucket_index(f) < 7);
        }
    }

    #[test]
    fn sfq_bitmap_scan_wraps_the_cursor() {
        // Force the round-robin cursor past the only occupied bucket so
        // the cyclic scan has to wrap.
        let mut a = PacketArena::new();
        let mut q = SfqCodel::new(100, 70); // two bitmap words
        let flow = (0..usize::MAX)
            .find(|&f| q.bucket_index(f) == 1)
            .expect("some flow hashes to bucket 1");
        push(&mut q, &mut a, Ns::ZERO, pkt(flow, 0));
        q.cursor = 65; // beyond the occupied bucket, in the second word
        let p = pull(&mut q, &mut a, Ns(1)).expect("wrapped scan finds it");
        assert_eq!(p.flow.index() as usize, flow);
        assert!(pull(&mut q, &mut a, Ns(2)).is_none());
    }

    #[test]
    fn with_capacity_resizes_every_discipline() {
        let specs = [
            QueueSpec::DropTail { capacity: 1000 },
            QueueSpec::Unlimited,
            QueueSpec::Ecn {
                capacity: 500,
                mark_threshold: 20,
            },
            QueueSpec::Codel { capacity: 300 },
            QueueSpec::SfqCodel {
                capacity: 1000,
                buckets: 64,
            },
            QueueSpec::Red {
                capacity: 1000,
                min_th: 5,
                max_th: 15,
            },
            QueueSpec::RedEcn {
                capacity: 1000,
                min_th: 5,
                max_th: 15,
            },
            QueueSpec::LossyDropTail {
                capacity: 1000,
                drop_probability: 0.013,
                seed: 9,
            },
        ];
        for spec in specs {
            let resized = spec.clone().with_capacity(64);
            match resized {
                QueueSpec::Unlimited => assert_eq!(spec, QueueSpec::Unlimited),
                QueueSpec::DropTail { capacity }
                | QueueSpec::Ecn { capacity, .. }
                | QueueSpec::Codel { capacity }
                | QueueSpec::SfqCodel { capacity, .. }
                | QueueSpec::Red { capacity, .. }
                | QueueSpec::RedEcn { capacity, .. }
                | QueueSpec::LossyDropTail { capacity, .. } => assert_eq!(capacity, 64),
            }
            // Non-capacity parameters survive the resize.
            if let QueueSpec::Ecn { mark_threshold, .. } = spec.clone().with_capacity(64) {
                assert_eq!(mark_threshold, 20);
            }
            if let QueueSpec::LossyDropTail { seed, .. } = spec.with_capacity(64) {
                assert_eq!(seed, 9);
            }
        }
    }
}
