//! Deterministic random numbers for simulation.
//!
//! The simulator needs random draws that are (a) fast, (b) identical across
//! platforms and library versions, and (c) cheap to fork into independent
//! streams — Remy's design procedure depends on *common random numbers*:
//! every candidate action must be evaluated on exactly the same specimen
//! networks with exactly the same arrival randomness (§4.3 of the paper).
//!
//! We implement xoshiro256++ seeded through splitmix64, which is the
//! textbook combination; no external crate behaviour can change under us.

/// A deterministic xoshiro256++ PRNG.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed. Two generators with the same
    /// seed produce identical streams forever.
    pub fn new(seed: u64) -> SimRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Fork an independent stream. The child is seeded from the parent's
    /// output mixed with `stream`, so `fork(0)` and `fork(1)` are unrelated
    /// sequences, and the parent advances by one draw.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        // lint:allow(r2-rng-underived-seed): this IS the sanctioned derivation
        // primitive every other stream split goes through.
        SimRng::new(base ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Derive an independent 64-bit seed for stream `stream` of base seed
    /// `base`, through the same fork/split mechanism simulations use.
    ///
    /// Experiment harnesses derive per-run scenario seeds with this
    /// instead of `base + k`: additive derivation made adjacent
    /// experiments with nearby base seeds share traffic randomness
    /// (`base = 4001` run 1 equals `base = 4002` run 0), and could
    /// overflow. Here `base` passes through splitmix64 before mixing, so
    /// nearby bases yield unrelated streams and no arithmetic can wrap.
    pub fn split_seed(base: u64, stream: u64) -> u64 {
        let mut parent = SimRng::new(base);
        parent.fork(stream).next_u64()
    }

    /// Next raw 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in the half-open interval `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in the half-open interval `(0, 1]` — safe to take `ln` of.
    #[inline]
    pub fn f64_open(&mut self) -> f64 {
        1.0 - self.f64()
    }

    /// Uniform draw in `[lo, hi)`. Requires `lo <= hi`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer in `[lo, hi]` (inclusive). Requires `lo <= hi`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo + 1;
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * span,
        // negligible for simulation purposes.
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform usize in `[lo, hi]` (inclusive).
    #[inline]
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Exponentially distributed draw with the given mean (inverse-CDF).
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean >= 0.0);
        -mean * self.f64_open().ln()
    }

    /// Pareto-distributed draw with scale `xm` and shape `alpha`
    /// (inverse-CDF: `xm * u^(-1/alpha)`).
    ///
    /// The paper's empirical flow-length distribution (Fig. 3) is
    /// Pareto(Xm = 147, alpha = 0.5), which has infinite mean — callers are
    /// expected to cap samples if they need bounded work.
    #[inline]
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        debug_assert!(xm > 0.0 && alpha > 0.0);
        xm * self.f64_open().powf(-1.0 / alpha)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard-normal draw (Box–Muller). Used by the synthetic cellular
    /// trace generator's rate random walk.
    #[inline]
    pub fn normal(&mut self) -> f64 {
        let u1 = self.f64_open();
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Poisson-distributed count with the given mean (Knuth's counting
    /// method: multiply uniforms until the running product drops below
    /// `e^-mean`). Exact and deterministic; cost is O(mean) draws, fine
    /// for the small per-interval means churn scheduling uses.
    #[inline]
    pub fn poisson(&mut self, mean: f64) -> u64 {
        debug_assert!((0.0..=700.0).contains(&mean), "e^-mean must not underflow");
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Bounded-Pareto draw on `[xm, cap)` (inverse-CDF). Heavy-tailed like
    /// [`SimRng::pareto`] but hard-truncated at `cap`, so churn workloads
    /// get finite-mean flow sizes without per-sample rejection or clamping
    /// mass piling up at the cap.
    #[inline]
    pub fn bounded_pareto(&mut self, xm: f64, alpha: f64, cap: f64) -> f64 {
        debug_assert!(xm > 0.0 && alpha > 0.0 && cap > xm);
        let ratio = (xm / cap).powf(alpha);
        xm / (1.0 - self.f64() * (1.0 - ratio)).powf(1.0 / alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_of_each_other() {
        let mut parent = SimRng::new(7);
        let mut c0 = parent.clone().fork(0);
        let mut c1 = parent.fork(1);
        let same = (0..64).filter(|_| c0.next_u64() == c1.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_reproduce_with_same_seed() {
        // Common random numbers: the same parent seed and stream id must
        // yield bit-identical child sequences on independent parents.
        let mut pa = SimRng::new(2013);
        let mut pb = SimRng::new(2013);
        let mut ca = pa.fork(3);
        let mut cb = pb.fork(3);
        for _ in 0..1000 {
            assert_eq!(ca.next_u64(), cb.next_u64());
        }
        // And the parents stayed in lockstep too (fork consumes exactly
        // one parent draw each).
        for _ in 0..100 {
            assert_eq!(pa.next_u64(), pb.next_u64());
        }
    }

    #[test]
    fn sibling_forks_from_one_parent_differ() {
        // Sequentially forked children (how the simulator seeds per-flow
        // traffic) must be pairwise unrelated streams.
        let mut parent = SimRng::new(42);
        let mut children: Vec<SimRng> = (0..8).map(|i| parent.fork(i as u64 + 1)).collect();
        let draws: Vec<Vec<u64>> = children
            .iter_mut()
            .map(|c| (0..64).map(|_| c.next_u64()).collect())
            .collect();
        for i in 0..draws.len() {
            for j in (i + 1)..draws.len() {
                let same = draws[i]
                    .iter()
                    .zip(&draws[j])
                    .filter(|(a, b)| a == b)
                    .count();
                assert_eq!(same, 0, "children {i} and {j} collide");
            }
        }
    }

    #[test]
    fn fork_advances_parent_deterministically() {
        let mut a = SimRng::new(5);
        let mut b = SimRng::new(5);
        let _ = a.fork(0);
        let _ = b.fork(99); // stream id must not affect the parent's state
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn split_seed_is_deterministic_and_stream_separated() {
        assert_eq!(SimRng::split_seed(7, 3), SimRng::split_seed(7, 3));
        let seeds: Vec<u64> = (0..64).map(|k| SimRng::split_seed(7, k)).collect();
        for i in 0..seeds.len() {
            for j in (i + 1)..seeds.len() {
                assert_ne!(seeds[i], seeds[j], "streams {i} and {j} collide");
            }
        }
    }

    #[test]
    fn split_seed_unrelates_nearby_bases() {
        // The failure mode of `seed + k`: experiment A at base 4001, run 1
        // must not reuse experiment B at base 4002, run 0 — nor any other
        // nearby (base, run) pair.
        for base in [1u64, 4001, 4002, u64::MAX - 1, u64::MAX] {
            for other in [base.wrapping_add(1), base.wrapping_add(2)] {
                for k in 0..16u64 {
                    for j in 0..16u64 {
                        assert_ne!(
                            SimRng::split_seed(base, k),
                            SimRng::split_seed(other, j),
                            "base {base} run {k} collides with base {other} run {j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
            let y = rng.f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn range_u64_bounds_inclusive() {
        let mut rng = SimRng::new(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let x = rng.range_u64(3, 6);
            assert!((3..=6).contains(&x));
            seen_lo |= x == 3;
            seen_hi |= x == 6;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::new(11);
        let n = 200_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let est = sum / n as f64;
        assert!(
            (est - mean).abs() < 0.1,
            "sample mean {est} too far from {mean}"
        );
    }

    #[test]
    fn pareto_obeys_scale_floor() {
        let mut rng = SimRng::new(13);
        for _ in 0..10_000 {
            assert!(rng.pareto(147.0, 0.5) >= 147.0);
        }
    }

    #[test]
    fn pareto_median_matches_closed_form() {
        // Median of Pareto(xm, alpha) is xm * 2^(1/alpha); for alpha = 0.5
        // that is 147 * 4 = 588.
        let mut rng = SimRng::new(17);
        let mut samples: Vec<f64> = (0..100_001).map(|_| rng.pareto(147.0, 0.5)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!(
            (median - 588.0).abs() / 588.0 < 0.05,
            "median {median} should be near 588"
        );
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(23);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn golden_poisson_sequence_is_pinned() {
        // Churn workloads must stay byte-reproducible across refactors:
        // any change to the sampling algorithm (or to the draws it makes
        // from the underlying stream) shows up here before it silently
        // re-randomizes every published experiment.
        let mut rng = SimRng::new(2013);
        let got: Vec<u64> = (0..8).map(|_| rng.poisson(4.0)).collect();
        assert_eq!(got, vec![3, 4, 5, 8, 2, 5, 6, 3]);
    }

    #[test]
    fn golden_bounded_pareto_sequence_is_pinned() {
        // Bit-exact (to_bits) so even a last-ulp reordering of the
        // arithmetic is caught.
        let mut rng = SimRng::new(2013);
        let got: Vec<u64> = (0..8)
            .map(|_| rng.bounded_pareto(4500.0, 1.2, 1_500_000.0).to_bits())
            .collect();
        assert_eq!(
            got,
            vec![
                4663075734545062712,
                4662108998785531930,
                4669823096803161369,
                4667403658916744987,
                4663579354317236037,
                4664364161710099148,
                4664576641482345108,
                4667865902534004907,
            ]
        );
    }

    #[test]
    fn golden_exponential_sequence_is_pinned() {
        // Poisson *arrivals* are scheduled via exponential inter-arrival
        // gaps; pin that sequence too (mean 0.0005 s = 2000 flows/s).
        let mut rng = SimRng::new(2013);
        let got: Vec<u64> = (0..4).map(|_| rng.exponential(0.0005).to_bits()).collect();
        assert_eq!(
            got,
            vec![
                4549674260933105591,
                4542662281040816230,
                4560047817983094961,
                4558212661579810341,
            ]
        );
    }

    #[test]
    fn poisson_mean_and_zero() {
        let mut rng = SimRng::new(31);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| rng.poisson(4.0)).sum();
        let est = sum as f64 / n as f64;
        assert!((est - 4.0).abs() < 0.05, "sample mean {est} too far from 4");
        // Degenerate mean: always zero, still consumes exactly one draw.
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        assert_eq!(a.poisson(0.0), 0);
        let _ = b.f64();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounded_pareto_respects_both_bounds() {
        let mut rng = SimRng::new(37);
        let (xm, alpha, cap) = (147.0, 0.5, 10_000.0);
        let mut saw_tail = false;
        for _ in 0..100_000 {
            let x = rng.bounded_pareto(xm, alpha, cap);
            assert!(x >= xm && x < cap, "sample {x} out of [{xm}, {cap})");
            saw_tail |= x > cap / 2.0;
        }
        assert!(saw_tail, "truncated tail mass should still be reachable");
    }

    #[test]
    fn bounded_pareto_median_matches_closed_form() {
        // Median solves F(x) = 1/2 for the truncated CDF:
        // x = xm / (1 - 0.5 (1 - (xm/cap)^a))^(1/a).
        let (xm, alpha, cap) = (4500.0, 1.2, 1_500_000.0_f64);
        let ratio = (xm / cap).powf(alpha);
        let expect = xm / (1.0 - 0.5 * (1.0 - ratio)).powf(1.0 / alpha);
        let mut rng = SimRng::new(41);
        let mut samples: Vec<f64> = (0..100_001)
            .map(|_| rng.bounded_pareto(xm, alpha, cap))
            .collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        assert!(
            (median - expect).abs() / expect < 0.02,
            "median {median} should be near {expect}"
        );
    }

    #[test]
    fn chance_is_calibrated() {
        let mut rng = SimRng::new(19);
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01);
    }
}
