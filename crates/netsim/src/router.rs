//! Router participation hooks.
//!
//! Most of the paper's schemes are end-to-end, but XCP requires the
//! bottleneck router to rewrite a feedback field in every packet and run a
//! periodic control loop. The simulator exposes that capability through
//! [`RouterHook`]; the XCP controller in the `congestion` crate implements
//! it, and the AQM-style schemes (CoDel/sfqCoDel/ECN) instead live inside
//! the queue disciplines themselves.

use crate::packet::Packet;
use crate::time::Ns;

/// Observes and may rewrite packets at the bottleneck.
pub trait RouterHook: Send {
    /// A packet arrived at the bottleneck (before the queue admits or
    /// drops it). `queue_pkts` is the occupancy it found.
    fn on_arrival(&mut self, now: Ns, p: &mut Packet, queue_pkts: usize);

    /// A packet is departing onto the link (after dequeue).
    fn on_departure(&mut self, now: Ns, p: &mut Packet, queue_pkts: usize);

    /// If `Some`, the engine invokes [`RouterHook::on_tick`] with this
    /// period (XCP's control interval).
    fn tick_interval(&self) -> Option<Ns> {
        None
    }

    /// Periodic control computation.
    fn on_tick(&mut self, _now: Ns, _queue_pkts: usize) {}
}

/// A router that does nothing (every end-to-end experiment).
pub struct NoopRouter;

impl RouterHook for NoopRouter {
    fn on_arrival(&mut self, _now: Ns, _p: &mut Packet, _queue_pkts: usize) {}
    fn on_departure(&mut self, _now: Ns, _p: &mut Packet, _queue_pkts: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_router_has_no_tick() {
        let r = NoopRouter;
        assert!(r.tick_interval().is_none());
    }
}
