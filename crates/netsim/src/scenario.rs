//! Declarative simulation scenarios.
//!
//! A [`Scenario`] is plain data describing one dumbbell network (Fig. 2 of
//! the paper): the bottleneck link and queue, per-sender round-trip times
//! and traffic processes, a duration, and a seed. Experiment harnesses
//! construct scenarios, attach congestion-control factories, and run them
//! through [`crate::sim::Simulator`].

use crate::json::{self, Value};
use crate::link::LinkSpec;
use crate::queue::QueueSpec;
use crate::time::Ns;
use crate::topology::Topology;
use crate::traffic::{OnSpec, TrafficSpec};

/// Configuration of one sender/receiver pair.
#[derive(Clone, Debug, PartialEq)]
pub struct SenderConfig {
    /// Two-way propagation delay to this sender's receiver (no queueing).
    pub rtt: Ns,
    /// The sender's offered-load process.
    pub traffic: TrafficSpec,
}

impl SenderConfig {
    /// Serialize to a JSON value.
    pub fn to_json_value(&self) -> Value {
        Value::obj(vec![
            ("rtt_ns", json::ns_value(self.rtt)),
            ("traffic", self.traffic.to_json_value()),
        ])
    }

    /// Deserialize a value written by [`SenderConfig::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<SenderConfig, String> {
        Ok(SenderConfig {
            rtt: json::ns_from(v.field("rtt_ns")?)?,
            traffic: TrafficSpec::from_json_value(v.field("traffic")?)?,
        })
    }
}

/// A dynamic flow-churn process: flows arrive by a Poisson process, each
/// transfers one sampled flow length through the bottleneck, and departs.
///
/// Churn rides alongside the scenario's persistent `senders` — the paper's
/// Fig. 2 world plus a population of short web-style transfers contending
/// for the same queue. Requires the legacy dumbbell (no `topology`).
#[derive(Clone, Debug, PartialEq)]
pub struct ChurnSpec {
    /// Poisson arrival rate, flows per second (λ).
    pub arrivals_per_sec: f64,
    /// Flow-length distribution; must be byte-based
    /// ([`OnSpec::is_byte_based`]) — an arriving flow is one transfer.
    pub size: OnSpec,
    /// Two-way propagation delay of every churn flow.
    pub rtt: Ns,
}

impl ChurnSpec {
    /// Serialize to a JSON value.
    pub fn to_json_value(&self) -> Value {
        Value::obj(vec![
            ("arrivals_per_sec", Value::num(self.arrivals_per_sec)),
            ("size", self.size.to_json_value()),
            ("rtt_ns", json::ns_value(self.rtt)),
        ])
    }

    /// Deserialize a value written by [`ChurnSpec::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<ChurnSpec, String> {
        let spec = ChurnSpec {
            arrivals_per_sec: v.field("arrivals_per_sec")?.as_f64()?,
            size: OnSpec::from_json_value(v.field("size")?)?,
            rtt: json::ns_from(v.field("rtt_ns")?)?,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Check the spec is runnable: positive arrival rate and RTT, and a
    /// byte-based flow-length distribution.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.arrivals_per_sec > 0.0 && self.arrivals_per_sec.is_finite()) {
            return Err(format!(
                "churn arrival rate must be positive and finite, got {}",
                self.arrivals_per_sec
            ));
        }
        if !self.size.is_byte_based() {
            return Err(
                "churn flow sizes must be byte-based (an arriving flow is one transfer)"
                    .to_string(),
            );
        }
        if self.rtt.is_zero() {
            return Err("churn flows need a nonzero RTT".to_string());
        }
        Ok(())
    }
}

/// One complete dumbbell experiment configuration.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Bottleneck link model.
    pub link: LinkSpec,
    /// Bottleneck queue discipline.
    pub queue: QueueSpec,
    /// Per-sender configuration; the number of entries is the degree of
    /// multiplexing `n`.
    pub senders: Vec<SenderConfig>,
    /// Segment size in bytes (the paper's ns-2 setup uses ~1500 B MTUs).
    pub mss: u32,
    /// Simulated duration (the paper uses 100 s per run).
    pub duration: Ns,
    /// Root seed. Every stochastic element (traffic draws per sender)
    /// derives a deterministic stream from this.
    pub seed: u64,
    /// Record every delivery (sequence plots, Fig. 6). Off by default —
    /// the log grows with every packet.
    pub record_deliveries: bool,
    /// Multi-hop topology (parking-lot chains, incast fan-in, congested
    /// ACK paths). `None` — the default, and the paper's world — is the
    /// single-bottleneck dumbbell built from `link` + `queue`; when `Some`,
    /// `link`/`queue` mirror hop 0 and the engine routes every flow along
    /// its [`crate::topology::FlowPath`].
    pub topology: Option<Topology>,
    /// Dynamic flow churn riding alongside the persistent senders. `None`
    /// — the default, and the paper's world — runs only the configured
    /// senders; `Some` adds Poisson arrivals of one-shot transfers.
    pub churn: Option<ChurnSpec>,
}

impl Scenario {
    /// A dumbbell with `n` identical senders.
    pub fn dumbbell(
        link: LinkSpec,
        queue: QueueSpec,
        n: usize,
        rtt: Ns,
        traffic: TrafficSpec,
        duration: Ns,
        seed: u64,
    ) -> Scenario {
        Scenario {
            link,
            queue,
            senders: (0..n)
                .map(|_| SenderConfig {
                    rtt,
                    traffic: traffic.clone(),
                })
                .collect(),
            mss: 1500,
            duration,
            seed,
            record_deliveries: false,
            topology: None,
            churn: None,
        }
    }

    /// Number of senders.
    pub fn n(&self) -> usize {
        self.senders.len()
    }

    /// Builder-style: change the seed (harnesses re-run scenarios across
    /// many seeds to build distributions).
    pub fn with_seed(mut self, seed: u64) -> Scenario {
        self.seed = seed;
        self
    }

    /// Builder-style: enable the delivery log.
    pub fn with_delivery_log(mut self) -> Scenario {
        self.record_deliveries = true;
        self
    }

    /// Builder-style: route flows through a multi-hop topology. `link` and
    /// `queue` are reset to mirror hop 0 so single-hop inspection code
    /// keeps working. Panics on a topology that does not validate against
    /// this scenario's sender count.
    pub fn with_topology(mut self, topology: Topology) -> Scenario {
        topology
            .validate(self.senders.len())
            .expect("topology matches scenario");
        self.link = topology.hops[0].link.clone();
        self.queue = topology.hops[0].queue.clone();
        self.topology = Some(topology);
        self
    }

    /// Builder-style: add dynamic flow churn. Panics on an invalid spec or
    /// if a multi-hop topology is attached (churn runs on the legacy
    /// dumbbell only).
    pub fn with_churn(mut self, churn: ChurnSpec) -> Scenario {
        churn.validate().expect("valid churn spec");
        assert!(
            self.topology.is_none(),
            "churn is not supported on a topology scenario"
        );
        self.churn = Some(churn);
        self
    }

    /// Serialize to a JSON value. Everything that affects the simulation —
    /// including the seed and any trace link's full delivery schedule — is
    /// captured, so a serialized scenario pins a reproducible run.
    pub fn to_json_value(&self) -> Value {
        let mut fields = vec![
            ("link", self.link.to_json_value()),
            ("queue", self.queue.to_json_value()),
            (
                "senders",
                Value::Arr(
                    self.senders
                        .iter()
                        .map(SenderConfig::to_json_value)
                        .collect(),
                ),
            ),
            ("mss", Value::num(self.mss as f64)),
            ("duration_ns", json::ns_value(self.duration)),
            ("seed", json::u64_value(self.seed)),
            ("record_deliveries", Value::Bool(self.record_deliveries)),
        ];
        // Omitted entirely for the legacy dumbbell, so pre-topology
        // scenario documents stay byte-identical.
        if let Some(t) = &self.topology {
            fields.push(("topology", t.to_json_value()));
        }
        // Same omission rule: churn-free scenarios stay byte-identical to
        // documents written before the field existed.
        if let Some(c) = &self.churn {
            fields.push(("churn", c.to_json_value()));
        }
        Value::obj(fields)
    }

    /// Deserialize a value written by [`Scenario::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<Scenario, String> {
        let senders = v
            .field("senders")?
            .as_arr()?
            .iter()
            .map(SenderConfig::from_json_value)
            .collect::<Result<Vec<SenderConfig>, String>>()?;
        if senders.is_empty() {
            return Err("scenario needs at least one sender".to_string());
        }
        let topology = match v.get("topology") {
            None | Some(Value::Null) => None,
            Some(t) => {
                let topo = Topology::from_json_value(t)?;
                topo.validate(senders.len())?;
                Some(topo)
            }
        };
        let churn = match v.get("churn") {
            None | Some(Value::Null) => None,
            Some(c) => Some(ChurnSpec::from_json_value(c)?),
        };
        if churn.is_some() && topology.is_some() {
            return Err("churn is not supported on a topology scenario".to_string());
        }
        Ok(Scenario {
            link: LinkSpec::from_json_value(v.field("link")?)?,
            queue: QueueSpec::from_json_value(v.field("queue")?)?,
            senders,
            mss: v.field("mss")?.as_u64()? as u32,
            duration: json::ns_from(v.field("duration_ns")?)?,
            seed: v.field("seed")?.as_u64()?,
            record_deliveries: v.field("record_deliveries")?.as_bool()?,
            topology,
            churn,
        })
    }

    /// Serialize to pretty-printed JSON text.
    pub fn to_json(&self) -> String {
        self.to_json_value().pretty()
    }

    /// Parse a scenario from JSON text.
    pub fn from_json(text: &str) -> Result<Scenario, String> {
        Scenario::from_json_value(&json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dumbbell_builder() {
        let s = Scenario::dumbbell(
            LinkSpec::constant(15.0),
            QueueSpec::DropTail { capacity: 1000 },
            8,
            Ns::from_millis(150),
            TrafficSpec::fig4(),
            Ns::from_secs(100),
            7,
        );
        assert_eq!(s.n(), 8);
        assert_eq!(s.mss, 1500);
        assert_eq!(s.senders[3].rtt, Ns::from_millis(150));
        let s2 = s.with_seed(9).with_delivery_log();
        assert_eq!(s2.seed, 9);
        assert!(s2.record_deliveries);
    }

    use crate::link::DeliverySchedule;
    use crate::traffic::OnSpec;

    fn every_queue_spec() -> Vec<QueueSpec> {
        vec![
            QueueSpec::DropTail { capacity: 1000 },
            QueueSpec::Unlimited,
            QueueSpec::Ecn {
                capacity: 500,
                mark_threshold: 20,
            },
            QueueSpec::Codel { capacity: 300 },
            QueueSpec::SfqCodel {
                capacity: 1000,
                buckets: 64,
            },
            QueueSpec::Red {
                capacity: 1000,
                min_th: 5,
                max_th: 15,
            },
            QueueSpec::RedEcn {
                capacity: 1000,
                min_th: 5,
                max_th: 15,
            },
            QueueSpec::LossyDropTail {
                capacity: 1000,
                drop_probability: 0.013,
                seed: u64::MAX - 3,
            },
        ]
    }

    fn every_traffic_spec() -> Vec<TrafficSpec> {
        vec![
            TrafficSpec::design_default(),
            TrafficSpec::fig4(),
            TrafficSpec::saturating(),
            TrafficSpec {
                on: OnSpec::ByTimeFixed {
                    duration: Ns::from_secs(3),
                },
                off_mean: Ns::from_millis(200),
                start_on: true,
            },
            TrafficSpec {
                on: OnSpec::empirical(),
                off_mean: Ns::from_millis(10),
                start_on: false,
            },
        ]
    }

    #[test]
    fn every_queue_spec_round_trips() {
        for q in every_queue_spec() {
            let v = q.to_json_value();
            let back =
                QueueSpec::from_json_value(&crate::json::parse(&v.pretty()).unwrap()).unwrap();
            assert_eq!(q, back, "{q:?}");
        }
    }

    #[test]
    fn every_traffic_spec_round_trips() {
        for t in every_traffic_spec() {
            let v = t.to_json_value();
            let back =
                TrafficSpec::from_json_value(&crate::json::parse(&v.pretty()).unwrap()).unwrap();
            assert_eq!(t, back, "{t:?}");
        }
    }

    #[test]
    fn trace_link_round_trips_schedule_exactly() {
        let l = LinkSpec::trace(
            "verizon-like",
            DeliverySchedule::new(vec![Ns(400_000), Ns(900_000), Ns(1_400_000)], Ns(100_000)),
        );
        let v = l.to_json_value();
        let back = LinkSpec::from_json_value(&crate::json::parse(&v.pretty()).unwrap()).unwrap();
        match (&l, &back) {
            (
                LinkSpec::Trace {
                    schedule: a,
                    name: an,
                },
                LinkSpec::Trace {
                    schedule: b,
                    name: bn,
                },
            ) => {
                assert_eq!(an, bn);
                assert_eq!(a.instants(), b.instants());
                assert_eq!(a.tail_gap(), b.tail_gap());
            }
            _ => panic!("trace expected"),
        }
    }

    #[test]
    fn scenario_round_trips_through_text_json() {
        for (qi, q) in every_queue_spec().into_iter().enumerate() {
            let t = every_traffic_spec()[qi % 5].clone();
            let mut s = Scenario::dumbbell(
                LinkSpec::constant(15.0),
                q,
                3,
                Ns::from_millis(150),
                t,
                Ns::from_secs(30),
                // Full-range seeds must survive (split-derived seeds use
                // all 64 bits).
                u64::MAX - qi as u64,
            );
            s.senders[1].rtt = Ns::from_millis(50); // heterogeneous RTTs
            if qi == 0 {
                s = s.with_delivery_log();
            }
            let text = s.to_json();
            let back = Scenario::from_json(&text).expect("parse");
            assert_eq!(back.to_json(), text, "second round trip is identity");
            assert_eq!(s.seed, back.seed);
            assert_eq!(s.queue, back.queue);
            assert_eq!(s.senders.len(), back.senders.len());
            assert_eq!(s.senders[1].rtt, back.senders[1].rtt);
            assert_eq!(s.senders[0].traffic, back.senders[0].traffic);
            assert_eq!(s.duration, back.duration);
            assert_eq!(s.record_deliveries, back.record_deliveries);
        }
    }

    #[test]
    fn topology_scenarios_round_trip_and_validate() {
        use crate::topology::{FlowPath, HopSpec, Topology};
        let base = Scenario::dumbbell(
            LinkSpec::constant(15.0),
            QueueSpec::DropTail { capacity: 1000 },
            2,
            Ns::from_millis(100),
            TrafficSpec::saturating(),
            Ns::from_secs(10),
            5,
        );
        let topo = Topology::from_flow_hops(
            vec![
                HopSpec::new(
                    LinkSpec::constant(10.0),
                    QueueSpec::DropTail { capacity: 500 },
                )
                .with_prop_delay(Ns::from_millis(5)),
                HopSpec::new(
                    LinkSpec::constant(10.0),
                    QueueSpec::DropTail { capacity: 500 },
                ),
            ],
            vec![
                FlowPath::through(vec![0, 1]),
                FlowPath::through(vec![1]).with_ack_path(vec![0]),
            ],
        );
        let s = base.clone().with_topology(topo.clone());
        // link/queue mirror hop 0.
        assert!(matches!(s.link, LinkSpec::Constant { rate_mbps } if rate_mbps == 10.0));
        assert_eq!(s.queue, QueueSpec::DropTail { capacity: 500 });
        let text = s.to_json();
        assert!(text.contains("\"topology\""));
        let back = Scenario::from_json(&text).expect("parse");
        assert_eq!(back.to_json(), text, "round trip is identity");
        assert_eq!(back.topology.as_ref().unwrap().paths, topo.paths);
        // Legacy scenarios serialize with no topology key at all.
        assert!(!base.to_json().contains("topology"));
        // A path set sized for the wrong sender count is rejected.
        let wrong = Topology::single_bottleneck(LinkSpec::constant(1.0), QueueSpec::Unlimited, 3);
        let mut v = crate::json::parse(&base.to_json()).unwrap();
        if let Value::Obj(fields) = &mut v {
            fields.push(("topology".to_string(), wrong.to_json_value()));
        }
        assert!(Scenario::from_json_value(&v).is_err());
    }

    #[test]
    fn churn_scenarios_round_trip_and_validate() {
        let base = Scenario::dumbbell(
            LinkSpec::constant(100.0),
            QueueSpec::DropTail { capacity: 1000 },
            2,
            Ns::from_millis(100),
            TrafficSpec::saturating(),
            Ns::from_secs(10),
            5,
        );
        // Churn-free scenarios serialize with no churn key at all, so
        // pre-churn documents (and goldens) stay byte-identical.
        assert!(!base.to_json().contains("churn"));
        let churn = ChurnSpec {
            arrivals_per_sec: 2000.0,
            size: OnSpec::BoundedPareto {
                xm: 4500.0,
                alpha: 1.2,
                cap_bytes: 1_500_000.0,
            },
            rtt: Ns::from_millis(20),
        };
        let s = base.clone().with_churn(churn.clone());
        let text = s.to_json();
        assert!(text.contains("\"churn\""));
        let back = Scenario::from_json(&text).expect("parse");
        assert_eq!(back.to_json(), text, "round trip is identity");
        assert_eq!(back.churn, Some(churn.clone()));
        // Time-based churn sizes are rejected: an arriving flow is one
        // transfer, not a timed on-period.
        let bad = ChurnSpec {
            size: OnSpec::ByTime { mean: Ns::SECOND },
            ..churn.clone()
        };
        assert!(bad.validate().is_err());
        assert!(ChurnSpec {
            arrivals_per_sec: 0.0,
            ..churn.clone()
        }
        .validate()
        .is_err());
        assert!(ChurnSpec {
            rtt: Ns::ZERO,
            ..churn.clone()
        }
        .validate()
        .is_err());
        // Churn + topology is rejected at parse time.
        let mut v = crate::json::parse(&text).unwrap();
        if let Value::Obj(fields) = &mut v {
            let topo = Topology::single_bottleneck(
                LinkSpec::constant(100.0),
                QueueSpec::DropTail { capacity: 1000 },
                2,
            );
            fields.push(("topology".to_string(), topo.to_json_value()));
        }
        assert!(Scenario::from_json_value(&v).is_err());
    }

    #[test]
    #[should_panic(expected = "byte-based")]
    fn with_churn_rejects_time_based_sizes() {
        let base = Scenario::dumbbell(
            LinkSpec::constant(100.0),
            QueueSpec::DropTail { capacity: 1000 },
            1,
            Ns::from_millis(100),
            TrafficSpec::saturating(),
            Ns::from_secs(10),
            5,
        );
        let _ = base.with_churn(ChurnSpec {
            arrivals_per_sec: 10.0,
            size: OnSpec::ByTimeFixed {
                duration: Ns::SECOND,
            },
            rtt: Ns::from_millis(20),
        });
    }

    #[test]
    fn scenario_json_rejects_corruption() {
        let s = Scenario::dumbbell(
            LinkSpec::constant(15.0),
            QueueSpec::DropTail { capacity: 10 },
            1,
            Ns::from_millis(150),
            TrafficSpec::fig4(),
            Ns::from_secs(1),
            1,
        );
        let text = s.to_json();
        assert!(Scenario::from_json(&text.replace("drop_tail", "nonsense")).is_err());
        assert!(Scenario::from_json(&text.replace("\"seed\"", "\"sead\"")).is_err());
        assert!(Scenario::from_json("{}").is_err());
        // Empty sender lists are rejected, not silently accepted.
        let mut v = crate::json::parse(&text).unwrap();
        if let Value::Obj(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "senders" {
                    *val = Value::Arr(vec![]);
                }
            }
        }
        assert!(Scenario::from_json_value(&v).is_err());
    }
}
