//! Declarative simulation scenarios.
//!
//! A [`Scenario`] is plain data describing one dumbbell network (Fig. 2 of
//! the paper): the bottleneck link and queue, per-sender round-trip times
//! and traffic processes, a duration, and a seed. Experiment harnesses
//! construct scenarios, attach congestion-control factories, and run them
//! through [`crate::sim::Simulator`].

use crate::link::LinkSpec;
use crate::queue::QueueSpec;
use crate::time::Ns;
use crate::traffic::TrafficSpec;

/// Configuration of one sender/receiver pair.
#[derive(Clone, Debug)]
pub struct SenderConfig {
    /// Two-way propagation delay to this sender's receiver (no queueing).
    pub rtt: Ns,
    /// The sender's offered-load process.
    pub traffic: TrafficSpec,
}

/// One complete dumbbell experiment configuration.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Bottleneck link model.
    pub link: LinkSpec,
    /// Bottleneck queue discipline.
    pub queue: QueueSpec,
    /// Per-sender configuration; the number of entries is the degree of
    /// multiplexing `n`.
    pub senders: Vec<SenderConfig>,
    /// Segment size in bytes (the paper's ns-2 setup uses ~1500 B MTUs).
    pub mss: u32,
    /// Simulated duration (the paper uses 100 s per run).
    pub duration: Ns,
    /// Root seed. Every stochastic element (traffic draws per sender)
    /// derives a deterministic stream from this.
    pub seed: u64,
    /// Record every delivery (sequence plots, Fig. 6). Off by default —
    /// the log grows with every packet.
    pub record_deliveries: bool,
}

impl Scenario {
    /// A dumbbell with `n` identical senders.
    pub fn dumbbell(
        link: LinkSpec,
        queue: QueueSpec,
        n: usize,
        rtt: Ns,
        traffic: TrafficSpec,
        duration: Ns,
        seed: u64,
    ) -> Scenario {
        Scenario {
            link,
            queue,
            senders: (0..n)
                .map(|_| SenderConfig {
                    rtt,
                    traffic: traffic.clone(),
                })
                .collect(),
            mss: 1500,
            duration,
            seed,
            record_deliveries: false,
        }
    }

    /// Number of senders.
    pub fn n(&self) -> usize {
        self.senders.len()
    }

    /// Builder-style: change the seed (harnesses re-run scenarios across
    /// many seeds to build distributions).
    pub fn with_seed(mut self, seed: u64) -> Scenario {
        self.seed = seed;
        self
    }

    /// Builder-style: enable the delivery log.
    pub fn with_delivery_log(mut self) -> Scenario {
        self.record_deliveries = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dumbbell_builder() {
        let s = Scenario::dumbbell(
            LinkSpec::constant(15.0),
            QueueSpec::DropTail { capacity: 1000 },
            8,
            Ns::from_millis(150),
            TrafficSpec::fig4(),
            Ns::from_secs(100),
            7,
        );
        assert_eq!(s.n(), 8);
        assert_eq!(s.mss, 1500);
        assert_eq!(s.senders[3].rtt, Ns::from_millis(150));
        let s2 = s.with_seed(9).with_delivery_log();
        assert_eq!(s2.seed, 9);
        assert!(s2.record_deliveries);
    }
}
