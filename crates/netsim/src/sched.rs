//! Pending-event schedulers for the simulator.
//!
//! The event loop pops entries in strict `(time, insertion id)` order; the
//! id tie-break makes simultaneous events deterministic. [`EventQueue`]
//! abstracts the structure that maintains that order, with two
//! implementations sharing one ordering contract:
//!
//! * [`SchedulerKind::Heap`] — the classic `BinaryHeap` priority queue
//!   (`O(log n)` per operation, the original engine);
//! * [`SchedulerKind::Wheel`] — a hierarchical timing wheel: 7 levels of
//!   256 slots whose granules grow by 256× per level, covering the entire
//!   `u64` nanosecond range from a 4.096 µs finest granule. Insertion
//!   hashes on time bits (`O(1)` amortized, events cascade down at most
//!   once per level), and the slot being drained is kept sorted so pops
//!   still come out in exact `(time, id)` order.
//!
//! Both produce bit-identical pop sequences for any insert/pop interleaving
//! that never schedules into the past (the simulator's invariant; pinned by
//! the property suite in `tests/` and the dual-scheduler equivalence
//! suite). The wheel is the default; set `NETSIM_SCHEDULER=heap` to fall
//! back, or pick explicitly at [`crate::sim::Simulator`] construction.

use crate::time::Ns;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Which pending-event structure a simulator uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Hierarchical timing wheel (the default).
    #[default]
    Wheel,
    /// Binary-heap priority queue.
    Heap,
}

impl SchedulerKind {
    /// The scheduler picked by the environment: `NETSIM_SCHEDULER=heap`
    /// or `=wheel` (anything else, or unset, is the wheel default). This
    /// is what [`crate::sim::Simulator::new`] consults, so benches and
    /// experiments can be flipped without recompiling.
    pub fn from_env() -> SchedulerKind {
        match std::env::var("NETSIM_SCHEDULER") {
            Ok(v) if v.eq_ignore_ascii_case("heap") => SchedulerKind::Heap,
            _ => SchedulerKind::Wheel,
        }
    }

    /// Lower-case label for reports and logs.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Wheel => "wheel",
            SchedulerKind::Heap => "heap",
        }
    }
}

/// A pending-event queue popping entries in `(time, insertion id)` order.
///
/// Ids are assigned internally in insertion order, so two queues fed the
/// same sequence of `push`/`pop` calls return identical `(time, id)`
/// sequences regardless of the backing structure.
pub struct EventQueue<T> {
    next_id: u64,
    inner: Inner<T>,
    /// Strict-lane shadow: a reference key-heap every push/pop is checked
    /// against. Compiled out unless the `strict-invariants` feature is on.
    #[cfg(feature = "strict-invariants")]
    strict: strict::Shadow,
}

enum Inner<T> {
    Heap(BinaryHeap<HeapEntry<T>>),
    Wheel(Box<TimingWheel<T>>),
}

struct HeapEntry<T> {
    at: Ns,
    id: u64,
    ev: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first, with
        // insertion order breaking ties for determinism.
        other.at.cmp(&self.at).then_with(|| other.id.cmp(&self.id))
    }
}

impl<T> EventQueue<T> {
    /// An empty queue backed by the given structure.
    pub fn new(kind: SchedulerKind) -> EventQueue<T> {
        EventQueue {
            next_id: 0,
            inner: match kind {
                SchedulerKind::Heap => Inner::Heap(BinaryHeap::new()),
                SchedulerKind::Wheel => Inner::Wheel(Box::new(TimingWheel::new())),
            },
            #[cfg(feature = "strict-invariants")]
            strict: strict::Shadow::default(),
        }
    }

    /// The backing structure.
    pub fn kind(&self) -> SchedulerKind {
        match self.inner {
            Inner::Heap(_) => SchedulerKind::Heap,
            Inner::Wheel(_) => SchedulerKind::Wheel,
        }
    }

    /// Schedule `ev` at `at`, assigning the next insertion id. `at` must
    /// not precede the time of the most recently popped entry (the
    /// simulator never schedules into the past); the wheel relies on this.
    pub fn push(&mut self, at: Ns, ev: T) {
        let id = self.next_id;
        self.next_id += 1;
        #[cfg(feature = "strict-invariants")]
        self.strict.on_push(at, id);
        match &mut self.inner {
            Inner::Heap(h) => h.push(HeapEntry { at, id, ev }),
            Inner::Wheel(w) => w.push(at, id, ev),
        }
    }

    /// Pop the earliest entry (ties broken by insertion id).
    pub fn pop(&mut self) -> Option<(Ns, u64, T)> {
        let popped = match &mut self.inner {
            Inner::Heap(h) => h.pop().map(|e| (e.at, e.id, e.ev)),
            Inner::Wheel(w) => w.pop(),
        };
        #[cfg(feature = "strict-invariants")]
        self.strict
            .on_pop(popped.as_ref().map(|(at, id, _)| (*at, *id)));
        popped
    }

    /// Entries currently pending.
    pub fn len(&self) -> usize {
        match &self.inner {
            Inner::Heap(h) => h.len(),
            Inner::Wheel(w) => w.len,
        }
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Strict-invariant shadow checker (the dynamic-analysis lane)
// ---------------------------------------------------------------------------

/// The `strict-invariants` reference model: a key-only `BinaryHeap`
/// mirrors every push, and each pop is asserted to (a) agree with the
/// reference heap's `(time, id)` order — so a wheel bucketing/cascade bug
/// surfaces as a panic at the exact divergent event, not as a silently
/// different result — and (b) advance strictly in `(time, id)`, the
/// contract the whole engine rests on. Pushes are asserted to never
/// schedule into the past, the precondition the wheel's cursor relies on.
#[cfg(feature = "strict-invariants")]
mod strict {
    use crate::time::Ns;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[derive(Default)]
    pub(super) struct Shadow {
        keys: BinaryHeap<Reverse<(Ns, u64)>>,
        last_pop: Option<(Ns, u64)>,
    }

    impl Shadow {
        pub(super) fn on_push(&mut self, at: Ns, id: u64) {
            if let Some((t, _)) = self.last_pop {
                assert!(
                    at >= t,
                    "strict-invariants: scheduled into the past (at {at:?} < last popped {t:?})"
                );
            }
            self.keys.push(Reverse((at, id)));
        }

        pub(super) fn on_pop(&mut self, popped: Option<(Ns, u64)>) {
            let expected = self.keys.pop().map(|Reverse(k)| k);
            assert_eq!(
                popped, expected,
                "strict-invariants: pop sequence diverged from the reference heap"
            );
            if let Some(key) = popped {
                if let Some(prev) = self.last_pop {
                    assert!(
                        key > prev,
                        "strict-invariants: pops not strictly increasing in (time, id): \
                         {prev:?} then {key:?}"
                    );
                }
                self.last_pop = Some(key);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Hierarchical timing wheel
// ---------------------------------------------------------------------------

/// log2 of the slot count per level.
const LEVEL_BITS: u32 = 8;
/// Slots per level; one level's occupancy is four `u64` bitmap words.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Bitmap words per level.
const OCC_WORDS: usize = SLOTS / 64;
/// log2 of the finest granule, in ns (4.096 µs). Sub-granule ordering is
/// restored by sorting the drained slot, so this trades nothing for
/// precision — it only sets how far one level's window reaches.
const G0_BITS: u32 = 12;
/// Levels. 7 × 8 bits of granule index cover every 52-bit granule, i.e.
/// the full `u64` nanosecond range — no overflow list needed.
const LEVELS: usize = 7;

struct TimingWheel<T> {
    /// Events of the granule currently being drained, sorted by
    /// `(time, id)` *descending* so pops are `Vec::pop` from the tail.
    ready: Vec<(Ns, u64, T)>,
    /// Granule index (`time >> G0_BITS`) of the `ready` set. All events
    /// stored in the wheel proper belong to strictly later granules.
    cur_g: u64,
    /// `LEVELS × SLOTS` buckets, flattened. Buffers are recycled (swapped
    /// with `ready`/`scratch`) rather than dropped, so steady-state
    /// operation allocates nothing.
    slots: Vec<Vec<(Ns, u64, T)>>,
    /// Per-level occupancy bitmaps.
    occupied: [[u64; OCC_WORDS]; LEVELS],
    /// Reused staging buffer for cascading an upper-level slot down.
    scratch: Vec<(Ns, u64, T)>,
    len: usize,
}

impl<T> TimingWheel<T> {
    fn new() -> TimingWheel<T> {
        TimingWheel {
            ready: Vec::new(),
            cur_g: 0,
            slots: std::iter::repeat_with(Vec::new)
                .take(LEVELS * SLOTS)
                .collect(),
            occupied: [[0; OCC_WORDS]; LEVELS],
            scratch: Vec::new(),
            len: 0,
        }
    }

    #[inline]
    fn push(&mut self, at: Ns, id: u64, ev: T) {
        self.len += 1;
        self.place(at, id, ev);
    }

    /// File an entry into `ready` (same granule as the drain cursor) or
    /// the level whose window contains its granule.
    #[inline]
    fn place(&mut self, at: Ns, id: u64, ev: T) {
        let g = at.0 >> G0_BITS;
        if g <= self.cur_g {
            // Same granule as the one being drained (never earlier: the
            // engine does not schedule into the past). Keep `ready`
            // sorted descending by (time, id).
            debug_assert!(g == self.cur_g || self.ready.is_empty() && self.wheel_empty());
            let key = (at, id);
            let pos = self.ready.partition_point(|e| (e.0, e.1) > key);
            self.ready.insert(pos, (at, id, ev));
            return;
        }
        // The level of the highest differing granule byte: everything
        // above it agrees with the cursor, so the event's granule falls
        // inside that level's current window.
        let level = ((63 - (g ^ self.cur_g).leading_zeros()) / LEVEL_BITS) as usize;
        let slot = ((g >> (LEVEL_BITS * level as u32)) as usize) & (SLOTS - 1);
        let flat = level * SLOTS + slot;
        let word = slot / 64;
        self.slots[flat].push((at, id, ev));
        self.occupied[level][word] |= 1 << (slot % 64);
    }

    fn wheel_empty(&self) -> bool {
        self.occupied.iter().flatten().all(|&o| o == 0)
    }

    /// First occupied slot at `level`, if any.
    #[inline]
    fn first_occupied(&self, level: usize) -> Option<usize> {
        for (w, &word) in self.occupied[level].iter().enumerate() {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
        }
        None
    }

    fn pop(&mut self) -> Option<(Ns, u64, T)> {
        loop {
            if let Some(e) = self.ready.pop() {
                self.len -= 1;
                return Some(e);
            }
            // Advance: the lowest occupied level holds the earliest
            // events (level ℓ's window ends where level ℓ+1's slots
            // begin). Drain a level-0 slot into `ready`, or cascade an
            // upper-level slot down and retry.
            let (level, slot) = (0..LEVELS).find_map(|l| self.first_occupied(l).map(|s| (l, s)))?;
            let word = slot / 64;
            self.occupied[level][word] &= !(1u64 << (slot % 64));
            let shift = LEVEL_BITS * level as u32;
            // Move the cursor to the start of that slot's window; bits
            // below the level reset to zero.
            let low_mask = (1u64 << (shift + LEVEL_BITS)) - 1;
            let next_g = (self.cur_g & !low_mask) | ((slot as u64) << shift);
            debug_assert!(next_g >= self.cur_g, "wheel cursor went backwards");
            self.cur_g = next_g;
            if level == 0 {
                // Swap buffers: the drained slot becomes `ready`, and the
                // old (empty) `ready` buffer parks in the slot for reuse.
                std::mem::swap(&mut self.ready, &mut self.slots[slot]);
                self.ready
                    .sort_unstable_by_key(|e| std::cmp::Reverse((e.0, e.1)));
                // Strict lane: the drained granule must be exactly the
                // cursor's granule, strictly ordered (keys are unique:
                // ids are), with no entry filed into the wrong slot.
                #[cfg(feature = "strict-invariants")]
                {
                    assert!(
                        self.ready.iter().all(|e| e.0 .0 >> G0_BITS == self.cur_g),
                        "strict-invariants: drained slot holds an event outside its granule"
                    );
                    assert!(
                        self.ready
                            .windows(2)
                            .all(|w| (w[0].0, w[0].1) > (w[1].0, w[1].1)),
                        "strict-invariants: drained granule not strictly ordered"
                    );
                }
            } else {
                // Cascade the slot one or more levels down, through the
                // reusable scratch buffer (no allocation churn).
                let mut scratch = std::mem::take(&mut self.scratch);
                let flat = level * SLOTS + slot;
                std::mem::swap(&mut scratch, &mut self.slots[flat]);
                for (at, id, ev) in scratch.drain(..) {
                    self.place(at, id, ev);
                }
                self.scratch = scratch;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut EventQueue<u32>) -> Vec<(Ns, u64, u32)> {
        std::iter::from_fn(|| q.pop()).collect()
    }

    #[test]
    fn kinds_build_and_report() {
        assert_eq!(
            EventQueue::<u32>::new(SchedulerKind::Heap).kind().label(),
            "heap"
        );
        let q = EventQueue::<u32>::new(SchedulerKind::Wheel);
        assert_eq!(q.kind(), SchedulerKind::Wheel);
        assert!(q.is_empty());
    }

    #[test]
    fn default_kind_is_wheel() {
        assert_eq!(SchedulerKind::default(), SchedulerKind::Wheel);
    }

    #[test]
    fn both_schedulers_order_by_time_then_insertion() {
        for kind in [SchedulerKind::Heap, SchedulerKind::Wheel] {
            let mut q = EventQueue::new(kind);
            q.push(Ns(500), 0);
            q.push(Ns(100), 1);
            q.push(Ns(500), 2); // same instant as the first push
            q.push(Ns(Ns::SECOND.0 * 70), 3); // beyond MAX_RTO-scale horizon
            q.push(Ns(100), 4);
            let got = drain(&mut q);
            let order: Vec<u32> = got.iter().map(|e| e.2).collect();
            assert_eq!(order, vec![1, 4, 0, 2, 3], "{kind:?}");
            // Ids reflect insertion order.
            assert_eq!(got[0].1, 1);
            assert_eq!(got[2].1, 0);
        }
    }

    #[test]
    fn wheel_handles_same_granule_reentrant_pushes() {
        // Pop an event, then schedule more at the *same* time (the engine
        // does this for zero-delay hops): they must come out before any
        // later event, in insertion order.
        let mut q = EventQueue::new(SchedulerKind::Wheel);
        q.push(Ns(1_000_000), 0);
        q.push(Ns(2_000_000), 1);
        let (at, _, v) = q.pop().unwrap();
        assert_eq!((at, v), (Ns(1_000_000), 0));
        q.push(Ns(1_000_000), 2);
        q.push(Ns(1_000_500), 3);
        let order: Vec<u32> = drain(&mut q).iter().map(|e| e.2).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn wheel_survives_extreme_times() {
        let mut q = EventQueue::new(SchedulerKind::Wheel);
        q.push(Ns::MAX, 0);
        q.push(Ns::ZERO, 1);
        q.push(Ns(u64::MAX - 1), 2);
        q.push(Ns::from_secs(3600), 3);
        let order: Vec<u32> = drain(&mut q).iter().map(|e| e.2).collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    /// Strict-lane behaviour: normal interleavings sail through the
    /// shadow checker; scheduling into the past is caught at the push.
    #[cfg(feature = "strict-invariants")]
    mod strict_lane {
        use super::*;

        #[test]
        fn normal_interleavings_pass_the_shadow_checker() {
            for kind in [SchedulerKind::Heap, SchedulerKind::Wheel] {
                let mut q = EventQueue::new(kind);
                // Deterministic scatter across granules and levels,
                // including same-instant bursts and reentrant pushes.
                // Like the simulator, only ever schedule at or after the
                // current (last-popped) time.
                let mut t = 17u64;
                let mut now = Ns::ZERO;
                for i in 0..2_000u32 {
                    t = t
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    q.push(Ns(now.0 + (t >> 20) % 50_000_000), i);
                    if i % 3 == 0 {
                        if let Some((at, _, _)) = q.pop() {
                            now = at;
                            q.push(at, i); // same-instant reentry
                        }
                    }
                }
                let mut last = None;
                while let Some((at, id, _)) = q.pop() {
                    assert!(last < Some((at, id)));
                    last = Some((at, id));
                }
            }
        }

        #[test]
        #[should_panic(expected = "scheduled into the past")]
        fn scheduling_into_the_past_panics() {
            let mut q = EventQueue::new(SchedulerKind::Wheel);
            q.push(Ns::from_millis(10), 0u32);
            let _ = q.pop();
            q.push(Ns::from_millis(1), 1u32);
        }
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let mut q = EventQueue::new(SchedulerKind::Wheel);
        for i in 0..100u32 {
            q.push(Ns(i as u64 * 77_777), i);
        }
        assert_eq!(q.len(), 100);
        for _ in 0..40 {
            q.pop();
        }
        assert_eq!(q.len(), 60);
        drain(&mut q);
        assert!(q.is_empty());
    }
}
