//! The discrete-event simulation engine.
//!
//! One [`Simulator`] runs one scenario. The default world is the paper's
//! dumbbell: `n` senders share a bottleneck queue and link; data packets
//! experience queueing plus a per-flow forward propagation delay;
//! receivers acknowledge every packet and ACKs return after the flow's
//! reverse propagation delay, uncongested (the paper's dumbbell has no
//! reverse-path bottleneck).
//!
//! Scenarios with a [`crate::topology::Topology`] generalize that world to
//! a chain/graph of hops: each packet walks its flow's
//! [`crate::topology::FlowPath`] hop by hop (queue → link service →
//! propagation to the next hop), and flows whose path declares ACK hops
//! send their acknowledgments through queues too — parking-lot chains,
//! incast fan-in, and reverse-path congestion all run through this one
//! event loop. A 1-hop topology is byte-identical to the legacy dumbbell
//! engine: the event sequence (times *and* tie-breaking insertion ids) is
//! the same.
//!
//! ## Hot-path layout
//!
//! The engine allocates nothing per packet on the steady-state path:
//! packets live in a [`PacketArena`] slab and flow through queues and
//! events as 8-byte generational [`PacketId`] handles (a delivered data
//! packet's slot is even reused in place for its returning ACK). Pending
//! events go through a [`crate::sched::EventQueue`] — a hierarchical
//! timing wheel by default, the original binary heap on request — and
//! per-hop transmit durations for the two wire sizes (MSS data, 40-byte
//! ACKs) are precomputed at construction instead of being re-derived from
//! the link rate per packet. Both schedulers obey one ordering contract
//! (time, then insertion id), so results are bit-for-bit identical under
//! either; the equivalence suite in `tests/` pins this.
//!
//! The engine is strictly deterministic: all randomness flows from the
//! scenario seed, and simultaneous events tie-break on insertion order.

use crate::cc::CongestionControl;
use crate::flow::{FlowCold, FlowHot, FlowId, FlowTable, Receiver};
use crate::link::LinkState;
use crate::metrics::{DeliveryRecord, FlowMetrics, PopulationSummary, SimResults};
use crate::packet::{Ack, Packet, PacketArena, PacketId, ACK_BYTES};
use crate::queue::{Enqueue, Queue};
use crate::rng::SimRng;
use crate::router::RouterHook;
use crate::scenario::{ChurnSpec, Scenario};
use crate::sched::{EventQueue, SchedulerKind};
use crate::stats::{Reservoir, StreamingSummary};
use crate::time::{service_time, Ns};
use crate::traffic::TrafficProcess;
use crate::transport::{SendPoll, Transport};

/// Events the engine processes. Packet-carrying events hold arena handles,
/// not packets, and flow-timer events hold generational [`FlowId`]s, so
/// every variant stays pointer-sized and a timer that outlives its flow
/// resolves to "stale" instead of firing on the slot's next occupant.
enum Ev {
    /// A traffic-process timer (off→on or timed on→off) for a flow.
    Toggle(FlowId),
    /// A pacing timer expired for a flow.
    Pacer(FlowId),
    /// A hop's constant-rate link finished serving a packet.
    LinkReady(usize),
    /// A trace-driven delivery opportunity at a hop.
    TraceSlot(usize),
    /// A packet propagates to the next hop on its path (`path_pos`
    /// already advanced).
    HopArrive(PacketId),
    /// A packet reaches its receiver.
    Deliver(PacketId),
    /// An ACK (riding in its packet's recycled slot) reaches its sender.
    AckArrive(PacketId),
    /// The flow's retransmission timer. Lazily managed: at most one
    /// tracked event per flow; a fire before the live deadline re-arms
    /// itself instead of the engine scheduling one event per RTO
    /// generation (which used to keep hundreds of dead timers queued).
    Rto(FlowId),
    /// Periodic router control computation (XCP) at a hop.
    RouterTick(usize),
    /// The next Poisson flow arrival (churn scenarios only).
    Spawn,
    /// A scheduled link failure or recovery (index into the topology
    /// graph's event list). Graph topologies only.
    LinkEvent(usize),
}

/// Capacity of the flow-completion-time reservoir kept for churn runs:
/// enough for stable tail quantiles, fixed regardless of population size.
const FCT_RESERVOIR_CAP: usize = 4096;

/// Hard cap on the opt-in per-delivery log. Under 100k-flow churn an
/// uncapped log would dominate memory; past the cap the engine counts
/// drops ([`SimResults::deliveries_dropped`]) instead of growing.
const DELIVERY_LOG_CAP: usize = 1 << 20;

/// Builds a congestion controller for the `k`-th arriving churn flow
/// (1-based arrival sequence number). See [`Simulator::with_churn_cc`].
pub type ChurnCcFactory = Box<dyn Fn(u64) -> Box<dyn CongestionControl>>;

/// Engine-side state of a churn scenario's arrival process and streaming
/// population statistics.
struct ChurnState {
    spec: ChurnSpec,
    /// Arrival gaps and flow sizes (one stream keeps the draw sequence
    /// independent of completion order).
    arrivals: SimRng,
    /// Drives reservoir replacement decisions.
    reservoir_rng: SimRng,
    /// Builds a congestion controller for the `k`-th arriving flow when no
    /// freed slot is available to respawn into.
    factory: Option<ChurnCcFactory>,
    spawned: u64,
    completed: u64,
    fct_secs: StreamingSummary,
    flow_bytes: StreamingSummary,
    fct_reservoir: Reservoir,
}

/// Runtime state of one hop: the queue feeding a link, plus an optional
/// router hook running at that hop.
struct Hop {
    queue: Box<dyn Queue>,
    link: LinkState,
    busy: bool,
    router: Option<Box<dyn RouterHook>>,
    /// Propagation toward the next hop on a path.
    prop_delay_out: Ns,
    /// Precomputed transmit duration of an MSS-sized data packet on a
    /// constant-rate link (unused for trace links).
    svc_data: Ns,
    /// Precomputed transmit duration of a 40-byte ACK packet.
    svc_ack: Ns,
    /// Sequential-query cache for trace-driven links.
    trace_cursor: crate::link::TraceCursor,
    /// The link is administratively down (graph topologies with scheduled
    /// [`crate::graph::LinkEvent`]s). A down link refuses new service;
    /// its queue either drains by policy at failure time or waits for
    /// recovery.
    down: bool,
}

impl Hop {
    fn new(
        link: LinkState,
        queue: Box<dyn Queue>,
        router: Option<Box<dyn RouterHook>>,
        prop_delay_out: Ns,
        mss: u32,
    ) -> Hop {
        let (svc_data, svc_ack) = match &link {
            LinkState::Constant { rate_mbps } => (
                service_time(mss, *rate_mbps),
                service_time(ACK_BYTES, *rate_mbps),
            ),
            LinkState::Trace { .. } => (Ns::ZERO, Ns::ZERO),
        };
        Hop {
            queue,
            link,
            busy: false,
            router,
            prop_delay_out,
            svc_data,
            svc_ack,
            trace_cursor: crate::link::TraceCursor::default(),
            down: false,
        }
    }
}

/// Engine-side state of a graph topology's failure dynamics: the live
/// up/down map, the routing epoch packets are stamped with, and the
/// failover counters surfaced in [`SimResults`].
struct NetState {
    graph: crate::graph::NetGraph,
    /// `down[h]` mirrors `hops[h].down` (indexed by link = hop).
    down: Vec<bool>,
    /// Bumped on every link event; packets stamped with an older epoch
    /// re-resolve their route at the router they currently occupy.
    epoch: u32,
    link_events: u64,
    failover_drops: u64,
    reroutes: u64,
}

/// The network simulator (dumbbell by default, multi-hop with a
/// [`crate::topology::Topology`]).
///
/// Per-flow state lives in a struct-of-arrays [`FlowTable`]: the
/// scenario's persistent senders occupy slots `0..n` for the whole run,
/// and churn scenarios spawn/tear down dynamic flows in the slots above —
/// allocation-free in steady state, since teardown recycles slots (and
/// their cold state's heap blocks) for the next arrival.
pub struct Simulator {
    now: Ns,
    end: Ns,
    events: EventQueue<Ev>,
    arena: PacketArena,
    hops: Vec<Hop>,
    flows: FlowTable,
    /// Scenario senders (slots `0..n_persistent`, never torn down).
    n_persistent: usize,
    churn: Option<ChurnState>,
    /// Graph-topology failure dynamics (None for hand-listed topologies
    /// and the legacy dumbbell — zero overhead on those paths).
    net: Option<NetState>,
    mss: u32,
    packets_forwarded: u64,
    deliveries: Vec<DeliveryRecord>,
    deliveries_dropped: u64,
    record_deliveries: bool,
    delivery_log_cap: usize,
}

impl Simulator {
    /// Build a simulator: one congestion-control instance per sender
    /// (must match `scenario.n()`), plus an optional router hook (XCP)
    /// attached to hop 0 — the bottleneck of the legacy dumbbell. Use
    /// [`Simulator::with_routers`] to attach hooks to other hops of a
    /// multi-hop topology. The event scheduler is the timing wheel unless
    /// `NETSIM_SCHEDULER=heap` is set (see
    /// [`crate::sched::SchedulerKind::from_env`]); results are identical
    /// either way.
    pub fn new(
        scenario: &Scenario,
        ccs: Vec<Box<dyn CongestionControl>>,
        router: Option<Box<dyn RouterHook>>,
    ) -> Simulator {
        // Validate before indexing routers[0]: a hop-less topology must
        // fail with its diagnostic, not an index panic.
        if let Some(t) = &scenario.topology {
            // lint:allow(p1-sim-unwrap): construction-time validation — a
            // malformed scenario must abort setup before any event runs.
            t.validate(scenario.n()).expect("topology matches scenario");
        }
        let n_hops = scenario.topology.as_ref().map_or(1, |t| t.n_hops());
        let mut routers: Vec<Option<Box<dyn RouterHook>>> = (0..n_hops).map(|_| None).collect();
        routers[0] = router;
        Simulator::with_routers(scenario, ccs, routers)
    }

    /// Build a simulator with an explicit per-hop router-hook list
    /// (`routers.len()` must equal the hop count; the legacy dumbbell has
    /// exactly one hop). The scheduler comes from the environment, as in
    /// [`Simulator::new`].
    pub fn with_routers(
        scenario: &Scenario,
        ccs: Vec<Box<dyn CongestionControl>>,
        routers: Vec<Option<Box<dyn RouterHook>>>,
    ) -> Simulator {
        Simulator::with_scheduler(scenario, ccs, routers, SchedulerKind::from_env())
    }

    /// Build a simulator with an explicit event scheduler (the equivalence
    /// suite runs every scenario under both kinds and asserts bit-for-bit
    /// identical results).
    pub fn with_scheduler(
        scenario: &Scenario,
        ccs: Vec<Box<dyn CongestionControl>>,
        routers: Vec<Option<Box<dyn RouterHook>>>,
        scheduler: SchedulerKind,
    ) -> Simulator {
        assert_eq!(
            ccs.len(),
            scenario.n(),
            "need exactly one congestion controller per sender"
        );
        if let Some(t) = &scenario.topology {
            // lint:allow(p1-sim-unwrap): construction-time validation — a
            // malformed scenario must abort setup before any event runs.
            t.validate(scenario.n()).expect("topology matches scenario");
        }
        let mut root = SimRng::new(scenario.seed);
        let mut flows = FlowTable::with_capacity(scenario.n());
        for (i, (cfg, cc)) in scenario.senders.iter().zip(ccs).enumerate() {
            let rng = root.fork(i as u64 + 1);
            let half = Ns(cfg.rtt.0 / 2);
            let (fwd_hops, ack_hops) = match &scenario.topology {
                None => (vec![0], Vec::new()),
                Some(t) => (t.paths[i].fwd.clone(), t.paths[i].ack.clone()),
            };
            let hot = FlowHot {
                fwd_delay: half,
                back_delay: cfg.rtt - half,
                entry_hop: fwd_hops[0] as u32,
                fwd_len: fwd_hops.len() as u32,
                ack_len: ack_hops.len() as u32,
                ..FlowHot::default()
            };
            flows.insert(
                hot,
                FlowCold {
                    transport: Transport::new(cc),
                    traffic: TrafficProcess::new(cfg.traffic.clone(), scenario.mss, rng),
                    receiver: Receiver::default(),
                    metrics: FlowMetrics::default(),
                    fwd_hops,
                    ack_hops,
                },
            );
        }
        // Churn streams fork *after* every per-sender stream, and only
        // when churn is configured — churn-free scenarios draw exactly
        // the same sequences they always did.
        let churn = scenario.churn.as_ref().map(|spec| {
            // lint:allow(p1-sim-unwrap): construction-time validation — a
            // malformed churn spec must abort setup before any event runs.
            spec.validate().expect("valid churn spec");
            assert!(
                scenario.topology.is_none(),
                "churn is not supported on a topology scenario"
            );
            ChurnState {
                spec: spec.clone(),
                arrivals: root.fork(scenario.n() as u64 + 1),
                reservoir_rng: root.fork(scenario.n() as u64 + 2),
                factory: None,
                spawned: 0,
                completed: 0,
                fct_secs: StreamingSummary::new(),
                flow_bytes: StreamingSummary::new(),
                fct_reservoir: Reservoir::new(FCT_RESERVOIR_CAP),
            }
        });
        let mut router_slots = routers;
        let hops: Vec<Hop> = match &scenario.topology {
            None => {
                assert_eq!(router_slots.len(), 1, "legacy dumbbell has one hop");
                vec![Hop::new(
                    LinkState::from_spec(&scenario.link),
                    scenario.queue.build(),
                    // lint:allow(p1-sim-unwrap): guarded by the assert_eq
                    // on router_slots.len() immediately above (setup path).
                    router_slots.pop().expect("one slot"),
                    Ns::ZERO,
                    scenario.mss,
                )]
            }
            Some(t) => {
                assert_eq!(
                    router_slots.len(),
                    t.n_hops(),
                    "need one router slot per hop"
                );
                t.hops
                    .iter()
                    .zip(router_slots.drain(..))
                    .map(|(h, router)| {
                        Hop::new(
                            LinkState::from_spec(&h.link),
                            h.queue.build(),
                            router,
                            h.prop_delay_out,
                            scenario.mss,
                        )
                    })
                    .collect()
            }
        };
        let net = scenario
            .topology
            .as_ref()
            .and_then(|t| t.graph.as_ref())
            .map(|g| NetState {
                down: vec![false; g.links.len()],
                epoch: 0,
                link_events: 0,
                failover_drops: 0,
                reroutes: 0,
                graph: g.clone(),
            });
        let n_persistent = flows.live();
        let mut sim = Simulator {
            now: Ns::ZERO,
            end: scenario.duration,
            events: EventQueue::new(scheduler),
            arena: PacketArena::with_capacity(256),
            hops,
            flows,
            n_persistent,
            churn,
            net,
            mss: scenario.mss,
            packets_forwarded: 0,
            deliveries: Vec::new(),
            deliveries_dropped: 0,
            record_deliveries: scenario.record_deliveries,
            delivery_log_cap: DELIVERY_LOG_CAP,
        };
        // Seed initial events: each flow's first traffic toggle…
        for i in 0..sim.n_persistent {
            if let Some(at) = sim.flows.cold(i).traffic.next_wakeup() {
                let id = sim.flows.id_at(i);
                sim.schedule(at, Ev::Toggle(id));
            }
        }
        // …the first trace slot of every trace-driven hop…
        for h in 0..sim.hops.len() {
            let hop = &mut sim.hops[h];
            if let LinkState::Trace { schedule } = &hop.link {
                let first = schedule.next_after_cached(&mut hop.trace_cursor, Ns::ZERO);
                sim.schedule(first, Ev::TraceSlot(h));
            }
        }
        // …and each hop router's control clock.
        for h in 0..sim.hops.len() {
            if let Some(r) = &sim.hops[h].router {
                if let Some(period) = r.tick_interval() {
                    sim.schedule(period, Ev::RouterTick(h));
                }
            }
        }
        // …and, for churn scenarios, the first Poisson arrival…
        if let Some(c) = sim.churn.as_mut() {
            let gap = c.arrivals.exponential(1.0 / c.spec.arrivals_per_sec);
            let at = Ns::from_secs_f64(gap);
            sim.schedule(at, Ev::Spawn);
        }
        // …and every scheduled link failure/recovery of a graph topology.
        if let Some(net) = &sim.net {
            let schedule: Vec<(Ns, usize)> = net
                .graph
                .events
                .iter()
                .enumerate()
                .map(|(idx, ev)| (ev.at, idx))
                .collect();
            for (at, idx) in schedule {
                sim.schedule(at, Ev::LinkEvent(idx));
            }
        }
        sim
    }

    /// Builder-style: attach the congestion-control factory churn flows
    /// are built with (`k` is the arrival's 1-based sequence number).
    /// Required before running a scenario whose `churn` is `Some`; the
    /// factory is only invoked when the live churn population outgrows
    /// every previously freed slot — steady-state arrivals reuse the CC
    /// box already sitting in a recycled slot.
    pub fn with_churn_cc(mut self, factory: ChurnCcFactory) -> Simulator {
        // lint:allow(e1-global-write-in-handler): builder-time write — the
        // churn factory is installed before run() schedules the first event,
        // so no zone can observe the mutation mid-loop.
        let churn = self
            .churn
            .as_mut()
            // lint:allow(p1-sim-unwrap): builder-time misuse — calling this
            // on a churn-less scenario is a setup bug, caught before run().
            .expect("with_churn_cc needs a scenario with churn");
        churn.factory = Some(factory);
        self
    }

    fn schedule(&mut self, at: Ns, ev: Ev) {
        self.events.push(at, ev);
    }

    /// The event scheduler this simulator runs on.
    pub fn scheduler(&self) -> SchedulerKind {
        self.events.kind()
    }

    /// Run to completion and summarize.
    pub fn run(mut self) -> SimResults {
        self.drive();
        self.finish().0
    }

    /// Run to completion, returning results *and* the congestion-control
    /// objects (Remy's optimizer reads whisker-usage statistics off them).
    pub fn run_returning_ccs(mut self) -> (SimResults, Vec<Box<dyn CongestionControl>>) {
        self.drive();
        self.finish()
    }

    fn drive(&mut self) {
        if let Some(c) = &self.churn {
            assert!(
                c.factory.is_some(),
                "churn scenario needs Simulator::with_churn_cc"
            );
        }
        while let Some((at, _id, ev)) = self.events.pop() {
            if at > self.end {
                break;
            }
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            match ev {
                Ev::Toggle(f) => self.on_toggle(f),
                Ev::Pacer(f) => {
                    let Some(i) = self.flows.index_of(f) else {
                        continue; // the flow tore down before its pacer fired
                    };
                    self.flows.hot_mut(i).pacer_scheduled = None;
                    self.try_send(i);
                }
                Ev::LinkReady(h) => {
                    self.hops[h].busy = false;
                    self.start_service_if_possible(h);
                }
                Ev::TraceSlot(h) => self.on_trace_slot(h),
                Ev::HopArrive(p) => self.on_hop_arrive(p),
                Ev::Deliver(p) => self.on_deliver(p),
                Ev::AckArrive(p) => self.on_ack_arrive(p),
                Ev::Rto(f) => self.on_rto(f),
                Ev::RouterTick(h) => self.on_router_tick(h),
                Ev::Spawn => self.on_spawn(),
                Ev::LinkEvent(idx) => self.on_link_event(idx),
            }
        }
        self.now = self.end;
        // Close any open on-intervals at the simulation horizon.
        let end = self.end;
        let live: Vec<usize> = self.flows.live_indices().collect();
        for i in live {
            let cold = self.flows.cold_mut(i);
            if cold.traffic.is_on() {
                cold.metrics.end_interval(end);
            }
        }
        #[cfg(feature = "strict-invariants")]
        assert!(
            self.flows.audit_accounting(),
            "strict-invariants: flow table live/free accounting diverged at the horizon"
        );
    }

    fn finish(self) -> (SimResults, Vec<Box<dyn CongestionControl>>) {
        let end = self.end;
        let n = self.n_persistent;
        let queue_drops = self.hops.iter().map(|h| h.queue.drops()).sum();
        let live_at_end = (self.flows.live() - n) as u64;
        let population = self.churn.map(|c| PopulationSummary {
            spawned: c.spawned,
            completed: c.completed,
            live_at_end,
            fct_secs: c.fct_secs,
            flow_bytes: c.flow_bytes,
            fct_sample_secs: c.fct_reservoir.samples().to_vec(),
        });
        let (link_events, failover_drops, reroutes) = self
            .net
            .as_ref()
            .map_or((0, 0, 0), |n| (n.link_events, n.failover_drops, n.reroutes));
        // Only the persistent senders get positional per-flow summaries;
        // churn flows streamed into `population` as they completed.
        let mut flows = Vec::with_capacity(n);
        let mut ccs = Vec::with_capacity(n);
        for f in self.flows.into_cold().into_iter().take(n) {
            flows.push(f.metrics.summarize(end));
            ccs.push(f.transport.into_cc());
        }
        (
            SimResults {
                flows,
                queue_drops,
                packets_forwarded: self.packets_forwarded,
                duration: end,
                deliveries: self.deliveries,
                deliveries_dropped: self.deliveries_dropped,
                population,
                link_events,
                failover_drops,
                reroutes,
            },
            ccs,
        )
    }

    // --- event handlers -------------------------------------------------

    fn on_toggle(&mut self, f: FlowId) {
        let Some(i) = self.flows.index_of(f) else {
            return; // the flow tore down before its timer fired
        };
        let now = self.now;
        let traffic = &mut self.flows.cold_mut(i).traffic;
        let was_on = traffic.is_on();
        let changed = traffic.on_wakeup(now);
        if changed {
            let cold = self.flows.cold_mut(i);
            let is_on = cold.traffic.is_on();
            if is_on && !was_on {
                // New connection begins.
                cold.transport.start_connection(now);
                cold.metrics.start_interval(now);
                self.sync_flow(i);
                self.try_send(i);
            } else if !is_on && was_on {
                // Timed on-period expired.
                cold.metrics.end_interval(now);
            }
        }
        // Chain the next timer for this flow, if any.
        if let Some(at) = self.flows.cold(i).traffic.next_wakeup() {
            if at > now {
                self.schedule(at, Ev::Toggle(f));
            }
        }
    }

    fn try_send(&mut self, i: usize) {
        let f = self.flows.id_at(i);
        loop {
            let now = self.now;
            let cold = self.flows.cold_mut(i);
            let may_new = cold.traffic.may_send_new(now);
            match cold.transport.poll_send(now, may_new) {
                SendPoll::Send { seq, retransmit } => {
                    let mut p = Packet::data(f, seq, self.mss, now);
                    p.retransmit = retransmit;
                    {
                        let cc = cold.transport.cc();
                        p.ecn_capable = cc.ecn_capable();
                        p.xcp = cc.xcp_header();
                    }
                    let entry_hop = self.flows.hot(i).entry_hop as usize;
                    let id = self.arena.alloc(p);
                    if let Some(net) = &self.net {
                        self.arena[id].route_epoch = net.epoch;
                    }
                    let admitted = {
                        let hop = &mut self.hops[entry_hop];
                        let queue_pkts = hop.queue.len();
                        if let Some(r) = hop.router.as_mut() {
                            r.on_arrival(now, &mut self.arena[id], queue_pkts);
                        }
                        hop.queue.enqueue(now, id, &mut self.arena) == Enqueue::Queued
                    };
                    let cold = self.flows.cold_mut(i);
                    cold.transport.on_sent(now, seq, retransmit);
                    if !retransmit {
                        cold.traffic.consume_packet();
                    }
                    self.sync_flow(i);
                    if admitted {
                        self.start_service_if_possible(entry_hop);
                    }
                }
                SendPoll::Paced { until } => {
                    let hot = self.flows.hot_mut(i);
                    let need = match hot.pacer_scheduled {
                        Some(at) => at > until,
                        None => true,
                    };
                    if need {
                        hot.pacer_scheduled = Some(until);
                        self.schedule(until, Ev::Pacer(f));
                    }
                    break;
                }
                SendPoll::Idle => break,
            }
        }
    }

    /// The precomputed transmit duration of the packet behind `id` on hop
    /// `h`'s constant-rate link (data and ACK sizes are cached; any other
    /// size falls back to the exact same arithmetic).
    fn service_for(&self, h: usize, size: u32) -> Ns {
        let hop = &self.hops[h];
        if size == self.mss {
            hop.svc_data
        } else if size == ACK_BYTES {
            hop.svc_ack
        } else if let LinkState::Constant { rate_mbps } = hop.link {
            service_time(size, rate_mbps)
        } else {
            Ns::ZERO
        }
    }

    /// For constant-rate links: begin serving hop `h`'s head packet if its
    /// link is idle. Trace links ignore this (deliveries happen on trace
    /// slots).
    fn start_service_if_possible(&mut self, h: usize) {
        let LinkState::Constant { .. } = self.hops[h].link else {
            return;
        };
        if self.hops[h].busy || self.hops[h].down {
            return;
        }
        let now = self.now;
        let Some(id) = self.hops[h].queue.dequeue(now, &mut self.arena) else {
            return;
        };
        self.hops[h].busy = true;
        let service = self.service_for(h, self.arena[id].size);
        self.account_departure(h, id, now);
        self.schedule(now + service, Ev::LinkReady(h));
        self.forward(h, id, now + service);
    }

    fn on_trace_slot(&mut self, h: usize) {
        let now = self.now;
        // Chain the next opportunity first. Queries here are sequential
        // (each slot asks for the one after itself), so the cursor makes
        // this O(1) instead of a binary search over the whole trace.
        let hop = &mut self.hops[h];
        if let LinkState::Trace { schedule } = &hop.link {
            let next = schedule.next_after_cached(&mut hop.trace_cursor, now);
            self.schedule(next, Ev::TraceSlot(h));
        }
        if self.hops[h].down {
            return; // a down trace link still chains slots, delivers nothing
        }
        let Some(id) = self.hops[h].queue.dequeue(now, &mut self.arena) else {
            return;
        };
        self.account_departure(h, id, now);
        self.forward(h, id, now);
    }

    /// Shared metrics/router bookkeeping when a packet leaves a hop's
    /// queue: accumulate its queueing wait (data packets record the
    /// end-to-end sum once, at the final hop of their forward path — on
    /// the legacy dumbbell that is the only hop, so the sample is exactly
    /// the bottleneck wait), run the router's departure hook, and count
    /// it as forwarded when it is data completing its queue path. ACKs on
    /// a queued return path are not data: their waits surface in the RTT
    /// the sender measures, not in the flow's queueing-delay metric.
    fn account_departure(&mut self, h: usize, id: PacketId, now: Ns) {
        let (flow, is_data, path_pos, queue_wait) = {
            let p = &mut self.arena[id];
            let wait = now.saturating_sub(p.enqueued_at);
            p.queue_wait += wait;
            (p.flow, p.ack.is_none(), p.path_pos, p.queue_wait)
        };
        // A packet whose flow tore down mid-flight (churn) still occupies
        // the queue and must run the router hook, but credits no metrics.
        if is_data {
            if let Some(fi) = self.flows.index_of(flow) {
                if path_pos + 1 == self.flows.hot(fi).fwd_len as usize {
                    self.flows
                        .cold_mut(fi)
                        .metrics
                        .record_queue_delay(queue_wait);
                    self.packets_forwarded += 1;
                }
            }
        }
        let hop = &mut self.hops[h];
        let queue_pkts = hop.queue.len();
        if let Some(r) = hop.router.as_mut() {
            r.on_departure(now, &mut self.arena[id], queue_pkts);
        }
    }

    /// Route a packet leaving hop `h` at time `depart`: to the next hop on
    /// its path, or — past the final hop — to its receiver (data) or
    /// sender (ACK) after the flow's propagation delay. On a graph
    /// topology, a packet stamped with a stale routing epoch (its flow's
    /// path was rewritten while it was on the wire) re-resolves at the
    /// router it is arriving at instead of blindly walking the old path.
    fn forward(&mut self, h: usize, id: PacketId, depart: Ns) {
        let (flow, is_ack, path_pos) = {
            let p = &self.arena[id];
            (p.flow, p.ack.is_some(), p.path_pos)
        };
        let Some(fi) = self.flows.index_of(flow) else {
            // Connection closed while the packet was in flight: drop it.
            self.arena.free(id);
            return;
        };
        if let Some(net) = &self.net {
            if self.arena[id].route_epoch != net.epoch {
                // The packet has already been launched across hop `h`'s
                // wire: it lands at `h`'s downstream router, then rejoins
                // its flow's *current* path from there.
                let r = net.graph.links[h].dst;
                let prop_out = self.hops[h].prop_delay_out;
                self.reroute_at(id, fi, is_ack, r, depart, prop_out);
                return;
            }
        }
        let hot = self.flows.hot(fi);
        let path_len = if is_ack {
            hot.ack_len as usize
        } else {
            hot.fwd_len as usize
        };
        if path_pos + 1 < path_len {
            let next = {
                let cold = self.flows.cold(fi);
                let pos = path_pos + 1;
                if is_ack {
                    cold.ack_hops[pos]
                } else {
                    cold.fwd_hops[pos]
                }
            };
            {
                let p = &mut self.arena[id];
                p.path_pos += 1;
                p.next_hop = next as u32;
            }
            let at = depart + self.hops[h].prop_delay_out;
            self.schedule(at, Ev::HopArrive(id));
        } else if is_ack {
            let at = depart + hot.back_delay;
            self.schedule(at, Ev::AckArrive(id));
        } else {
            let at = depart + hot.fwd_delay;
            self.schedule(at, Ev::Deliver(id));
        }
    }

    /// A packet arrives at the hop stamped into it at forward time: run
    /// the hop's router hook, enqueue, and start service if the link is
    /// idle. The hop index was resolved when the packet departed the
    /// previous hop, so a path rewrite mid-propagation cannot retarget a
    /// packet already on the wire (it re-resolves at its next router
    /// instead, via the epoch check in [`Simulator::forward`]).
    fn on_hop_arrive(&mut self, id: PacketId) {
        let flow = self.arena[id].flow;
        if self.flows.index_of(flow).is_none() {
            self.arena.free(id);
            return;
        }
        let h = self.arena[id].next_hop as usize;
        self.admit(h, id);
    }

    fn admit(&mut self, h: usize, id: PacketId) {
        if self.hops[h].down {
            // The packet arrived at a failed link: re-resolve from the
            // link's source router under the failover policy.
            let (flow, is_ack) = {
                let p = &self.arena[id];
                (p.flow, p.ack.is_some())
            };
            let Some(fi) = self.flows.index_of(flow) else {
                self.arena.free(id);
                return;
            };
            let Some(net) = &self.net else {
                // A hop can only be down with a graph topology; tolerate
                // by dropping the packet.
                debug_assert!(false, "down hop without graph state");
                self.arena.free(id);
                return;
            };
            let r = net.graph.links[h].src;
            let now = self.now;
            self.reroute_at(id, fi, is_ack, r, now, Ns::ZERO);
            return;
        }
        let now = self.now;
        let admitted = {
            let hop = &mut self.hops[h];
            let queue_pkts = hop.queue.len();
            if let Some(r) = hop.router.as_mut() {
                r.on_arrival(now, &mut self.arena[id], queue_pkts);
            }
            hop.queue.enqueue(now, id, &mut self.arena) == Enqueue::Queued
        };
        if admitted {
            self.start_service_if_possible(h);
        }
    }

    /// Re-join packet `id` (of flow `fi`) to its flow's current path from
    /// router `r`: if `r` is the packet's terminal router it completes
    /// (delivery or ACK arrival) after the flow's edge delay; if the
    /// current path passes through `r` on an alive link, the
    /// packet adopts that position and the current epoch; otherwise it is
    /// stranded (no alive on-path link leaves `r`) and is dropped — the
    /// transport recovers by RTO exactly as it does from a queue drop.
    fn reroute_at(
        &mut self,
        id: PacketId,
        fi: usize,
        is_ack: bool,
        r: u32,
        depart: Ns,
        prop_out: Ns,
    ) {
        let Some(net) = &self.net else {
            debug_assert!(false, "reroute without graph state");
            self.arena.free(id);
            return;
        };
        let hot = self.flows.hot(fi);
        let cold = self.flows.cold(fi);
        // Terminal router of this packet's direction of travel (churn
        // flows never run on graph topologies, so a missing pair just
        // strands the packet below).
        let terminal = match net.graph.flows.get(fi).copied() {
            Some((s, d)) => {
                if is_ack {
                    s
                } else {
                    d
                }
            }
            None => u32::MAX,
        };
        if r == terminal {
            // Mirror normal final-hop semantics: the flow's edge delay
            // substitutes for the last wire's propagation.
            if is_ack {
                let at = depart + hot.back_delay;
                self.schedule(at, Ev::AckArrive(id));
            } else {
                let at = depart + hot.fwd_delay;
                self.schedule(at, Ev::Deliver(id));
            }
            return;
        }
        let path = if is_ack {
            &cold.ack_hops
        } else {
            &cold.fwd_hops
        };
        let rejoin = path
            .iter()
            .position(|&l| net.graph.links[l].src == r && !net.down[l]);
        match rejoin {
            Some(j) => {
                let epoch = net.epoch;
                let next = path[j];
                let p = &mut self.arena[id];
                p.path_pos = j;
                p.route_epoch = epoch;
                p.next_hop = next as u32;
                let at = depart + prop_out;
                self.schedule(at, Ev::HopArrive(id));
            }
            None => {
                // Stranded: no alive on-path link leaves this router.
                self.arena.free(id);
                // lint:allow(e1-global-write-in-handler): PDES worklist — a
                // monotone u64 drop counter; integer += commutes, so a
                // zone-parallel loop keeps per-zone deltas and folds them at
                // the next commit point. Tracked on the effects baseline
                // (lint/effects_baseline.json).
                if let Some(net) = self.net.as_mut() {
                    net.failover_drops += 1;
                }
            }
        }
    }

    /// A scheduled link failure or recovery fires: flip the link's state,
    /// bump the routing epoch, recompute every flow's shortest path over
    /// the surviving graph, and handle the failed link's queue contents
    /// under the topology's failover policy. Flows that become unreachable
    /// keep their old paths (their packets strand at the failure and drop;
    /// the transport backs off by RTO until recovery).
    fn on_link_event(&mut self, idx: usize) {
        let now = self.now;
        let Some(net) = self.net.as_mut() else {
            debug_assert!(false, "link event without graph state");
            return;
        };
        let ev = net.graph.events[idx];
        let h = ev.link as usize;
        net.down[h] = !ev.up;
        net.link_events += 1;
        net.epoch = net.epoch.wrapping_add(1);
        self.hops[h].down = !ev.up;
        // Recompute all routes over the surviving topology, then apply:
        // the borrow of `net` must end before we touch flows/hops.
        let tables = net.graph.forwarding(&net.down);
        let policy = net.graph.policy;
        let mut new_paths: Vec<(usize, Vec<usize>, Vec<usize>)> = Vec::new();
        for fi in 0..net.graph.flows.len() {
            let (s, d) = net.graph.flows[fi];
            let fwd = net.graph.route_via(&tables, s, d);
            let ack = net.graph.route_via(&tables, d, s);
            if let (Ok(fwd), Ok(ack)) = (fwd, ack) {
                new_paths.push((fi, fwd, ack));
            }
            // Unreachable flows keep their old paths: their packets
            // strand at the failed link and the transport waits out the
            // outage on its RTO clock.
        }
        for (fi, fwd, ack) in new_paths {
            if fi >= self.n_persistent {
                continue;
            }
            let (hot, cold) = self.flows.pair_mut(fi);
            if cold.fwd_hops == fwd && cold.ack_hops == ack {
                continue;
            }
            cold.fwd_hops = fwd;
            cold.ack_hops = ack;
            hot.entry_hop = cold.fwd_hops[0] as u32;
            hot.fwd_len = cold.fwd_hops.len() as u32;
            hot.ack_len = cold.ack_hops.len() as u32;
            if let Some(net) = self.net.as_mut() {
                net.reroutes += 1;
            }
        }
        if ev.up {
            // Recovery: the link may have queued packets that waited out
            // the outage (entry-hop sends buffer against a down link).
            self.start_service_if_possible(h);
        } else {
            // Failure: deal with the dead link's queue under the policy.
            let mut stranded = Vec::new();
            while let Some(id) = self.hops[h].queue.dequeue(now, &mut self.arena) {
                stranded.push(id);
            }
            for id in stranded {
                match policy {
                    crate::graph::FailoverPolicy::Drop => {
                        self.arena.free(id);
                        if let Some(net) = self.net.as_mut() {
                            net.failover_drops += 1;
                        }
                    }
                    crate::graph::FailoverPolicy::Reroute => {
                        let (flow, is_ack) = {
                            let p = &mut self.arena[id];
                            let wait = now.saturating_sub(p.enqueued_at);
                            p.queue_wait += wait;
                            (p.flow, p.ack.is_some())
                        };
                        let Some(fi) = self.flows.index_of(flow) else {
                            self.arena.free(id);
                            continue;
                        };
                        let r = {
                            // lint:allow(p1-sim-unwrap): net is Some — this
                            // handler is only reachable with graph state.
                            let net = self.net.as_ref().expect("graph state");
                            net.graph.links[h].src
                        };
                        self.reroute_at(id, fi, is_ack, r, now, Ns::ZERO);
                    }
                }
            }
        }
    }

    fn on_deliver(&mut self, id: PacketId) {
        let now = self.now;
        let (flow, seq, size, sent_at, ecn_marked, xcp_feedback) = {
            let p = &self.arena[id];
            (
                p.flow,
                p.seq,
                p.size,
                p.sent_at,
                p.ecn_marked,
                p.xcp.map(|h| h.feedback),
            )
        };
        let Some(i) = self.flows.index_of(flow) else {
            self.arena.free(id);
            return;
        };
        let (hot, cold) = self.flows.pair_mut(i);
        let new_data = cold.receiver.on_packet(seq);
        if new_data {
            cold.metrics.packets_delivered += 1;
            cold.metrics.credit_bytes(size as u64);
            if self.record_deliveries {
                if self.deliveries.len() < self.delivery_log_cap {
                    self.deliveries.push(DeliveryRecord {
                        at: now,
                        flow: i,
                        seq,
                    });
                } else {
                    self.deliveries_dropped += 1;
                }
            }
        } else {
            cold.metrics.duplicate_deliveries += 1;
        }
        let ack = Ack {
            flow,
            cum_ack: cold.receiver.expected,
            seq,
            echo_ts: sent_at,
            received_at: now,
            ecn_echo: ecn_marked,
            xcp_feedback,
            new_data,
        };
        if hot.ack_len == 0 {
            // Legacy pure-delay return path: never queued, never dropped.
            // The delivered packet's slot is recycled in place to carry
            // the ACK home — no allocation on the ACK path.
            let at = now + hot.back_delay;
            self.arena[id].ack = Some(ack);
            self.schedule(at, Ev::AckArrive(id));
        } else {
            // Queued return path: the ACK becomes a 40-byte packet (in the
            // same slot) and takes its chances in the reverse-direction
            // hops.
            let entry_hop = cold.ack_hops[0];
            self.arena[id] = Packet::carrying_ack(ack, now);
            if let Some(net) = &self.net {
                self.arena[id].route_epoch = net.epoch;
            }
            self.admit(entry_hop, id);
        }
    }

    fn on_ack_arrive(&mut self, id: PacketId) {
        let Some(ack) = self.arena[id].ack.take() else {
            // Tolerate like a stale handle: free the slot, drop the event.
            debug_assert!(false, "AckArrive without an ack payload");
            self.arena.free(id);
            return;
        };
        self.arena.free(id);
        let now = self.now;
        let Some(i) = self.flows.index_of(ack.flow) else {
            return; // ACK for a connection that already closed
        };
        let cold = self.flows.cold_mut(i);
        let outcome = cold.transport.on_ack(now, &ack);
        cold.metrics.record_rtt(outcome.rtt_sample);
        self.sync_flow(i);
        // Transfer completion: fixed-size flow fully delivered.
        let cold = self.flows.cold_mut(i);
        if cold.traffic.draining() && cold.transport.all_acked() {
            if self.flows.hot(i).churn {
                // A churn flow is one transfer: record its completion time
                // in the population stats and retire the slot. Packets
                // still in flight (none for data — all acked — but a
                // duplicate ACK may straggle) resolve to a stale FlowId
                // and are dropped on arrival.
                let spawned_at = self.flows.hot(i).spawned_at;
                let fct = now.saturating_sub(spawned_at).as_secs_f64();
                let cold = self.flows.cold_mut(i);
                let bytes = cold.metrics.bytes() as f64;
                cold.metrics.end_interval(now);
                // lint:allow(e1-global-write-in-handler): PDES worklist — the
                // churn completion stats (count, FCT/bytes summaries) are a
                // cross-zone fold; the plan is per-zone StreamingSummary
                // shards merged at commit points. Tracked on the effects
                // baseline (lint/effects_baseline.json).
                let Some(c) = self.churn.as_mut() else {
                    // Invariant: churn flows only exist with churn state.
                    // Tolerate: retire the flow, skip the stats update.
                    debug_assert!(false, "churn flow without churn state");
                    self.flows.free(ack.flow);
                    return;
                };
                c.completed += 1;
                c.fct_secs.observe(fct);
                c.flow_bytes.observe(bytes);
                c.fct_reservoir.observe(fct, &mut c.reservoir_rng);
                self.flows.free(ack.flow);
                return;
            }
            let cold = self.flows.cold_mut(i);
            cold.traffic.on_transfer_complete(now);
            cold.metrics.end_interval(now);
            if let Some(at) = cold.traffic.next_wakeup() {
                self.schedule(at.max(now), Ev::Toggle(ack.flow));
            }
        }
        self.try_send(i);
    }

    fn on_rto(&mut self, f: FlowId) {
        let now = self.now;
        let Some(i) = self.flows.index_of(f) else {
            return; // the flow tore down; its pending timer is moot
        };
        // Release the dedup guard only if *this* is the tracked timer; a
        // stale leftover (scheduled before the tracked one superseded it)
        // must not clear the guard, or sync_flow would re-enqueue a
        // duplicate for an event that is already pending.
        let hot = self.flows.hot_mut(i);
        if hot.rto_event_at == Some(now) {
            hot.rto_event_at = None;
        }
        match self.flows.cold(i).transport.rto_deadline() {
            Some((deadline, generation)) if deadline <= now => {
                // The live deadline has arrived: take the timeout.
                if self
                    .flows
                    .cold_mut(i)
                    .transport
                    .on_rto_fire(now, generation)
                {
                    self.try_send(i);
                }
                self.sync_flow(i);
            }
            Some(_) => {
                // The transport re-armed since this timer was scheduled
                // (ACK progress pushed the deadline out): chain a timer at
                // the live deadline instead.
                self.sync_flow(i);
            }
            None => {} // disarmed: nothing outstanding
        }
    }

    fn on_router_tick(&mut self, h: usize) {
        let now = self.now;
        let next = {
            let hop = &mut self.hops[h];
            let queue_pkts = hop.queue.len();
            match hop.router.as_mut() {
                Some(r) => {
                    r.on_tick(now, queue_pkts);
                    r.tick_interval()
                }
                None => None,
            }
        };
        if let Some(period) = next {
            self.schedule(now + period, Ev::RouterTick(h));
        }
    }

    /// Refresh flow `i`'s hot mirrors from its cold state and make sure a
    /// timer event covers the transport's current RTO deadline: one no
    /// later than the deadline must be pending. A timer that fires before
    /// the live deadline re-arms itself in [`Simulator::on_rto`], so ACK
    /// progress (which re-arms the transport on every advance) does not
    /// enqueue an event per generation.
    fn sync_flow(&mut self, i: usize) {
        let id = self.flows.id_at(i);
        let (hot, cold) = self.flows.pair_mut(i);
        hot.cwnd_pkts = cold.transport.cc().cwnd();
        hot.inflight_pkts = cold.transport.in_flight();
        hot.next_seq = cold.transport.next_seq();
        let deadline = cold.transport.rto_deadline();
        hot.rto_deadline = deadline;
        #[cfg(feature = "strict-invariants")]
        {
            assert_eq!(
                hot.fwd_len as usize,
                cold.fwd_hops.len(),
                "strict-invariants: hot fwd path length diverged from cold"
            );
            assert_eq!(
                hot.ack_len as usize,
                cold.ack_hops.len(),
                "strict-invariants: hot ack path length diverged from cold"
            );
            assert_eq!(
                hot.entry_hop as usize, cold.fwd_hops[0],
                "strict-invariants: hot entry hop diverged from cold"
            );
        }
        let mut need = None;
        if let Some((d, _)) = deadline {
            match hot.rto_event_at {
                Some(at) if at <= d => {}
                _ => {
                    hot.rto_event_at = Some(d);
                    need = Some(d);
                }
            }
        }
        if let Some(at) = need {
            self.schedule(at, Ev::Rto(id));
        }
    }

    /// A churn arrival: draw the next inter-arrival gap, then stand up a
    /// flow for this one — recycling a free table slot (and its cold-side
    /// heap blocks) when one exists, growing the table only while the live
    /// population is at its high-water mark.
    fn on_spawn(&mut self) {
        let now = self.now;
        let (gap, bytes, rtt, spawn_seq) = {
            // lint:allow(e1-global-write-in-handler): PDES worklist — the
            // Poisson arrival process is a single global RNG stream; the
            // plan is per-zone arrival streams with split seeds so spawns
            // need no cross-zone order. Tracked on the effects baseline
            // (lint/effects_baseline.json).
            let Some(c) = self.churn.as_mut() else {
                // Tolerate a stray Spawn event: drop it (churn stops).
                debug_assert!(false, "Spawn event without churn state");
                return;
            };
            let gap = c.arrivals.exponential(1.0 / c.spec.arrivals_per_sec);
            let Some(bytes) = c.spec.size.sample_bytes(&mut c.arrivals) else {
                // ChurnSpec::validate rejects non-byte size models at
                // construction; tolerate here by dropping the arrival.
                debug_assert!(false, "churn sizes are byte-based");
                return;
            };
            c.spawned += 1;
            (gap, bytes, c.spec.rtt, c.spawned)
        };
        self.schedule(now + Ns::from_secs_f64(gap), Ev::Spawn);
        let half = Ns(rtt.0 / 2);
        let hot = FlowHot {
            fwd_delay: half,
            back_delay: rtt.saturating_sub(half),
            entry_hop: 0,
            fwd_len: 1,
            ack_len: 0,
            spawned_at: now,
            churn: true,
            ..FlowHot::default()
        };
        let id = match self.flows.respawn(|h, cold| {
            // Freed slots are always churn slots (persistent flows never
            // tear down), so the path vectors are already `[0]` / `[]`.
            cold.transport.start_connection(now);
            cold.receiver.reset(cold.transport.next_seq());
            cold.metrics.reset();
            cold.metrics.start_interval(now);
            cold.traffic.reset_one_shot(bytes, now);
            *h = hot;
        }) {
            Some(id) => id,
            None => {
                let factory = self.churn.as_ref().and_then(|c| c.factory.as_ref());
                let Some(factory) = factory else {
                    // with_churn_cc was never called: drop the arrival
                    // rather than panic mid-run (setup bug, not corruption).
                    debug_assert!(false, "churn scenario needs Simulator::with_churn_cc");
                    return;
                };
                let cc = factory(spawn_seq);
                let mut cold = FlowCold {
                    transport: Transport::new(cc),
                    traffic: TrafficProcess::one_shot(bytes, self.mss, now),
                    receiver: Receiver::default(),
                    metrics: FlowMetrics::default(),
                    fwd_hops: vec![0],
                    ack_hops: Vec::new(),
                };
                cold.transport.start_connection(now);
                cold.metrics.start_interval(now);
                self.flows.insert(hot, cold)
            }
        };
        let Some(i) = self.flows.index_of(id) else {
            debug_assert!(false, "freshly spawned flow has a live handle");
            return;
        };
        self.sync_flow(i);
        self.try_send(i);
    }

    /// Current simulated time (tests).
    pub fn now(&self) -> Ns {
        self.now
    }
}

/// Convenience: run `scenario` with one factory-built controller per
/// sender and no router hook.
pub fn run_scenario(
    scenario: &Scenario,
    factory: &dyn Fn(usize) -> Box<dyn CongestionControl>,
) -> SimResults {
    let ccs = (0..scenario.n()).map(factory).collect();
    Simulator::new(scenario, ccs, None).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::FixedWindow;
    use crate::link::{DeliverySchedule, LinkSpec};
    use crate::queue::QueueSpec;
    use crate::traffic::TrafficSpec;

    fn saturating_scenario(n: usize, rate_mbps: f64, rtt_ms: u64) -> Scenario {
        Scenario::dumbbell(
            LinkSpec::constant(rate_mbps),
            QueueSpec::DropTail { capacity: 1000 },
            n,
            Ns::from_millis(rtt_ms),
            TrafficSpec::saturating(),
            Ns::from_secs(20),
            1,
        )
    }

    #[test]
    fn single_saturating_flow_fills_the_link() {
        // Window large enough to cover the BDP: 10 Mbps × 100 ms ≈ 83 pkts.
        let s = saturating_scenario(1, 10.0, 100);
        let r = run_scenario(&s, &|_| Box::new(FixedWindow::new(200.0)));
        let util = r.utilization(10.0);
        assert!(
            util > 0.95,
            "expected near-full utilization, got {util} ({:?})",
            r.flows[0]
        );
    }

    #[test]
    fn tiny_window_is_latency_limited() {
        // One packet per RTT: throughput ≈ mss*8/rtt = 1500*8/0.1 s = 120 kbps.
        let s = saturating_scenario(1, 10.0, 100);
        let r = run_scenario(&s, &|_| Box::new(FixedWindow::new(1.0)));
        let got = r.flows[0].throughput_mbps;
        assert!((got - 0.12).abs() < 0.012, "expected ~0.12 Mbps, got {got}");
        // And the queue never builds.
        assert!(r.flows[0].mean_queue_delay_ms < 1.5);
    }

    #[test]
    fn two_equal_flows_split_capacity() {
        let s = saturating_scenario(2, 10.0, 100);
        let r = run_scenario(&s, &|_| Box::new(FixedWindow::new(100.0)));
        let t0 = r.flows[0].throughput_mbps;
        let t1 = r.flows[1].throughput_mbps;
        assert!(t0 + t1 > 9.5, "link filled: {t0} + {t1}");
        assert!(
            (t0 - t1).abs() / (t0 + t1) < 0.1,
            "even split expected: {t0} vs {t1}"
        );
    }

    #[test]
    fn oversized_windows_build_queueing_delay() {
        // 2 flows × 400-pkt windows over a 83-pkt BDP: the DropTail queue
        // should hold a large standing backlog.
        let s = saturating_scenario(2, 10.0, 100);
        let r = run_scenario(&s, &|_| Box::new(FixedWindow::new(400.0)));
        assert!(
            r.flows[0].mean_queue_delay_ms > 100.0,
            "expected bloated queue, got {} ms",
            r.flows[0].mean_queue_delay_ms
        );
    }

    #[test]
    fn drops_happen_only_when_queue_overflows() {
        let small = Scenario {
            queue: QueueSpec::DropTail { capacity: 10 },
            ..saturating_scenario(1, 10.0, 100)
        };
        let r = run_scenario(&small, &|_| Box::new(FixedWindow::new(500.0)));
        assert!(r.queue_drops > 0, "tiny buffer must overflow");
        let big = saturating_scenario(1, 10.0, 100);
        let r2 = run_scenario(&big, &|_| Box::new(FixedWindow::new(500.0)));
        assert_eq!(r2.queue_drops, 0, "1000-pkt buffer holds a 500-pkt window");
    }

    #[test]
    fn pacing_limits_rate_below_window() {
        // 10 ms pacing → at most 100 pkts/s → 1.2 Mbps regardless of window.
        let s = saturating_scenario(1, 10.0, 100);
        let r = run_scenario(&s, &|_| {
            Box::new(FixedWindow::new(1000.0).with_pacing(Ns::from_millis(10)))
        });
        let got = r.flows[0].throughput_mbps;
        assert!((got - 1.2).abs() < 0.1, "expected ~1.2 Mbps, got {got}");
    }

    #[test]
    fn trace_link_delivers_at_trace_rate() {
        // 1 delivery per ms = 1000 pkt/s = 12 Mbps with 1500 B packets.
        let instants: Vec<Ns> = (1..=1000).map(Ns::from_millis).collect();
        let schedule = DeliverySchedule::new(instants, Ns::from_millis(1));
        let s = Scenario::dumbbell(
            LinkSpec::trace("synthetic", schedule),
            QueueSpec::DropTail { capacity: 1000 },
            1,
            Ns::from_millis(50),
            TrafficSpec::saturating(),
            Ns::from_secs(10),
            1,
        );
        let r = run_scenario(&s, &|_| Box::new(FixedWindow::new(400.0)));
        let got = r.flows[0].throughput_mbps;
        assert!((got - 12.0).abs() < 0.5, "expected ~12 Mbps, got {got}");
    }

    #[test]
    fn deterministic_across_runs() {
        let s = Scenario::dumbbell(
            LinkSpec::constant(15.0),
            QueueSpec::DropTail { capacity: 1000 },
            4,
            Ns::from_millis(150),
            TrafficSpec::fig4(),
            Ns::from_secs(30),
            42,
        );
        let a = run_scenario(&s, &|_| Box::new(FixedWindow::new(50.0)));
        let b = run_scenario(&s, &|_| Box::new(FixedWindow::new(50.0)));
        for (fa, fb) in a.flows.iter().zip(&b.flows) {
            assert_eq!(fa.bytes, fb.bytes);
            assert_eq!(fa.packets_delivered, fb.packets_delivered);
            assert_eq!(fa.throughput_mbps, fb.throughput_mbps);
        }
        assert_eq!(a.queue_drops, b.queue_drops);
    }

    #[test]
    fn heap_and_wheel_schedulers_agree_bit_for_bit() {
        // The tentpole contract in miniature: the same scenario under both
        // event schedulers yields identical results — including the
        // delivery log, i.e. identical event times.
        let mut s = Scenario::dumbbell(
            LinkSpec::constant(15.0),
            QueueSpec::DropTail { capacity: 40 },
            4,
            Ns::from_millis(150),
            TrafficSpec::fig4(),
            Ns::from_secs(20),
            42,
        );
        s.record_deliveries = true;
        let run = |kind: SchedulerKind| {
            let ccs: Vec<Box<dyn CongestionControl>> = (0..s.n())
                .map(|_| Box::new(FixedWindow::new(60.0)) as _)
                .collect();
            let routers = vec![None];
            let sim = Simulator::with_scheduler(&s, ccs, routers, kind);
            assert_eq!(sim.scheduler(), kind);
            sim.run()
        };
        let a = run(SchedulerKind::Heap);
        let b = run(SchedulerKind::Wheel);
        assert_eq!(a.queue_drops, b.queue_drops);
        assert_eq!(a.packets_forwarded, b.packets_forwarded);
        assert_eq!(a.deliveries.len(), b.deliveries.len());
        for (da, db) in a.deliveries.iter().zip(&b.deliveries) {
            assert_eq!((da.at, da.flow, da.seq), (db.at, db.flow, db.seq));
        }
        for (fa, fb) in a.flows.iter().zip(&b.flows) {
            assert_eq!(fa.bytes, fb.bytes);
            assert_eq!(fa.throughput_mbps.to_bits(), fb.throughput_mbps.to_bits());
            assert_eq!(
                fa.mean_queue_delay_ms.to_bits(),
                fb.mean_queue_delay_ms.to_bits()
            );
            assert_eq!(fa.mean_rtt_ms.to_bits(), fb.mean_rtt_ms.to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let s = Scenario::dumbbell(
            LinkSpec::constant(15.0),
            QueueSpec::DropTail { capacity: 1000 },
            4,
            Ns::from_millis(150),
            TrafficSpec::fig4(),
            Ns::from_secs(30),
            1,
        );
        let a = run_scenario(&s, &|_| Box::new(FixedWindow::new(50.0)));
        let b = run_scenario(&s.clone().with_seed(2), &|_| {
            Box::new(FixedWindow::new(50.0))
        });
        let ba: u64 = a.flows.iter().map(|f| f.bytes).sum();
        let bb: u64 = b.flows.iter().map(|f| f.bytes).sum();
        assert_ne!(ba, bb, "different seeds should change traffic draws");
    }

    #[test]
    fn on_off_flow_records_intervals() {
        let s = Scenario::dumbbell(
            LinkSpec::constant(15.0),
            QueueSpec::DropTail { capacity: 1000 },
            1,
            Ns::from_millis(150),
            TrafficSpec::fig4(),
            Ns::from_secs(60),
            3,
        );
        let r = run_scenario(&s, &|_| Box::new(FixedWindow::new(20.0)));
        let f = &r.flows[0];
        assert!(f.was_active());
        assert!(f.n_intervals > 1, "60 s of ~100 kB flows: several bursts");
        assert!(f.bytes > 0);
        // Conservation: the receiver cannot get more than was forwarded.
        assert!(f.packets_delivered <= r.packets_forwarded);
    }

    #[test]
    fn delivery_log_is_monotonic_when_enabled() {
        let s = saturating_scenario(1, 5.0, 50).with_delivery_log();
        let mut s = s;
        s.duration = Ns::from_secs(2);
        let r = run_scenario(&s, &|_| Box::new(FixedWindow::new(20.0)));
        assert!(!r.deliveries.is_empty());
        for w in r.deliveries.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        // In-order link and no drops: sequence numbers are increasing.
        for w in r.deliveries.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }

    #[test]
    fn arena_slots_are_recycled_not_grown() {
        // A long saturating run keeps a bounded in-flight population:
        // the arena must stabilize at that population, not grow with the
        // total packet count.
        let s = saturating_scenario(1, 10.0, 100);
        let ccs: Vec<Box<dyn CongestionControl>> = vec![Box::new(FixedWindow::new(200.0))];
        let mut sim = Simulator::with_scheduler(&s, ccs, vec![None], SchedulerKind::Wheel);
        sim.drive();
        let live = sim.arena.live();
        let capacity = sim.arena.capacity();
        let (r, _) = sim.finish();
        assert!(r.packets_forwarded > 10_000, "a real run completed");
        assert!(
            capacity < 1000,
            "arena capacity {capacity} must track the in-flight window, \
             not the {} packets forwarded",
            r.packets_forwarded
        );
        // Whatever was in flight at the horizon is still live; it is
        // bounded by the window plus queued packets.
        assert!(live <= capacity);
    }

    // --- flow churn ----------------------------------------------------

    use crate::scenario::ChurnSpec;
    use crate::traffic::OnSpec;

    /// Two persistent saturating senders plus Poisson arrivals of
    /// bounded-Pareto transfers on the same bottleneck.
    fn churn_scenario(arrivals_per_sec: f64, secs: u64, seed: u64) -> Scenario {
        Scenario::dumbbell(
            LinkSpec::constant(50.0),
            QueueSpec::DropTail { capacity: 1000 },
            2,
            Ns::from_millis(100),
            TrafficSpec::saturating(),
            Ns::from_secs(secs),
            seed,
        )
        .with_churn(ChurnSpec {
            arrivals_per_sec,
            size: OnSpec::BoundedPareto {
                xm: 3000.0,
                alpha: 1.2,
                cap_bytes: 150_000.0,
            },
            rtt: Ns::from_millis(20),
        })
    }

    fn churn_sim(s: &Scenario, kind: SchedulerKind) -> Simulator {
        let ccs: Vec<Box<dyn CongestionControl>> = (0..s.n())
            .map(|_| Box::new(FixedWindow::new(60.0)) as _)
            .collect();
        Simulator::with_scheduler(s, ccs, vec![None], kind)
            .with_churn_cc(Box::new(|_| Box::new(FixedWindow::new(10.0))))
    }

    #[test]
    fn churn_flows_complete_and_stream_population_stats() {
        let s = churn_scenario(200.0, 10, 7);
        let r = churn_sim(&s, SchedulerKind::Wheel).run();
        // Positional summaries cover the persistent senders only.
        assert_eq!(r.flows.len(), 2);
        let p = r.population.expect("churn run has population stats");
        assert!(
            p.spawned > 1500,
            "λ=200/s over 10 s: expected ~2000 arrivals, got {}",
            p.spawned
        );
        assert!(
            p.completed + p.live_at_end == p.spawned,
            "every arrival either completed or was live at the horizon: \
             {} + {} != {}",
            p.completed,
            p.live_at_end,
            p.spawned
        );
        assert!(
            p.completed as f64 > 0.9 * p.spawned as f64,
            "short transfers on a fast link mostly complete: {}/{}",
            p.completed,
            p.spawned
        );
        assert_eq!(p.fct_secs.count(), p.completed);
        assert!(p.fct_secs.min() > 0.0, "a transfer takes at least one RTT");
        assert!(p.fct_secs.p50() >= p.fct_secs.min());
        assert!(p.fct_secs.p99() <= p.fct_secs.max());
        // Sizes come from BoundedPareto[3000, 150000); metrics credit
        // whole MSS packets, so completed-flow byte counts can round up
        // to the next packet.
        assert!(p.flow_bytes.min() >= 3000.0);
        assert!(p.flow_bytes.max() < 152_000.0);
        assert!(!p.fct_sample_secs.is_empty());
        assert!(p.fct_sample_secs.len() as u64 <= p.completed);
    }

    #[test]
    fn flow_slots_are_recycled_not_grown() {
        // The churn analogue of `arena_slots_are_recycled_not_grown`: the
        // flow table must stabilize at the peak *concurrent* population,
        // not grow with the total number of arrivals.
        let s = churn_scenario(500.0, 10, 11);
        let mut sim = churn_sim(&s, SchedulerKind::Wheel);
        sim.drive();
        let capacity = sim.flows.capacity();
        let live = sim.flows.live();
        let (r, _) = sim.finish();
        let p = r.population.expect("population stats");
        assert!(p.spawned > 4000, "a real churn run: {} spawned", p.spawned);
        assert!(
            capacity < 500,
            "flow-table capacity {capacity} must track peak concurrency, \
             not the {} flows spawned",
            p.spawned
        );
        assert!(live <= capacity);
    }

    #[test]
    fn churn_runs_agree_across_schedulers_bit_for_bit() {
        let s = churn_scenario(300.0, 5, 13);
        let a = churn_sim(&s, SchedulerKind::Heap).run();
        let b = churn_sim(&s, SchedulerKind::Wheel).run();
        assert_eq!(a.queue_drops, b.queue_drops);
        assert_eq!(a.packets_forwarded, b.packets_forwarded);
        let (pa, pb) = (a.population.unwrap(), b.population.unwrap());
        assert_eq!(pa.spawned, pb.spawned);
        assert_eq!(pa.completed, pb.completed);
        assert_eq!(pa.live_at_end, pb.live_at_end);
        assert_eq!(pa.fct_secs.sum().to_bits(), pb.fct_secs.sum().to_bits());
        assert_eq!(pa.fct_secs.p99().to_bits(), pb.fct_secs.p99().to_bits());
        assert_eq!(pa.flow_bytes.sum().to_bits(), pb.flow_bytes.sum().to_bits());
        assert_eq!(pa.fct_sample_secs, pb.fct_sample_secs);
        for (fa, fb) in a.flows.iter().zip(&b.flows) {
            assert_eq!(fa.bytes, fb.bytes);
            assert_eq!(fa.throughput_mbps.to_bits(), fb.throughput_mbps.to_bits());
        }
    }

    #[test]
    fn churn_free_scenarios_are_unchanged_by_the_churn_engine() {
        // Guard the golden contract: adding the churn machinery must not
        // perturb a single draw of a legacy scenario. fig4 traffic
        // exercises the per-flow rng streams whose fork order churn
        // extends.
        let s = Scenario::dumbbell(
            LinkSpec::constant(15.0),
            QueueSpec::DropTail { capacity: 40 },
            4,
            Ns::from_millis(150),
            TrafficSpec::fig4(),
            Ns::from_secs(20),
            42,
        );
        let r = run_scenario(&s, &|_| Box::new(FixedWindow::new(60.0)));
        assert!(r.population.is_none(), "no churn, no population stats");
        assert_eq!(r.deliveries_dropped, 0);
    }

    #[test]
    #[should_panic(expected = "needs Simulator::with_churn_cc")]
    fn churn_without_factory_panics() {
        let s = churn_scenario(100.0, 2, 1);
        let ccs: Vec<Box<dyn CongestionControl>> = (0..s.n())
            .map(|_| Box::new(FixedWindow::new(60.0)) as _)
            .collect();
        let _ = Simulator::with_scheduler(&s, ccs, vec![None], SchedulerKind::Wheel).run();
    }

    #[test]
    #[should_panic(expected = "one congestion controller per sender")]
    fn wrong_cc_count_panics() {
        let s = saturating_scenario(2, 10.0, 100);
        let _ = Simulator::new(&s, vec![Box::new(FixedWindow::new(1.0))], None);
    }

    #[test]
    #[should_panic(expected = "no hops")]
    fn hopless_topology_panics_with_a_diagnostic() {
        use crate::topology::Topology;
        let mut s = saturating_scenario(1, 10.0, 100);
        s.topology = Some(Topology::from_flow_hops(vec![], vec![]));
        let _ = Simulator::new(&s, vec![Box::new(FixedWindow::new(1.0))], None);
    }

    // --- multi-hop topologies ------------------------------------------

    use crate::topology::{FlowPath, HopSpec, Topology};

    fn droptail_hop(rate_mbps: f64, capacity: usize) -> HopSpec {
        HopSpec::new(
            LinkSpec::constant(rate_mbps),
            QueueSpec::DropTail { capacity },
        )
    }

    #[test]
    fn one_hop_topology_is_identical_to_legacy() {
        let legacy = Scenario::dumbbell(
            LinkSpec::constant(15.0),
            QueueSpec::DropTail { capacity: 1000 },
            4,
            Ns::from_millis(150),
            TrafficSpec::fig4(),
            Ns::from_secs(30),
            42,
        );
        let topo = legacy.clone().with_topology(Topology::single_bottleneck(
            LinkSpec::constant(15.0),
            QueueSpec::DropTail { capacity: 1000 },
            4,
        ));
        let a = run_scenario(&legacy, &|_| Box::new(FixedWindow::new(50.0)));
        let b = run_scenario(&topo, &|_| Box::new(FixedWindow::new(50.0)));
        assert_eq!(a.queue_drops, b.queue_drops);
        assert_eq!(a.packets_forwarded, b.packets_forwarded);
        for (fa, fb) in a.flows.iter().zip(&b.flows) {
            assert_eq!(fa.bytes, fb.bytes);
            assert_eq!(fa.packets_delivered, fb.packets_delivered);
            assert_eq!(fa.throughput_mbps.to_bits(), fb.throughput_mbps.to_bits());
            assert_eq!(
                fa.mean_queue_delay_ms.to_bits(),
                fb.mean_queue_delay_ms.to_bits()
            );
            assert_eq!(fa.mean_rtt_ms.to_bits(), fb.mean_rtt_ms.to_bits());
        }
    }

    #[test]
    fn chain_throughput_limited_by_slowest_hop() {
        let topo = Topology::from_flow_hops(
            vec![
                droptail_hop(10.0, 1000),
                droptail_hop(2.0, 1000),
                droptail_hop(5.0, 1000),
            ],
            vec![FlowPath::through(vec![0, 1, 2])],
        );
        let s = saturating_scenario(1, 10.0, 100).with_topology(topo);
        let r = run_scenario(&s, &|_| Box::new(FixedWindow::new(200.0)));
        let got = r.flows[0].throughput_mbps;
        assert!(
            (got - 2.0).abs() < 0.2,
            "the 2 Mbps middle hop bottlenecks the chain, got {got}"
        );
        // Queueing delay is the per-packet sum over the whole path, not a
        // per-hop average: a 200-packet window over a 2 Mbps bottleneck
        // (6 ms/packet service) stands ~1.1 s deep. A per-hop average
        // diluted by the two idle hops would report a third of that.
        let qd = r.flows[0].mean_queue_delay_ms;
        assert!(qd > 800.0, "end-to-end queueing, undiluted: {qd} ms");
    }

    #[test]
    fn parking_lot_cross_traffic_contends_on_the_shared_hop() {
        // Flow 0 crosses hops 0 and 1; flow 1 loads hop 1 only. They split
        // hop 1's 10 Mbps while hop 0 stays uncongested.
        let topo = Topology::from_flow_hops(
            vec![droptail_hop(10.0, 1000), droptail_hop(10.0, 1000)],
            vec![FlowPath::through(vec![0, 1]), FlowPath::through(vec![1])],
        );
        let s = saturating_scenario(2, 10.0, 100).with_topology(topo);
        let r = run_scenario(&s, &|_| Box::new(FixedWindow::new(100.0)));
        let t0 = r.flows[0].throughput_mbps;
        let t1 = r.flows[1].throughput_mbps;
        assert!(t0 + t1 > 9.5, "shared hop filled: {t0} + {t1}");
        assert!(
            (t0 - t1).abs() / (t0 + t1) < 0.1,
            "even split on the shared hop: {t0} vs {t1}"
        );
    }

    #[test]
    fn reverse_path_ack_queueing_inflates_rtt() {
        // Hop 0 is the eastbound direction, hop 1 the westbound. Flow 0 is
        // a small window-limited flow east; flow 1 fills the westbound
        // queue with data. With a queued ACK path, flow 0's ACKs wait
        // behind flow 1's standing queue; with the legacy pure-delay
        // return they do not.
        let build = |queued_acks: bool| {
            let flow0_ack = if queued_acks { vec![1] } else { vec![] };
            let topo = Topology::from_flow_hops(
                vec![droptail_hop(10.0, 1000), droptail_hop(10.0, 1000)],
                vec![
                    FlowPath::through(vec![0]).with_ack_path(flow0_ack),
                    FlowPath::through(vec![1]),
                ],
            );
            saturating_scenario(2, 10.0, 100).with_topology(topo)
        };
        let run = |s: &Scenario| {
            run_scenario(s, &|i| {
                Box::new(FixedWindow::new(if i == 0 { 5.0 } else { 400.0 }))
            })
        };
        let contended = run(&build(true));
        let clean = run(&build(false));
        let rtt_contended = contended.flows[0].mean_rtt_ms;
        let rtt_clean = clean.flows[0].mean_rtt_ms;
        assert!(
            rtt_clean < 110.0,
            "pure-delay ACK path stays near propagation: {rtt_clean}"
        );
        assert!(
            rtt_contended > rtt_clean + 100.0,
            "ACKs queue behind reverse data: {rtt_contended} vs {rtt_clean}"
        );
        // And the window-limited flow's throughput collapses with its RTT.
        assert!(contended.flows[0].throughput_mbps < clean.flows[0].throughput_mbps / 2.0);
    }

    #[test]
    fn incast_fan_in_overflows_the_shallow_aggregation_queue() {
        let n = 4;
        let mut hops: Vec<HopSpec> = (0..n).map(|_| droptail_hop(100.0, 1000)).collect();
        hops.push(droptail_hop(10.0, 20)); // shallow aggregation buffer
        let topo = Topology::from_flow_hops(
            hops,
            (0..n).map(|i| FlowPath::through(vec![i, n])).collect(),
        );
        let s = saturating_scenario(n, 10.0, 50).with_topology(topo);
        let r = run_scenario(&s, &|_| Box::new(FixedWindow::new(100.0)));
        assert!(
            r.queue_drops > 0,
            "4x100-pkt windows overflow a 20-pkt buffer"
        );
        let total: f64 = r.flows.iter().map(|f| f.throughput_mbps).sum();
        assert!(
            total > 8.5 && total <= 10.0,
            "aggregate goodput tracks the fan-in link, minus loss-recovery \
             overhead: {total}"
        );
    }

    // --- graph topologies: link failure & failover ---------------------

    use crate::graph::{FailoverPolicy, LinkEvent, NetworkBuilder};

    /// Chain a-b-c-d with the b→c hop as the 10 Mbps bottleneck (the
    /// flanking hops run at 50 Mbps, so the standing queue sits at b→c)
    /// and a heavier detour b-e-c around exactly that hop. Failing b→c
    /// mid-run forces the flow onto the detour — and because the detour
    /// leaves from b, packets stranded at the failed link can rejoin the
    /// new path under `FailoverPolicy::Reroute`.
    fn detour_scenario(policy: FailoverPolicy, events: Vec<LinkEvent>) -> Scenario {
        let mut b = NetworkBuilder::new();
        let a = b.add_router("a");
        let rb = b.add_router("b");
        let c = b.add_router("c");
        let d = b.add_router("d");
        let e = b.add_router("e");
        let fast = LinkSpec::constant(50.0);
        let slow = LinkSpec::constant(10.0);
        let q = QueueSpec::DropTail { capacity: 1000 };
        let ms5 = Ns::from_millis(5);
        b.add_duplex_link(a, rb, fast.clone(), q.clone(), ms5);
        b.add_duplex_link(rb, c, slow.clone(), q.clone(), ms5);
        b.add_duplex_link(c, d, fast, q.clone(), ms5);
        b.add_weighted_duplex_link(rb, e, slow.clone(), q.clone(), Ns::from_millis(20), 2);
        b.add_weighted_duplex_link(e, c, slow, q, Ns::from_millis(20), 2);
        let net = b.build().expect("valid network");
        let topo = net
            .into_topology(&[(a, d)], events, policy)
            .expect("routable flow");
        Scenario::dumbbell(
            LinkSpec::constant(50.0),
            QueueSpec::DropTail { capacity: 1000 },
            1,
            Ns::from_millis(20),
            TrafficSpec::saturating(),
            Ns::from_secs(10),
            5,
        )
        .with_topology(topo)
    }

    /// Index of the b→c link in [`detour_scenario`]'s wiring order.
    const BC: u32 = 2;

    #[test]
    fn link_failure_reroutes_mid_flight_and_the_flow_keeps_delivering() {
        let mut s = detour_scenario(
            FailoverPolicy::Reroute,
            vec![LinkEvent {
                at: Ns::from_secs(5),
                link: BC,
                up: false,
            }],
        );
        s.record_deliveries = true;
        let r = run_scenario(&s, &|_| Box::new(FixedWindow::new(100.0)));
        assert_eq!(r.link_events, 1);
        assert_eq!(r.reroutes, 1, "one flow's forward path switched");
        assert_eq!(
            r.failover_drops, 0,
            "the detour leaves from b: all salvaged"
        );
        // lint:allow(p1-sim-unwrap): test body.
        let last = r.deliveries.last().expect("deliveries recorded").at;
        assert!(
            last > Ns::from_secs(9),
            "the flow still delivers after the failure: last at {last:?}"
        );
    }

    #[test]
    fn failover_policies_differ_on_the_stranded_queue() {
        let fail = vec![LinkEvent {
            at: Ns::from_secs(5),
            link: BC,
            up: false,
        }];
        let window = |_: usize| Box::new(FixedWindow::new(100.0)) as Box<dyn CongestionControl>;
        let dropped = run_scenario(
            &detour_scenario(FailoverPolicy::Drop, fail.clone()),
            &window,
        );
        let rerouted = run_scenario(&detour_scenario(FailoverPolicy::Reroute, fail), &window);
        assert!(
            dropped.failover_drops > 0,
            "Drop frees the standing queue at the dead link: {}",
            dropped.failover_drops
        );
        assert_eq!(rerouted.failover_drops, 0);
        assert!(
            rerouted.flows[0].bytes >= dropped.flows[0].bytes,
            "salvaged packets are not re-earned by retransmission: {} vs {}",
            rerouted.flows[0].bytes,
            dropped.flows[0].bytes
        );
    }

    #[test]
    fn link_recovery_restores_the_primary_route() {
        let s = detour_scenario(
            FailoverPolicy::Reroute,
            vec![
                LinkEvent {
                    at: Ns::from_secs(3),
                    link: BC,
                    up: false,
                },
                LinkEvent {
                    at: Ns::from_secs(6),
                    link: BC,
                    up: true,
                },
            ],
        );
        let r = run_scenario(&s, &|_| Box::new(FixedWindow::new(100.0)));
        assert_eq!(r.link_events, 2);
        assert_eq!(r.reroutes, 2, "onto the detour, then back");
        assert!(r.flows[0].bytes > 0);
        // The detour adds 30 ms of one-way propagation for 3 of 10
        // seconds; the mean RTT must sit between the all-primary and
        // all-detour floors.
        let rtt = r.flows[0].mean_rtt_ms;
        assert!(rtt > 30.0, "failure window visible in the mean RTT: {rtt}");
    }

    #[test]
    fn failover_runs_agree_across_schedulers_bit_for_bit() {
        let mut s = detour_scenario(
            FailoverPolicy::Reroute,
            vec![LinkEvent {
                at: Ns::from_secs(5),
                link: BC,
                up: false,
            }],
        );
        s.record_deliveries = true;
        let run = |kind: SchedulerKind| {
            let ccs: Vec<Box<dyn CongestionControl>> = vec![Box::new(FixedWindow::new(100.0)) as _];
            let routers = (0..s.topology.as_ref().map_or(1, |t| t.n_hops()))
                .map(|_| None)
                .collect();
            Simulator::with_scheduler(&s, ccs, routers, kind).run()
        };
        let a = run(SchedulerKind::Heap);
        let b = run(SchedulerKind::Wheel);
        assert_eq!(a.queue_drops, b.queue_drops);
        assert_eq!(a.packets_forwarded, b.packets_forwarded);
        assert_eq!(a.reroutes, b.reroutes);
        assert_eq!(a.failover_drops, b.failover_drops);
        assert_eq!(a.deliveries.len(), b.deliveries.len());
        for (da, db) in a.deliveries.iter().zip(&b.deliveries) {
            assert_eq!((da.at, da.flow, da.seq), (db.at, db.flow, db.seq));
        }
        for (fa, fb) in a.flows.iter().zip(&b.flows) {
            assert_eq!(fa.bytes, fb.bytes);
            assert_eq!(fa.mean_rtt_ms.to_bits(), fb.mean_rtt_ms.to_bits());
        }
    }
}
