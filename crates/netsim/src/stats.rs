//! Small summary-statistics helpers used by experiment harnesses.
//!
//! The paper reports medians (its headline tables), 1-σ ellipses of
//! throughput/delay clouds (Figs. 4–9), and standard errors (Fig. 10);
//! these helpers compute all of those from raw per-run samples.

/// Arithmetic mean (0.0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation (0.0 for fewer than two samples).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Standard error of the mean.
pub fn std_err(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    std_dev(xs) / (xs.len() as f64).sqrt()
}

/// Quantile via linear interpolation of the sorted samples; `q` in [0, 1].
///
/// Non-finite samples (NaN, ±∞) are filtered out before sorting,
/// consistent with `Objective::score_flow`'s sanitization — a single
/// degenerate flow summary must not abort a whole experiment. (This used
/// to `expect("no NaN in samples")` inside the sort comparator, which
/// panicked on the first NaN.) Returns 0.0 when no finite samples remain.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_unstable_by(f64::total_cmp);
    let pos = q.clamp(0.0, 1.0) * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Median.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// The 2-D Gaussian summary behind the paper's throughput–delay ellipses:
/// means, standard deviations, and the correlation of the two coordinates.
#[derive(Clone, Copy, Debug, Default)]
pub struct Ellipse {
    /// Mean of x (queueing delay in the paper's plots).
    pub mean_x: f64,
    /// Mean of y (throughput).
    pub mean_y: f64,
    /// Standard deviation of x.
    pub sd_x: f64,
    /// Standard deviation of y.
    pub sd_y: f64,
    /// Pearson correlation between x and y.
    pub corr: f64,
}

/// Fit the maximum-likelihood 2-D Gaussian to paired samples.
///
/// Pairs with a non-finite coordinate are dropped (both coordinates go:
/// the fit is over *pairs*), mirroring [`quantile`]'s sanitization, so a
/// NaN in one run's summary cannot poison a whole ellipse.
pub fn ellipse(xs: &[f64], ys: &[f64]) -> Ellipse {
    assert_eq!(xs.len(), ys.len(), "paired samples required");
    let (xs, ys): (Vec<f64>, Vec<f64>) = xs
        .iter()
        .zip(ys)
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .map(|(x, y)| (*x, *y))
        .unzip();
    let (xs, ys) = (&xs[..], &ys[..]);
    if xs.is_empty() {
        return Ellipse::default();
    }
    let mx = mean(xs);
    let my = mean(ys);
    let sx = std_dev(xs);
    let sy = std_dev(ys);
    let cov = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / xs.len() as f64;
    let corr = if sx > 0.0 && sy > 0.0 {
        cov / (sx * sy)
    } else {
        0.0
    };
    Ellipse {
        mean_x: mx,
        mean_y: my,
        sd_x: sx,
        sd_y: sy,
        corr,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert!((std_err(&xs) - 2.0 / 8f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(quantile(&[], 0.9), 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(quantile(&xs, 0.0), 10.0);
        assert_eq!(quantile(&xs, 1.0), 50.0);
        assert_eq!(quantile(&xs, 0.25), 20.0);
        assert!((quantile(&xs, 0.1) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn ellipse_of_correlated_cloud() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let e = ellipse(&xs, &ys);
        assert!((e.corr - 1.0).abs() < 1e-9, "perfect correlation");
        assert!((e.mean_x - 49.5).abs() < 1e-9);
        assert!((e.mean_y - 100.0).abs() < 1e-9);
    }

    #[test]
    fn nan_samples_are_filtered_not_fatal() {
        // Regression: one non-finite flow summary used to abort the whole
        // experiment via `partial_cmp().expect("no NaN in samples")`.
        let with_nan = [3.0, f64::NAN, 1.0, 2.0];
        assert_eq!(median(&with_nan), 2.0, "median over the finite samples");
        assert_eq!(quantile(&with_nan, 0.0), 1.0);
        assert_eq!(quantile(&with_nan, 1.0), 3.0);
        let with_inf = [f64::INFINITY, 5.0, f64::NEG_INFINITY];
        assert_eq!(median(&with_inf), 5.0, "infinities are filtered too");
        assert_eq!(median(&[f64::NAN]), 0.0, "nothing finite left: 0.0");
    }

    #[test]
    fn ellipse_drops_non_finite_pairs() {
        // The NaN pair must vanish entirely — including its finite
        // coordinate — leaving the fit over the remaining pairs.
        let xs = [1.0, f64::NAN, 3.0, 5.0];
        let ys = [2.0, 100.0, 6.0, f64::INFINITY];
        let e = ellipse(&xs, &ys);
        let clean = ellipse(&[1.0, 3.0], &[2.0, 6.0]);
        assert_eq!(e.mean_x.to_bits(), clean.mean_x.to_bits());
        assert_eq!(e.mean_y.to_bits(), clean.mean_y.to_bits());
        assert_eq!(e.corr.to_bits(), clean.corr.to_bits());
        // All pairs non-finite: the default (zero) ellipse, not a panic.
        let d = ellipse(&[f64::NAN], &[1.0]);
        assert_eq!(d.mean_x, 0.0);
    }

    #[test]
    fn ellipse_of_constant_data_has_zero_corr() {
        let xs = [5.0; 10];
        let ys = [3.0; 10];
        let e = ellipse(&xs, &ys);
        assert_eq!(e.corr, 0.0);
        assert_eq!(e.sd_x, 0.0);
    }
}
