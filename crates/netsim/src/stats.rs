//! Small summary-statistics helpers used by experiment harnesses.
//!
//! The paper reports medians (its headline tables), 1-σ ellipses of
//! throughput/delay clouds (Figs. 4–9), and standard errors (Fig. 10);
//! these helpers compute all of those from raw per-run samples.

/// Arithmetic mean (0.0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation (0.0 for fewer than two samples).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Standard error of the mean.
pub fn std_err(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    std_dev(xs) / (xs.len() as f64).sqrt()
}

/// Quantile via linear interpolation of the sorted samples; `q` in [0, 1].
///
/// Non-finite samples (NaN, ±∞) are filtered out before sorting,
/// consistent with `Objective::score_flow`'s sanitization — a single
/// degenerate flow summary must not abort a whole experiment. (This used
/// to `expect("no NaN in samples")` inside the sort comparator, which
/// panicked on the first NaN.) Returns 0.0 when no finite samples remain.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    let mut v: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_unstable_by(f64::total_cmp);
    let pos = q.clamp(0.0, 1.0) * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Median.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// The 2-D Gaussian summary behind the paper's throughput–delay ellipses:
/// means, standard deviations, and the correlation of the two coordinates.
#[derive(Clone, Copy, Debug, Default)]
pub struct Ellipse {
    /// Mean of x (queueing delay in the paper's plots).
    pub mean_x: f64,
    /// Mean of y (throughput).
    pub mean_y: f64,
    /// Standard deviation of x.
    pub sd_x: f64,
    /// Standard deviation of y.
    pub sd_y: f64,
    /// Pearson correlation between x and y.
    pub corr: f64,
}

/// Fit the maximum-likelihood 2-D Gaussian to paired samples.
///
/// Pairs with a non-finite coordinate are dropped (both coordinates go:
/// the fit is over *pairs*), mirroring [`quantile`]'s sanitization, so a
/// NaN in one run's summary cannot poison a whole ellipse.
pub fn ellipse(xs: &[f64], ys: &[f64]) -> Ellipse {
    assert_eq!(xs.len(), ys.len(), "paired samples required");
    let (xs, ys): (Vec<f64>, Vec<f64>) = xs
        .iter()
        .zip(ys)
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .map(|(x, y)| (*x, *y))
        .unzip();
    let (xs, ys) = (&xs[..], &ys[..]);
    if xs.is_empty() {
        return Ellipse::default();
    }
    let mx = mean(xs);
    let my = mean(ys);
    let sx = std_dev(xs);
    let sy = std_dev(ys);
    let cov = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / xs.len() as f64;
    let corr = if sx > 0.0 && sy > 0.0 {
        cov / (sx * sy)
    } else {
        0.0
    };
    Ellipse {
        mean_x: mx,
        mean_y: my,
        sd_x: sx,
        sd_y: sy,
        corr,
    }
}

/// Streaming quantile estimator — Jain & Chlamtáč's P² algorithm.
///
/// Tracks one quantile of an unbounded stream in O(1) memory with five
/// markers whose heights follow the empirical CDF via piecewise-parabolic
/// interpolation. Below five observations the estimate is exact (sorted).
/// Deterministic: the estimate depends only on the observation sequence.
///
/// Churn populations (100k+ flow-completion times) use this instead of a
/// per-flow `Vec<f64>`, which is exactly the per-flow-vector scaling the
/// massive-flow engine removes.
#[derive(Clone, Debug)]
pub struct P2Quantile {
    q: f64,
    count: u64,
    /// Marker heights; the first `min(count, 5)` entries are meaningful.
    heights: [f64; 5],
    /// Actual marker positions (1-based observation ranks).
    npos: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Per-observation increments of the desired positions.
    dn: [f64; 5],
}

impl P2Quantile {
    /// Estimator for quantile `q` in (0, 1), e.g. 0.5 for the median.
    pub fn new(q: f64) -> P2Quantile {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        P2Quantile {
            q,
            count: 0,
            heights: [0.0; 5],
            npos: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            dn: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
        }
    }

    /// The quantile this estimator tracks.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Feed one observation. Non-finite samples are ignored, consistent
    /// with [`quantile`]'s sanitization.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.count < 5 {
            // Insertion-sort the bootstrap samples as they arrive.
            let mut i = self.count as usize;
            self.heights[i] = x;
            while i > 0 {
                let prev = i - 1;
                if self.heights[prev] <= self.heights[i] {
                    break;
                }
                self.heights.swap(prev, i);
                i = prev;
            }
            self.count += 1;
            return;
        }
        // Locate the cell containing x and clamp the extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            while k < 3 {
                let next = k + 1;
                if x < self.heights[next] {
                    break;
                }
                k = next;
            }
            k
        };
        for pos in self.npos.iter_mut().skip(k + 1) {
            *pos += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.dn) {
            *d += inc;
        }
        // Adjust the three interior markers toward their desired ranks.
        for i in 1..4 {
            let (below, above) = (i - 1, i + 1);
            let d = self.desired[i] - self.npos[i];
            let step_up = self.npos[above] - self.npos[i] > 1.0;
            let step_down = self.npos[below] - self.npos[i] < -1.0;
            if (d >= 1.0 && step_up) || (d <= -1.0 && step_down) {
                let s = d.signum();
                let candidate = self.parabolic(i, s);
                self.heights[i] =
                    if self.heights[below] < candidate && candidate < self.heights[above] {
                        candidate
                    } else {
                        self.linear(i, s)
                    };
                // lint:allow(e2-order-sensitive-float-accumulation): exact steps
                // — P2 marker positions move by exactly ±1.0 per adjustment,
                // small-integer-valued f64 arithmetic, exact in IEEE-754 —
                // and each observation stream is consumed in event order by
                // its single owner, so the fold has a total order.
                self.npos[i] += s;
            }
        }
        self.count += 1;
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let (h, n) = (&self.heights, &self.npos);
        let (lo, hi) = (i - 1, i + 1);
        h[i] + s / (n[hi] - n[lo])
            * ((n[i] - n[lo] + s) * (h[hi] - h[i]) / (n[hi] - n[i])
                + (n[hi] - n[i] - s) * (h[i] - h[lo]) / (n[i] - n[lo]))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = if s > 0.0 { i + 1 } else { i - 1 };
        self.heights[i] + s * (self.heights[j] - self.heights[i]) / (self.npos[j] - self.npos[i])
    }

    /// Current estimate (exact for fewer than five observations; 0.0 with
    /// no observations, matching [`quantile`] on an empty slice).
    pub fn value(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.count < 5 {
            return quantile(&self.heights[..self.count as usize], self.q);
        }
        self.heights[2]
    }
}

/// Streaming one-pass summary of an unbounded sample population: count,
/// sum, min/max, and P² estimates of the median, p90, and p99.
///
/// This is the population-level replacement for keeping one record per
/// departed flow — memory is O(1) no matter how many flows churn through.
#[derive(Clone, Debug)]
pub struct StreamingSummary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    p50: P2Quantile,
    p90: P2Quantile,
    p99: P2Quantile,
}

impl Default for StreamingSummary {
    fn default() -> StreamingSummary {
        StreamingSummary::new()
    }
}

impl StreamingSummary {
    /// An empty summary.
    pub fn new() -> StreamingSummary {
        StreamingSummary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            p50: P2Quantile::new(0.5),
            p90: P2Quantile::new(0.9),
            p99: P2Quantile::new(0.99),
        }
    }

    /// Feed one observation (non-finite samples are ignored).
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.p50.observe(x);
        self.p90.observe(x);
        self.p99.observe(x);
    }

    /// Number of (finite) observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Estimated median.
    pub fn p50(&self) -> f64 {
        self.p50.value()
    }

    /// Estimated 90th percentile.
    pub fn p90(&self) -> f64 {
        self.p90.value()
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> f64 {
        self.p99.value()
    }
}

/// Fixed-capacity uniform reservoir sample (Vitter's algorithm R), driven
/// by an explicit [`SimRng`] so results are deterministic and independent
/// of every other random stream in a simulation.
///
/// Where [`StreamingSummary`] gives pinned quantiles, the reservoir keeps
/// an unbiased subsample of the raw values — for exact post-hoc quantiles,
/// distribution plots, or cross-checking the P² estimates.
#[derive(Clone, Debug)]
pub struct Reservoir {
    cap: usize,
    seen: u64,
    samples: Vec<f64>,
}

impl Reservoir {
    /// Reservoir keeping at most `cap` samples.
    pub fn new(cap: usize) -> Reservoir {
        assert!(cap > 0, "reservoir capacity must be positive");
        Reservoir {
            cap,
            seen: 0,
            samples: Vec::new(),
        }
    }

    /// Offer one observation; `rng` decides replacement once full.
    pub fn observe(&mut self, x: f64, rng: &mut crate::rng::SimRng) {
        self.seen += 1;
        if self.samples.len() < self.cap {
            self.samples.push(x);
            return;
        }
        // Replace a random slot with probability cap/seen: algorithm R.
        let j = rng.range_u64(0, self.seen - 1) as usize;
        if j < self.cap {
            self.samples[j] = x;
        }
    }

    /// Total observations offered (not just those retained).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The retained subsample, in retention order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Quantile of the retained subsample (see [`quantile`]).
    pub fn quantile(&self, q: f64) -> f64 {
        quantile(&self.samples, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
        assert!((std_err(&xs) - 2.0 / 8f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(quantile(&[], 0.9), 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(quantile(&xs, 0.0), 10.0);
        assert_eq!(quantile(&xs, 1.0), 50.0);
        assert_eq!(quantile(&xs, 0.25), 20.0);
        assert!((quantile(&xs, 0.1) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn ellipse_of_correlated_cloud() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let e = ellipse(&xs, &ys);
        assert!((e.corr - 1.0).abs() < 1e-9, "perfect correlation");
        assert!((e.mean_x - 49.5).abs() < 1e-9);
        assert!((e.mean_y - 100.0).abs() < 1e-9);
    }

    #[test]
    fn nan_samples_are_filtered_not_fatal() {
        // Regression: one non-finite flow summary used to abort the whole
        // experiment via `partial_cmp().expect("no NaN in samples")`.
        let with_nan = [3.0, f64::NAN, 1.0, 2.0];
        assert_eq!(median(&with_nan), 2.0, "median over the finite samples");
        assert_eq!(quantile(&with_nan, 0.0), 1.0);
        assert_eq!(quantile(&with_nan, 1.0), 3.0);
        let with_inf = [f64::INFINITY, 5.0, f64::NEG_INFINITY];
        assert_eq!(median(&with_inf), 5.0, "infinities are filtered too");
        assert_eq!(median(&[f64::NAN]), 0.0, "nothing finite left: 0.0");
    }

    #[test]
    fn ellipse_drops_non_finite_pairs() {
        // The NaN pair must vanish entirely — including its finite
        // coordinate — leaving the fit over the remaining pairs.
        let xs = [1.0, f64::NAN, 3.0, 5.0];
        let ys = [2.0, 100.0, 6.0, f64::INFINITY];
        let e = ellipse(&xs, &ys);
        let clean = ellipse(&[1.0, 3.0], &[2.0, 6.0]);
        assert_eq!(e.mean_x.to_bits(), clean.mean_x.to_bits());
        assert_eq!(e.mean_y.to_bits(), clean.mean_y.to_bits());
        assert_eq!(e.corr.to_bits(), clean.corr.to_bits());
        // All pairs non-finite: the default (zero) ellipse, not a panic.
        let d = ellipse(&[f64::NAN], &[1.0]);
        assert_eq!(d.mean_x, 0.0);
    }

    #[test]
    fn ellipse_of_constant_data_has_zero_corr() {
        let xs = [5.0; 10];
        let ys = [3.0; 10];
        let e = ellipse(&xs, &ys);
        assert_eq!(e.corr, 0.0);
        assert_eq!(e.sd_x, 0.0);
    }

    #[test]
    fn p2_is_exact_below_five_samples() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.value(), 0.0, "empty estimator");
        for x in [30.0, 10.0, 20.0] {
            p.observe(x);
        }
        assert_eq!(p.value(), median(&[30.0, 10.0, 20.0]));
        assert_eq!(p.count(), 3);
    }

    #[test]
    fn p2_tracks_quantiles_of_a_skewed_stream() {
        // Heavy-tailed input (the churn FCT shape): the estimate must stay
        // within a few percent of the exact sorted quantile.
        let mut rng = SimRng::new(2013);
        let samples: Vec<f64> = (0..50_000).map(|_| rng.pareto(1.0, 1.5)).collect();
        // The far tail of a heavy-tailed distribution is where P² is
        // weakest; allow it a wider band than the body.
        for (q, tol) in [(0.5, 0.05), (0.9, 0.05), (0.99, 0.10)] {
            let mut p = P2Quantile::new(q);
            for &x in &samples {
                p.observe(x);
            }
            let exact = quantile(&samples, q);
            let err = (p.value() - exact).abs() / exact;
            assert!(
                err < tol,
                "P2 q={q}: got {} want {exact} (err {err})",
                p.value()
            );
        }
    }

    #[test]
    fn p2_is_deterministic_and_ignores_non_finite() {
        let mut a = P2Quantile::new(0.9);
        let mut b = P2Quantile::new(0.9);
        let mut rng = SimRng::new(5);
        for _ in 0..1000 {
            let x = rng.exponential(2.0);
            a.observe(x);
            b.observe(f64::NAN);
            b.observe(x);
            b.observe(f64::INFINITY);
        }
        assert_eq!(a.value().to_bits(), b.value().to_bits());
        assert_eq!(a.count(), b.count());
    }

    #[test]
    fn streaming_summary_matches_exact_stats() {
        let mut rng = SimRng::new(99);
        let samples: Vec<f64> = (0..20_000).map(|_| rng.exponential(3.0)).collect();
        let mut s = StreamingSummary::new();
        for &x in &samples {
            s.observe(x);
        }
        assert_eq!(s.count(), samples.len() as u64);
        assert!((s.mean() - mean(&samples)).abs() < 1e-9);
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(s.min(), lo);
        assert_eq!(s.max(), hi);
        for (got, q) in [(s.p50(), 0.5), (s.p90(), 0.9), (s.p99(), 0.99)] {
            let exact = quantile(&samples, q);
            assert!(
                (got - exact).abs() / exact < 0.05,
                "q={q}: got {got} want {exact}"
            );
        }
    }

    #[test]
    fn empty_streaming_summary_is_all_zero() {
        let s = StreamingSummary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.p50(), 0.0);
    }

    #[test]
    fn reservoir_keeps_everything_under_capacity() {
        let mut rng = SimRng::new(1);
        let mut r = Reservoir::new(100);
        for i in 0..50 {
            r.observe(i as f64, &mut rng);
        }
        assert_eq!(r.seen(), 50);
        assert_eq!(r.samples().len(), 50);
        assert_eq!(r.quantile(0.0), 0.0);
        assert_eq!(r.quantile(1.0), 49.0);
    }

    #[test]
    fn reservoir_subsample_is_unbiased_and_deterministic() {
        let run = |seed| {
            let mut rng = SimRng::new(seed);
            let mut r = Reservoir::new(500);
            for i in 0..100_000 {
                r.observe(i as f64, &mut rng);
            }
            r
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a.samples(), b.samples(), "same rng seed, same reservoir");
        assert_eq!(a.samples().len(), 500);
        // Uniform over [0, 100k): the subsample median sits near 50k.
        let med = a.quantile(0.5);
        assert!(
            (med - 50_000.0).abs() < 5_000.0,
            "median {med} should be near 50000"
        );
        // A different rng stream retains a different subsample.
        assert_ne!(a.samples(), run(8).samples());
    }
}
