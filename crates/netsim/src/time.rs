//! Simulation time.
//!
//! All simulator clocks are integer nanoseconds ([`Ns`]) so that event
//! ordering is exact and runs are bit-for-bit reproducible across platforms.
//! Floating-point seconds/milliseconds are converted at the edges only
//! (configuration and reporting).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, or a duration, in nanoseconds.
///
/// The simulator does not distinguish instants from durations at the type
/// level; both are monotonic counts of nanoseconds since the start of the
/// simulation. This mirrors how ns-2 treats its scalar clock and keeps
/// arithmetic in hot paths trivial.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ns(pub u64);

impl Ns {
    /// Zero time — the start of every simulation.
    pub const ZERO: Ns = Ns(0);
    /// The maximum representable time (used as an "infinitely far" sentinel).
    pub const MAX: Ns = Ns(u64::MAX);

    /// One second.
    pub const SECOND: Ns = Ns(1_000_000_000);
    /// One millisecond.
    pub const MILLISECOND: Ns = Ns(1_000_000);
    /// One microsecond.
    pub const MICROSECOND: Ns = Ns(1_000);

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Ns {
        Ns(s * 1_000_000_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Ns {
        Ns(ms * 1_000_000)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Ns {
        Ns(us * 1_000)
    }

    /// Construct from fractional seconds. Negative or non-finite values
    /// saturate to zero; values beyond `u64::MAX` ns saturate to [`Ns::MAX`].
    #[inline]
    pub fn from_secs_f64(s: f64) -> Ns {
        if s.is_nan() || s <= 0.0 {
            return Ns::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            Ns::MAX
        } else {
            Ns(ns.round() as u64)
        }
    }

    /// Construct from fractional milliseconds (same saturation rules as
    /// [`Ns::from_secs_f64`]).
    #[inline]
    pub fn from_millis_f64(ms: f64) -> Ns {
        Ns::from_secs_f64(ms * 1e-3)
    }

    /// This time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }

    /// This time as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }

    /// Subtraction clamped at zero, for "how much later is `self` than
    /// `earlier`" when the ordering is not guaranteed.
    #[inline]
    pub fn saturating_sub(self, earlier: Ns) -> Ns {
        Ns(self.0.saturating_sub(earlier.0))
    }

    /// Addition clamped at [`Ns::MAX`].
    #[inline]
    pub fn saturating_add(self, d: Ns) -> Ns {
        Ns(self.0.saturating_add(d.0))
    }

    /// Scale a duration by a non-negative float (used for RTO backoff and
    /// rate computations). Saturates at the representable range.
    #[inline]
    pub fn mul_f64(self, k: f64) -> Ns {
        Ns::from_secs_f64(self.as_secs_f64() * k)
    }

    /// True if this is the zero time.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: Ns) -> Ns {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: Ns) -> Ns {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Ns {
    type Output = Ns;
    #[inline]
    fn add(self, rhs: Ns) -> Ns {
        Ns(self.0 + rhs.0)
    }
}

impl AddAssign for Ns {
    #[inline]
    fn add_assign(&mut self, rhs: Ns) {
        self.0 += rhs.0;
    }
}

impl Sub for Ns {
    type Output = Ns;
    #[inline]
    fn sub(self, rhs: Ns) -> Ns {
        Ns(self.0 - rhs.0)
    }
}

impl SubAssign for Ns {
    #[inline]
    fn sub_assign(&mut self, rhs: Ns) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Ns {
    type Output = Ns;
    #[inline]
    fn mul(self, rhs: u64) -> Ns {
        Ns(self.0 * rhs)
    }
}

impl Div<u64> for Ns {
    type Output = Ns;
    #[inline]
    fn div(self, rhs: u64) -> Ns {
        Ns(self.0 / rhs)
    }
}

impl fmt::Debug for Ns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Ns {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Convert a rate in megabits/second to the service time of `bytes` bytes.
///
/// Returns [`Ns::MAX`] for non-positive rates (a stalled link).
#[inline]
pub fn service_time(bytes: u32, rate_mbps: f64) -> Ns {
    if rate_mbps <= 0.0 {
        return Ns::MAX;
    }
    Ns::from_secs_f64((bytes as f64 * 8.0) / (rate_mbps * 1e6))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Ns::from_secs(3), Ns(3_000_000_000));
        assert_eq!(Ns::from_millis(150), Ns(150_000_000));
        assert_eq!(Ns::from_micros(7), Ns(7_000));
        assert!((Ns::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((Ns::from_millis_f64(0.25).as_millis_f64() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn from_secs_f64_saturates() {
        assert_eq!(Ns::from_secs_f64(-1.0), Ns::ZERO);
        assert_eq!(Ns::from_secs_f64(f64::NAN), Ns::ZERO);
        assert_eq!(Ns::from_secs_f64(f64::INFINITY), Ns::MAX);
        assert_eq!(Ns::from_secs_f64(1e30), Ns::MAX);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Ns(5).saturating_sub(Ns(10)), Ns::ZERO);
        assert_eq!(Ns(10).saturating_sub(Ns(4)), Ns(6));
        assert_eq!(Ns::MAX.saturating_add(Ns(1)), Ns::MAX);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Ns(2) + Ns(3), Ns(5));
        assert_eq!(Ns(5) - Ns(3), Ns(2));
        assert_eq!(Ns(5) * 3, Ns(15));
        assert_eq!(Ns(15) / 3, Ns(5));
        let mut t = Ns(1);
        t += Ns(2);
        assert_eq!(t, Ns(3));
        t -= Ns(1);
        assert_eq!(t, Ns(2));
    }

    #[test]
    fn min_max() {
        assert_eq!(Ns(3).min(Ns(5)), Ns(3));
        assert_eq!(Ns(3).max(Ns(5)), Ns(5));
    }

    #[test]
    fn mul_f64_backoff() {
        let rto = Ns::from_millis(200);
        assert_eq!(rto.mul_f64(2.0), Ns::from_millis(400));
        assert_eq!(rto.mul_f64(0.0), Ns::ZERO);
    }

    #[test]
    fn service_time_math() {
        // 1500 bytes at 12 Mbps = 1500*8/12e6 s = 1 ms.
        assert_eq!(service_time(1500, 12.0), Ns::from_millis(1));
        assert_eq!(service_time(1500, 0.0), Ns::MAX);
        assert_eq!(service_time(1500, -5.0), Ns::MAX);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", Ns::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", Ns::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", Ns(120)), "120ns");
    }
}
