//! Multi-hop network topologies.
//!
//! The paper evaluates congestion control only on single-bottleneck
//! dumbbells and cellular traces; a [`Topology`] generalizes the simulator
//! to a small directed graph of [`HopSpec`]s (each hop is one link plus the
//! queue feeding it) with an explicit per-flow [`FlowPath`]. That unlocks
//! the multi-bottleneck scenarios the paper leaves open:
//!
//! * **parking lot** — long flows traverse a chain of hops while
//!   cross-traffic loads each hop individually;
//! * **incast** — N senders fan in through per-sender access hops onto one
//!   shared aggregation hop;
//! * **reverse-path congestion** — the two directions of a link are two
//!   hops, and one flow's ACKs queue behind another flow's data.
//!
//! A scenario without a topology (the default) is the legacy dumbbell: one
//! hop built from [`crate::scenario::Scenario::link`]/`queue`, every flow's
//! data crossing it, ACKs returning on a pure-delay path. A 1-hop topology
//! whose paths all read `fwd: [0], ack: []` is byte-identical to that
//! legacy engine (the equivalence suite in `tests/` pins this).

use crate::graph::NetGraph;
use crate::json::{self, Value};
use crate::link::LinkSpec;
use crate::queue::QueueSpec;
use crate::time::Ns;

/// One directed hop: a queue draining into a link. Packets entering the
/// hop are enqueued; the link serves the queue head (constant-rate) or
/// releases packets at trace instants (trace-driven).
#[derive(Clone, Debug)]
pub struct HopSpec {
    /// The link serving this hop's queue.
    pub link: LinkSpec,
    /// The queue discipline feeding the link.
    pub queue: QueueSpec,
    /// Propagation delay from this hop to the *next* hop on a path.
    /// (The delay after a path's final hop is the flow's own half-RTT,
    /// exactly as in the legacy dumbbell.)
    pub prop_delay_out: Ns,
}

impl HopSpec {
    /// A hop with no outbound propagation delay.
    pub fn new(link: LinkSpec, queue: QueueSpec) -> HopSpec {
        HopSpec {
            link,
            queue,
            prop_delay_out: Ns::ZERO,
        }
    }

    /// Builder-style: set the outbound propagation delay.
    pub fn with_prop_delay(mut self, delay: Ns) -> HopSpec {
        self.prop_delay_out = delay;
        self
    }

    /// Serialize to a JSON value.
    pub fn to_json_value(&self) -> Value {
        Value::obj(vec![
            ("link", self.link.to_json_value()),
            ("queue", self.queue.to_json_value()),
            ("prop_delay_out_ns", json::ns_value(self.prop_delay_out)),
        ])
    }

    /// Deserialize a value written by [`HopSpec::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<HopSpec, String> {
        Ok(HopSpec {
            link: LinkSpec::from_json_value(v.field("link")?)?,
            queue: QueueSpec::from_json_value(v.field("queue")?)?,
            prop_delay_out: json::ns_from(v.field("prop_delay_out_ns")?)?,
        })
    }
}

/// The hops one flow's packets traverse, in order.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct FlowPath {
    /// Hops the flow's data packets cross, sender → receiver. Must be
    /// non-empty.
    pub fwd: Vec<usize>,
    /// Hops the flow's ACKs cross, receiver → sender. Empty means the
    /// legacy pure-delay return path (ACKs are never queued or dropped).
    pub ack: Vec<usize>,
}

impl FlowPath {
    /// A data path through the given hops with a pure-delay ACK return.
    pub fn through(fwd: Vec<usize>) -> FlowPath {
        FlowPath {
            fwd,
            ack: Vec::new(),
        }
    }

    /// A data path plus a queued ACK return path.
    pub fn with_ack_path(mut self, ack: Vec<usize>) -> FlowPath {
        self.ack = ack;
        self
    }

    /// Serialize to a JSON value.
    pub fn to_json_value(&self) -> Value {
        let hops = |p: &[usize]| Value::Arr(p.iter().map(|&h| json::u64_value(h as u64)).collect());
        Value::obj(vec![("fwd", hops(&self.fwd)), ("ack", hops(&self.ack))])
    }

    /// Deserialize a value written by [`FlowPath::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<FlowPath, String> {
        let hops = |v: &Value| -> Result<Vec<usize>, String> {
            v.as_arr()?.iter().map(Value::as_usize).collect()
        };
        Ok(FlowPath {
            fwd: hops(v.field("fwd")?)?,
            ack: hops(v.field("ack")?)?,
        })
    }
}

/// A complete multi-hop topology: the hop set plus one [`FlowPath`] per
/// sender (index-aligned with [`crate::scenario::Scenario::senders`]).
///
/// Construct topologies through [`Topology::from_flow_hops`],
/// [`Topology::single_bottleneck`], or — for routed networks — a
/// [`crate::graph::NetworkBuilder`]. Raw struct-literal construction is
/// not a public path: it bypasses the constructors that keep the
/// `graph` carrier and the hop/path invariants in sync, and new call
/// sites are flagged in review (see CONTRIBUTING.md).
#[derive(Clone, Debug)]
pub struct Topology {
    /// Every hop in the network, indexed by position.
    pub hops: Vec<HopSpec>,
    /// `paths[i]` is sender `i`'s route.
    pub paths: Vec<FlowPath>,
    /// The routing graph this topology was derived from, when it was
    /// built by [`crate::graph::NetworkBuilder`] rather than hand-listed.
    /// Carries link failure events and the failover policy; `None` for
    /// hand-wired hop-list topologies.
    pub graph: Option<NetGraph>,
}

impl Topology {
    /// The compatibility constructor for hand-listed topologies: an
    /// explicit hop set plus one per-flow path each. This is the funnel
    /// every per-flow-hop call site goes through; it attaches no routing
    /// graph, so the topology is static for the whole run.
    pub fn from_flow_hops(hops: Vec<HopSpec>, paths: Vec<FlowPath>) -> Topology {
        Topology {
            hops,
            paths,
            graph: None,
        }
    }

    /// The 1-hop topology equivalent to the legacy dumbbell: every one of
    /// `n` flows forwards through the single hop, ACKs return un-queued.
    pub fn single_bottleneck(link: LinkSpec, queue: QueueSpec, n: usize) -> Topology {
        Topology::from_flow_hops(
            vec![HopSpec::new(link, queue)],
            (0..n).map(|_| FlowPath::through(vec![0])).collect(),
        )
    }

    /// Number of hops.
    pub fn n_hops(&self) -> usize {
        self.hops.len()
    }

    /// Check structural invariants against a sender count: at least one
    /// hop, one path per sender, non-empty forward paths, in-range hop
    /// indices, and no hop repeated within a single path (loops would make
    /// a packet's position on its path ambiguous).
    pub fn validate(&self, n_flows: usize) -> Result<(), String> {
        if self.hops.is_empty() {
            return Err("topology has no hops".to_string());
        }
        if self.paths.len() != n_flows {
            return Err(format!(
                "topology has {} paths but the scenario has {} senders",
                self.paths.len(),
                n_flows
            ));
        }
        for (i, p) in self.paths.iter().enumerate() {
            if p.fwd.is_empty() {
                return Err(format!("flow {i} has an empty forward path"));
            }
            for (what, path) in [("fwd", &p.fwd), ("ack", &p.ack)] {
                let mut seen = vec![false; self.hops.len()];
                for &h in path {
                    if h >= self.hops.len() {
                        return Err(format!(
                            "flow {i} {what} path references hop {h}, but only {} exist",
                            self.hops.len()
                        ));
                    }
                    if seen[h] {
                        return Err(format!("flow {i} {what} path visits hop {h} twice"));
                    }
                    seen[h] = true;
                }
            }
        }
        if let Some(g) = &self.graph {
            if g.links.len() != self.hops.len() {
                return Err(format!(
                    "topology graph has {} links but {} hops",
                    g.links.len(),
                    self.hops.len()
                ));
            }
            if g.flows.len() != self.paths.len() {
                return Err(format!(
                    "topology graph has {} flows but {} paths",
                    g.flows.len(),
                    self.paths.len()
                ));
            }
        }
        Ok(())
    }

    /// Serialize to a JSON value.
    pub fn to_json_value(&self) -> Value {
        let mut fields = vec![
            (
                "hops",
                Value::Arr(self.hops.iter().map(HopSpec::to_json_value).collect()),
            ),
            (
                "paths",
                Value::Arr(self.paths.iter().map(FlowPath::to_json_value).collect()),
            ),
        ];
        // Omitted for hand-listed topologies, so pre-graph documents
        // (and the golden specs) stay byte-identical.
        if let Some(g) = &self.graph {
            fields.push(("graph", g.to_json_value()));
        }
        Value::obj(fields)
    }

    /// Deserialize a value written by [`Topology::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<Topology, String> {
        let graph = match v.get("graph") {
            None | Some(Value::Null) => None,
            Some(g) => Some(NetGraph::from_json_value(g)?),
        };
        let topo = Topology {
            hops: v
                .field("hops")?
                .as_arr()?
                .iter()
                .map(HopSpec::from_json_value)
                .collect::<Result<Vec<HopSpec>, String>>()?,
            paths: v
                .field("paths")?
                .as_arr()?
                .iter()
                .map(FlowPath::from_json_value)
                .collect::<Result<Vec<FlowPath>, String>>()?,
            graph,
        };
        topo.validate(topo.paths.len())?;
        Ok(topo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_hop_chain() -> Topology {
        Topology::from_flow_hops(
            (0..3)
                .map(|_| {
                    HopSpec::new(
                        LinkSpec::constant(10.0),
                        QueueSpec::DropTail { capacity: 100 },
                    )
                    .with_prop_delay(Ns::from_millis(10))
                })
                .collect(),
            vec![
                FlowPath::through(vec![0, 1, 2]),
                FlowPath::through(vec![0]),
                FlowPath::through(vec![1]),
                FlowPath::through(vec![2]),
            ],
        )
    }

    #[test]
    fn single_bottleneck_matches_legacy_shape() {
        let t = Topology::single_bottleneck(
            LinkSpec::constant(15.0),
            QueueSpec::DropTail { capacity: 1000 },
            4,
        );
        assert_eq!(t.n_hops(), 1);
        assert_eq!(t.paths.len(), 4);
        assert!(t.paths.iter().all(|p| p.fwd == vec![0] && p.ack.is_empty()));
        assert!(t.validate(4).is_ok());
        assert!(t.validate(3).is_err());
    }

    #[test]
    fn validation_rejects_bad_paths() {
        let mut t = three_hop_chain();
        assert!(t.validate(4).is_ok());
        t.paths[0].fwd = vec![0, 7];
        assert!(t.validate(4).unwrap_err().contains("hop 7"));
        t.paths[0].fwd = vec![];
        assert!(t.validate(4).unwrap_err().contains("empty forward path"));
        t.paths[0].fwd = vec![1, 1];
        assert!(t.validate(4).unwrap_err().contains("twice"));
        t.paths[0].fwd = vec![0];
        t.paths[0].ack = vec![2, 2];
        assert!(t.validate(4).unwrap_err().contains("ack path"));
        t.paths[0].ack = vec![];
        t.hops.clear();
        assert!(t.validate(4).unwrap_err().contains("no hops"));
    }

    #[test]
    fn topology_round_trips_through_json() {
        let mut t = three_hop_chain();
        t.paths[0].ack = vec![2, 0];
        let text = t.to_json_value().pretty();
        let back = Topology::from_json_value(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.to_json_value().pretty(), text);
        assert_eq!(back.paths, t.paths);
        assert_eq!(back.hops.len(), 3);
        assert_eq!(back.hops[1].prop_delay_out, Ns::from_millis(10));
        assert_eq!(back.hops[2].queue, t.hops[2].queue);
    }

    #[test]
    fn graph_topologies_round_trip_and_hand_listed_docs_stay_graph_free() {
        // Hand-listed topologies never emit a graph key, so pre-graph
        // documents (and goldens) stay byte-identical.
        let hand = three_hop_chain();
        assert!(!hand.to_json_value().pretty().contains("\"graph\""));
        // Graph-built topologies carry the graph through JSON.
        use crate::graph::{FailoverPolicy, LinkEvent, NetworkBuilder};
        let mut b = NetworkBuilder::new();
        let a = b.add_router("a");
        let c = b.add_router("c");
        b.add_duplex_link(
            a,
            c,
            LinkSpec::constant(10.0),
            QueueSpec::DropTail { capacity: 100 },
            Ns::from_millis(5),
        );
        let topo = b
            .build()
            .unwrap()
            .into_topology(
                &[(a, c)],
                vec![LinkEvent {
                    at: Ns::from_secs(2),
                    link: 0,
                    up: false,
                }],
                FailoverPolicy::Reroute,
            )
            .unwrap();
        let text = topo.to_json_value().pretty();
        assert!(text.contains("\"graph\""));
        let back = Topology::from_json_value(&json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.to_json_value().pretty(), text);
        assert_eq!(back.graph, topo.graph);
        // A graph whose link count disagrees with the hop list is
        // rejected at parse time.
        let mut bad = topo.clone();
        bad.hops.push(bad.hops[0].clone());
        let v = json::parse(&bad.to_json_value().pretty()).unwrap();
        assert!(Topology::from_json_value(&v)
            .unwrap_err()
            .contains("links but"));
    }

    #[test]
    fn corrupt_topology_json_is_rejected() {
        let t = three_hop_chain();
        let text = t.to_json_value().pretty();
        assert!(Topology::from_json_value(
            &json::parse(&text.replace("\"fwd\"", "\"fwdd\"")).unwrap()
        )
        .is_err());
        // Out-of-range hop indices fail at parse time, not at run time.
        let mut bad = t.clone();
        bad.paths[1].fwd = vec![9];
        let v = json::parse(&bad.to_json_value().pretty()).unwrap();
        assert!(Topology::from_json_value(&v).unwrap_err().contains("hop 9"));
    }
}
