//! On/off traffic models (§3.2, §5.1 of the paper).
//!
//! Each sender alternates between an exponentially-distributed "off" period
//! and an "on" period drawn in one of three ways:
//!
//! * **by time** — the source sends as much as congestion control allows
//!   for an exponentially-distributed duration (the design-phase model and
//!   the videoconference-style workload);
//! * **by bytes** — the connection transfers an exponentially-distributed
//!   number of bytes (the 100-kB / 1-MB transfer workloads);
//! * **by empirical distribution** — flow lengths follow the ICSI trace of
//!   Fig. 3, which matches a shifted Pareto: `len = Pareto(Xm=147, α=0.5) −
//!   40` bytes, plus 16 kB added "to ensure that the network is loaded".

use crate::json::Value;
use crate::rng::SimRng;
use crate::time::Ns;

/// How long/large "on" periods are.
#[derive(Clone, Debug, PartialEq)]
pub enum OnSpec {
    /// Send freely for an exponentially-distributed duration.
    ByTime {
        /// Mean on-duration.
        mean: Ns,
    },
    /// Send freely for exactly this long (deterministic on-period; used by
    /// controlled experiments like the Fig. 6 sequence plot).
    ByTimeFixed {
        /// Exact on-duration.
        duration: Ns,
    },
    /// Transfer an exponentially-distributed number of bytes.
    ByBytes {
        /// Mean flow size in bytes.
        mean_bytes: f64,
    },
    /// Transfer a flow drawn from the empirical (Fig. 3) distribution:
    /// shifted Pareto plus a fixed 16 kB loading term, capped so a single
    /// flow cannot dominate an entire simulation.
    Empirical {
        /// Upper bound on a single flow, bytes (paper's differing-RTT
        /// experiment quotes 3.3 GB as the observed max).
        cap_bytes: u64,
    },
    /// Transfer a flow drawn from a bounded Pareto distribution — the
    /// standard heavy-tailed web-workload model, used by churn scenarios
    /// where flows arrive by a Poisson process and each transfers one
    /// sampled flow length.
    BoundedPareto {
        /// Scale (minimum flow size), bytes.
        xm: f64,
        /// Shape; smaller is heavier-tailed.
        alpha: f64,
        /// Upper truncation, bytes (keeps the mean finite for α ≤ 1 and
        /// a single flow from dominating a run).
        cap_bytes: f64,
    },
}

impl OnSpec {
    /// Empirical spec with the paper's 3.3 GB cap.
    pub fn empirical() -> OnSpec {
        OnSpec::Empirical {
            cap_bytes: 3_300_000_000,
        }
    }

    /// Serialize to a JSON value. A `ByTime` mean of [`Ns::MAX`] (the
    /// always-on saturating source) round-trips as `null`.
    pub fn to_json_value(&self) -> Value {
        use crate::json::{ns_value, u64_value};
        match *self {
            OnSpec::ByTime { mean } => Value::obj(vec![
                ("kind", Value::str("by_time")),
                ("mean_ns", ns_value(mean)),
            ]),
            OnSpec::ByTimeFixed { duration } => Value::obj(vec![
                ("kind", Value::str("by_time_fixed")),
                ("duration_ns", ns_value(duration)),
            ]),
            OnSpec::ByBytes { mean_bytes } => Value::obj(vec![
                ("kind", Value::str("by_bytes")),
                ("mean_bytes", Value::num(mean_bytes)),
            ]),
            OnSpec::Empirical { cap_bytes } => Value::obj(vec![
                ("kind", Value::str("empirical")),
                ("cap_bytes", u64_value(cap_bytes)),
            ]),
            OnSpec::BoundedPareto {
                xm,
                alpha,
                cap_bytes,
            } => Value::obj(vec![
                ("kind", Value::str("bounded_pareto")),
                ("xm", Value::num(xm)),
                ("alpha", Value::num(alpha)),
                ("cap_bytes", Value::num(cap_bytes)),
            ]),
        }
    }

    /// Deserialize a value written by [`OnSpec::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<OnSpec, String> {
        use crate::json::ns_from;
        match v.field("kind")?.as_str()? {
            "by_time" => Ok(OnSpec::ByTime {
                mean: ns_from(v.field("mean_ns")?)?,
            }),
            "by_time_fixed" => Ok(OnSpec::ByTimeFixed {
                duration: ns_from(v.field("duration_ns")?)?,
            }),
            "by_bytes" => Ok(OnSpec::ByBytes {
                mean_bytes: v.field("mean_bytes")?.as_f64()?,
            }),
            "empirical" => Ok(OnSpec::Empirical {
                cap_bytes: v.field("cap_bytes")?.as_u64()?,
            }),
            "bounded_pareto" => Ok(OnSpec::BoundedPareto {
                xm: v.field("xm")?.as_f64()?,
                alpha: v.field("alpha")?.as_f64()?,
                cap_bytes: v.field("cap_bytes")?.as_f64()?,
            }),
            other => Err(format!("unknown on-period kind '{other}'")),
        }
    }

    /// Draw one flow length, in bytes, for byte-based on-periods; `None`
    /// for the time-based variants (whose on-periods have durations, not
    /// sizes). Churn scenarios require a `Some` spec — an arriving flow
    /// *is* one transfer.
    pub fn sample_bytes(&self, rng: &mut SimRng) -> Option<u64> {
        match *self {
            OnSpec::ByTime { .. } | OnSpec::ByTimeFixed { .. } => None,
            OnSpec::ByBytes { mean_bytes } => Some(rng.exponential(mean_bytes).max(1.0) as u64),
            OnSpec::Empirical { cap_bytes } => Some(empirical_flow_bytes(rng, cap_bytes)),
            OnSpec::BoundedPareto {
                xm,
                alpha,
                cap_bytes,
            } => Some(rng.bounded_pareto(xm, alpha, cap_bytes) as u64),
        }
    }

    /// True if on-periods are sized in bytes (one flow = one transfer).
    pub fn is_byte_based(&self) -> bool {
        !matches!(self, OnSpec::ByTime { .. } | OnSpec::ByTimeFixed { .. })
    }
}

/// Parameters of Fig. 3's fitted distribution.
pub const PARETO_XM: f64 = 147.0;
/// Pareto shape from Fig. 3 (α = 0.5 — infinite mean).
pub const PARETO_ALPHA: f64 = 0.5;
/// Shift applied in Fig. 3's fit ("Pareto(x+40)").
pub const PARETO_SHIFT: f64 = 40.0;
/// Loading term added to every sampled flow (§5.1).
pub const EMPIRICAL_EXTRA_BYTES: f64 = 16_384.0;

/// Draw one flow length (bytes) from the Fig. 3 empirical model.
pub fn empirical_flow_bytes(rng: &mut SimRng, cap_bytes: u64) -> u64 {
    let raw = (rng.pareto(PARETO_XM, PARETO_ALPHA) - PARETO_SHIFT).max(1.0);
    let with_load = raw + EMPIRICAL_EXTRA_BYTES;
    (with_load as u64).min(cap_bytes)
}

/// A complete per-sender traffic description.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficSpec {
    /// "on" period model.
    pub on: OnSpec,
    /// Mean of the exponential "off" period.
    pub off_mean: Ns,
    /// If true, every sender starts a flow at t = 0 (used by experiments
    /// that want immediate contention, e.g. the datacenter table); if
    /// false, each sender begins with an "off" draw, which de-synchronizes
    /// start times as in the paper's evaluation runs.
    pub start_on: bool,
}

impl TrafficSpec {
    /// The paper's design-phase default: on/off by time, both mean 5 s.
    pub fn design_default() -> TrafficSpec {
        TrafficSpec {
            on: OnSpec::ByTime {
                mean: Ns::from_secs(5),
            },
            off_mean: Ns::from_secs(5),
            start_on: false,
        }
    }

    /// The Fig. 4 workload: exponential 100 kB transfers, 0.5 s off.
    pub fn fig4() -> TrafficSpec {
        TrafficSpec {
            on: OnSpec::ByBytes {
                mean_bytes: 100_000.0,
            },
            off_mean: Ns::from_millis(500),
            start_on: false,
        }
    }

    /// A source that is always on (infinite backlog), for capacity checks
    /// and the Fig. 6 dynamics plot.
    pub fn saturating() -> TrafficSpec {
        TrafficSpec {
            on: OnSpec::ByTime { mean: Ns::MAX },
            off_mean: Ns::ZERO,
            start_on: true,
        }
    }

    /// Serialize to a JSON value.
    pub fn to_json_value(&self) -> Value {
        Value::obj(vec![
            ("on", self.on.to_json_value()),
            ("off_mean_ns", crate::json::ns_value(self.off_mean)),
            ("start_on", Value::Bool(self.start_on)),
        ])
    }

    /// Deserialize a value written by [`TrafficSpec::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<TrafficSpec, String> {
        Ok(TrafficSpec {
            on: OnSpec::from_json_value(v.field("on")?)?,
            off_mean: crate::json::ns_from(v.field("off_mean_ns")?)?,
            start_on: v.field("start_on")?.as_bool()?,
        })
    }
}

/// What a sender is currently allowed to do.
#[derive(Clone, Debug, PartialEq)]
pub enum OnState {
    /// Silent; the flow resumes at the recorded time.
    Off {
        /// When the off-period ends.
        until: Ns,
    },
    /// Transferring a fixed-size flow; the count is how many *new* packets
    /// are still to be injected (retransmissions do not consume this).
    OnBytes {
        /// New packets still to inject.
        remaining_pkts: u64,
    },
    /// Free-running until the deadline.
    OnTime {
        /// When the on-period ends.
        until: Ns,
    },
}

/// Per-sender traffic process: draws on/off periods and tracks state.
#[derive(Clone, Debug)]
pub struct TrafficProcess {
    spec: TrafficSpec,
    state: OnState,
    rng: SimRng,
    mss: u32,
    /// Completed+current "on" intervals: used for interval bookkeeping.
    current_on_started: Option<Ns>,
}

impl TrafficProcess {
    /// Create the process; `rng` must be an independent stream per sender.
    pub fn new(spec: TrafficSpec, mss: u32, mut rng: SimRng) -> TrafficProcess {
        let state = if spec.start_on {
            OnState::Off { until: Ns::ZERO }
        } else {
            let off = Ns::from_secs_f64(rng.exponential(spec.off_mean.as_secs_f64()));
            OnState::Off { until: off }
        };
        TrafficProcess {
            spec,
            state,
            rng,
            mss,
            current_on_started: None,
        }
    }

    /// A process for one dynamically arriving (churn) flow: immediately
    /// on, transferring exactly `bytes`, never to turn on again — the
    /// engine tears the flow down when the transfer completes instead of
    /// drawing an off-period.
    pub fn one_shot(bytes: u64, mss: u32, now: Ns) -> TrafficProcess {
        let mut p = TrafficProcess {
            spec: TrafficSpec {
                on: OnSpec::ByBytes {
                    mean_bytes: bytes as f64,
                },
                off_mean: Ns::ZERO,
                start_on: true,
            },
            state: OnState::Off { until: Ns::ZERO },
            // lint:allow(r2-rng-underived-seed): placeholder stream — a one-shot
            // process never draws from its rng (the size is fixed below).
            rng: SimRng::new(0),
            mss,
            current_on_started: None,
        };
        p.reset_one_shot(bytes, now);
        p
    }

    /// Re-arm this process for a new one-shot lifetime in the same slot
    /// (churn respawn): on at `now`, transferring exactly `bytes`.
    pub fn reset_one_shot(&mut self, bytes: u64, now: Ns) {
        self.current_on_started = Some(now);
        self.state = OnState::OnBytes {
            remaining_pkts: bytes.div_ceil(self.mss as u64).max(1),
        };
    }

    /// The time of the next scheduled state change the simulator must wake
    /// us for, if any. (`OnBytes` completes via ACKs instead of a timer.)
    pub fn next_wakeup(&self) -> Option<Ns> {
        match &self.state {
            OnState::Off { until } => Some(*until),
            OnState::OnTime { until } if *until != Ns::MAX => Some(*until),
            _ => None,
        }
    }

    /// Handle a timer wakeup at `now`: switch Off→On when the off period
    /// ends, or On→Off when a timed on-period expires. Returns `true` if
    /// the state changed.
    pub fn on_wakeup(&mut self, now: Ns) -> bool {
        match self.state.clone() {
            OnState::Off { until } if now >= until => {
                self.begin_on(now);
                true
            }
            OnState::OnTime { until } if now >= until => {
                self.begin_off(now);
                true
            }
            _ => false,
        }
    }

    fn begin_on(&mut self, now: Ns) {
        self.current_on_started = Some(now);
        self.state = match self.spec.on {
            OnSpec::ByTime { mean } => {
                let dur = if mean == Ns::MAX {
                    Ns::MAX
                } else {
                    Ns::from_secs_f64(self.rng.exponential(mean.as_secs_f64()))
                };
                OnState::OnTime {
                    until: now.saturating_add(dur),
                }
            }
            OnSpec::ByTimeFixed { duration } => OnState::OnTime {
                until: now.saturating_add(duration),
            },
            ref on => {
                let bytes = on
                    .sample_bytes(&mut self.rng)
                    // lint:allow(p1-sim-unwrap): the match arms above handle
                    // every time-based shape, so only byte-based ones reach
                    // this arm, and those always yield a size.
                    .expect("byte-based on-period");
                OnState::OnBytes {
                    remaining_pkts: bytes.div_ceil(self.mss as u64).max(1),
                }
            }
        };
    }

    fn begin_off(&mut self, now: Ns) {
        self.current_on_started = None;
        let off = Ns::from_secs_f64(self.rng.exponential(self.spec.off_mean.as_secs_f64()));
        self.state = OnState::Off {
            until: now.saturating_add(off),
        };
    }

    /// The transport finished delivering the current fixed-size flow (all
    /// bytes acknowledged): transition to Off. Only valid in `OnBytes`.
    pub fn on_transfer_complete(&mut self, now: Ns) {
        debug_assert!(matches!(self.state, OnState::OnBytes { .. }));
        self.begin_off(now);
    }

    /// True if the sender may inject *new* data right now.
    pub fn may_send_new(&self, now: Ns) -> bool {
        match &self.state {
            OnState::Off { .. } => false,
            OnState::OnBytes { remaining_pkts } => *remaining_pkts > 0,
            OnState::OnTime { until } => now < *until,
        }
    }

    /// Consume one new packet's worth of send budget.
    pub fn consume_packet(&mut self) {
        if let OnState::OnBytes { remaining_pkts } = &mut self.state {
            debug_assert!(*remaining_pkts > 0);
            *remaining_pkts -= 1;
        }
    }

    /// True if the flow is in an "on" period (even if its byte budget is
    /// exhausted and it is draining).
    pub fn is_on(&self) -> bool {
        !matches!(self.state, OnState::Off { .. })
    }

    /// True if a fixed-size flow has injected all its packets and is
    /// waiting for acknowledgments.
    pub fn draining(&self) -> bool {
        matches!(self.state, OnState::OnBytes { remaining_pkts: 0 })
    }

    /// When the current on-period started, if on.
    pub fn on_started(&self) -> Option<Ns> {
        self.current_on_started
    }

    /// Current state (for tests and logging).
    pub fn state(&self) -> &OnState {
        &self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proc_with(on: OnSpec, off_mean: Ns, seed: u64) -> TrafficProcess {
        TrafficProcess::new(
            TrafficSpec {
                on,
                off_mean,
                start_on: false,
            },
            1500,
            SimRng::new(seed),
        )
    }

    #[test]
    fn starts_off_then_turns_on() {
        let mut p = proc_with(
            OnSpec::ByBytes {
                mean_bytes: 10_000.0,
            },
            Ns::from_millis(500),
            1,
        );
        let wake = p.next_wakeup().expect("off period has a deadline");
        assert!(!p.is_on());
        assert!(!p.may_send_new(Ns::ZERO));
        assert!(p.on_wakeup(wake));
        assert!(p.is_on());
        assert!(p.may_send_new(wake));
        assert_eq!(p.on_started(), Some(wake));
    }

    #[test]
    fn start_on_begins_immediately() {
        let mut p = TrafficProcess::new(TrafficSpec::saturating(), 1500, SimRng::new(2));
        assert!(p.on_wakeup(Ns::ZERO));
        assert!(p.may_send_new(Ns::from_secs(1)));
        assert_eq!(p.next_wakeup(), None, "saturating source never sleeps");
    }

    #[test]
    fn byte_budget_depletes_and_completes() {
        let mut p = proc_with(OnSpec::ByBytes { mean_bytes: 4000.0 }, Ns::SECOND, 3);
        let wake = p.next_wakeup().unwrap();
        p.on_wakeup(wake);
        let OnState::OnBytes { remaining_pkts } = *p.state() else {
            panic!("expected OnBytes");
        };
        assert!(remaining_pkts >= 1);
        for _ in 0..remaining_pkts {
            assert!(p.may_send_new(wake));
            p.consume_packet();
        }
        assert!(!p.may_send_new(wake));
        assert!(p.draining());
        p.on_transfer_complete(wake + Ns::SECOND);
        assert!(!p.is_on());
        assert!(p.next_wakeup().unwrap() > wake + Ns::SECOND);
    }

    #[test]
    fn timed_on_period_expires() {
        let mut p = proc_with(
            OnSpec::ByTime {
                mean: Ns::from_secs(5),
            },
            Ns::from_secs(5),
            4,
        );
        let on_at = p.next_wakeup().unwrap();
        p.on_wakeup(on_at);
        let until = match *p.state() {
            OnState::OnTime { until } => until,
            _ => panic!("expected OnTime"),
        };
        assert!(p.may_send_new(until - Ns(1)));
        assert!(!p.may_send_new(until));
        assert!(p.on_wakeup(until));
        assert!(!p.is_on());
    }

    #[test]
    fn fixed_on_period_is_exact() {
        let mut p = TrafficProcess::new(
            TrafficSpec {
                on: OnSpec::ByTimeFixed {
                    duration: Ns::from_secs(3),
                },
                off_mean: Ns::SECOND,
                start_on: true,
            },
            1500,
            SimRng::new(9),
        );
        p.on_wakeup(Ns::ZERO);
        assert_eq!(
            *p.state(),
            OnState::OnTime {
                until: Ns::from_secs(3)
            }
        );
    }

    #[test]
    fn empirical_flows_carry_loading_term() {
        let mut rng = SimRng::new(5);
        for _ in 0..10_000 {
            let b = empirical_flow_bytes(&mut rng, 3_300_000_000);
            assert!(b as f64 >= EMPIRICAL_EXTRA_BYTES);
            assert!(b <= 3_300_000_000);
        }
    }

    #[test]
    fn empirical_flows_are_heavy_tailed() {
        // With alpha = 0.5 the 99th percentile should dwarf the median.
        let mut rng = SimRng::new(6);
        let mut v: Vec<u64> = (0..50_000)
            .map(|_| empirical_flow_bytes(&mut rng, u64::MAX))
            .collect();
        v.sort_unstable();
        let median = v[v.len() / 2] as f64;
        let p99 = v[v.len() * 99 / 100] as f64;
        assert!(
            p99 / median > 50.0,
            "tail too light: median {median}, p99 {p99}"
        );
    }

    #[test]
    fn mean_off_time_matches_spec() {
        // Measure the average initial off draw across many independent
        // processes.
        let mut total = 0.0;
        let n = 20_000;
        for seed in 0..n {
            let p = proc_with(
                OnSpec::ByBytes { mean_bytes: 1000.0 },
                Ns::from_millis(200),
                seed,
            );
            total += p.next_wakeup().unwrap().as_secs_f64();
        }
        let mean = total / n as f64;
        assert!(
            (mean - 0.2).abs() < 0.01,
            "mean off draw {mean} should be ~0.2 s"
        );
    }

    #[test]
    fn bounded_pareto_round_trips_and_samples_in_range() {
        let spec = OnSpec::BoundedPareto {
            xm: 4500.0,
            alpha: 1.2,
            cap_bytes: 1_500_000.0,
        };
        let back = OnSpec::from_json_value(&spec.to_json_value()).expect("round trip");
        assert_eq!(back, spec);
        assert!(spec.is_byte_based());
        let mut rng = SimRng::new(11);
        for _ in 0..10_000 {
            let b = spec.sample_bytes(&mut rng).expect("byte based");
            assert!((4500..1_500_000).contains(&b), "sample {b} out of range");
        }
        assert!(OnSpec::ByTime { mean: Ns::SECOND }
            .sample_bytes(&mut rng)
            .is_none());
    }

    #[test]
    fn one_shot_transfers_exactly_once() {
        let mut p = TrafficProcess::one_shot(4000, 1500, Ns::from_secs(2));
        assert!(p.is_on());
        assert_eq!(p.on_started(), Some(Ns::from_secs(2)));
        assert_eq!(p.next_wakeup(), None, "one-shots complete via ACKs");
        let OnState::OnBytes { remaining_pkts } = *p.state() else {
            panic!("expected OnBytes");
        };
        assert_eq!(remaining_pkts, 3, "ceil(4000 / 1500)");
        for _ in 0..3 {
            p.consume_packet();
        }
        assert!(p.draining());
        p.reset_one_shot(100, Ns::from_secs(5));
        assert!(p.may_send_new(Ns::from_secs(5)), "respawned in place");
        assert_eq!(p.on_started(), Some(Ns::from_secs(5)));
    }

    #[test]
    fn wakeup_before_deadline_is_noop() {
        let mut p = proc_with(OnSpec::ByBytes { mean_bytes: 1000.0 }, Ns::SECOND, 8);
        let wake = p.next_wakeup().unwrap();
        assert!(!p.on_wakeup(wake - Ns(1)));
        assert!(!p.is_on());
    }
}
